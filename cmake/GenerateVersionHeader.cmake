# Script-mode generator for wi_version.h, run at *build* time (not
# configure time) so a new commit or a changed dirty tree refreshes the
# version string without a reconfigure — the ResultStore content-keys
# cached results by it. Dirty trees get a content hash suffix so two
# different sets of uncommitted edits never share a cache key.
#
# Inputs: SOURCE_DIR, OUTPUT_FILE. Writes only on change (restat-friendly).

set(version "unversioned")
find_package(Git QUIET)
if(Git_FOUND)
  execute_process(
    COMMAND ${GIT_EXECUTABLE} describe --always --tags
    WORKING_DIRECTORY ${SOURCE_DIR}
    OUTPUT_VARIABLE describe_out
    OUTPUT_STRIP_TRAILING_WHITESPACE
    ERROR_QUIET
    RESULT_VARIABLE describe_result)
  if(describe_result EQUAL 0 AND NOT describe_out STREQUAL "")
    set(version ${describe_out})
    # Uncommitted changes (including untracked files): append the hash
    # of a synthetic tree of the full worktree. `git add -A` against a
    # throwaway index captures untracked *content*, which a plain
    # `git diff HEAD` hash would miss.
    execute_process(
      COMMAND ${GIT_EXECUTABLE} status --porcelain -uall
      WORKING_DIRECTORY ${SOURCE_DIR}
      OUTPUT_VARIABLE status_out
      ERROR_QUIET)
    if(NOT status_out STREQUAL "")
      set(tmp_index ${OUTPUT_FILE}.gitindex)
      set(ENV{GIT_INDEX_FILE} ${tmp_index})
      execute_process(
        COMMAND ${GIT_EXECUTABLE} add -A
        WORKING_DIRECTORY ${SOURCE_DIR}
        ERROR_QUIET)
      execute_process(
        COMMAND ${GIT_EXECUTABLE} write-tree
        WORKING_DIRECTORY ${SOURCE_DIR}
        OUTPUT_VARIABLE tree_out
        OUTPUT_STRIP_TRAILING_WHITESPACE
        ERROR_QUIET
        RESULT_VARIABLE tree_result)
      unset(ENV{GIT_INDEX_FILE})
      file(REMOVE ${tmp_index})
      if(tree_result EQUAL 0 AND NOT tree_out STREQUAL "")
        string(SUBSTRING ${tree_out} 0 12 dirty_hash)
      else()
        # Fallback: weaker but still change-sensitive for tracked files.
        execute_process(
          COMMAND ${GIT_EXECUTABLE} diff HEAD
          WORKING_DIRECTORY ${SOURCE_DIR}
          OUTPUT_VARIABLE diff_out
          ERROR_QUIET)
        string(SHA1 dirty_hash "${status_out}${diff_out}")
        string(SUBSTRING ${dirty_hash} 0 12 dirty_hash)
      endif()
      string(APPEND version "-dirty.${dirty_hash}")
    endif()
  endif()
endif()

set(content "// Generated at build time by GenerateVersionHeader.cmake.
#pragma once
#define WI_GIT_DESCRIBE \"${version}\"
")
if(EXISTS ${OUTPUT_FILE})
  file(READ ${OUTPUT_FILE} existing)
else()
  set(existing "")
endif()
if(NOT content STREQUAL existing)
  file(WRITE ${OUTPUT_FILE} "${content}")
endif()

/// \file tune_suboptimal.cpp
/// \brief Heaviest-budget re-run of the noise-agnostic (suboptimal)
///        ISI design — the registered "fig05_isi_filters" scenario with
///        reoptimize=true and a larger search budget than tune_filters
///        (no hand-wired optimiser calls).

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  ScenarioSpec spec = ScenarioRegistry::paper().get("fig05_isi_filters");
  spec.name = "tune_suboptimal";
  auto& isi = spec.payload<IsiSpec>();
  isi.reoptimize = true;
  isi.mc_symbols = 60000;
  isi.opt_max_evals = 8000;
  isi.opt_restarts = 6;
  std::cout << "# tune_suboptimal - deep search for the unique-detection "
               "(noise-agnostic) design; check the 'suboptimal' rows and "
               "its unique-detection note\n\n";
  const RunResult result = engine.run(spec);
  print_result(std::cout, result);
  return result.ok() ? 0 : 1;
}

#include <cstdio>
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
using namespace wi::comm;
int main() {
  Constellation c4 = Constellation::ask(4);
  FilterDesignOptions opt;
  opt.max_evals = 8000; opt.restarts = 6;
  IsiFilter f = design_filter_suboptimal(c4, opt);
  std::printf("unique=%d margin=%.4f ambig=%zu\n  taps:",
    (int)is_uniquely_detectable(f, c4), noise_free_margin(f, c4),
    ambiguity_count(f, c4));
  for (double t : f.taps()) std::printf(" %.4f,", t);
  std::printf("\n");
  OneBitOsChannel ch(f, c4, 25.0);
  std::printf("seqIR@25=%.4f symMI@25=%.4f\n",
    info_rate_one_bit_sequence(ch, {60000, 5}), mi_one_bit_symbolwise(ch));
  return 0;
}

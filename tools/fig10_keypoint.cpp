/// \file fig10_keypoint.cpp
/// \brief Targeted check of the paper's Fig. 10 worked example at BER
///        1e-5 — LDPC-CC N=40 W=5 (T_WD = 200) vs LDPC-BC N=400
///        (T_B = 400) and BC N=200 (equal latency to the CC) — run as
///        the registered "fig10_ldpc_latency" scenario with the payload
///        narrowed to the keypoint operating points (no hand-wired
///        codes or BER loops; minutes of Monte Carlo by design).

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  ScenarioSpec spec = ScenarioRegistry::paper().get("fig10_ldpc_latency");
  spec.name = "fig10_keypoint";
  spec.description =
      "Fig. 10 worked example at BER 1e-5: CC(200 bits) vs BC(200/400 bits)";
  auto& ldpc = spec.payload<LdpcLatencySpec>();
  ldpc.target_ber = 1e-5;
  ldpc.min_errors = 120;
  ldpc.max_codewords = 20000;
  ldpc.cc_curves = {{40, 5, 5}};   // N=40, W=5 only: T_WD = 200 bits
  ldpc.bc_liftings = {200, 400};   // T_B = 200 / 400 bits
  ldpc.search_lo_db = 2.5;
  ldpc.search_hi_db = 6.0;
  std::cout << "# Fig. 10 keypoint - required Eb/N0 @ BER 1e-5\n"
            << "# paper: the CC at 200-bit latency matches the BC at "
               "400-bit latency (~3 dB), a 200-bit latency gain\n\n";
  const RunResult result = engine.run(spec);
  print_result(std::cout, result);
  std::cout << "\n# checks: CC(T_WD=200) needs no more Eb/N0 than "
               "BC(T_B=400) and clearly less than BC(T_B=200)\n";
  return result.ok() ? 0 : 1;
}

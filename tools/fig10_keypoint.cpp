// Targeted check of the paper's Fig. 10 worked example at BER 1e-5:
// LDPC-CC N=40 W=5 (T_WD = 200) vs LDPC-BC N=400 (T_B = 400) and
// BC N=200 (equal latency to the CC).
#include <cstdio>
#include "wi/fec/ber.hpp"
using namespace wi::fec;

int main() {
  const double target = 1e-5;
  const LdpcConvolutionalCode cc(EdgeSpreading::paper_example(), 40, 24, 40, 32);
  const QcLdpcBlockCode bc400(BaseMatrix({{4, 4}}), 400, 400, 32);
  const QcLdpcBlockCode bc200(BaseMatrix({{4, 4}}), 200, 200, 32);
  std::printf("girths: CC %zu, BC400 %zu, BC200 %zu\n",
              cc.parity_check().girth(), bc400.parity_check().girth(),
              bc200.parity_check().girth());
  auto run_cc = [&](double e) {
    BerConfig c; c.ebn0_db = e; c.min_errors = 120; c.max_codewords = 12000; c.seed = 7;
    auto r = simulate_ber_window(cc, 5, c);
    std::printf("  CC  @%.2f: BER %.2e (%zu err / %zu cw)\n", e, r.ber, r.bit_errors, r.codewords);
    return r;
  };
  auto run_bc = [&](const QcLdpcBlockCode& code, const char* name, double e) {
    BerConfig c; c.ebn0_db = e; c.min_errors = 120; c.max_codewords = 40000; c.seed = 8;
    auto r = simulate_ber_block(code, c);
    std::printf("  %s @%.2f: BER %.2e (%zu err / %zu cw)\n", name, e, r.ber, r.bit_errors, r.codewords);
    return r;
  };
  const double cc_req = required_ebn0_db([&](double e){ return run_cc(e); }, target, 2.5, 6.0, 0.25);
  std::printf("CC N=40 W=5 (latency 200): required Eb/N0 @1e-5 = %.2f dB\n\n", cc_req);
  const double bc400_req = required_ebn0_db([&](double e){ return run_bc(bc400, "BC400", e); }, target, 2.5, 6.0, 0.25);
  std::printf("BC N=400 (latency 400): required Eb/N0 @1e-5 = %.2f dB\n\n", bc400_req);
  const double bc200_req = required_ebn0_db([&](double e){ return run_bc(bc200, "BC200", e); }, target, 2.5, 6.0, 0.25);
  std::printf("BC N=200 (latency 200): required Eb/N0 @1e-5 = %.2f dB\n", bc200_req);
  std::printf("\nsummary: CC(200 bits) %.2f dB vs BC(200 bits) %.2f dB vs BC(400 bits) %.2f dB\n",
              cc_req, bc200_req, bc400_req);
  return 0;
}

/// \file smoke.cpp
/// \brief Fast end-to-end smoke run: execute the cheap registry
///        scenarios through one SimEngine and print every result.
///        Covers the RF campaign + link budget, the VNA impulse
///        responses, the 1-bit PHY curves (sequence and symbolwise
///        Monte-Carlo builds through the cache), the ISI filter
///        designs, the ADC energy model, the NoC queueing model +
///        flit-level DES cross-check, the hybrid system, BEC density
///        evolution and the coding planner, in a couple of seconds.
///        Not covered here (see tests/benches): LDPC BER simulation
///        (fig10_ldpc_latency, minutes) and live ISI filter
///        optimisation. Non-zero exit on any failed scenario.

#include <cstdio>
#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  const auto& registry = ScenarioRegistry::paper();
  SimEngine engine;
  const std::vector<ScenarioSpec> specs = {
      registry.get("table1_link_budget"),
      registry.get("fig01_pathloss"),
      registry.get("fig04_tx_power"),
      registry.get("quickstart_link_rate"),
      registry.get("board_links_plan"),
      registry.get("fig08a_mesh2d_8x8"),
      registry.get("fig08a_star_mesh_4x4c4"),
      registry.get("fig08a_mesh3d_4x4x4"),
      registry.get("ablation_vertical_links"),
      registry.get("ablation_hybrid_system"),
      registry.get("fig10_coding_plan"),
      registry.get("fig02_impulse_50mm"),
      registry.get("fig03_impulse_150mm"),
      registry.get("fig05_isi_filters"),
      registry.get("fig06_info_rates"),
      registry.get("ablation_adc_energy"),
      registry.get("ablation_threshold_saturation"),
  };
  const auto results = engine.run_all(specs);
  int failures = 0;
  for (const auto& result : results) {
    print_result(std::cout, result);
    std::cout << "\n";
    if (!result.ok()) ++failures;
  }
  std::printf("phy curve cache: %zu hits / %zu misses\n",
              engine.phy_cache().hits(), engine.phy_cache().misses());
  std::printf("%zu scenarios, %d failed\n", results.size(), failures);
  return failures == 0 ? 0 : 1;
}

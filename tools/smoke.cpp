/// \file smoke.cpp
/// \brief Fast end-to-end smoke run: execute the cheap registry
///        scenarios through one SimEngine and print every result.
///        Covers the RF campaign + link budget, the 1-bit PHY curves
///        (sequence and symbolwise Monte-Carlo builds through the
///        cache), the NoC queueing model + flit-level DES cross-check,
///        the hybrid system and the coding planner, in about a second.
///        Not covered here (see tests/benches): LDPC BER simulation,
///        VNA impulse-response extraction, ISI filter optimisation.
///        Non-zero exit on any failed scenario.

#include <cstdio>
#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  const auto& registry = ScenarioRegistry::paper();
  SimEngine engine;
  const std::vector<ScenarioSpec> specs = {
      registry.get("table1_link_budget"),
      registry.get("fig01_pathloss"),
      registry.get("fig04_tx_power"),
      registry.get("quickstart_link_rate"),
      registry.get("board_links_plan"),
      registry.get("fig08a_mesh2d_8x8"),
      registry.get("fig08a_star_mesh_4x4c4"),
      registry.get("fig08a_mesh3d_4x4x4"),
      registry.get("ablation_vertical_links"),
      registry.get("ablation_hybrid_system"),
      registry.get("fig10_coding_plan"),
  };
  const auto results = engine.run_all(specs);
  int failures = 0;
  for (const auto& result : results) {
    print_result(std::cout, result);
    std::cout << "\n";
    if (!result.ok()) ++failures;
  }
  std::printf("phy curve cache: %zu hits / %zu misses\n",
              engine.phy_cache().hits(), engine.phy_cache().misses());
  std::printf("%zu scenarios, %d failed\n", results.size(), failures);
  return failures == 0 ? 0 : 1;
}

#include <cstdio>
#include "wi/rf/link_budget.hpp"
#include "wi/rf/campaign.hpp"
#include "wi/rf/vna.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/fec/ber.hpp"
using namespace wi;

int main() {
  // --- Table I anchors ---
  rf::LinkBudget lb;
  std::printf("PL(0.1m)=%.2f dB (paper 59.8)\n", lb.path_loss_db(0.1));
  std::printf("PL(0.3m)=%.2f dB (paper 69.3)\n", lb.path_loss_db(0.3));
  std::printf("noise=%.2f dBm\n", lb.noise_power_dbm());
  std::printf("PTX(snr=0,0.1m)=%.2f dBm  PTX(35,0.3m,butler)=%.2f dBm\n",
    lb.required_tx_power_dbm(0,0.1,false), lb.required_tx_power_dbm(35,0.3,true));

  // --- campaign fits ---
  rf::CampaignConfig cc; cc.distances_m = rf::default_distance_grid_m();
  cc.copper_boards=false;
  auto fit_free = rf::run_and_fit(cc);
  cc.copper_boards=true;
  auto fit_cu = rf::run_and_fit(cc);
  std::printf("fit free n=%.4f (2.000), copper n=%.4f (2.0454)\n", fit_free.exponent, fit_cu.exponent);

  // --- impulse response reflections ---
  rf::BoardToBoardScenario sc; sc.distance_m=0.05; sc.copper_boards=true;
  auto ch = rf::board_to_board_channel(sc);
  rf::SyntheticVna vna;
  auto ir = rf::to_impulse_response(vna.measure(ch));
  std::printf("worst reflection (taps)=%.1f dB, (ir)=%.1f dB (paper <= -15)\n",
    ch.worst_reflection_rel_db(), rf::worst_reflection_rel_db(ir, 12));

  // --- NoC anchors ---
  using namespace noc;
  DimensionOrderRouting dor;
  auto eval_t = [&](const Topology& t){
    QueueingModel m(t, dor, TrafficPattern::uniform(t.module_count()));
    std::printf("%-22s zero-load=%.2f sat=%.3f\n", t.name().c_str(),
      m.zero_load_latency_cycles(), m.saturation_rate());
  };
  eval_t(Topology::mesh_2d(8,8));
  eval_t(Topology::star_mesh(4,4,4));
  eval_t(Topology::mesh_3d(4,4,4));
  eval_t(Topology::mesh_2d(32,16));
  eval_t(Topology::mesh_3d(8,8,8));

  // --- info rates at 25 dB ---
  auto c4 = comm::Constellation::ask(4);
  std::printf("MI unq(25dB)=%.3f  no-OS=%.3f\n",
    comm::mi_unquantized_awgn(c4,25), comm::mi_one_bit_no_oversampling(c4,25));
  comm::OneBitOsChannel rect(comm::IsiFilter::rectangular(5), c4, 25);
  std::printf("rect sym=%.3f seq=%.3f\n", comm::mi_one_bit_symbolwise(rect),
    comm::info_rate_one_bit_sequence(rect,{20000,3}));
  comm::OneBitOsChannel fsym(comm::paper_filter_symbolwise(), c4, 25);
  comm::OneBitOsChannel fseq(comm::paper_filter_sequence(), c4, 25);
  std::printf("preset sym-filter symMI=%.3f | seq-filter seqIR=%.3f\n",
    comm::mi_one_bit_symbolwise(fsym), comm::info_rate_one_bit_sequence(fseq,{20000,3}));

  // --- LDPC ---
  using namespace fec;
  LdpcConvolutionalCode cc_code(EdgeSpreading::paper_example(), 40, 30, 5);
  std::printf("CC: rate_as=%.3f rate_term=%.3f girth(H)=%zu\n",
    cc_code.rate_asymptotic(), cc_code.rate_terminated(), cc_code.parity_check().girth());
  BerConfig bc; bc.ebn0_db=3.0; bc.min_errors=50; bc.max_codewords=60;
  auto r = simulate_ber_window(cc_code, 5, bc);
  std::printf("CC W=5 BER@3dB=%.2e (%zu cw)\n", r.ber, r.codewords);
  QcLdpcBlockCode bc_code(BaseMatrix({{4,4}}), 200, 7);
  auto rb = simulate_ber_block(bc_code, bc);
  std::printf("BC N=200 BER@3dB=%.2e girth=%zu\n", rb.ber, bc_code.parity_check().girth());
  return 0;
}

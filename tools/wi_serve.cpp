/// \file wi_serve.cpp
/// \brief Long-running scenario service daemon.
///
/// Accepts newline-delimited JSON requests over TCP (see
/// wi/serve/protocol.hpp): run registered or inline scenarios and
/// campaigns through a shared SimEngine worker pool, front the
/// persistent ResultStore with an in-memory LRU hot tier, coalesce
/// identical in-flight requests onto one engine run, and expose
/// aggregate metrics as a wi::Table via the stats request.
///
///   wi_serve                             # serve on 127.0.0.1:7341
///   wi_serve --port 0 --port-file p.txt  # ephemeral port, written out
///   wi_serve --workers 4 --queue-capacity 64 --lru-capacity 128
///   wi_serve --store results/store       # persistent cold tier
///   wi_serve --no-store                  # memory tiers only
///   wi_serve --metrics-out metrics.csv   # dump the final table on exit
///
/// The daemon runs until a client sends {"type":"shutdown"} or the
/// process receives SIGTERM/SIGINT: admission closes, accepted jobs
/// drain, the shutdown response is written (request path), the final
/// metrics table is printed (and saved with --metrics-out), and the
/// process exits 0. Signals use the self-pipe pattern: the handler
/// only writes one byte, a watcher thread does the actual drain — no
/// async-signal-unsafe work in handler context. Exit 1 = startup
/// failure, 2 = usage.
///
/// Chaos mode (--chaos or the --chaos-* rates) arms the deterministic
/// FaultInjector: store I/O failures/delays/corruption and connection
/// drops/stalls at the given rates, replayable via --chaos-seed. Pair
/// with wi_loadgen --chaos to prove every request still terminates.

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "wi/serve/server.hpp"

#if __has_include("wi_version.h")
#include "wi_version.h"
#else
#define WI_GIT_DESCRIBE "unversioned"
#endif

namespace {

using namespace wi;
using namespace wi::serve;

// Self-pipe shared between the signal handler and the watcher thread.
int g_signal_pipe[2] = {-1, -1};
std::atomic<int> g_signal_received{0};

extern "C" void on_terminate_signal(int sig) {
  g_signal_received.store(sig);
  const char byte = 1;
  // write(2) is async-signal-safe; the result only matters insofar as
  // a full pipe means a byte is already in flight.
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

struct CliOptions {
  ServerOptions server;
  bool no_store = false;
  bool quiet = false;
  std::optional<std::filesystem::path> port_file;
  std::optional<std::filesystem::path> metrics_out;
};

void print_usage(std::ostream& os) {
  os << "usage: wi_serve [options]\n"
        "\n"
        "options:\n"
        "  --host HOST          bind address (default 127.0.0.1)\n"
        "  --port N             TCP port; 0 = ephemeral (default 7341)\n"
        "  --port-file PATH     write the bound port to PATH\n"
        "  --workers N          simulation workers (default: cores)\n"
        "  --queue-capacity N   admission queue bound (default 256)\n"
        "  --client-quota N     per-client queue quota (default cap/4)\n"
        "  --lru-capacity N     hot-tier entries (default 256)\n"
        "  --store DIR          cold-tier result store directory\n"
        "                       (default results/store, keyed with\n"
        "                       version '" WI_GIT_DESCRIBE "')\n"
        "  --no-store           memory tiers only, nothing persisted\n"
        "  --campaign-threads N engine threads inside one campaign job\n"
        "                       (default 2)\n"
        "  --metrics-out PATH   also write the final metrics table as\n"
        "                       CSV on shutdown\n"
        "  --shed-watermark N   shed new work at queue depth N with a\n"
        "                       retry-after hint (default 0 = off)\n"
        "  --shed-retry-after MS retry_after_ms hint on shed responses\n"
        "                       (default 50)\n"
        "  --chaos RATE         arm every fault stream at RATE\n"
        "  --chaos-store-fail R    injected store I/O failure rate\n"
        "  --chaos-store-delay R   injected store I/O delay rate\n"
        "  --chaos-store-corrupt R injected corrupt-entry rate\n"
        "  --chaos-conn-drop R     injected connection-drop rate\n"
        "  --chaos-conn-stall R    injected response-stall rate\n"
        "  --chaos-delay-ms MS     stall duration (default 5)\n"
        "  --chaos-seed N          fault derivation seed (default 1)\n"
        "  --verbose            per-request trace lines on stderr\n"
        "  --quiet              suppress the shutdown metrics dump\n"
        "  --help               this text\n";
}

[[nodiscard]] bool parse_size(const std::string& text, std::size_t& out) {
  try {
    out = static_cast<std::size_t>(std::stoull(text));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

[[nodiscard]] bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

[[nodiscard]] int parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return -1;
    }
    if (arg == "--no-store") {
      options.no_store = true;
      continue;
    }
    if (arg == "--verbose") {
      options.server.verbose = true;
      continue;
    }
    if (arg == "--quiet") {
      options.quiet = true;
      continue;
    }
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      options.server.host = value;
    } else if (arg == "--port" && (value = next())) {
      std::size_t port = 0;
      if (!parse_size(value, port) || port > 65535) {
        std::cerr << "wi_serve: bad --port '" << value << "'\n";
        return 2;
      }
      options.server.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--port-file" && (value = next())) {
      options.port_file = value;
    } else if (arg == "--workers" && (value = next())) {
      if (!parse_size(value, options.server.workers)) return 2;
    } else if (arg == "--queue-capacity" && (value = next())) {
      if (!parse_size(value, options.server.queue_capacity)) return 2;
    } else if (arg == "--client-quota" && (value = next())) {
      if (!parse_size(value, options.server.per_client_quota)) return 2;
    } else if (arg == "--lru-capacity" && (value = next())) {
      if (!parse_size(value, options.server.hot_capacity)) return 2;
    } else if (arg == "--store" && (value = next())) {
      options.server.store_dir = std::filesystem::path(value);
    } else if (arg == "--campaign-threads" && (value = next())) {
      if (!parse_size(value, options.server.campaign_threads)) return 2;
    } else if (arg == "--metrics-out" && (value = next())) {
      options.metrics_out = value;
    } else if (arg == "--shed-watermark" && (value = next())) {
      if (!parse_size(value, options.server.shed_watermark)) return 2;
    } else if (arg == "--shed-retry-after" && (value = next())) {
      if (!parse_double(value, options.server.shed_retry_after_ms)) {
        return 2;
      }
    } else if (arg == "--chaos" && (value = next())) {
      double rate = 0.0;
      if (!parse_double(value, rate)) return 2;
      FaultInjectorOptions& chaos = options.server.chaos;
      chaos.store_fail_rate = rate;
      chaos.store_delay_rate = rate;
      chaos.store_corrupt_rate = rate;
      chaos.conn_drop_rate = rate;
      chaos.conn_stall_rate = rate;
    } else if (arg == "--chaos-store-fail" && (value = next())) {
      if (!parse_double(value, options.server.chaos.store_fail_rate)) {
        return 2;
      }
    } else if (arg == "--chaos-store-delay" && (value = next())) {
      if (!parse_double(value, options.server.chaos.store_delay_rate)) {
        return 2;
      }
    } else if (arg == "--chaos-store-corrupt" && (value = next())) {
      if (!parse_double(value,
                        options.server.chaos.store_corrupt_rate)) {
        return 2;
      }
    } else if (arg == "--chaos-conn-drop" && (value = next())) {
      if (!parse_double(value, options.server.chaos.conn_drop_rate)) {
        return 2;
      }
    } else if (arg == "--chaos-conn-stall" && (value = next())) {
      if (!parse_double(value, options.server.chaos.conn_stall_rate)) {
        return 2;
      }
    } else if (arg == "--chaos-delay-ms" && (value = next())) {
      if (!parse_double(value, options.server.chaos.delay_ms)) return 2;
    } else if (arg == "--chaos-seed" && (value = next())) {
      std::size_t seed = 0;
      if (!parse_size(value, seed)) return 2;
      options.server.chaos.seed = seed;
    } else {
      std::cerr << "wi_serve: unknown or incomplete option '" << arg
                << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  options.server.port = 7341;
  options.server.version = WI_GIT_DESCRIBE;
  options.server.store_dir = std::filesystem::path("results/store");
  if (const int rc = parse_cli(argc, argv, options); rc != 0) {
    return rc < 0 ? 0 : rc;
  }
  if (options.no_store) options.server.store_dir.reset();

  try {
    Server server(options.server);
    if (const Status status = server.start(); !status.is_ok()) {
      std::cerr << "wi_serve: " << status.to_string() << "\n";
      return 1;
    }
    std::cout << "wi_serve listening on port " << server.port()
              << std::endl;
    if (options.server.chaos.enabled()) {
      std::cerr << "[wi_serve] CHAOS MODE: deterministic fault "
                   "injection armed (seed "
                << options.server.chaos.seed << ")\n";
    }
    if (options.port_file) {
      std::ofstream out(*options.port_file, std::ios::trunc);
      out << server.port() << "\n";
      if (!out) {
        std::cerr << "wi_serve: cannot write port file "
                  << *options.port_file << "\n";
        return 1;
      }
    }
    // SIGTERM/SIGINT -> drain-before-shutdown, via self-pipe: the
    // handler writes one byte, this watcher does the real work from a
    // normal thread. One byte also flows on the plain shutdown path
    // (below) so the watcher always terminates.
    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "wi_serve: cannot create the signal pipe\n";
      return 1;
    }
    std::signal(SIGTERM, on_terminate_signal);
    std::signal(SIGINT, on_terminate_signal);
    std::thread signal_watcher([&server] {
      char byte = 0;
      ssize_t n;
      do {
        n = ::read(g_signal_pipe[0], &byte, 1);
      } while (n < 0 && errno == EINTR);
      const int sig = g_signal_received.load();
      if (n > 0 && sig != 0) {
        std::cerr << "[wi_serve] caught "
                  << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                  << " — draining before shutdown\n";
        server.begin_shutdown();
      }
    });
    server.wait();
    // Unblock the watcher if shutdown came from a request, not a
    // signal (redundant-but-harmless extra byte otherwise).
    {
      const char byte = 0;
      (void)!::write(g_signal_pipe[1], &byte, 1);
    }
    signal_watcher.join();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
    const Table metrics = server.stats_table();
    server.stop();
    if (!options.quiet) {
      std::cout << "\nfinal server metrics:\n";
      metrics.print(std::cout);
    }
    if (options.metrics_out) {
      std::ofstream out(*options.metrics_out, std::ios::trunc);
      metrics.print_csv(out);
      if (!out) {
        std::cerr << "wi_serve: cannot write metrics to "
                  << *options.metrics_out << "\n";
        return 1;
      }
    }
  } catch (const StatusError& error) {
    std::cerr << "wi_serve: " << error.status().to_string() << "\n";
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "wi_serve: " << error.what() << "\n";
    return 1;
  }
  return 0;
}

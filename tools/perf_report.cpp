/// \file perf_report.cpp
/// \brief Measures the hot simulation kernels against their frozen
///        pre-optimization baselines and emits BENCH_perf.json.
///
/// Usage:
///   tool_perf_report [--smoke] [output.json]
///
/// Each kernel is timed best-of-N in this process, baseline and
/// optimized back to back, so the reported speedups are insensitive to
/// machine drift. --smoke runs one repetition of everything (the CI
/// sanity gate); the default repetition counts are sized for a stable
/// committed baseline. The JSON schema ("wi-bench-perf-v1") is described
/// in the README's Performance section.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "baseline_kernels.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/core/phy_abstraction.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/noc/mesh_grid.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/sim/sim.hpp"

namespace {

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process-lifetime peak resident set in kB (Linux ru_maxrss unit).
/// The counter never decreases, so each entry's value is the peak up to
/// the moment its timed runs finished — ordering memory-light kernels
/// before their memory-hungry dense twins makes the contrast visible.
double max_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss);
}

/// Best-of-reps wall time of one call, in nanoseconds.
double time_ns(const std::function<void()>& fn, int reps) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_ns();
    fn();
    const double dt = now_ns() - t0;
    if (i == 0 || dt < best) best = dt;
  }
  return best;
}

struct Entry {
  std::string name;
  double ns_per_op = 0.0;
  double baseline_ns_per_op = 0.0;  ///< 0 = no baseline twin
  double throughput = 0.0;          ///< 0 = not meaningful
  std::string throughput_unit;
  double rss_kb = 0.0;  ///< peak RSS when the entry finished timing
};

/// push_back + max-RSS stamp: every entry records the process peak RSS
/// observed once its timed runs completed.
void push_entry(std::vector<Entry>& entries, Entry entry) {
  entry.rss_kb = max_rss_kb();
  entries.push_back(std::move(entry));
}

std::string json_escape_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

void write_json(const std::vector<Entry>& entries, const std::string& path) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"wi-bench-perf-v1\",\n"
      << "  \"note\": \"best-of-N wall times; baseline = frozen "
         "pre-optimization kernel measured in the same process\",\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\n"
        << "      \"name\": \"" << e.name << "\",\n"
        << "      \"ns_per_op\": " << json_escape_number(e.ns_per_op);
    if (e.baseline_ns_per_op > 0.0) {
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2f",
                    e.baseline_ns_per_op / e.ns_per_op);
      out << ",\n      \"baseline_ns_per_op\": "
          << json_escape_number(e.baseline_ns_per_op)
          << ",\n      \"speedup\": " << speedup;
    }
    if (e.throughput > 0.0) {
      char thr[32];
      std::snprintf(thr, sizeof(thr), "%.2f", e.throughput);
      out << ",\n      \"throughput\": " << thr
          << ",\n      \"throughput_unit\": \"" << e.throughput_unit << "\"";
    }
    if (e.rss_kb > 0.0) {
      out << ",\n      \"max_rss_kb\": " << json_escape_number(e.rss_kb);
    }
    out << "\n    }" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const int reps_fast = smoke ? 1 : 7;    // sub-ms kernels
  const int reps_slow = smoke ? 1 : 5;    // >100 ms kernels
  std::vector<Entry> entries;

  const wi::comm::Constellation ask4 = wi::comm::Constellation::ask(4);

  // --- info_rate_one_bit_sequence (paper settings: 4-ASK, M=5, 20000) ---
  {
    const wi::comm::OneBitOsChannel channel(wi::comm::paper_filter_sequence(),
                                            ask4, 25.0);
    wi::comm::SequenceRateOptions options;
    options.symbols = 20000;
    options.seed = 7;
    volatile double sink = 0.0;
    const double base = time_ns(
        [&] {
          sink = wi::perf_baseline::info_rate_one_bit_sequence(channel,
                                                               options);
        },
        reps_fast);
    // Warm the noise tape before timing the steady-state path (the cold
    // first call is reported separately below).
    sink = wi::comm::info_rate_one_bit_sequence(channel, options);
    const double opt = time_ns(
        [&] { sink = wi::comm::info_rate_one_bit_sequence(channel, options); },
        reps_fast);
    push_entry(entries, {"info_rate_one_bit_sequence/4ask_m5_20000sym", opt,
                       base, 20000.0 / opt * 1e3, "Msymbols/s"});
    // Cold-tape cost: fresh seed defeats the memoization.
    std::uint64_t seed = 90000;
    const double cold = time_ns(
        [&] {
          wi::comm::SequenceRateOptions cold_options = options;
          cold_options.seed = ++seed;
          sink = wi::comm::info_rate_one_bit_sequence(channel, cold_options);
        },
        reps_fast);
    push_entry(entries, {"info_rate_one_bit_sequence/cold_noise_tape", cold,
                       base, 20000.0 / cold * 1e3, "Msymbols/s"});
    (void)sink;
  }

  // --- mi_one_bit_symbolwise ---
  {
    const wi::comm::OneBitOsChannel channel(
        wi::comm::paper_filter_symbolwise(), ask4, 25.0);
    volatile double sink = 0.0;
    const double base = time_ns(
        [&] { sink = wi::perf_baseline::mi_one_bit_symbolwise(channel); },
        smoke ? 1 : 50);
    const double opt = time_ns(
        [&] { sink = wi::comm::mi_one_bit_symbolwise(channel); },
        smoke ? 1 : 50);
    push_entry(entries,
        {"mi_one_bit_symbolwise/4ask_m5", opt, base, 0.0, ""});
    (void)sink;
  }

  // --- simulate_network (Fig. 8a: 64-module meshes) ---
  {
    wi::noc::FlitSimConfig config;  // fig08a DES cross-check settings
    config.warmup_cycles = 2000;
    config.measure_cycles = 8000;
    config.seed = 1;
    const wi::noc::DimensionOrderRouting routing;
    struct Case {
      const char* name;
      wi::noc::Topology topo;
      double rate;
    };
    Case cases[] = {
        {"simulate_network/fig08a_mesh3d_4x4x4_rate0.3",
         wi::noc::Topology::mesh_3d(4, 4, 4), 0.3},
        {"simulate_network/fig08a_mesh2d_8x8_rate0.2",
         wi::noc::Topology::mesh_2d(8, 8), 0.2},
        // Low-load point: the event wheel only turns routers with
        // pending work, while the cycle-stepped baseline still visits
        // all 64 routers every cycle — this is where the event-driven
        // rearchitecture pays off by an order of magnitude.
        {"simulate_network/fig08a_mesh2d_8x8_rate0.02_lowload",
         wi::noc::Topology::mesh_2d(8, 8), 0.02},
    };
    for (const Case& c : cases) {
      const wi::noc::TrafficPattern traffic =
          wi::noc::TrafficPattern::uniform(64);
      volatile std::size_t sink = 0;
      const double base = time_ns(
          [&] {
            sink = wi::perf_baseline::simulate_network(c.topo, routing,
                                                       traffic, c.rate,
                                                       config)
                       .delivered;
          },
          reps_slow);
      const double opt = time_ns(
          [&] {
            sink = wi::noc::simulate_network(c.topo, routing, traffic,
                                             c.rate, config)
                       .delivered;
          },
          reps_slow);
      const double cycles = static_cast<double>(config.warmup_cycles +
                                                config.measure_cycles +
                                                config.drain_cycles);
      push_entry(entries,
          {c.name, opt, base, cycles / opt * 1e3, "Mcycles/s"});
      (void)sink;
    }
  }

  // --- PhyAbstraction SNR-curve build (17 sequence-rate grid points) ---
  {
    volatile double sink = 0.0;
    // Warm the shared noise tape first: both variants would otherwise
    // pay the one-off recording on their first build and the ratio
    // would measure the cache, not the grid parallelism.
    {
      const wi::core::PhyAbstraction warm(
          wi::core::PhyReceiver::kOneBitSequence, 25e9, 2, 1);
      sink = warm.info_rate_bpcu(25.0);
    }
    const double serial = time_ns(
        [&] {
          const wi::core::PhyAbstraction phy(
              wi::core::PhyReceiver::kOneBitSequence, 25e9, 2, 1);
          sink = phy.info_rate_bpcu(25.0);
        },
        smoke ? 1 : 3);
    // Explicit 4 workers: threads=0 resolves to hardware_concurrency(),
    // which is 1 on some CI boxes and silently degenerates to the
    // serial loop — the bug this entry exists to catch. The serial
    // build is this entry's in-process baseline, so the JSON carries a
    // speedup field and the perf-trend gate pins the parallel path.
    const double parallel = time_ns(
        [&] {
          const wi::core::PhyAbstraction phy(
              wi::core::PhyReceiver::kOneBitSequence, 25e9, 2, 4);
          sink = phy.info_rate_bpcu(25.0);
        },
        smoke ? 1 : 3);
    push_entry(entries,
        {"phy_abstraction_build/one_bit_sequence/serial", serial, 0.0, 0.0,
         ""});
    push_entry(entries,
        {"phy_abstraction_build/one_bit_sequence/parallel_4t", parallel,
         serial, 0.0, ""});
    (void)sink;
  }

  // --- implicit vs dense setup structures (16x16x16 mesh, 4096 nodes) ---
  // The implicit kernels run first so their entries record the process
  // peak RSS *before* the dense twins allocate the modules^2 matrix and
  // the routers^2 next-hop table — the max_rss_kb contrast between the
  // /implicit entries and their dense-baselined twins is the memory
  // story the 32x32x32 scenario depends on.
  {
    const wi::noc::Topology topo = wi::noc::Topology::mesh_3d(16, 16, 16);
    const std::size_t modules = topo.module_count();
    const std::size_t routers = topo.router_count();
    const wi::noc::DimensionOrderRouting routing;

    // Traffic pattern construction + one probability row read (the row
    // read keeps both sides' op big enough to time stably).
    volatile double dsink = 0.0;
    const double traffic_implicit = time_ns(
        [&] {
          const wi::noc::TrafficPattern p =
              wi::noc::TrafficPattern::implicit_uniform(modules);
          double sum = 0.0;
          for (std::size_t d = 0; d < modules; ++d) {
            sum += p.probability(0, d);
          }
          dsink = sum;
        },
        reps_fast);
    push_entry(entries, {"traffic_build/mesh3d_16x16x16/implicit",
                         traffic_implicit, 0.0, 0.0, ""});
    const double traffic_dense = time_ns(
        [&] {
          const wi::noc::TrafficPattern p =
              wi::noc::TrafficPattern::uniform(modules);
          double sum = 0.0;
          for (std::size_t d = 0; d < modules; ++d) {
            sum += p.probability(0, d);
          }
          dsink = sum;
        },
        reps_slow);
    push_entry(entries, {"traffic_build/mesh3d_16x16x16", traffic_implicit,
                         traffic_dense, 0.0, ""});

    // Routing structure build: MeshGrid coordinate analysis vs the
    // dense (router, dst) first-hop port table the simulator needs
    // when the mesh shape is not recognised.
    volatile std::size_t sink = 0;
    const double routing_implicit = time_ns(
        [&] {
          const auto grid = wi::noc::MeshGrid::analyze(topo);
          sink = grid ? grid->next_port(0, routers - 1) : 0;
        },
        reps_fast);
    push_entry(entries, {"routing_build/mesh3d_16x16x16/implicit",
                         routing_implicit, 0.0, 0.0, ""});
    const double routing_dense = time_ns(
        [&] {
          std::vector<std::uint8_t> table(routers * routers, 0xFF);
          for (std::size_t r = 0; r < routers; ++r) {
            const auto& out = topo.out_links(r);
            for (std::size_t dst = 0; dst < routers; ++dst) {
              if (dst == r) continue;
              const std::size_t link = routing.first_hop(topo, r, dst);
              for (std::size_t p = 0; p < out.size(); ++p) {
                if (out[p] == link) {
                  table[r * routers + dst] = static_cast<std::uint8_t>(p);
                  break;
                }
              }
            }
          }
          sink = table[routers];
        },
        smoke ? 1 : 3);
    push_entry(entries, {"routing_build/mesh3d_16x16x16", routing_implicit,
                         routing_dense, 0.0, ""});

    // Queueing-model setup: closed-form channel loads vs the dense
    // all-pairs route walk (8x8x8 keeps the dense twin affordable).
    const wi::noc::Topology q_topo = wi::noc::Topology::mesh_3d(8, 8, 8);
    const std::size_t q_modules = q_topo.module_count();
    const double queueing_implicit = time_ns(
        [&] {
          const wi::noc::QueueingModel model(
              q_topo, routing,
              wi::noc::TrafficPattern::implicit_uniform(q_modules));
          dsink = model.saturation_rate();
        },
        reps_fast);
    const double queueing_dense = time_ns(
        [&] {
          const wi::noc::QueueingModel model(
              q_topo, routing, wi::noc::TrafficPattern::uniform(q_modules));
          dsink = model.saturation_rate();
        },
        reps_slow);
    push_entry(entries, {"queueing_build/mesh3d_8x8x8", queueing_implicit,
                         queueing_dense, 0.0, ""});
    (void)sink;
    (void)dsink;
  }

  // --- end-to-end SimEngine scenario (Fig. 8a queueing-model table) ---
  {
    const wi::sim::ScenarioRegistry registry =
        wi::sim::ScenarioRegistry::paper();
    const wi::sim::ScenarioSpec spec = registry.get("fig08a_mesh2d_8x8");
    volatile std::size_t sink = 0;
    const double t = time_ns(
        [&] {
          wi::sim::SimEngine engine;
          sink = engine.run(spec).table.rows();
        },
        reps_fast);
    push_entry(entries, {"sim_engine/fig08a_mesh2d_8x8_noc_latency", t, 0.0,
                       0.0, ""});
    (void)sink;
  }

  write_json(entries, out_path);
  std::cout << "wrote " << out_path << "\n";
  for (const Entry& e : entries) {
    std::printf("  %-50s %12.0f ns/op", e.name.c_str(), e.ns_per_op);
    if (e.baseline_ns_per_op > 0.0) {
      std::printf("  (baseline %12.0f, speedup %.2fx)", e.baseline_ns_per_op,
                  e.baseline_ns_per_op / e.ns_per_op);
    }
    std::printf("\n");
  }
  return 0;
}

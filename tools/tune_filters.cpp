#include <cstdio>
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
using namespace wi::comm;

static void dump(const char* name, const IsiFilter& f, const Constellation& c) {
  OneBitOsChannel ch(f, c, 25.0);
  double sym = mi_one_bit_symbolwise(ch);
  double seq = info_rate_one_bit_sequence(ch, {60000, 5});
  std::printf("%s: symMI=%.4f seqIR=%.4f unique=%d margin=%.4f\n  taps:",
    name, sym, seq, (int)is_uniquely_detectable(f, c), noise_free_margin(f, c));
  for (double t : f.taps()) std::printf(" %.4f,", t);
  std::printf("\n");
}

int main() {
  Constellation c4 = Constellation::ask(4);
  FilterDesignOptions opt;
  opt.max_evals = 6000; opt.restarts = 4; opt.sequence_mc_symbols = 6000;

  IsiFilter fsym = optimize_filter_symbolwise(c4, opt);
  dump("SYMBOLWISE", fsym, c4);

  IsiFilter fseq = optimize_filter_sequence(c4, opt);
  dump("SEQUENCE", fseq, c4);

  IsiFilter fsub = design_filter_suboptimal(c4, opt);
  dump("SUBOPTIMAL", fsub, c4);
  return 0;
}

/// \file tune_filters.cpp
/// \brief Re-run the Fig. 5 ISI filter optimisation with a heavier
///        search budget — the registered "fig05_isi_filters" scenario
///        with reoptimize=true and the tuning budgets in the payload
///        (no hand-wired optimiser calls).

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  ScenarioSpec spec = ScenarioRegistry::paper().get("fig05_isi_filters");
  spec.name = "tune_filters";
  auto& isi = spec.payload<IsiSpec>();
  isi.reoptimize = true;
  isi.mc_symbols = 60000;   // evaluation MC length per design
  isi.opt_max_evals = 6000; // Nelder-Mead budget per restart
  isi.opt_restarts = 4;
  isi.opt_mc_symbols = 6000;  // MC length inside the sequence objective
  std::cout << "# tune_filters - live re-optimisation of the Fig. 5 "
               "designs (symbolwise / sequence / suboptimal)\n"
            << "# compare the notes against the committed paper filters "
               "before promoting new taps\n\n";
  const RunResult result = engine.run(spec);
  print_result(std::cout, result);
  return result.ok() ? 0 : 1;
}

/// \file wi_loadgen.cpp
/// \brief Load generator / replay harness for the wi_serve daemon.
///
/// Two modes:
///
///   generate: a deterministic mixed request stream — duplicate-heavy
///   by-name scenarios, unique inline specs, and (optionally)
///   deliberately malformed frames — split across N concurrent client
///   connections, optionally in pipelined bursts:
///
///     wi_loadgen --port 7341 --count 1000 --clients 8
///     wi_loadgen --port-file p.txt --duplicate-fraction 0.7 --burst 16
///     wi_loadgen --count 500 --emit-trace trace.ndjson   # write, no send
///
///   replay: a committed trace file, one raw frame per line ('#'
///   comments and blank lines skipped). Each line is classified with
///   the *shared* protocol codec: lines that parse are expected to
///   succeed, lines that do not are expected to be answered with a
///   non-ok status (and the connection must survive them):
///
///     wi_loadgen --port-file p.txt --trace ci/serve_smoke_trace.ndjson
///
/// After the run the tool prints client-side latency percentiles (same
/// log10 histogram grid as the server) and error counts, then applies
/// its gates. Exit 0 = all gates passed; 1 = a gate failed; 2 = usage.
///
/// Gates:
///   --expect-success     fail on any transport error, any well-formed
///                        request answered non-ok (including
///                        backpressure), or any malformed frame
///                        answered ok
///   --min-hit-rate R     fetch server stats and require hit_rate
///                        (hot + inflight + cold over completed run
///                        requests) >= R
///   --shutdown           finish with a shutdown request; fail unless
///                        it is acknowledged ok (clean drain)
///   --expect-terminal    fail unless EVERY frame reached a terminal
///                        classification (success, explicit rejection,
///                        server-enforced deadline, caught malformed
///                        frame, or exhausted-retries transport error)
///                        — the chaos-mode liveness gate: no request
///                        may hang or vanish
///
/// Chaos mode (--chaos, built for a wi_serve running with --chaos-*
/// fault injection): one connection per request, client-side receive
/// timeouts, retries with exponential backoff + deterministic jitter
/// honoring the server's retry_after_ms hints, and a deterministic
/// slice of requests carrying tight deadlines the server may answer
/// with kDeadlineExceeded. Pair with --expect-terminal:
///
///   wi_loadgen --port-file p.txt --chaos --count 400 \
///     --malformed-fraction 0.1 --expect-terminal --shutdown

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "wi/common/fault.hpp"
#include "wi/serve/client.hpp"
#include "wi/serve/metrics.hpp"
#include "wi/sim/scenario_json.hpp"

namespace {

using namespace wi;
using namespace wi::serve;

struct CliOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7341;
  std::optional<std::filesystem::path> port_file;
  std::size_t count = 1000;
  std::size_t clients = 8;
  double duplicate_fraction = 0.6;
  double malformed_fraction = 0.0;
  std::size_t burst = 1;
  std::uint64_t seed = 42;
  std::optional<std::filesystem::path> trace;
  std::optional<std::filesystem::path> emit_trace;
  bool expect_success = false;
  std::optional<double> min_hit_rate;
  bool shutdown = false;
  bool print_stats = false;
  bool quiet = false;

  // Chaos mode.
  bool chaos = false;
  bool expect_terminal = false;
  double deadline_fraction = 0.3;  ///< share of requests with deadlines
  double deadline_ms = 250.0;      ///< deadline scale for that share
  double timeout_ms = 10000.0;     ///< per-attempt receive timeout
  std::size_t retries = 4;         ///< max attempts per request
};

void print_usage(std::ostream& os) {
  os << "usage: wi_loadgen [options]\n"
        "\n"
        "options:\n"
        "  --host HOST              server address (default 127.0.0.1)\n"
        "  --port N                 server port (default 7341)\n"
        "  --port-file PATH         read the port from PATH (wi_serve\n"
        "                           --port-file)\n"
        "  --count N                requests to generate (default 1000)\n"
        "  --clients N              concurrent connections (default 8)\n"
        "  --duplicate-fraction F   share drawn from a small by-name\n"
        "                           pool (default 0.6)\n"
        "  --malformed-fraction F   share of deliberately bad frames\n"
        "                           (default 0)\n"
        "  --burst N                frames pipelined per connection\n"
        "                           before reading responses (default 1)\n"
        "  --seed N                 mix RNG seed (default 42)\n"
        "  --trace PATH             replay PATH instead of generating\n"
        "  --emit-trace PATH        write the generated frames to PATH\n"
        "                           and exit without sending\n"
        "  --expect-success         gate: zero errors of any kind\n"
        "  --min-hit-rate R         gate: server hit_rate >= R\n"
        "  --shutdown               finish with a clean-drain shutdown\n"
        "  --stats                  print the server stats table\n"
        "  --chaos                  chaos mode: one connection per\n"
        "                           request, timeouts, retries with\n"
        "                           backoff+jitter, random deadlines\n"
        "  --expect-terminal        gate: every frame terminally\n"
        "                           resolved (chaos liveness)\n"
        "  --deadline-fraction F    chaos: share of requests with a\n"
        "                           deadline (default 0.3)\n"
        "  --deadline-ms MS         chaos: deadline scale (default 250)\n"
        "  --timeout-ms MS          chaos: per-attempt receive timeout\n"
        "                           (default 10000)\n"
        "  --retries N              chaos: max attempts per request\n"
        "                           (default 4)\n"
        "  --quiet                  only gate results\n"
        "  --help                   this text\n";
}

/// One frame to send plus what the shared codec says about it.
struct TraceItem {
  std::string line;
  bool well_formed = false;
};

/// Deterministic mixed request stream. Malformed frames rotate through
/// a fixed set of protocol violations; duplicates draw from a small
/// pool of cheap registered scenarios; unique requests are inline
/// link_budget_table specs whose name (and so content key) never
/// repeats.
[[nodiscard]] std::vector<TraceItem> generate_mix(const CliOptions& options) {
  static const char* kMalformed[] = {
      "this is not json",
      "{\"type\":\"no_such_type\"}",
      "{\"type\":\"run_scenario\"}",
      "{\"type\":\"run_scenario\",\"scenario\":\"table1_link_budget\","
      "\"bogus_key\":1}",
      "{\"type\":\"run_campaign\",\"scenario\":\"table1_link_budget\","
      "\"seeds\":0}",
      "[1,2,3]",
  };
  static const char* kDuplicatePool[] = {
      "table1_link_budget",
      "fig01_pathloss",
      "fig04_tx_power",
      "board_links_plan",
  };
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<TraceItem> items;
  items.reserve(options.count);
  for (std::size_t i = 0; i < options.count; ++i) {
    const double draw = uniform(rng);
    TraceItem item;
    if (draw < options.malformed_fraction) {
      item.line = kMalformed[i % std::size(kMalformed)];
      item.well_formed = false;
    } else if (draw < options.malformed_fraction +
                          options.duplicate_fraction) {
      Request request;
      request.type = RequestType::kRunScenario;
      request.id = "dup-" + std::to_string(i);
      request.scenario =
          kDuplicatePool[rng() % std::size(kDuplicatePool)];
      item.line = request_to_line(request);
      item.well_formed = true;
    } else {
      Request request;
      request.type = RequestType::kRunScenario;
      request.id = "uniq-" + std::to_string(i);
      sim::ScenarioSpec spec;
      spec.name = "loadgen_unique_" + std::to_string(i);
      spec.workload = "link_budget_table";
      spec.link.ptx_dbm = 5.0 + 0.01 * static_cast<double>(i % 1000);
      request.spec = std::move(spec);
      item.line = request_to_line(request);
      item.well_formed = true;
    }
    items.push_back(std::move(item));
  }
  return items;
}

[[nodiscard]] std::vector<TraceItem> load_trace(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw StatusError(Status(StatusCode::kNotFound,
                             "cannot open trace file " + path.string()));
  }
  std::vector<TraceItem> items;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    TraceItem item;
    item.line = line;
    try {
      (void)request_from_line(line);
      item.well_formed = true;
    } catch (const StatusError&) {
      item.well_formed = false;
    }
    items.push_back(std::move(item));
  }
  return items;
}

/// Shared accounting across client threads.
struct Tally {
  std::mutex mutex;
  RunningStats latency_us;
  Histogram latency = ServerMetrics::make_latency_histogram();
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;              ///< well-formed answered ok
  std::uint64_t rejected = 0;        ///< well-formed answered non-ok
  std::uint64_t backpressure = 0;    ///< of which kUnavailable
  std::uint64_t deadline_exceeded = 0;  ///< server-enforced deadlines
  std::uint64_t malformed_caught = 0;  ///< malformed answered non-ok
  std::uint64_t malformed_missed = 0;  ///< malformed answered ok (bad!)
  std::uint64_t transport_errors = 0;
  std::uint64_t retries = 0;         ///< chaos: extra attempts made
  std::uint64_t tier_hot = 0;
  std::uint64_t tier_inflight = 0;
  std::uint64_t tier_cold = 0;
  std::uint64_t tier_run = 0;
};

void record_response(Tally& tally, const TraceItem& item,
                     const Response& response, double latency_us) {
  std::lock_guard<std::mutex> lock(tally.mutex);
  ++tally.sent;
  tally.latency_us.add(latency_us);
  ServerMetrics::add_latency(tally.latency, latency_us);
  if (item.well_formed) {
    if (response.ok()) {
      ++tally.ok;
    } else if (response.status.code() ==
               StatusCode::kDeadlineExceeded) {
      // A terminal verdict the request asked for, not a failure.
      ++tally.deadline_exceeded;
    } else {
      ++tally.rejected;
      if (response.status.code() == StatusCode::kUnavailable) {
        ++tally.backpressure;
      }
    }
  } else {
    if (response.ok()) {
      ++tally.malformed_missed;
    } else {
      ++tally.malformed_caught;
    }
  }
  if (response.tier == "hot") ++tally.tier_hot;
  if (response.tier == "inflight") ++tally.tier_inflight;
  if (response.tier == "cold") ++tally.tier_cold;
  if (response.tier == "run") ++tally.tier_run;
}

void client_worker(const CliOptions& options,
                   const std::vector<TraceItem>& items, std::size_t client,
                   Tally& tally) {
  Client connection;
  if (Status status = connection.connect(options.host, options.port);
      !status.is_ok()) {
    std::lock_guard<std::mutex> lock(tally.mutex);
    // Every frame this client owned becomes a transport error.
    for (std::size_t i = client; i < items.size();
         i += options.clients) {
      ++tally.sent;
      ++tally.transport_errors;
    }
    return;
  }
  using Clock = std::chrono::steady_clock;
  std::vector<std::size_t> mine;
  for (std::size_t i = client; i < items.size(); i += options.clients) {
    mine.push_back(i);
  }
  const std::size_t burst = options.burst == 0 ? 1 : options.burst;
  for (std::size_t begin = 0; begin < mine.size(); begin += burst) {
    const std::size_t end = std::min(begin + burst, mine.size());
    const auto t0 = Clock::now();
    bool write_failed = false;
    for (std::size_t j = begin; j < end; ++j) {
      if (!connection.send_raw(items[mine[j]].line).is_ok()) {
        write_failed = true;
        break;
      }
    }
    for (std::size_t j = begin; j < end; ++j) {
      if (write_failed) {
        std::lock_guard<std::mutex> lock(tally.mutex);
        ++tally.sent;
        ++tally.transport_errors;
        continue;
      }
      try {
        const Response response = connection.receive();
        const double latency_us =
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count();
        record_response(tally, items[mine[j]], response, latency_us);
      } catch (const StatusError&) {
        std::lock_guard<std::mutex> lock(tally.mutex);
        ++tally.sent;
        ++tally.transport_errors;
        write_failed = true;  // connection is gone; drain the rest
      }
    }
    if (write_failed) break;
  }
  connection.close();
}

/// Chaos-mode client: one connection per request, receive timeouts,
/// retries with backoff/jitter, and a deterministic slice of requests
/// carrying tight deadlines. Every frame ends in exactly one terminal
/// bucket — ok, rejected, deadline_exceeded, malformed_caught/missed,
/// or transport_errors — which is what --expect-terminal audits.
void chaos_worker(const CliOptions& options,
                  const std::vector<TraceItem>& items, std::size_t client,
                  Tally& tally) {
  using Clock = std::chrono::steady_clock;
  for (std::size_t i = client; i < items.size(); i += options.clients) {
    const TraceItem& item = items[i];
    const auto t0 = Clock::now();
    const auto latency_us = [&] {
      return std::chrono::duration<double, std::micro>(Clock::now() -
                                                       t0)
          .count();
    };
    if (!item.well_formed) {
      // Malformed frames ride a throwaway connection, no retries: the
      // server must answer them non-ok and survive.
      try {
        Client connection;
        if (Status status =
                connection.connect(options.host, options.port);
            !status.is_ok()) {
          throw StatusError(status);
        }
        if (Status status = connection.set_timeout(options.timeout_ms);
            !status.is_ok()) {
          throw StatusError(status);
        }
        const Response response = connection.call_raw(item.line);
        connection.close();
        record_response(tally, item, response, latency_us());
      } catch (const StatusError&) {
        std::lock_guard<std::mutex> lock(tally.mutex);
        ++tally.sent;
        ++tally.transport_errors;
      }
      continue;
    }
    Request request;
    try {
      request = request_from_line(item.line);
    } catch (const StatusError&) {
      // load_trace/generate_mix said well-formed; disagreeing here
      // would be a codec bug — classify terminally anyway.
      std::lock_guard<std::mutex> lock(tally.mutex);
      ++tally.sent;
      ++tally.transport_errors;
      continue;
    }
    // Deterministic chaos shaping: request i either runs unbounded or
    // carries a deadline in [0.25, 1) * deadline_ms — tight enough
    // that a queue behind injected stalls will expire some of them.
    const std::uint64_t shape =
        fault::derive(options.seed, fault::Stream::kChaosShape, i);
    if ((request.type == RequestType::kRunScenario ||
         request.type == RequestType::kRunCampaign) &&
        fault::unit_interval(shape) < options.deadline_fraction) {
      request.deadline_ms =
          options.deadline_ms *
          (0.25 + 0.75 * fault::unit_interval(fault::splitmix64(shape)));
    }
    RetryOptions retry;
    retry.max_attempts = options.retries == 0 ? 1 : options.retries;
    retry.initial_backoff_ms = 5.0;
    retry.timeout_ms = options.timeout_ms;
    retry.seed = options.seed;
    RetryStats attempts;
    try {
      const Response response = call_with_retry(
          options.host, options.port, request, retry, &attempts);
      record_response(tally, item, response, latency_us());
      std::lock_guard<std::mutex> lock(tally.mutex);
      tally.retries += attempts.attempts - 1;
    } catch (const StatusError&) {
      // Retries exhausted (or a non-retryable transport error): the
      // terminal classification is "transport error", never a hang.
      std::lock_guard<std::mutex> lock(tally.mutex);
      ++tally.sent;
      ++tally.transport_errors;
      tally.retries += attempts.attempts - 1;
    }
  }
}

[[nodiscard]] bool parse_size(const std::string& text, std::size_t& out) {
  try {
    out = static_cast<std::size_t>(std::stoull(text));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

[[nodiscard]] bool parse_double(const std::string& text, double& out) {
  try {
    out = std::stod(text);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

[[nodiscard]] int parse_cli(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return -1;
    }
    if (arg == "--expect-success") {
      options.expect_success = true;
      continue;
    }
    if (arg == "--chaos") {
      options.chaos = true;
      continue;
    }
    if (arg == "--expect-terminal") {
      options.expect_terminal = true;
      continue;
    }
    if (arg == "--shutdown") {
      options.shutdown = true;
      continue;
    }
    if (arg == "--stats") {
      options.print_stats = true;
      continue;
    }
    if (arg == "--quiet") {
      options.quiet = true;
      continue;
    }
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      options.host = value;
    } else if (arg == "--port" && (value = next())) {
      std::size_t port = 0;
      if (!parse_size(value, port) || port > 65535) return 2;
      options.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--port-file" && (value = next())) {
      options.port_file = value;
    } else if (arg == "--count" && (value = next())) {
      if (!parse_size(value, options.count)) return 2;
    } else if (arg == "--clients" && (value = next())) {
      if (!parse_size(value, options.clients) || options.clients == 0) {
        return 2;
      }
    } else if (arg == "--duplicate-fraction" && (value = next())) {
      if (!parse_double(value, options.duplicate_fraction)) return 2;
    } else if (arg == "--malformed-fraction" && (value = next())) {
      if (!parse_double(value, options.malformed_fraction)) return 2;
    } else if (arg == "--burst" && (value = next())) {
      if (!parse_size(value, options.burst)) return 2;
    } else if (arg == "--seed" && (value = next())) {
      std::size_t seed = 0;
      if (!parse_size(value, seed)) return 2;
      options.seed = seed;
    } else if (arg == "--trace" && (value = next())) {
      options.trace = value;
    } else if (arg == "--emit-trace" && (value = next())) {
      options.emit_trace = value;
    } else if (arg == "--min-hit-rate" && (value = next())) {
      double rate = 0.0;
      if (!parse_double(value, rate)) return 2;
      options.min_hit_rate = rate;
    } else if (arg == "--deadline-fraction" && (value = next())) {
      if (!parse_double(value, options.deadline_fraction)) return 2;
    } else if (arg == "--deadline-ms" && (value = next())) {
      if (!parse_double(value, options.deadline_ms)) return 2;
    } else if (arg == "--timeout-ms" && (value = next())) {
      if (!parse_double(value, options.timeout_ms)) return 2;
    } else if (arg == "--retries" && (value = next())) {
      if (!parse_size(value, options.retries)) return 2;
    } else {
      std::cerr << "wi_loadgen: unknown or incomplete option '" << arg
                << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (const int rc = parse_cli(argc, argv, options); rc != 0) {
    return rc < 0 ? 0 : rc;
  }
  try {
    if (options.port_file) {
      std::ifstream in(*options.port_file);
      std::size_t port = 0;
      if (!(in >> port) || port == 0 || port > 65535) {
        std::cerr << "wi_loadgen: cannot read a port from "
                  << *options.port_file << "\n";
        return 2;
      }
      options.port = static_cast<std::uint16_t>(port);
    }

    const std::vector<TraceItem> items =
        options.trace ? load_trace(*options.trace)
                      : generate_mix(options);
    if (options.emit_trace) {
      std::ofstream out(*options.emit_trace, std::ios::trunc);
      out << "# wi_loadgen trace: " << items.size()
          << " frames (one request per line; lines that do not parse "
             "are deliberate)\n";
      for (const TraceItem& item : items) out << item.line << "\n";
      if (!out) {
        std::cerr << "wi_loadgen: cannot write trace to "
                  << *options.emit_trace << "\n";
        return 1;
      }
      std::cout << "wi_loadgen: wrote " << items.size() << " frames to "
                << options.emit_trace->string() << "\n";
      return 0;
    }

    Tally tally;
    {
      std::vector<std::thread> threads;
      threads.reserve(options.clients);
      for (std::size_t c = 0; c < options.clients; ++c) {
        threads.emplace_back(options.chaos ? chaos_worker
                                           : client_worker,
                             std::cref(options), std::cref(items), c,
                             std::ref(tally));
      }
      for (std::thread& thread : threads) thread.join();
    }

    // Client-side report.
    const std::uint64_t well_formed_expected =
        static_cast<std::uint64_t>(std::count_if(
            items.begin(), items.end(),
            [](const TraceItem& item) { return item.well_formed; }));
    if (!options.quiet) {
      Table report({"metric", "value"});
      const auto row = [&](const std::string& name, double v,
                           int decimals = 0) {
        report.add_row({name, Table::num(v, decimals)});
      };
      row("frames", static_cast<double>(items.size()));
      row("sent", static_cast<double>(tally.sent));
      row("ok", static_cast<double>(tally.ok));
      row("rejected", static_cast<double>(tally.rejected));
      row("backpressure", static_cast<double>(tally.backpressure));
      row("deadline_exceeded",
          static_cast<double>(tally.deadline_exceeded));
      row("malformed_caught",
          static_cast<double>(tally.malformed_caught));
      row("malformed_missed",
          static_cast<double>(tally.malformed_missed));
      row("transport_errors",
          static_cast<double>(tally.transport_errors));
      row("retries", static_cast<double>(tally.retries));
      row("tier_hot", static_cast<double>(tally.tier_hot));
      row("tier_inflight", static_cast<double>(tally.tier_inflight));
      row("tier_cold", static_cast<double>(tally.tier_cold));
      row("tier_run", static_cast<double>(tally.tier_run));
      row("latency_us_mean", tally.latency_us.count() > 0
                                 ? tally.latency_us.mean()
                                 : 0.0,
          1);
      row("latency_us_p50",
          ServerMetrics::latency_quantile_us(tally.latency, 0.50), 1);
      row("latency_us_p90",
          ServerMetrics::latency_quantile_us(tally.latency, 0.90), 1);
      row("latency_us_p99",
          ServerMetrics::latency_quantile_us(tally.latency, 0.99), 1);
      std::cout << "client-side results (" << options.clients
                << " clients):\n";
      report.print(std::cout);
    }

    bool failed = false;
    const auto gate = [&](bool ok, const std::string& what) {
      if (ok) {
        if (!options.quiet) std::cout << "gate ok: " << what << "\n";
      } else {
        std::cout << "GATE FAILED: " << what << "\n";
        failed = true;
      }
    };

    if (options.expect_success) {
      gate(tally.transport_errors == 0, "no transport errors (" +
                                            std::to_string(
                                                tally.transport_errors) +
                                            ")");
      gate(tally.ok == well_formed_expected,
           "every well-formed request succeeded (" +
               std::to_string(tally.ok) + "/" +
               std::to_string(well_formed_expected) + ")");
      gate(tally.malformed_missed == 0,
           "no malformed frame was accepted");
    }

    if (options.expect_terminal) {
      // The liveness audit: nothing hung (all worker threads joined,
      // so reaching here already rules out a wedge) and nothing
      // vanished — every frame landed in exactly one terminal bucket.
      const std::uint64_t terminal =
          tally.ok + tally.rejected + tally.deadline_exceeded +
          tally.malformed_caught + tally.malformed_missed +
          tally.transport_errors;
      gate(tally.sent == items.size(),
           "every frame was attempted (" + std::to_string(tally.sent) +
               "/" + std::to_string(items.size()) + ")");
      gate(terminal == tally.sent,
           "every request terminally resolved (" +
               std::to_string(terminal) + "/" +
               std::to_string(tally.sent) + ")");
      gate(tally.ok > 0,
           "some requests still succeeded under chaos (" +
               std::to_string(tally.ok) + ")");
    }

    // Control-plane requests in chaos mode go through the retry layer
    // too: an injected connection drop must not fail the harness.
    RetryOptions control_retry;
    control_retry.max_attempts = options.chaos ? 8 : 1;
    control_retry.timeout_ms = options.chaos ? options.timeout_ms : 0.0;
    control_retry.seed = options.seed;

    if (options.min_hit_rate || options.print_stats) {
      Request stats;
      stats.type = RequestType::kStats;
      stats.id = "loadgen-stats";
      const Response response = call_with_retry(
          options.host, options.port, stats, control_retry);
      if (!response.ok() || !response.result.has_value()) {
        gate(false, "stats request answered ok");
      } else {
        if (options.print_stats) {
          std::cout << "\nserver stats:\n";
          response.result->table.print(std::cout);
        }
        if (options.min_hit_rate) {
          const double hit_rate =
              metrics_table_value(response.result->table, "hit_rate");
          std::ostringstream label;
          label << "server hit_rate " << hit_rate
                << " >= " << *options.min_hit_rate;
          gate(hit_rate >= *options.min_hit_rate, label.str());
        }
      }
    }

    if (options.shutdown) {
      Request request;
      request.type = RequestType::kShutdown;
      request.id = "loadgen-shutdown";
      const Response response = call_with_retry(
          options.host, options.port, request, control_retry);
      gate(response.ok() && response.status.message() == "drained",
           "shutdown acknowledged with a clean drain");
    }

    return failed ? 1 : 0;
  } catch (const StatusError& error) {
    std::cerr << "wi_loadgen: " << error.status().to_string() << "\n";
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "wi_loadgen: " << error.what() << "\n";
    return 1;
  }
}

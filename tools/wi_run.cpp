/// \file wi_run.cpp
/// \brief Data-driven scenario runner: run any registered paper
///        scenario by name, serialize the results, cache them in the
///        persistent ResultStore and diff them against golden
///        references — the one driver behind `results/golden/` and the
///        reproduce-paper CI gate.
///
///   wi_run --list                         # registry + workload kinds
///   wi_run fig08a_mesh2d_8x8              # run one scenario, print it
///   wi_run --all --out results/current    # regenerate every artifact
///   wi_run fig01_pathloss --check results/golden   # tolerance diff
///   wi_run --spec my_scenario.json        # run a JSON spec file
///
/// Campaign mode (--seeds N): each selected scenario becomes a
/// multi-seed Monte-Carlo campaign — N seed replicas derived
/// SplitMix64-style from --base-seed, cached per seed in the result
/// store (default results/store, so re-running is a full cache hit and
/// interrupted campaigns resume per seed), reduced to a statistical
/// aggregate table:
///
///   wi_run campaign_info_rates --seeds 8              # run + print
///   wi_run campaign_info_rates --seeds 8 --campaign-out DIR   # goldens
///   wi_run campaign_info_rates --seeds 8 --check-ci DIR  # golden gate
///   wi_run --campaign my_campaign.json    # run a CampaignSpec file
///
/// Distributed campaigns: N worker processes (or machines sharing a
/// store directory) each run one shard of the seed schedule, and an
/// aggregator merges whatever per-seed results exist — incrementally,
/// while seeds are still streaming in — into the same aggregate the
/// single-process run produces, bit-for-bit once all seeds landed:
///
///   wi_run campaign_info_rates --seeds 64 --shard 0/4 --store DIR  # worker
///   wi_run campaign_info_rates --seeds 64 --merge DIR              # merge
///   wi_run campaign_info_rates --seeds 64 --merge DIR --allow-partial
///
/// All workers and the aggregator must run the same build: store keys
/// include the code version, so a mixed fleet simply misses.
///
/// Exit codes: 0 ok, 1 scenario failure, golden mismatch or an
/// incomplete --merge without --allow-partial, 2 usage (including
/// unknown scenario/workload names, which print a nearest-match
/// suggestion plus the full known-name list).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "wi/common/table_io.hpp"
#include "wi/sim/sim.hpp"

// Build-time generated (cmake/GenerateVersionHeader.cmake): refreshed
// on every build so result-store keys track the exact code state.
#if __has_include("wi_version.h")
#include "wi_version.h"
#else
#define WI_GIT_DESCRIBE "unversioned"
#endif

namespace {

using namespace wi;
using namespace wi::sim;

struct CliOptions {
  std::vector<std::string> scenarios;
  std::vector<std::filesystem::path> spec_files;
  std::vector<std::filesystem::path> campaign_files;
  bool list = false;
  bool all = false;
  bool dump_spec = false;
  bool quiet = false;
  bool no_store = false;
  std::size_t threads = 0;
  std::size_t seeds = 0;  ///< > 0 switches to campaign mode
  std::uint64_t base_seed = 1;
  std::optional<std::filesystem::path> out_dir;
  std::optional<std::filesystem::path> store_dir;
  std::optional<std::filesystem::path> check_path;
  std::optional<std::filesystem::path> campaign_out_dir;
  std::optional<std::filesystem::path> check_ci_path;
  std::optional<CampaignShard> shard;
  std::optional<std::filesystem::path> merge_dir;
  bool allow_partial = false;
  CompareOptions compare;
  CiCheckOptions ci;
};

void print_usage(std::ostream& os) {
  os << "usage: wi_run [<scenario>...] [options]\n"
        "\n"
        "options:\n"
        "  --list             list scenarios + workload kinds and exit\n"
        "  --all              run every registered scenario\n"
        "  --spec FILE        run a ScenarioSpec JSON file (repeatable)\n"
        "  --dump-spec        print scenario JSON specs instead of running\n"
        "  --threads N        worker threads (0 = hardware concurrency)\n"
        "  --out DIR          write <scenario>.csv + <scenario>.json there\n"
        "  --store DIR        persistent result cache (content-keyed by\n"
        "                     spec hash + version '" WI_GIT_DESCRIBE "')\n"
        "  --check PATH       diff each result against golden CSV: PATH\n"
        "                     is a directory with <scenario>.csv files,\n"
        "                     or one CSV file for a single scenario\n"
        "  --rel-tol X        cell tolerance, relative (default 1e-9)\n"
        "  --abs-tol X        cell tolerance, absolute (default 1e-12)\n"
        "  --quiet            suppress result tables (status lines only)\n"
        "\n"
        "campaign mode:\n"
        "  --seeds N          run each scenario as an N-seed campaign\n"
        "  --base-seed S      root of the SplitMix64 seed derivation\n"
        "                     (default 1; replica k gets a seed that\n"
        "                     depends only on S and k)\n"
        "  --campaign FILE    run a CampaignSpec JSON file (repeatable)\n"
        "  --campaign-out DIR write <name>.csv (aggregate) + <name>.json\n"
        "  --check-ci PATH    statistical golden check: PATH is a\n"
        "                     directory with <name>.csv aggregates, or\n"
        "                     one CSV file; fails when a golden mean\n"
        "                     falls outside the regenerated 95% CI\n"
        "  --ci-slack X       CI half-width multiplier (default 1)\n"
        "  --no-store         disable the default campaign result store\n"
        "                     (campaigns otherwise cache per-seed\n"
        "                     results in results/store)\n"
        "\n"
        "distributed campaigns (shard workers + aggregator):\n"
        "  --shard I/N        run only the seed indices congruent to I\n"
        "                     mod N (I in 0..N-1); seed values are\n"
        "                     shard-invariant, so N workers sharing one\n"
        "                     --store directory cover the seed set\n"
        "                     exactly once\n"
        "  --merge DIR        do not run anything: fold the per-seed\n"
        "                     results present in store DIR into the\n"
        "                     campaign aggregate (bit-identical to the\n"
        "                     single-process run once complete) and\n"
        "                     flag missing seed indices\n"
        "  --allow-partial    exit 0 from --merge even when seeds are\n"
        "                     still missing (partial CI95 reporting\n"
        "                     while workers stream seeds in)\n";
}

[[nodiscard]] bool parse_count(const std::string& text,
                               const std::string& flag, std::size_t& out) {
  try {
    std::size_t consumed = 0;
    const unsigned long parsed = std::stoul(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    out = static_cast<std::size_t>(parsed);
    return true;
  } catch (const std::exception&) {
    std::cerr << "wi_run: " << flag << " expects a non-negative integer, "
              << "got '" << text << "'\n";
    return false;
  }
}

[[nodiscard]] bool parse_tolerance(const std::string& text,
                                   const std::string& flag, double& out) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    out = parsed;
    return true;
  } catch (const std::exception&) {
    std::cerr << "wi_run: " << flag << " expects a number, got '" << text
              << "'\n";
    return false;
  }
}

/// "I/N" with I in [0, N): the shard syntax of --shard.
[[nodiscard]] bool parse_shard(const std::string& text,
                               CampaignShard& out) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= text.size()) {
    std::cerr << "wi_run: --shard expects I/N (e.g. 0/4), got '" << text
              << "'\n";
    return false;
  }
  CampaignShard shard;
  if (!parse_count(text.substr(0, slash), "--shard index", shard.index) ||
      !parse_count(text.substr(slash + 1), "--shard count", shard.count)) {
    return false;
  }
  const wi::Status status = shard.validate();
  if (!status.is_ok()) {
    std::cerr << "wi_run: --shard " << text << ": " << status.message()
              << "\n";
    return false;
  }
  out = shard;
  return true;
}

[[nodiscard]] std::optional<CliOptions> parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "wi_run: " << arg << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--all") {
      options.all = true;
    } else if (arg == "--dump-spec") {
      options.dump_spec = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--spec") {
      const auto v = value();
      if (!v) return std::nullopt;
      options.spec_files.emplace_back(*v);
    } else if (arg == "--threads") {
      const auto v = value();
      if (!v) return std::nullopt;
      if (!parse_count(*v, arg, options.threads)) return std::nullopt;
    } else if (arg == "--seeds") {
      const auto v = value();
      if (!v) return std::nullopt;
      if (!parse_count(*v, arg, options.seeds)) return std::nullopt;
    } else if (arg == "--base-seed") {
      const auto v = value();
      if (!v) return std::nullopt;
      std::size_t parsed = 0;
      if (!parse_count(*v, arg, parsed)) return std::nullopt;
      options.base_seed = parsed;
    } else if (arg == "--campaign") {
      const auto v = value();
      if (!v) return std::nullopt;
      options.campaign_files.emplace_back(*v);
    } else if (arg == "--campaign-out") {
      const auto v = value();
      if (!v) return std::nullopt;
      options.campaign_out_dir = *v;
    } else if (arg == "--check-ci") {
      const auto v = value();
      if (!v) return std::nullopt;
      options.check_ci_path = *v;
    } else if (arg == "--ci-slack") {
      const auto v = value();
      if (!v) return std::nullopt;
      if (!parse_tolerance(*v, arg, options.ci.slack)) return std::nullopt;
    } else if (arg == "--no-store") {
      options.no_store = true;
    } else if (arg == "--shard") {
      const auto v = value();
      if (!v) return std::nullopt;
      CampaignShard shard;
      if (!parse_shard(*v, shard)) return std::nullopt;
      options.shard = shard;
    } else if (arg == "--merge") {
      const auto v = value();
      if (!v) return std::nullopt;
      options.merge_dir = *v;
    } else if (arg == "--allow-partial") {
      options.allow_partial = true;
    } else if (arg == "--out") {
      const auto v = value();
      if (!v) return std::nullopt;
      options.out_dir = *v;
    } else if (arg == "--store") {
      const auto v = value();
      if (!v) return std::nullopt;
      options.store_dir = *v;
    } else if (arg == "--check") {
      const auto v = value();
      if (!v) return std::nullopt;
      options.check_path = *v;
    } else if (arg == "--rel-tol") {
      const auto v = value();
      if (!v) return std::nullopt;
      if (!parse_tolerance(*v, arg, options.compare.rel_tol)) {
        return std::nullopt;
      }
    } else if (arg == "--abs-tol") {
      const auto v = value();
      if (!v) return std::nullopt;
      if (!parse_tolerance(*v, arg, options.compare.abs_tol)) {
        return std::nullopt;
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "wi_run: unknown option '" << arg << "'\n";
      return std::nullopt;
    } else {
      options.scenarios.push_back(arg);
    }
  }
  return options;
}

/// Scenario names are filesystem-safe except for sweep-expanded grid
/// points ("base/axis=value"); flatten separators for artifact names.
[[nodiscard]] std::string artifact_stem(const std::string& scenario) {
  std::string stem = scenario;
  for (char& c : stem) {
    if (c == '/' || c == ';' || c == '=' || c == ' ') c = '_';
  }
  return stem;
}

void write_artifacts(const std::filesystem::path& dir,
                     const RunResult& result) {
  std::filesystem::create_directories(dir);
  const std::string stem = artifact_stem(result.scenario);
  {
    std::ofstream csv(dir / (stem + ".csv"), std::ios::trunc);
    write_csv(csv, result.table);
  }
  {
    std::ofstream json(dir / (stem + ".json"), std::ios::trunc);
    json << run_result_to_json(result).dump(2) << "\n";
  }
}

/// Returns true when the result matches its golden reference.
[[nodiscard]] bool check_result(const std::filesystem::path& check_path,
                                const RunResult& result,
                                const CompareOptions& compare) {
  std::filesystem::path golden_file = check_path;
  if (std::filesystem::is_directory(check_path)) {
    golden_file = check_path / (artifact_stem(result.scenario) + ".csv");
  }
  std::ifstream in(golden_file);
  if (!in) {
    std::cerr << "wi_run: no golden file '" << golden_file.string()
              << "' for scenario '" << result.scenario << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Table golden = table_from_csv(buffer.str());
  const TableDiff diff = compare_tables(result.table, golden, compare);
  if (diff.match) {
    std::cout << "check " << result.scenario << ": OK ("
              << golden.rows() << " rows vs '" << golden_file.string()
              << "')\n";
    return true;
  }
  std::cerr << "check " << result.scenario << ": MISMATCH vs '"
            << golden_file.string() << "'\n"
            << format_diff(diff, golden) << "\n";
  return false;
}

[[nodiscard]] std::string slurp(const std::filesystem::path& path,
                                const char* what) {
  std::ifstream in(path);
  if (!in) {
    throw StatusError(Status(StatusCode::kNotFound,
                             std::string("cannot open ") + what + " '" +
                                 path.string() + "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

[[nodiscard]] ScenarioSpec load_spec_file(const std::filesystem::path& path) {
  return scenario_from_string(slurp(path, "spec file"));
}

void write_campaign_artifacts(const std::filesystem::path& dir,
                              const CampaignResult& result) {
  std::filesystem::create_directories(dir);
  const std::string stem = artifact_stem(result.campaign);
  {
    std::ofstream csv(dir / (stem + ".csv"), std::ios::trunc);
    write_csv(csv, result.aggregate);
  }
  {
    std::ofstream json(dir / (stem + ".json"), std::ios::trunc);
    json << campaign_result_to_json(result).dump(2) << "\n";
  }
}

/// Returns true when the regenerated aggregate statistically matches
/// its golden reference (every golden mean inside the regenerated CI).
[[nodiscard]] bool check_campaign(const std::filesystem::path& check_path,
                                  const CampaignResult& result,
                                  const CiCheckOptions& options) {
  std::filesystem::path golden_file = check_path;
  if (std::filesystem::is_directory(check_path)) {
    golden_file = check_path / (artifact_stem(result.campaign) + ".csv");
  }
  std::ifstream in(golden_file);
  if (!in) {
    std::cerr << "wi_run: no campaign golden '" << golden_file.string()
              << "' for campaign '" << result.campaign << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Table golden = table_from_csv(buffer.str());
  const Status status =
      check_campaign_ci(result.aggregate, golden, options);
  if (status.is_ok()) {
    std::cout << "check-ci " << result.campaign << ": OK ("
              << golden.rows() << " aggregate cells vs '"
              << golden_file.string() << "')\n";
    return true;
  }
  std::cerr << "check-ci " << result.campaign << ": MISMATCH vs '"
            << golden_file.string() << "'\n"
            << status.to_string() << "\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse_cli(argc, argv);
  if (!parsed) {
    print_usage(std::cerr);
    return 2;
  }
  const CliOptions& options = *parsed;
  const ScenarioRegistry& registry = ScenarioRegistry::paper();

  if (options.list) {
    // Sorted, with the workload kind next to each scenario; the open
    // workload registry is listed below the scenarios.
    std::vector<std::string> names = registry.names();
    std::sort(names.begin(), names.end());
    std::size_t width = 0;
    for (const auto& name : names) width = std::max(width, name.size());
    std::cout << "registered scenarios (" << registry.size() << "):\n";
    for (const auto& name : names) {
      const ScenarioSpec& spec = registry.get(name);
      std::cout << "  " << name
                << std::string(width - name.size() + 2, ' ') << "["
                << spec.workload << "]\n      " << spec.description << "\n";
    }
    const WorkloadRegistry& workloads = WorkloadRegistry::global();
    std::cout << "\nregistered workload kinds (" << workloads.size()
              << "):\n";
    for (const auto& name : workloads.names()) {
      std::cout << "  " << name;
      const std::string description = workloads.get(name).description();
      if (!description.empty()) std::cout << "\n      " << description;
      std::cout << "\n";
    }
    return 0;
  }

  std::vector<ScenarioSpec> specs;
  std::vector<CampaignSpec> campaigns;
  try {
    if (options.all) {
      for (const auto& name : registry.names()) {
        specs.push_back(registry.get(name));
      }
    }
    for (const auto& name : options.scenarios) {
      if (!registry.contains(name)) {
        // Unknown names are usage errors (exit 2), kept distinct from
        // run failures / golden drift (exit 1): print the nearest
        // match and the full known-name list.
        std::cerr << "wi_run: unknown scenario '" << name << "'";
        const std::string suggestion = closest_name(name, registry.names());
        if (!suggestion.empty()) {
          std::cerr << " (did you mean '" << suggestion << "'?)";
        }
        std::cerr << "\nknown scenarios:\n";
        std::vector<std::string> names = registry.names();
        std::sort(names.begin(), names.end());
        for (const auto& known : names) std::cerr << "  " << known << "\n";
        return 2;
      }
      specs.push_back(registry.get(name));
    }
    for (const auto& path : options.spec_files) {
      specs.push_back(load_spec_file(path));
    }
    for (const auto& path : options.campaign_files) {
      campaigns.push_back(
          campaign_from_string(slurp(path, "campaign file")));
    }
    if (options.seeds > 0) {
      // Campaign mode: every selected scenario becomes one campaign, so
      // the single-run golden flags would be silently dead — reject
      // them instead of letting a --check gate pass vacuously.
      if (options.out_dir || options.check_path) {
        std::cerr << "wi_run: --seeds runs campaigns; use --campaign-out"
                     " / --check-ci instead of --out / --check\n";
        return 2;
      }
      for (auto& spec : specs) {
        CampaignSpec campaign;
        campaign.seeds = options.seeds;
        campaign.base_seed = options.base_seed;
        campaign.scenario = std::move(spec);
        campaigns.push_back(std::move(campaign));
      }
      specs.clear();
    }
  } catch (const StatusError& e) {
    std::cerr << "wi_run: " << e.status().to_string() << "\n";
    return 2;
  }
  if (specs.empty() && campaigns.empty()) {
    std::cerr << "wi_run: nothing to run (name scenarios, --all, --spec "
                 "or --campaign; --list shows the registry)\n";
    print_usage(std::cerr);
    return 2;
  }
  if (options.shard || options.merge_dir) {
    // Worker/aggregator modes are campaign-only, and their flag
    // combinations are checked up front so a misconfigured fleet
    // fails at launch (exit 2), not after hours of simulation.
    if (options.shard && options.merge_dir) {
      std::cerr << "wi_run: --shard runs a worker, --merge runs the "
                   "aggregator; pick one\n";
      return 2;
    }
    if (campaigns.empty() || !specs.empty()) {
      std::cerr << "wi_run: --shard/--merge apply to campaigns only "
                   "(--seeds N or --campaign FILE)\n";
      return 2;
    }
    if (options.shard && options.no_store) {
      std::cerr << "wi_run: a shard worker's output *is* the store; "
                   "--shard cannot be combined with --no-store\n";
      return 2;
    }
    if (options.shard && (options.campaign_out_dir || options.check_ci_path)) {
      std::cerr << "wi_run: a shard aggregate covers only its own seeds; "
                   "write artifacts / check goldens from --merge instead\n";
      return 2;
    }
    if (options.merge_dir && (options.store_dir || options.no_store)) {
      std::cerr << "wi_run: --merge reads the store given as its "
                   "argument; --store/--no-store do not apply\n";
      return 2;
    }
  }
  if (options.allow_partial && !options.merge_dir) {
    std::cerr << "wi_run: --allow-partial only applies to --merge\n";
    return 2;
  }

  if (options.dump_spec) {
    for (const auto& spec : specs) {
      std::cout << scenario_to_json(spec).dump(2) << "\n";
    }
    for (const auto& campaign : campaigns) {
      std::cout << campaign_to_json(campaign).dump(2) << "\n";
    }
    return 0;
  }

  // Per-scenario failures are reported as statuses; this guard is for
  // environment failures (unwritable --out/--store, disk full, ...).
  try {
    SimEngine engine({options.threads});
    std::optional<ResultStore> store;
    if (options.merge_dir) {
      // The aggregator's store is the shared worker directory; keys
      // carry the same version string the workers wrote with.
      store.emplace(ResultStoreOptions{*options.merge_dir, WI_GIT_DESCRIBE});
    } else if (options.store_dir) {
      store.emplace(ResultStoreOptions{*options.store_dir, WI_GIT_DESCRIBE});
    } else if (!campaigns.empty() && !options.no_store) {
      // Per-seed persistence is the campaign layer's core contract:
      // interrupted campaigns resume per seed and a repeated campaign
      // is a full cache hit. --no-store opts out.
      store.emplace(
          ResultStoreOptions{"results/store", WI_GIT_DESCRIBE});
    }

    const std::vector<RunResult> results =
        store ? store->run_all(engine, specs, options.threads)
              : engine.run_all(specs, options.threads);

    int failures = 0;
    for (const RunResult& result : results) {
      if (options.quiet) {
        std::cout << result.scenario << ": " << result.status.to_string()
                  << " (" << result.table.rows() << " rows)\n";
      } else {
        print_result(std::cout, result);
        std::cout << "\n";
      }
      if (!result.ok()) {
        ++failures;
        continue;  // no artifacts/checks for failed runs
      }
      if (options.out_dir) write_artifacts(*options.out_dir, result);
      if (options.check_path &&
          !check_result(*options.check_path, result, options.compare)) {
        ++failures;
      }
    }

    std::size_t total = results.size();
    for (const CampaignSpec& spec : campaigns) {
      const Campaign campaign(spec);
      const CampaignResult result =
          options.merge_dir
              ? merge_campaign_results(spec, *store)
              : campaign.run(engine, store ? &*store : nullptr,
                             options.threads,
                             options.shard.value_or(CampaignShard{}));
      ++total;
      if (options.quiet) {
        std::cout << result.campaign << ": " << result.status.to_string()
                  << " (" << result.seeds << " seeds, "
                  << result.aggregate.rows() << " aggregate cells)\n";
      } else {
        print_campaign(std::cout, result);
        std::cout << "\n";
      }
      if (!result.ok()) {
        ++failures;
        continue;  // no artifacts/checks for failed campaigns
      }
      if (!result.complete() && !options.allow_partial) {
        // A merge with holes is a worker-fleet problem, not a golden
        // drift: report it loudly (exit 1) unless the caller asked to
        // peek at partial statistics. The partial aggregate was still
        // printed above.
        std::cerr << "wi_run: campaign '" << result.campaign << "': "
                  << result.missing_seeds.size() << " of " << result.seeds
                  << " seeds missing from the store (workers still "
                     "running? pass --allow-partial to accept)\n";
        ++failures;
        continue;
      }
      if (options.campaign_out_dir) {
        write_campaign_artifacts(*options.campaign_out_dir, result);
      }
      if (options.check_ci_path &&
          !check_campaign(*options.check_ci_path, result, options.ci)) {
        ++failures;
      }
    }

    if (store) {
      std::cout << "result store: " << store->hits() << " hits / "
                << store->misses() << " misses (version " << WI_GIT_DESCRIBE
                << ")\n";
    }
    if (failures > 0) {
      std::cerr << "wi_run: " << failures << " of " << total
                << " runs failed\n";
      return 1;
    }
    return 0;
  } catch (const StatusError& e) {
    std::cerr << "wi_run: " << e.status().to_string() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "wi_run: " << e.what() << "\n";
    return 1;
  }
}

#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Walks the markdown files the docs-check CI step cares about
(README.md, docs/*.md, results/README.md by default, or any paths
passed as arguments), extracts inline links and images, and verifies
that every *relative* target exists on disk. External links (http/
https/mailto) and pure in-page anchors are ignored; a `path#anchor`
link is checked for the path part only — anchor validity would require
a markdown renderer, and the failure mode the gate exists for is files
moving or being renamed.

Exit 0 when every link resolves, 1 with a per-link report otherwise.
"""

import argparse
import glob
import re
import sys
from pathlib import Path

# Inline markdown links/images: [text](target) / ![alt](target).
# Reference-style definitions: [label]: target
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_links(text):
    in_code = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in _INLINE.finditer(line):
            yield match.group(1)
        for match in _REFDEF.finditer(line):
            yield match.group(1)


def check_file(md_path, repo_root):
    dead = []
    text = md_path.read_text(encoding="utf-8")
    for target in iter_links(text):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        if path_part.startswith("/"):
            resolved = repo_root / path_part.lstrip("/")
        else:
            resolved = md_path.parent / path_part
        if not resolved.exists():
            dead.append((target, resolved))
    return dead


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files", nargs="*",
        help="markdown files to check (default: README.md docs/*.md "
             "results/README.md)")
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    if args.files:
        files = [Path(f) for f in args.files]
    else:
        files = [repo_root / "README.md", repo_root / "results/README.md"]
        files += sorted(Path(p) for p in glob.glob(str(repo_root / "docs/*.md")))

    missing_inputs = [f for f in files if not f.is_file()]
    if missing_inputs:
        for f in missing_inputs:
            print(f"docs-check: input file not found: {f}", file=sys.stderr)
        return 1

    failures = 0
    checked = 0
    for md in files:
        dead = check_file(md, repo_root)
        checked += 1
        for target, resolved in dead:
            print(f"{md}: dead link '{target}' -> {resolved}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"docs-check: {failures} dead link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"docs-check: OK ({checked} files, all relative links resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff a fresh perf_report run against the committed BENCH_perf.json.

Absolute ns/op numbers are machine-specific, so the trend gate compares
the *speedup* column instead: optimized and frozen-baseline kernels are
timed back to back in the same process, which makes the ratio portable
across machines. Any slowdown is printed as a warning; the script only
fails (exit 1) when a kernel's speedup dropped by more than
--max-regression (default 25%) — the "perf trajectory went backwards"
signal, not CI noise.

Usage:
  tools/check_perf_trend.py CURRENT.json [BASELINE.json]
                            [--max-regression 0.25]
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") != "wi-bench-perf-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {entry["name"]: entry for entry in doc.get("benchmarks", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly generated perf report")
    parser.add_argument("baseline", nargs="?", default="BENCH_perf.json",
                        help="committed reference (default BENCH_perf.json)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fail when a speedup drops by more than this "
                             "fraction (default 0.25)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []
    warnings = []
    print(f"perf trend: {args.current} vs {args.baseline} "
          f"(fail threshold: {args.max_regression:.0%} speedup drop)")
    print(f"{'benchmark':55} {'base':>7} {'now':>7} {'delta':>8}")
    for name, base_entry in baseline.items():
        cur_entry = current.get(name)
        if cur_entry is None:
            # A gated benchmark that vanished is itself a gate bypass:
            # renaming/dropping a kernel must not silently pass.
            failures.append(f"benchmark '{name}' missing from current run")
            continue
        base_speedup = base_entry.get("speedup")
        cur_speedup = cur_entry.get("speedup")
        if base_speedup is not None and cur_speedup is None:
            # The baseline gates this kernel; a current entry without a
            # speedup (schema drift, baseline twin no longer timed)
            # would silently un-gate it.
            failures.append(
                f"benchmark '{name}' lost its speedup field in the "
                f"current run")
            continue
        if base_speedup is None:
            # No frozen-baseline twin: absolute times are not portable,
            # so there is nothing machine-independent to gate on.
            print(f"{name:55} {'-':>7} {'-':>7} {'(info only)':>8}")
            continue
        base_speedup = float(base_speedup)
        cur_speedup = float(cur_speedup)
        if base_speedup <= 0:
            warnings.append(f"{name}: non-positive baseline speedup "
                            f"{base_speedup}; skipping ratio check")
            continue
        delta = cur_speedup / base_speedup - 1.0
        print(f"{name:55} {base_speedup:6.2f}x {cur_speedup:6.2f}x "
              f"{delta:+7.1%}")
        if delta < -args.max_regression:
            failures.append(
                f"{name}: speedup {base_speedup:.2f}x -> {cur_speedup:.2f}x "
                f"({delta:+.1%})")
        elif delta < 0:
            warnings.append(
                f"{name}: speedup slipped {delta:+.1%} "
                f"({base_speedup:.2f}x -> {cur_speedup:.2f}x)")
    for name in current:
        if name not in baseline:
            warnings.append(
                f"benchmark '{name}' is new (not in {args.baseline})")

    for warning in warnings:
        print(f"warning: {warning}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        sys.exit(1)
    print("perf trend OK")


if __name__ == "__main__":
    main()

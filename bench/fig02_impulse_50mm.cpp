/// \file fig02_impulse_50mm.cpp
/// \brief Reproduces Fig. 2: impulse response at 50 mm antenna distance,
///        free space vs parallel copper boards (shortest link).
///
/// The synthetic VNA sweeps 220-245 GHz with 4096 points; the windowed
/// IDFT yields the band-limited impulse response. Reflection clusters
/// (antenna ports, horn/port, horn-horn, copper boards) are identified
/// by peak search and each must stay >= 15 dB below the line of sight,
/// the paper's central observation.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/dsp/peaks.hpp"
#include "wi/rf/channel.hpp"
#include "wi/rf/vna.hpp"

namespace {

void print_scenario(const char* label, bool copper_boards, double dist_m) {
  using namespace wi;
  rf::BoardToBoardScenario scenario;
  scenario.distance_m = dist_m;
  scenario.copper_boards = copper_boards;
  const rf::MultipathChannel channel = rf::board_to_board_channel(scenario);

  rf::VnaConfig vna_config;
  vna_config.seed = 22;
  rf::SyntheticVna vna(vna_config);
  const rf::FrequencySweep sweep = vna.measure(channel);
  const rf::ImpulseResponse ir = rf::to_impulse_response(sweep);

  std::cout << "\n## " << label << "\n";
  std::cout << "model taps (ground truth of the synthetic channel):\n";
  for (const auto& tap : channel.taps()) {
    std::cout << "  " << tap.label << ": delay " << tap.delay_s * 1e9
              << " ns, gain " << tap.gain_db << " dB (rel LoS "
              << tap.gain_db - channel.strongest_tap_db() << " dB)\n";
  }
  std::cout << "worst reflection (impulse response): "
            << rf::worst_reflection_rel_db(ir, 6)
            << " dB rel LoS (paper: <= -15 dB)\n";

  // Print the impulse response up to 1.5 ns (the figure's x range),
  // decimated for readability.
  wi::Table table({"tau_ns", "h_dB"});
  for (std::size_t i = 0; i < ir.delay_s.size(); i += 2) {
    if (ir.delay_s[i] > 1.5e-9) break;
    table.add_row({wi::Table::num(ir.delay_s[i] * 1e9, 3),
                   wi::Table::num(ir.magnitude_db[i], 1)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "# Fig. 2 — impulse response, 50 mm antenna distance\n";
  print_scenario("freespace", false, 0.05);
  print_scenario("parallel copper boards, 50 mm, shortest link", true, 0.05);
  return 0;
}

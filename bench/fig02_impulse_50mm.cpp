/// \file fig02_impulse_50mm.cpp
/// \brief Reproduces Fig. 2: impulse response at 50 mm antenna distance,
///        free space vs parallel copper boards (shortest link) — via the
///        registered "fig02_impulse_50mm" scenario. Reflection clusters
///        (antenna ports, horn/port, horn-horn, copper boards) arrive as
///        notes and each must stay >= 15 dB below the line of sight, the
///        paper's central observation.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("fig02_impulse_50mm"));
  std::cout << "# Fig. 2 — impulse response, 50 mm antenna distance\n\n";
  print_result(std::cout, result);
  std::cout << "\n# check: every reflection cluster stays >= 15 dB below "
               "the line of sight\n";
  return result.ok() ? 0 : 1;
}

/// \file fig03_impulse_150mm.cpp
/// \brief Reproduces Fig. 3: impulse response for a 150 mm antenna
///        distance — the diagonal link between parallel copper boards
///        (realised in the testbed by rotating the boards).

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/rf/channel.hpp"
#include "wi/rf/vna.hpp"

namespace {

void print_scenario(const char* label, bool copper_boards, double dist_m) {
  using namespace wi;
  rf::BoardToBoardScenario scenario;
  scenario.distance_m = dist_m;
  scenario.copper_boards = copper_boards;
  const rf::MultipathChannel channel = rf::board_to_board_channel(scenario);

  rf::VnaConfig vna_config;
  vna_config.seed = 23;
  rf::SyntheticVna vna(vna_config);
  const rf::ImpulseResponse ir =
      rf::to_impulse_response(vna.measure(channel));

  std::cout << "\n## " << label << "\n";
  for (const auto& tap : channel.taps()) {
    std::cout << "  " << tap.label << ": delay " << tap.delay_s * 1e9
              << " ns, rel LoS "
              << tap.gain_db - channel.strongest_tap_db() << " dB\n";
  }
  std::cout << "worst reflection (impulse response): "
            << rf::worst_reflection_rel_db(ir, 6)
            << " dB rel LoS (paper: <= -15 dB)\n";

  wi::Table table({"tau_ns", "h_dB"});
  for (std::size_t i = 0; i < ir.delay_s.size(); i += 2) {
    if (ir.delay_s[i] > 2.0e-9) break;  // Fig. 3 x range
    table.add_row({wi::Table::num(ir.delay_s[i] * 1e9, 3),
                   wi::Table::num(ir.magnitude_db[i], 1)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "# Fig. 3 — impulse response, 150 mm antenna distance "
               "(diagonal link)\n";
  print_scenario("freespace", false, 0.15);
  print_scenario("parallel copper boards, 50 mm separation, diagonal link",
                 true, 0.15);
  return 0;
}

/// \file fig03_impulse_150mm.cpp
/// \brief Reproduces Fig. 3: impulse response for a 150 mm antenna
///        distance — the diagonal link between parallel copper boards
///        (realised in the testbed by rotating the boards) — via the
///        registered "fig03_impulse_150mm" scenario.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("fig03_impulse_150mm"));
  std::cout << "# Fig. 3 — impulse response, 150 mm antenna distance\n\n";
  print_result(std::cout, result);
  std::cout << "\n# check: the longer link keeps all reflection clusters "
               ">= 15 dB below the line of sight\n";
  return result.ok() ? 0 : 1;
}

/// \file table1_link_budget.cpp
/// \brief Reproduces Table I: link budget parameters for board-to-board
///        communication, including the derived pathloss anchors
///        PL(0.1 m) = 59.8 dB and PL(0.3 m) = 69.3 dB at 232.5 GHz, and
///        cross-checks the 12 dB array gain (4x4) and ~5 dB Butler
///        inaccuracy against the antenna models.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/rf/antenna.hpp"
#include "wi/rf/link_budget.hpp"

int main() {
  using namespace wi;
  const rf::LinkBudget budget;
  const auto& p = budget.params();

  std::cout << "# Table I — link budget parameters (paper values in "
               "parentheses)\n\n";
  Table table({"parameter", "unit", "value", "paper"});
  table.add_row({"RX noise figure", "dB",
                 Table::num(p.rx_noise_figure_db, 1), "10"});
  table.add_row({"Path loss exponent", "-",
                 Table::num(p.path_loss_exponent, 1), "2"});
  table.add_row({"Path loss shortest link 0.1m (232.5 GHz)", "dB",
                 Table::num(budget.path_loss_db(rf::kShortestLink_m), 1),
                 "59.8"});
  table.add_row({"Path loss largest link 0.3m (232.5 GHz)", "dB",
                 Table::num(budget.path_loss_db(rf::kLongestLink_m), 1),
                 "69.3"});
  table.add_row({"Array gain", "dB", Table::num(p.array_gain_db, 1), "12"});
  table.add_row({"Butler matrix inaccuracy", "dB",
                 Table::num(p.butler_inaccuracy_db, 1), "5"});
  table.add_row({"Polarization mismatch", "dB",
                 Table::num(p.polarization_mismatch_db, 1), "3"});
  table.add_row({"Implementation loss", "dB",
                 Table::num(p.implementation_loss_db, 1), "5"});
  table.add_row({"RX temperature", "K",
                 Table::num(p.rx_temperature_k, 0), "323"});
  table.print(std::cout);

  std::cout << "\n# derived quantities\n";
  std::cout << "noise power over " << p.bandwidth_hz / 1e9
            << " GHz at " << p.rx_temperature_k
            << " K (incl. NF): " << budget.noise_power_dbm() << " dBm\n";

  // Cross-checks against the physical antenna models.
  const rf::PlanarArray array(4, 4);
  std::cout << "4x4 array broadside gain: " << array.broadside_gain_dbi()
            << " dBi (paper: 12 dB, in 2mm x 2mm at >200 GHz)\n";
  const rf::ButlerMatrixBeamformer butler(array, 4);
  std::cout << "Butler matrix worst-case mismatch: "
            << butler.worst_case_mismatch_db()
            << " dB (paper budget: 5 dB)\n";
  return 0;
}

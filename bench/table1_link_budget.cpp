/// \file table1_link_budget.cpp
/// \brief Reproduces Table I through the declarative scenario API: the
///        link budget parameters, the derived pathloss anchors
///        PL(0.1 m) = 59.8 dB / PL(0.3 m) = 69.3 dB at 232.5 GHz, and
///        the antenna-model cross-checks (12 dB array gain, ~5 dB
///        Butler inaccuracy) arrive as notes on the result.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("table1_link_budget"));
  std::cout << "# Table I — link budget parameters (paper values in the "
               "last column)\n\n";
  print_result(std::cout, result);
  return result.ok() ? 0 : 1;
}

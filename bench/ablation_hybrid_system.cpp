/// \file ablation_hybrid_system.cpp
/// \brief System-level ablation of the paper's headline proposal
///        (Sec. I/VI): replace the backplane bus of a multi-board box
///        with direct wireless board-to-board links.
///
/// Sweeps the inter-board traffic fraction and the share of nodes
/// equipped with antenna arrays, comparing capacity (saturation
/// injection rate) and zero-load latency of the two system variants.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/core/hybrid_system.hpp"

int main() {
  using namespace wi;
  using namespace wi::core;

  std::cout << "# Ablation — backplane bus vs direct wireless "
               "board-to-board links (4 boards, 4x4 nodes each)\n\n";

  std::cout << "## sweep: inter-board traffic fraction (all nodes "
               "equipped)\n";
  Table t1({"inter_frac", "backplane_sat", "wireless_sat", "capacity_gain",
            "backplane_lat0", "wireless_lat0"});
  for (const double frac : {0.1, 0.2, 0.3, 0.5, 0.7}) {
    HybridSystemConfig config;
    config.inter_board_fraction = frac;
    const HybridComparison cmp = HybridSystemModel(config).compare();
    t1.add_row({Table::num(frac, 2),
                Table::num(cmp.backplane.saturation_rate, 3),
                Table::num(cmp.wireless.saturation_rate, 3),
                Table::num(cmp.capacity_gain, 2),
                Table::num(cmp.backplane.zero_load_latency_cycles, 2),
                Table::num(cmp.wireless.zero_load_latency_cycles, 2)});
  }
  t1.print(std::cout);

  std::cout << "\n## sweep: fraction of nodes with antenna arrays "
               "(30% inter-board traffic)\n";
  Table t2({"equipped_frac", "wireless_sat", "capacity_gain_vs_backplane",
            "wireless_lat0"});
  HybridSystemConfig base;
  const HybridComparison baseline = HybridSystemModel(base).compare();
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    HybridSystemConfig config;
    config.wireless_node_fraction = frac;
    const HybridSystemModel model(config);
    const SystemEvaluation eval =
        model.evaluate(model.build_wireless_topology());
    t2.add_row({Table::num(frac, 2), Table::num(eval.saturation_rate, 3),
                Table::num(eval.saturation_rate /
                               baseline.backplane.saturation_rate, 2),
                Table::num(eval.zero_load_latency_cycles, 2)});
  }
  t2.print(std::cout);

  std::cout << "\n# check: the wireless system scales its inter-board "
               "capacity with the number of equipped nodes, while the "
               "backplane funnels everything through one spine — the "
               "paper's motivation for 'taking the load off the "
               "backplane'\n";
  return 0;
}

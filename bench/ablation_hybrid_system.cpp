/// \file ablation_hybrid_system.cpp
/// \brief System-level ablation of the paper's headline proposal
///        (Sec. I/VI): replace the backplane bus of a multi-board box
///        with direct wireless board-to-board links.
///
/// Two declarative sweeps over the registered hybrid-system scenario:
/// the inter-board traffic fraction, and the share of nodes equipped
/// with antenna arrays — comparing capacity (saturation injection
/// rate) and zero-load latency of the two system variants.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  const ScenarioSpec base =
      ScenarioRegistry::paper().get("ablation_hybrid_system");
  SimEngine engine;

  std::cout << "# Ablation — backplane bus vs direct wireless "
               "board-to-board links (4 boards, 4x4 nodes each)\n\n";

  std::cout << "## sweep: inter-board traffic fraction (all nodes "
               "equipped)\n";
  const SweepAxis inter_axis{
      "inter_frac",
      {0.1, 0.2, 0.3, 0.5, 0.7},
      [](ScenarioSpec& spec, double value) {
        spec.payload<HybridSpec>().config.inter_board_fraction = value;
      }};
  const RunResult inter = engine.run_sweep(base, {inter_axis});
  print_result(std::cout, inter);

  std::cout << "\n## sweep: fraction of nodes with antenna arrays "
               "(30% inter-board traffic)\n";
  const SweepAxis equip_axis{
      "equipped_frac",
      {0.25, 0.5, 0.75, 1.0},
      [](ScenarioSpec& spec, double value) {
        spec.payload<HybridSpec>().config.wireless_node_fraction = value;
      }};
  const RunResult equipped = engine.run_sweep(base, {equip_axis});
  print_result(std::cout, equipped);

  std::cout << "\n# check: the wireless system scales its inter-board "
               "capacity with the number of equipped nodes, while the "
               "backplane funnels everything through one spine — the "
               "paper's motivation for 'taking the load off the "
               "backplane'\n";
  return (inter.ok() && equipped.ok()) ? 0 : 1;
}

/// \file fig04_tx_power.cpp
/// \brief Reproduces Fig. 4: required transmit power [dBm] vs target SNR
///        for the shortest (100 mm) and longest (300 mm) links, the
///        latter also with Butler-matrix direction mismatch — via the
///        registered "fig04_tx_power" scenario (Table I budget).

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("fig04_tx_power"));
  std::cout << "# Fig. 4 — required PTX vs target receive SNR "
               "(25 GHz bandwidth, Table I budget)\n\n";
  print_result(std::cout, result);
  std::cout << "\n# checks: curves are parallel lines 9.5 dB apart "
               "(pathloss delta) and +5 dB for the Butler case\n";
  return result.ok() ? 0 : 1;
}

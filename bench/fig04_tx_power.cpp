/// \file fig04_tx_power.cpp
/// \brief Reproduces Fig. 4: required transmit power [dBm] vs target SNR
///        for the shortest (100 mm) and longest (300 mm) links, the
///        latter also with Butler-matrix direction mismatch.
///
/// Uses the Table I link budget; the 5 dB Butler penalty applies only to
/// the worst-case (diagonal) links, exactly as the paper assumes.

#include <cmath>
#include <iostream>

#include "wi/common/table.hpp"
#include "wi/rf/link_budget.hpp"

int main() {
  using namespace wi;
  const rf::LinkBudget budget;

  std::cout << "# Fig. 4 — required PTX vs target receive SNR "
               "(25 GHz bandwidth, Table I budget)\n\n";
  Table table({"SNR_dB", "shortest_100mm_dBm", "longest_300mm_dBm",
               "longest_300mm_butler_dBm"});
  for (int snr = 0; snr <= 35; snr += 5) {
    table.add_row(
        {Table::num(static_cast<long long>(snr)),
         Table::num(budget.required_tx_power_dbm(snr, rf::kShortestLink_m,
                                                 false), 2),
         Table::num(budget.required_tx_power_dbm(snr, rf::kLongestLink_m,
                                                 false), 2),
         Table::num(budget.required_tx_power_dbm(snr, rf::kLongestLink_m,
                                                 true), 2)});
  }
  table.print(std::cout);

  std::cout << "\n# checks: curves are parallel lines 9.5 dB apart "
               "(pathloss delta) and +5 dB for the Butler case;\n"
            << "# e.g. 100 Gbit/s at ~2 bit/s/Hz needs SNR ~ "
            << 10.0 * std::log10(std::pow(2.0, 2.0) - 1.0)
            << " dB -> PTX "
            << budget.required_tx_power_dbm(4.77, rf::kLongestLink_m, true)
            << " dBm on the worst link\n";
  return 0;
}

/// \file fig05_isi_filters.cpp
/// \brief Reproduces Fig. 5: impulse responses of the four ISI filter
///        designs for the 1-bit 5x-oversampling receiver (4-ASK, design
///        SNR 25 dB):
///        (a) rectangular pulse (no ISI),
///        (b) optimal ISI for symbol-by-symbol detection,
///        (c) optimal ISI for sequence detection,
///        (d) suboptimal noise-agnostic design (unique detection).
///
/// By default the pre-optimised designs are printed (identical to
/// running the optimiser with the tools/tune_filters budget); set
/// WI_FIG05_OPTIMIZE=1 to re-run the optimisation live.

#include <cstdlib>
#include <iostream>

#include "wi/common/table.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"

namespace {

void print_filter(const char* label, const wi::comm::IsiFilter& filter,
                  const wi::comm::Constellation& constellation) {
  using namespace wi;
  std::cout << "\n## " << label << "\n";
  Table table({"tau_over_T", "h"});
  const auto& taps = filter.taps();
  const double m = static_cast<double>(filter.samples_per_symbol());
  for (std::size_t i = 0; i < taps.size(); ++i) {
    table.add_row({Table::num(static_cast<double>(i) / m, 2),
                   Table::num(taps[i], 4)});
  }
  table.print(std::cout);
  const comm::OneBitOsChannel channel(filter, constellation, 25.0);
  std::cout << "symbolwise MI @25 dB: "
            << comm::mi_one_bit_symbolwise(channel) << " bpcu; "
            << "sequence IR @25 dB: "
            << comm::info_rate_one_bit_sequence(channel, {40000, 9})
            << " bpcu; unique detection (noise-free): "
            << (comm::is_uniquely_detectable(filter, constellation) ? "yes"
                                                                     : "no")
            << "\n";
}

}  // namespace

int main() {
  using namespace wi::comm;
  const Constellation c4 = Constellation::ask(4);
  const bool reoptimize = std::getenv("WI_FIG05_OPTIMIZE") != nullptr;

  std::cout << "# Fig. 5 — ISI filter impulse responses (4-ASK, 5x OS, "
               "1-bit RX)\n";
  print_filter("(a) rectangular pulse — no ISI", IsiFilter::rectangular(5),
               c4);
  if (reoptimize) {
    FilterDesignOptions options;
    print_filter("(b) optimal ISI for symbol-by-symbol detection @25 dB",
                 optimize_filter_symbolwise(c4, options), c4);
    print_filter("(c) optimal ISI for sequence detection @25 dB",
                 optimize_filter_sequence(c4, options), c4);
    print_filter("(d) suboptimal ISI design (noise-free uniqueness)",
                 design_filter_suboptimal(c4, options), c4);
  } else {
    print_filter("(b) optimal ISI for symbol-by-symbol detection @25 dB",
                 paper_filter_symbolwise(), c4);
    print_filter("(c) optimal ISI for sequence detection @25 dB",
                 paper_filter_sequence(), c4);
    print_filter("(d) suboptimal ISI design (noise-free uniqueness)",
                 paper_filter_suboptimal(), c4);
  }
  return 0;
}

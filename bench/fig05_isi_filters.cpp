/// \file fig05_isi_filters.cpp
/// \brief Reproduces Fig. 5: impulse responses of the four ISI filter
///        designs for the 1-bit 5x-oversampling receiver (4-ASK, design
///        SNR 25 dB) — via the registered "fig05_isi_filters" scenario:
///        (a) rectangular pulse (no ISI),
///        (b) optimal ISI for symbol-by-symbol detection,
///        (c) optimal ISI for sequence detection,
///        (d) suboptimal noise-agnostic design (unique detection).
///
/// By default the pre-optimised designs are printed (identical to
/// running the optimiser with the tools/tune_filters budget); set
/// WI_FIG05_OPTIMIZE=1 to re-run the optimisation live.

#include <cstdlib>
#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  ScenarioSpec spec = ScenarioRegistry::paper().get("fig05_isi_filters");
  const bool reoptimize = std::getenv("WI_FIG05_OPTIMIZE") != nullptr;
  spec.payload<IsiSpec>().reoptimize = reoptimize;
  const RunResult result = engine.run(spec);
  std::cout << "# Fig. 5 — ISI filter impulse responses (4-ASK, 5x OS, "
               "1-bit RX)"
            << (reoptimize ? " [re-optimised live]" : "") << "\n\n";
  print_result(std::cout, result);
  return result.ok() ? 0 : 1;
}

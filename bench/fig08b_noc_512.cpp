/// \file fig08b_noc_512.cpp
/// \brief Reproduces Fig. 8(b): scaling to 512 modules — 32x16 2D mesh
///        vs 8x8x8 3D mesh (64-module curves included for reference).
///        The paper's observation: the latency gap between 2D and 3D
///        widens significantly with network size.

#include <iostream>

#include "wi/common/math.hpp"
#include "wi/common/table.hpp"
#include "wi/noc/queueing_model.hpp"

int main() {
  using namespace wi;
  using namespace wi::noc;

  const DimensionOrderRouting routing;
  const QueueingModel m2d_64(Topology::mesh_2d(8, 8), routing,
                             TrafficPattern::uniform(64));
  const QueueingModel m3d_64(Topology::mesh_3d(4, 4, 4), routing,
                             TrafficPattern::uniform(64));
  const QueueingModel m2d_512(Topology::mesh_2d(32, 16), routing,
                              TrafficPattern::uniform(512));
  const QueueingModel m3d_512(Topology::mesh_3d(8, 8, 8), routing,
                              TrafficPattern::uniform(512));

  std::cout << "# Fig. 8(b) — latency vs injection, 512 vs 64 modules\n\n";
  Table table({"inj_rate", "2D_64", "3D_64", "2D_512", "3D_512"});
  auto cell = [](const QueueingModel& m, double rate) {
    const auto perf = m.evaluate(rate);
    return perf.saturated ? std::string("sat")
                          : Table::num(perf.mean_latency_cycles, 2);
  };
  for (const double rate : linspace(0.01, 0.7, 18)) {
    table.add_row({Table::num(rate, 3), cell(m2d_64, rate),
                   cell(m3d_64, rate), cell(m2d_512, rate),
                   cell(m3d_512, rate)});
  }
  table.print(std::cout);

  const double gap_64 = m2d_64.zero_load_latency_cycles() -
                        m3d_64.zero_load_latency_cycles();
  const double gap_512 = m2d_512.zero_load_latency_cycles() -
                         m3d_512.zero_load_latency_cycles();
  std::cout << "\n# latency gap 2D vs 3D: " << gap_64 << " cycles at 64 "
            << "modules -> " << gap_512
            << " cycles at 512 modules (paper: gap increases "
               "significantly)\n";
  std::cout << "saturation 512: 2D " << m2d_512.saturation_rate() << " vs 3D "
            << m3d_512.saturation_rate() << " flits/cycle/module\n";
  return 0;
}

/// \file fig08b_noc_512.cpp
/// \brief Reproduces Fig. 8(b): scaling to 512 modules — 32x16 2D mesh
///        vs 8x8x8 3D mesh (64-module scenarios included for
///        reference). The paper's observation: the latency gap between
///        2D and 3D widens significantly with network size — compare
///        the zero-load notes of the four results.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  const auto& registry = ScenarioRegistry::paper();
  SimEngine engine;
  // Put the 64-module references on the 512-module scenarios' grid so
  // the four latency tables share x-axis points row-by-row.
  const auto grid = registry.get("fig08b_mesh2d_32x16").noc.injection_rates;
  ScenarioSpec ref2d = registry.get("fig08a_mesh2d_8x8");
  ref2d.name += "/fig08b_grid";  // modified copy, not the registered spec
  ref2d.noc.injection_rates = grid;
  ScenarioSpec ref3d = registry.get("fig08a_mesh3d_4x4x4");
  ref3d.name += "/fig08b_grid";
  ref3d.noc.injection_rates = grid;
  ref3d.noc.des_check_rate = 0.0;  // the DES cross-check is Fig. 8(a)'s
  const auto results = engine.run_all({
      ref2d,
      ref3d,
      registry.get("fig08b_mesh2d_32x16"),
      registry.get("fig08b_mesh3d_8x8x8"),
  });
  std::cout << "# Fig. 8(b) — latency vs injection, 512 vs 64 modules\n"
            << "# (paper: the 2D-vs-3D latency gap increases "
               "significantly with module count)\n";
  int exit_code = 0;
  for (const auto& result : results) {
    std::cout << "\n";
    print_result(std::cout, result);
    if (!result.ok()) exit_code = 1;
  }
  return exit_code;
}

/// \file fig06_information_rates.cpp
/// \brief Reproduces Fig. 6: information rates of 4-ASK with 5-fold
///        oversampling and one-bit quantization at the receiver, over
///        SNR from -5 to 35 dB — via the registered "fig06_info_rates"
///        scenario. Six curves: sequence detection with the Fig. 5(c)
///        filter, symbolwise with 5(b), rectangular pulse, symbol-rate
///        1-bit sampling, the unquantized matched-filter reference and
///        the suboptimal design 5(d).
///
/// Expected shape (the paper's finding): with optimised ISI and sequence
/// estimation the 1-bit receiver approaches 2 bpcu at high SNR, far
/// above the 1 bpcu ceiling of 1-bit sampling without oversampling.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("fig06_info_rates"));
  std::cout << "# Fig. 6 — information rates, 4-ASK, 5x oversampling, "
               "1-bit RX [bpcu]\n\n";
  print_result(std::cout, result);
  return result.ok() ? 0 : 1;
}

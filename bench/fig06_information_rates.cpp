/// \file fig06_information_rates.cpp
/// \brief Reproduces Fig. 6: information rates of 4-ASK with 5-fold
///        oversampling and one-bit quantization at the receiver, over
///        SNR from -5 to 35 dB. Six curves:
///        - Max Information Rate 1Bit-OS          (sequence detection,
///          filter of Fig. 5(c))
///        - Max Information Rate 1Bit-OS symbolwise (filter of Fig. 5(b))
///        - Rect 1Bit-OS                           (rectangular pulse)
///        - 1Bit No-OS                             (symbol-rate sampling)
///        - No Quantization                        (ideal ADC, matched
///          filter over the block — the valid upper reference at the
///          per-sample SNR convention)
///        - Proposed Suboptimal Design 1Bit OS     (filter of Fig. 5(d))
///
/// Expected shape (the paper's finding): with optimised ISI and sequence
/// estimation the 1-bit receiver approaches 2 bpcu at high SNR, far
/// above the 1 bpcu ceiling of 1-bit sampling without oversampling.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"

int main() {
  using namespace wi;
  using namespace wi::comm;
  const Constellation c4 = Constellation::ask(4);
  const IsiFilter rect = IsiFilter::rectangular(5);
  const IsiFilter f_seq = paper_filter_sequence();
  const IsiFilter f_sym = paper_filter_symbolwise();
  const IsiFilter f_sub = paper_filter_suboptimal();

  std::cout << "# Fig. 6 — information rates, 4-ASK, 5x oversampling, "
               "1-bit RX [bpcu]\n\n";
  Table table({"SNR_dB", "MaxIR_seq", "MaxIR_symbolwise", "Rect_1bit_OS",
               "1bit_no_OS", "no_quantization", "suboptimal_seq"});
  for (int snr = -5; snr <= 35; snr += 5) {
    const double s = snr;
    const OneBitOsChannel ch_seq(f_seq, c4, s);
    const OneBitOsChannel ch_sym(f_sym, c4, s);
    const OneBitOsChannel ch_rect(rect, c4, s);
    const OneBitOsChannel ch_sub(f_sub, c4, s);
    const SequenceRateOptions mc{120000, 17};
    table.add_row(
        {Table::num(static_cast<long long>(snr)),
         Table::num(info_rate_one_bit_sequence(ch_seq, mc), 3),
         Table::num(mi_one_bit_symbolwise(ch_sym), 3),
         Table::num(info_rate_one_bit_sequence(ch_rect, mc), 3),
         Table::num(mi_one_bit_no_oversampling(c4, s), 3),
         Table::num(mi_unquantized_matched_filter(c4, s, 5), 3),
         Table::num(info_rate_one_bit_sequence(ch_sub, mc), 3)});
  }
  table.print(std::cout);

  std::cout << "\n# checks: no-quantization -> 2 bpcu; 1bit no-OS -> 1 "
               "bpcu; optimised ISI + sequence detection recovers most of "
               "the gap (paper's key result)\n";
  return 0;
}

/// \file ablation_vertical_links.cpp
/// \brief Ablation of the Sec. IV closing remarks: TSV area will not
///        allow every router a vertical link, and vertical inter-chip
///        links may offer more bandwidth than planar wires. Two
///        declarative sweeps over the registered 4-layer NiCS scenario:
///        vertical-link density, and TSV / inductive / capacitive
///        technology under a memory-on-logic traffic mix.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi;
  using namespace wi::sim;
  const ScenarioSpec base =
      ScenarioRegistry::paper().get("ablation_vertical_links");
  SimEngine engine;

  std::cout << "# Ablation — vertical link density and technology in a "
               "4x4x4 NiCS (uniform traffic)\n\n";

  std::cout << "## vertical density sweep (TSV)\n";
  const SweepAxis period_axis{
      "period",
      {1, 2, 3, 4},
      [](ScenarioSpec& spec, double value) {
        spec.payload<NicsSpec>().config.vertical_period =
            static_cast<std::size_t>(value);
      }};
  const RunResult density = engine.run_sweep(base, {period_axis});
  print_result(std::cout, density);

  std::cout << "\n## technology sweep (all routers vertical, 60% "
               "vertical traffic — memory-on-logic mix)\n";
  std::vector<ScenarioSpec> tech_specs;
  for (const auto tech :
       {core::VerticalLinkTech::kTsv, core::VerticalLinkTech::kInductive,
        core::VerticalLinkTech::kCapacitive}) {
    ScenarioSpec spec = base;
    spec.name += "/tech=" + core::vertical_link_params(tech).name;
    auto& config = spec.payload<NicsSpec>().config;
    config.tech = tech;
    config.vertical_traffic_fraction = 0.6;
    tech_specs.push_back(std::move(spec));
  }
  bool tech_ok = true;
  for (const auto& result : engine.run_all(tech_specs)) {
    std::cout << "\n";
    print_result(std::cout, result);
    tech_ok = tech_ok && result.ok();
  }

  std::cout << "\n# check: sparser verticals lengthen routes and lower "
               "capacity — quantifying the paper's call for irregular "
               "topologies with heterogeneous links\n";
  return (density.ok() && tech_ok) ? 0 : 1;
}

/// \file ablation_vertical_links.cpp
/// \brief Ablation of the Sec. IV closing remarks: TSV area will not
///        allow every router a vertical link, and vertical inter-chip
///        links may offer more bandwidth than planar wires. Sweeps the
///        vertical-link density and compares TSV / inductive /
///        capacitive technologies in a 4-layer NiCS.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/core/nics_stack.hpp"

int main() {
  using namespace wi;
  using namespace wi::core;

  std::cout << "# Ablation — vertical link density and technology in a "
               "4x4x4 NiCS (uniform traffic)\n\n";

  std::cout << "## vertical density sweep (TSV)\n";
  Table t1({"period", "vertical_links", "area_cost", "lat0_cycles",
            "saturation"});
  for (const std::size_t period : {1, 2, 3, 4}) {
    NicsStackConfig config;
    config.vertical_period = period;
    const auto eval = NicsStackModel(config).evaluate();
    t1.add_row({Table::num(static_cast<long long>(period)),
                Table::num(eval.vertical_link_count, 0),
                Table::num(eval.area_cost, 0),
                Table::num(eval.zero_load_latency_cycles, 2),
                Table::num(eval.saturation_rate, 3)});
  }
  t1.print(std::cout);

  std::cout << "\n## technology sweep (all routers vertical, 60% "
               "vertical traffic — memory-on-logic mix)\n";
  Table t2({"tech", "bandwidth", "area_cost", "lat0_cycles", "saturation"});
  for (const auto tech : {VerticalLinkTech::kTsv, VerticalLinkTech::kInductive,
                          VerticalLinkTech::kCapacitive}) {
    NicsStackConfig config;
    config.tech = tech;
    config.vertical_traffic_fraction = 0.6;
    const auto params = vertical_link_params(tech);
    const auto eval = NicsStackModel(config).evaluate();
    t2.add_row({params.name, Table::num(params.bandwidth, 2),
                Table::num(eval.area_cost, 0),
                Table::num(eval.zero_load_latency_cycles, 2),
                Table::num(eval.saturation_rate, 3)});
  }
  t2.print(std::cout);

  std::cout << "\n# check: sparser verticals lengthen routes and lower "
               "capacity — quantifying the paper's call for irregular "
               "topologies with heterogeneous links\n";
  return 0;
}

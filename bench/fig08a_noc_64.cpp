/// \file fig08a_noc_64.cpp
/// \brief Reproduces Fig. 8(a): average packet latency vs injection rate
///        for 64 modules — 8x8 2D mesh vs 4x4 (c=4) star-mesh vs 4x4x4
///        3D mesh — under global uniform traffic with Poisson arrivals,
///        using the queueing-theory analytic model of ref. [14].
///
/// Paper anchors: low-traffic latency 13 / 7 / 10 clock cycles and
/// saturation at 0.41 / 0.19 / 0.75 flits/cycle/module. A flit-level
/// discrete-event cross-check at one operating point validates the
/// analytic curve.

#include <iostream>

#include "wi/common/math.hpp"
#include "wi/common/table.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/noc/queueing_model.hpp"

int main() {
  using namespace wi;
  using namespace wi::noc;

  const Topology mesh2d = Topology::mesh_2d(8, 8);
  const Topology star = Topology::star_mesh(4, 4, 4);
  const Topology mesh3d = Topology::mesh_3d(4, 4, 4);
  const DimensionOrderRouting routing;

  const QueueingModel model_2d(mesh2d, routing,
                               TrafficPattern::uniform(64));
  const QueueingModel model_star(star, routing, TrafficPattern::uniform(64));
  const QueueingModel model_3d(mesh3d, routing, TrafficPattern::uniform(64));

  std::cout << "# Fig. 8(a) — mean packet latency vs injection rate, "
               "64 modules, uniform Poisson traffic\n\n";
  Table table({"inj_rate", "2D-Mesh_8x8", "Star-Mesh_4x4c4",
               "3D-Mesh_4x4x4"});
  auto cell = [](const QueueingModel& m, double rate) {
    const auto perf = m.evaluate(rate);
    return perf.saturated ? std::string("sat")
                          : Table::num(perf.mean_latency_cycles, 2);
  };
  for (const double rate : linspace(0.01, 0.8, 21)) {
    table.add_row({Table::num(rate, 3), cell(model_2d, rate),
                   cell(model_star, rate), cell(model_3d, rate)});
  }
  table.print(std::cout);

  std::cout << "\n# anchors (paper): zero-load 13 / 7 / 10 cycles; "
               "saturation 0.41 / 0.19 / 0.75\n";
  std::cout << "zero-load: " << model_2d.zero_load_latency_cycles() << " / "
            << model_star.zero_load_latency_cycles() << " / "
            << model_3d.zero_load_latency_cycles() << " cycles\n";
  std::cout << "saturation: " << model_2d.saturation_rate() << " / "
            << model_star.saturation_rate() << " / "
            << model_3d.saturation_rate() << " flits/cycle/module\n";

  // Cross-check: flit-level DES at a medium load.
  FlitSimConfig sim;
  sim.warmup_cycles = 2000;
  sim.measure_cycles = 8000;
  const auto des =
      simulate_network(mesh3d, routing, TrafficPattern::uniform(64), 0.3,
                       sim);
  std::cout << "\nDES cross-check (3D mesh @ 0.3): " << des.mean_latency_cycles
            << " cycles vs analytic "
            << model_3d.evaluate(0.3).mean_latency_cycles << "\n";
  return 0;
}

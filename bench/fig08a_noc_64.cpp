/// \file fig08a_noc_64.cpp
/// \brief Reproduces Fig. 8(a): average packet latency vs injection rate
///        for 64 modules — 8x8 2D mesh vs 4x4 (c=4) star-mesh vs 4x4x4
///        3D mesh — by running the three registered scenarios through
///        one SimEngine (shared queueing model defaults, parallel
///        execution).
///
/// Paper anchors: low-traffic latency 13 / 7 / 10 clock cycles and
/// saturation at 0.41 / 0.19 / 0.75 flits/cycle/module (reported as
/// notes). The 3D-mesh scenario carries a flit-level DES cross-check at
/// injection rate 0.3.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  const auto& registry = ScenarioRegistry::paper();
  SimEngine engine;
  const auto results = engine.run_all({
      registry.get("fig08a_mesh2d_8x8"),
      registry.get("fig08a_star_mesh_4x4c4"),
      registry.get("fig08a_mesh3d_4x4x4"),
  });
  std::cout << "# Fig. 8(a) — mean packet latency vs injection rate, "
               "64 modules, uniform Poisson traffic\n"
            << "# anchors (paper): zero-load 13 / 7 / 10 cycles; "
               "saturation 0.41 / 0.19 / 0.75\n";
  int exit_code = 0;
  for (const auto& result : results) {
    std::cout << "\n";
    print_result(std::cout, result);
    if (!result.ok()) exit_code = 1;
  }
  return exit_code;
}

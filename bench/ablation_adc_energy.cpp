/// \file ablation_adc_energy.cpp
/// \brief Quantifies the Sec. III energy argument: "the analog-to-
///        digital conversion requires the main part of the total energy
///        consumption ... the conversion resolution has to be chosen as
///        low as possible".
///
/// Compares receiver front-ends for a 25 GBd 4-ASK link at a Walden
/// figure of merit of 50 fJ/conversion-step: ADC power, achievable
/// information rate at the operating SNR, and the resulting ADC energy
/// per information bit.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/comm/adc.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"

int main() {
  using namespace wi;
  using namespace wi::comm;

  const double symbol_rate = 25e9;
  const double snr_db = 25.0;
  const Constellation c4 = Constellation::ask(4);
  const AdcModel adc{50e-15};

  // Achievable rates of the candidate front-ends at the operating SNR.
  const OneBitOsChannel seq(paper_filter_sequence(), c4, snr_db);
  const double rate_1bit_os = info_rate_one_bit_sequence(seq, {60000, 29});
  const double rate_1bit = mi_one_bit_no_oversampling(c4, snr_db);

  std::vector<ReceiverOption> options = {
      {"1-bit, 5x OS, seq. detection", 1, 5, rate_1bit_os},
      {"1-bit, Nyquist", 1, 1, rate_1bit},
      {"2-bit, Nyquist", 2, 1,
       mi_quantized_awgn(c4, UniformQuantizer(2), snr_db)},
      {"3-bit, Nyquist", 3, 1,
       mi_quantized_awgn(c4, UniformQuantizer(3), snr_db)},
      {"4-bit, Nyquist", 4, 1,
       mi_quantized_awgn(c4, UniformQuantizer(4), snr_db)},
      {"8-bit, Nyquist", 8, 1, mi_unquantized_awgn(c4, snr_db)},
  };

  std::cout << "# Ablation — ADC energy per information bit "
               "(25 GBd 4-ASK @ " << snr_db << " dB, Walden FOM 50 fJ)\n\n";
  Table table({"receiver", "sample_rate_GSs", "rate_bpcu",
               "throughput_Gbps", "ADC_power_mW", "pJ_per_bit"});
  for (const auto& option : options) {
    const double sample_rate =
        symbol_rate * static_cast<double>(option.oversampling);
    const double throughput = option.info_rate_bpcu * symbol_rate / 1e9;
    table.add_row(
        {option.name, Table::num(sample_rate / 1e9, 0),
         Table::num(option.info_rate_bpcu, 3), Table::num(throughput, 1),
         Table::num(adc.power_w(option.adc_bits, sample_rate) * 1e3, 3),
         Table::num(adc_energy_per_bit_j(adc, option, symbol_rate) * 1e12,
                    4)});
  }
  table.print(std::cout);

  std::cout
      << "\n# checks: the 1-bit 5x-OS receiver delivers ~98% of the "
         "ideal-ADC throughput at ~25x less ADC energy per bit than the "
         "8-bit converter.\n"
         "# A 2-3 bit Nyquist ADC is competitive on raw Walden energy at "
         "this SNR, but needs precise AGC, symbol-timing recovery and "
         "linear front-ends, all of which the 1-bit comparator avoids; "
         "oversampling additionally provides the timing information "
         "(Sec. III's architectural argument).\n";
  return 0;
}

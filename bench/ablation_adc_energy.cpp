/// \file ablation_adc_energy.cpp
/// \brief Quantifies the Sec. III energy argument: "the analog-to-
///        digital conversion requires the main part of the total energy
///        consumption ... the conversion resolution has to be chosen as
///        low as possible" — via the registered "ablation_adc_energy"
///        scenario.
///
/// Compares receiver front-ends for a 25 GBd 4-ASK link at a Walden
/// figure of merit of 50 fJ/conversion-step: ADC power, achievable
/// information rate at the operating SNR, and the resulting ADC energy
/// per information bit.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("ablation_adc_energy"));
  std::cout << "# Ablation — ADC energy per information bit "
               "(25 GBd 4-ASK @ 25 dB, Walden FOM 50 fJ)\n\n";
  print_result(std::cout, result);
  std::cout
      << "\n# checks: the 1-bit 5x-OS receiver delivers ~98% of the "
         "ideal-ADC throughput at ~25x less ADC energy per bit than the "
         "8-bit converter.\n"
         "# A 2-3 bit Nyquist ADC is competitive on raw Walden energy at "
         "this SNR, but needs precise AGC, symbol-timing recovery and "
         "linear front-ends, all of which the 1-bit comparator avoids; "
         "oversampling additionally provides the timing information "
         "(Sec. III's architectural argument).\n";
  return result.ok() ? 0 : 1;
}

/// \file fig10_ldpc_latency.cpp
/// \brief Reproduces Fig. 10: required Eb/N0 for (4,8)-regular LDPC-CCs
///        (B0 = [2,2], B1 = B2 = [1,1]) to reach a target BER as a
///        function of the decoding latency (Eq. 4: T_WD = W N nv R),
///        compared with the LDPC-BC (B = [4,4], Eq. 5: T_B = N nv R).
///
/// Curves: N = 25 (W = 3..8), N = 40 (W = 3..8), N = 60 (W = 4..6),
/// LDPC-BC at matching latencies.
///
/// Runtime/accuracy trade-off: the paper targets BER 1e-5, which needs
/// hours of Monte Carlo. The default run targets BER 1e-4 with capped
/// codeword counts (a few minutes) — the W/N trends and the CC-vs-BC
/// ordering are preserved — though compressed: at 1e-4 the codes sit
/// near the top of their waterfalls where W/N differences are small.
/// Set WI_FIG10_FULL=1 for BER 1e-5 with large caps (the paper's
/// operating point, where the separation fully emerges; see
/// tools/fig10_keypoint for a targeted 1e-5 verification of the
/// paper's worked example). Seeds are fixed per curve and shared
/// across the Eb/N0 scan (common random numbers).

#include <cstdlib>
#include <iostream>

#include "wi/common/table.hpp"
#include "wi/fec/ber.hpp"

int main() {
  using namespace wi;
  using namespace wi::fec;

  const bool full = std::getenv("WI_FIG10_FULL") != nullptr;
  const double target_ber = full ? 1e-5 : 1e-4;
  const std::size_t min_errors = full ? 200 : 80;
  const std::size_t max_codewords = full ? 40000 : 800;
  const std::size_t termination = 24;  // L (latency is L-independent)

  std::cout << "# Fig. 10 — required Eb/N0 @ BER " << target_ber
            << " vs decoding latency [information bits]\n"
            << "# (4,8)-regular; LDPC-CC: B0=[2,2], B1=B2=[1,1]; "
               "LDPC-BC: B=[4,4]\n\n";

  BpOptions bp;
  bp.max_iterations = full ? 100 : 50;

  Table table({"family", "N", "W", "latency_bits", "reqd_EbN0_dB"});

  auto run_cc = [&](std::size_t n, std::size_t w_lo, std::size_t w_hi) {
    const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), n,
                                     termination, /*seed=*/n);
    for (std::size_t w = w_lo; w <= w_hi; ++w) {
      const auto simulate = [&](double ebn0) {
        BerConfig config;
        config.ebn0_db = ebn0;
        config.min_errors = min_errors;
        config.max_codewords = max_codewords;
        config.seed = 1000 + n + w;
        config.bp = bp;
        return simulate_ber_window(code, w, config);
      };
      const double ebn0 =
          required_ebn0_db(simulate, target_ber, 1.5, 6.0, 0.25);
      table.add_row({"LDPC-CC", Table::num(static_cast<long long>(n)),
                     Table::num(static_cast<long long>(w)),
                     Table::num(window_decoder_latency_bits(
                                    w, n, code.nv(), code.rate_asymptotic()),
                                0),
                     Table::num(ebn0, 2)});
      std::cout << "." << std::flush;
    }
  };

  auto run_bc = [&](std::size_t n) {
    const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), n, /*seed=*/n);
    const auto simulate = [&](double ebn0) {
      BerConfig config;
      config.ebn0_db = ebn0;
      config.min_errors = min_errors;
      config.max_codewords = max_codewords;
      config.seed = 2000 + n;
      config.bp = bp;
      return simulate_ber_block(code, config);
    };
    const double ebn0 =
        required_ebn0_db(simulate, target_ber, 1.5, 6.0, 0.25);
    table.add_row({"LDPC-BC", Table::num(static_cast<long long>(n)), "-",
                   Table::num(block_code_latency_bits(n, 2, 0.5), 0),
                   Table::num(ebn0, 2)});
    std::cout << "." << std::flush;
  };

  run_cc(25, 3, 8);
  run_cc(40, 3, 8);
  run_cc(60, 4, 6);
  for (const std::size_t n : {100, 150, 200, 300, 400}) run_bc(n);
  std::cout << "\n\n";
  table.print(std::cout);

  std::cout << "\n# checks: required Eb/N0 falls with W (decoder-side "
               "knob) and with N (code strength);\n"
            << "# at equal latency the LDPC-CC needs less Eb/N0 than the "
               "LDPC-BC it is derived from\n"
            << "# (paper example at BER 1e-5: ~3 dB at T_WD = 200 for CC "
               "vs T_B = 400 for BC — a 200-bit latency gain)\n";
  return 0;
}

/// \file fig10_ldpc_latency.cpp
/// \brief Reproduces Fig. 10: required Eb/N0 for (4,8)-regular LDPC-CCs
///        (B0 = [2,2], B1 = B2 = [1,1]) to reach a target BER as a
///        function of the decoding latency (Eq. 4: T_WD = W N nv R),
///        compared with the LDPC-BC (B = [4,4], Eq. 5: T_B = N nv R) —
///        via the registered "fig10_ldpc_latency" scenario.
///
/// Curves: N = 25 (W = 3..8), N = 40 (W = 3..8), N = 60 (W = 4..6),
/// LDPC-BC at matching latencies.
///
/// Runtime/accuracy trade-off: the paper targets BER 1e-5, which needs
/// hours of Monte Carlo. The default scenario targets BER 1e-4 with
/// capped codeword counts (a few minutes) — the W/N trends and the
/// CC-vs-BC ordering are preserved — though compressed: at 1e-4 the
/// codes sit near the top of their waterfalls where W/N differences are
/// small. Set WI_FIG10_FULL=1 for BER 1e-5 with large caps (the paper's
/// operating point, where the separation fully emerges; see
/// tools/fig10_keypoint for a targeted 1e-5 verification of the paper's
/// worked example). Seeds are fixed per curve and shared across the
/// Eb/N0 scan (common random numbers).

#include <cstdlib>
#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  ScenarioSpec spec = ScenarioRegistry::paper().get("fig10_ldpc_latency");
  auto& ldpc = spec.payload<LdpcLatencySpec>();
  if (std::getenv("WI_FIG10_FULL") != nullptr) {
    ldpc.target_ber = 1e-5;
    ldpc.min_errors = 200;
    ldpc.max_codewords = 40000;
    ldpc.max_bp_iterations = 100;
  }
  std::cout << "# Fig. 10 — required Eb/N0 @ BER " << ldpc.target_ber
            << " vs decoding latency [information bits]\n"
            << "# (4,8)-regular; LDPC-CC: B0=[2,2], B1=B2=[1,1]; "
               "LDPC-BC: B=[4,4]\n\n";
  const RunResult result = engine.run(spec);
  print_result(std::cout, result);
  std::cout << "\n# checks: required Eb/N0 falls with W (decoder-side "
               "knob) and with N (code strength);\n"
            << "# at equal latency the LDPC-CC needs less Eb/N0 than the "
               "LDPC-BC it is derived from\n"
            << "# (paper example at BER 1e-5: ~3 dB at T_WD = 200 for CC "
               "vs T_B = 400 for BC — a 200-bit latency gain)\n";
  return result.ok() ? 0 : 1;
}

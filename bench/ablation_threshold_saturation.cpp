/// \file ablation_threshold_saturation.cpp
/// \brief The asymptotic mechanism behind Fig. 10: spatial coupling
///        saturates the BP threshold towards the MAP threshold — via
///        the registered "ablation_threshold_saturation" scenario.
///
/// Runs exact BEC density evolution on the paper's protographs:
///  - block ensemble B = [4,4]: BP threshold eps* ~ 0.3834;
///  - terminated coupled ensemble B_[1,L] (B0 = [2,2], B1 = B2 = [1,1]):
///    threshold rises with L towards the MAP threshold ~ 0.4977,
/// and reports the termination rate loss, reproducing the trade-off the
/// paper describes below Eq. 3.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result = engine.run(
      ScenarioRegistry::paper().get("ablation_threshold_saturation"));
  std::cout << "# Ablation — BEC threshold saturation of the (4,8) "
               "ensemble\n\n";
  print_result(std::cout, result);
  std::cout << "\n# check: the coupled threshold exceeds the block BP "
               "threshold for every L and approaches the MAP threshold; "
               "the termination rate loss (Eq. 3 remark) shrinks as 1/L "
               "— why Fig. 10's LDPC-CC beats the LDPC-BC it is derived "
               "from at equal structural latency\n";
  return result.ok() ? 0 : 1;
}

/// \file ablation_threshold_saturation.cpp
/// \brief The asymptotic mechanism behind Fig. 10: spatial coupling
///        saturates the BP threshold towards the MAP threshold.
///
/// Runs exact BEC density evolution on the paper's protographs:
///  - block ensemble B = [4,4]: BP threshold eps* ~ 0.3834;
///  - terminated coupled ensemble B_[1,L] (B0 = [2,2], B1 = B2 = [1,1]):
///    threshold rises with L towards the MAP threshold ~ 0.4977,
/// and reports the termination rate loss, reproducing the trade-off the
/// paper describes below Eq. 3.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/fec/density_evolution.hpp"

int main() {
  using namespace wi;
  using namespace wi::fec;

  const BaseMatrix block({{4, 4}});
  const EdgeSpreading spreading = EdgeSpreading::paper_example();

  std::cout << "# Ablation — BEC threshold saturation of the (4,8) "
               "ensemble\n\n";
  const double block_threshold = bec_threshold(block, 1e-4);
  std::cout << "block ensemble B=[4,4] BP threshold: " << block_threshold
            << " (literature: 0.3834; MAP: ~0.4977)\n\n";

  Table table({"L", "coupled_threshold", "gain_vs_block", "rate_terminated",
               "rate_loss"});
  for (const std::size_t termination : {4u, 8u, 16u, 32u, 64u}) {
    const double threshold =
        coupled_bec_threshold(spreading, termination, 1e-4);
    const double rate = 1.0 - static_cast<double>(termination + 2) /
                                  (2.0 * static_cast<double>(termination));
    table.add_row({Table::num(static_cast<long long>(termination)),
                   Table::num(threshold, 4),
                   Table::num(threshold - block_threshold, 4),
                   Table::num(rate, 4), Table::num(0.5 - rate, 4)});
  }
  table.print(std::cout);

  std::cout << "\n# check: the coupled threshold exceeds the block BP "
               "threshold for every L and approaches the MAP threshold; "
               "the termination rate loss (Eq. 3 remark) shrinks as 1/L "
               "— why Fig. 10's LDPC-CC beats the LDPC-BC it is derived "
               "from at equal structural latency\n";
  return 0;
}

/// \file perf_suite.cpp
/// \brief Perf-regression suite for the two hot simulation kernels.
///
/// Every optimized kernel is benchmarked against its frozen
/// pre-optimization twin from wi_perf_baseline in the same process, so
/// the reported ratio is meaningful regardless of machine drift. Paper
/// settings throughout: 4-ASK, M = 5, 20000-symbol Monte-Carlo runs for
/// the sequence rate; the Fig. 8(a) 64-module mesh configurations for
/// the flit simulator. bench_perf_suite --benchmark_min_time=0.01s is
/// the CI smoke invocation; tools/perf_report turns the same kernels
/// into BENCH_perf.json.

#include <benchmark/benchmark.h>

#include "baseline_kernels.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/core/phy_abstraction.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/sim/sim.hpp"

namespace {

const wi::comm::Constellation& ask4() {
  static const wi::comm::Constellation c = wi::comm::Constellation::ask(4);
  return c;
}

wi::comm::SequenceRateOptions paper_options() {
  wi::comm::SequenceRateOptions options;
  options.symbols = 20000;  // PhyAbstraction's per-grid-point setting
  options.seed = 7;
  return options;
}

// --- info_rate_one_bit_sequence: 4-ASK, paper sequence filter, 25 dB ---

void BM_SequenceInfoRate_Baseline(benchmark::State& state) {
  const wi::comm::OneBitOsChannel channel(wi::comm::paper_filter_sequence(),
                                          ask4(), 25.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wi::perf_baseline::info_rate_one_bit_sequence(channel,
                                                      paper_options()));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_SequenceInfoRate_Baseline);

void BM_SequenceInfoRate_Optimized(benchmark::State& state) {
  const wi::comm::OneBitOsChannel channel(wi::comm::paper_filter_sequence(),
                                          ask4(), 25.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wi::comm::info_rate_one_bit_sequence(channel, paper_options()));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_SequenceInfoRate_Optimized);

void BM_SequenceInfoRate_ColdTape(benchmark::State& state) {
  // A fresh seed per iteration defeats the memoized noise tape: this is
  // the cost of the first call for a given (seed, symbols) pair.
  const wi::comm::OneBitOsChannel channel(wi::comm::paper_filter_sequence(),
                                          ask4(), 25.0);
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    wi::comm::SequenceRateOptions options = paper_options();
    options.seed = ++seed;
    benchmark::DoNotOptimize(
        wi::comm::info_rate_one_bit_sequence(channel, options));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_SequenceInfoRate_ColdTape);

// --- mi_one_bit_symbolwise: 4-ASK, paper symbolwise filter, 25 dB ---

void BM_SymbolwiseMi_Baseline(benchmark::State& state) {
  const wi::comm::OneBitOsChannel channel(wi::comm::paper_filter_symbolwise(),
                                          ask4(), 25.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wi::perf_baseline::mi_one_bit_symbolwise(channel));
  }
}
BENCHMARK(BM_SymbolwiseMi_Baseline);

void BM_SymbolwiseMi_Optimized(benchmark::State& state) {
  const wi::comm::OneBitOsChannel channel(wi::comm::paper_filter_symbolwise(),
                                          ask4(), 25.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wi::comm::mi_one_bit_symbolwise(channel));
  }
}
BENCHMARK(BM_SymbolwiseMi_Optimized);

// --- simulate_network: Fig. 8(a) 64-module configurations ---

wi::noc::FlitSimConfig fig08a_config() {
  // The SimEngine DES cross-check settings for fig08a_mesh3d_4x4x4.
  wi::noc::FlitSimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;
  config.seed = 1;
  return config;
}

void BM_FlitSimMesh3d64_Baseline(benchmark::State& state) {
  const wi::noc::Topology topo = wi::noc::Topology::mesh_3d(4, 4, 4);
  const wi::noc::DimensionOrderRouting routing;
  const wi::noc::TrafficPattern traffic = wi::noc::TrafficPattern::uniform(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wi::perf_baseline::simulate_network(
        topo, routing, traffic, 0.3, fig08a_config()));
  }
}
BENCHMARK(BM_FlitSimMesh3d64_Baseline);

void BM_FlitSimMesh3d64_Optimized(benchmark::State& state) {
  const wi::noc::Topology topo = wi::noc::Topology::mesh_3d(4, 4, 4);
  const wi::noc::DimensionOrderRouting routing;
  const wi::noc::TrafficPattern traffic = wi::noc::TrafficPattern::uniform(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wi::noc::simulate_network(
        topo, routing, traffic, 0.3, fig08a_config()));
  }
}
BENCHMARK(BM_FlitSimMesh3d64_Optimized);

void BM_FlitSimMesh2d64_Baseline(benchmark::State& state) {
  const wi::noc::Topology topo = wi::noc::Topology::mesh_2d(8, 8);
  const wi::noc::DimensionOrderRouting routing;
  const wi::noc::TrafficPattern traffic = wi::noc::TrafficPattern::uniform(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wi::perf_baseline::simulate_network(
        topo, routing, traffic, 0.2, fig08a_config()));
  }
}
BENCHMARK(BM_FlitSimMesh2d64_Baseline);

void BM_FlitSimMesh2d64_Optimized(benchmark::State& state) {
  const wi::noc::Topology topo = wi::noc::Topology::mesh_2d(8, 8);
  const wi::noc::DimensionOrderRouting routing;
  const wi::noc::TrafficPattern traffic = wi::noc::TrafficPattern::uniform(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wi::noc::simulate_network(
        topo, routing, traffic, 0.2, fig08a_config()));
  }
}
BENCHMARK(BM_FlitSimMesh2d64_Optimized);

// --- end-to-end: PhyAbstraction SNR-curve build and a SimEngine sweep ---

void BM_PhyAbstractionBuild_Serial(benchmark::State& state) {
  for (auto _ : state) {
    wi::core::PhyAbstraction phy(wi::core::PhyReceiver::kOneBitSequence,
                                 25e9, 2, 1);
    benchmark::DoNotOptimize(phy.info_rate_bpcu(25.0));
  }
}
BENCHMARK(BM_PhyAbstractionBuild_Serial);

void BM_PhyAbstractionBuild_Parallel(benchmark::State& state) {
  // Explicit worker count: threads=0 means hardware_concurrency(),
  // which is 1 on some CI boxes and silently measures the serial loop.
  for (auto _ : state) {
    wi::core::PhyAbstraction phy(wi::core::PhyReceiver::kOneBitSequence,
                                 25e9, 2, 4);
    benchmark::DoNotOptimize(phy.info_rate_bpcu(25.0));
  }
}
BENCHMARK(BM_PhyAbstractionBuild_Parallel);

void BM_EngineNocSweep(benchmark::State& state) {
  // End-to-end declarative path: Fig. 8(a) queueing-model latency table
  // for the 8x8 mesh (analytic model; no DES) through SimEngine.
  const wi::sim::ScenarioRegistry registry = wi::sim::ScenarioRegistry::paper();
  const wi::sim::ScenarioSpec spec = registry.get("fig08a_mesh2d_8x8");
  for (auto _ : state) {
    wi::sim::SimEngine engine;
    const wi::sim::RunResult result = engine.run(spec);
    benchmark::DoNotOptimize(result.table.rows());
  }
}
BENCHMARK(BM_EngineNocSweep);

}  // namespace

BENCHMARK_MAIN();

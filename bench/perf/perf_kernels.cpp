/// \file perf_kernels.cpp
/// \brief google-benchmark microbenchmarks of the library's hot kernels:
///        FFT, BP decoding, window decoding, the queueing model and the
///        flit-level simulator. These quantify the cost of regenerating
///        the paper's figures and catch performance regressions.

#include <benchmark/benchmark.h>

#include "wi/common/rng.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/dsp/fft.hpp"
#include "wi/fec/ber.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/noc/queueing_model.hpp"

namespace {

void BM_Fft4096(benchmark::State& state) {
  std::vector<wi::dsp::cplx> x(4096);
  wi::Rng rng(1);
  for (auto& v : x) v = {rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wi::dsp::fft(x));
  }
}
BENCHMARK(BM_Fft4096);

void BM_BpDecodeBlock(benchmark::State& state) {
  const wi::fec::QcLdpcBlockCode code(wi::fec::BaseMatrix({{4, 4}}),
                                      static_cast<std::size_t>(state.range(0)),
                                      3);
  const wi::fec::BpDecoder decoder(code.parity_check());
  wi::Rng rng(2);
  std::vector<double> llr(code.block_length());
  const double sigma = 0.7;
  for (auto& v : llr) v = 2.0 / (sigma * sigma) * (1.0 + sigma * rng.gaussian());
  wi::fec::BpOptions options;
  options.max_iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(llr, options));
  }
}
BENCHMARK(BM_BpDecodeBlock)->Arg(100)->Arg(400);

void BM_WindowDecode(benchmark::State& state) {
  const wi::fec::LdpcConvolutionalCode code(
      wi::fec::EdgeSpreading::paper_example(), 40, 24, 5);
  const wi::fec::WindowDecoder decoder(code,
                                       static_cast<std::size_t>(state.range(0)));
  wi::Rng rng(3);
  std::vector<double> llr(code.codeword_length());
  const double sigma = 0.7;
  for (auto& v : llr) v = 2.0 / (sigma * sigma) * (1.0 + sigma * rng.gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(llr));
  }
}
BENCHMARK(BM_WindowDecode)->Arg(3)->Arg(8);

void BM_QueueingModelBuild512(benchmark::State& state) {
  const wi::noc::Topology topo = wi::noc::Topology::mesh_3d(8, 8, 8);
  const wi::noc::DimensionOrderRouting routing;
  const wi::noc::TrafficPattern traffic =
      wi::noc::TrafficPattern::uniform(512);
  for (auto _ : state) {
    wi::noc::QueueingModel model(topo, routing, traffic);
    benchmark::DoNotOptimize(model.evaluate(0.2));
  }
}
BENCHMARK(BM_QueueingModelBuild512);

void BM_QueueingModelEval(benchmark::State& state) {
  const wi::noc::Topology topo = wi::noc::Topology::mesh_3d(8, 8, 8);
  const wi::noc::DimensionOrderRouting routing;
  const wi::noc::QueueingModel model(topo, routing,
                                     wi::noc::TrafficPattern::uniform(512));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(0.2));
  }
}
BENCHMARK(BM_QueueingModelEval);

void BM_FlitSim64(benchmark::State& state) {
  const wi::noc::Topology topo = wi::noc::Topology::mesh_3d(4, 4, 4);
  const wi::noc::DimensionOrderRouting routing;
  const wi::noc::TrafficPattern traffic = wi::noc::TrafficPattern::uniform(64);
  wi::noc::FlitSimConfig config;
  config.warmup_cycles = 500;
  config.measure_cycles = 2000;
  config.drain_cycles = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wi::noc::simulate_network(topo, routing, traffic, 0.2, config));
  }
}
BENCHMARK(BM_FlitSim64);

void BM_SymbolwiseMi(benchmark::State& state) {
  const wi::comm::OneBitOsChannel channel(wi::comm::paper_filter_symbolwise(),
                                          wi::comm::Constellation::ask(4),
                                          25.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wi::comm::mi_one_bit_symbolwise(channel));
  }
}
BENCHMARK(BM_SymbolwiseMi);

void BM_SequenceInfoRate(benchmark::State& state) {
  const wi::comm::OneBitOsChannel channel(wi::comm::paper_filter_sequence(),
                                          wi::comm::Constellation::ask(4),
                                          25.0);
  wi::comm::SequenceRateOptions options;
  options.symbols = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wi::comm::info_rate_one_bit_sequence(channel, options));
  }
}
BENCHMARK(BM_SequenceInfoRate)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();

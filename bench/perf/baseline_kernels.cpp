/// \file baseline_kernels.cpp
/// \brief Frozen pre-optimization kernels; see baseline_kernels.hpp.
///
/// Bodies are verbatim copies of src/comm/src/info_rate.cpp and
/// src/noc/src/flit_sim.cpp as they stood before the vectorization PR
/// (modulo namespace and the explicit wi:: qualifications).

#include "baseline_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <vector>

#include "wi/common/math.hpp"
#include "wi/common/rng.hpp"

namespace wi::perf_baseline {

using comm::Constellation;
using comm::OneBitOsChannel;
using comm::SequenceRateOptions;

double mi_one_bit_symbolwise(const OneBitOsChannel& channel) {
  const std::size_t m = channel.samples_per_symbol();
  const std::size_t order = channel.constellation().order();
  const std::size_t patterns = std::size_t{1} << m;
  const auto windows = channel.all_windows();
  const double window_weight = 1.0 / static_cast<double>(windows.size());

  // P(y | x_t = a): marginalise the span-1 interfering symbols.
  std::vector<std::vector<double>> p_y_given_a(
      order, std::vector<double>(patterns, 0.0));
  for (const auto& window : windows) {
    const std::vector<double> z = channel.noiseless_block(window);
    std::vector<double> p1(m);
    for (std::size_t s = 0; s < m; ++s) p1[s] = channel.sample_one_prob(z[s]);
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      double prob = 1.0;
      for (std::size_t s = 0; s < m; ++s) {
        prob *= ((pat >> s) & 1u) ? p1[s] : (1.0 - p1[s]);
      }
      p_y_given_a[window[0]][pat] +=
          prob * window_weight * static_cast<double>(order);
    }
  }
  std::vector<double> p_y(patterns, 0.0);
  for (std::size_t a = 0; a < order; ++a) {
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      p_y[pat] += p_y_given_a[a][pat] / static_cast<double>(order);
    }
  }
  double mi = 0.0;
  for (std::size_t a = 0; a < order; ++a) {
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      const double p = p_y_given_a[a][pat];
      if (p > 0.0 && p_y[pat] > 0.0) {
        mi += (p / static_cast<double>(order)) * std::log2(p / p_y[pat]);
      }
    }
  }
  return std::max(0.0, mi);
}

double conditional_entropy_rate(const OneBitOsChannel& channel) {
  const auto windows = channel.all_windows();
  const std::size_t m = channel.samples_per_symbol();
  double h = 0.0;
  for (const auto& window : windows) {
    const std::vector<double> z = channel.noiseless_block(window);
    for (std::size_t s = 0; s < m; ++s) {
      h += binary_entropy(channel.sample_one_prob(z[s]));
    }
  }
  return h / static_cast<double>(windows.size());
}

double info_rate_one_bit_sequence(const OneBitOsChannel& channel,
                                  const SequenceRateOptions& options) {
  const std::size_t order = channel.constellation().order();
  const std::size_t span = channel.filter().span_symbols();
  const std::size_t states = channel.state_count();
  const std::size_t m = channel.samples_per_symbol();

  // Pre-compute per-branch sample probabilities: branch = (state, input)
  // with state encoding the span-1 previous symbols (most recent in the
  // lowest digit). The emitted window is [input, state digits...].
  const std::size_t branches = states * order;
  std::vector<std::vector<double>> branch_p1(branches, std::vector<double>(m));
  std::vector<std::size_t> branch_next(branches);
  {
    std::vector<std::size_t> window(span);
    for (std::size_t state = 0; state < states; ++state) {
      for (std::size_t input = 0; input < order; ++input) {
        window[0] = input;
        std::size_t rem = state;
        for (std::size_t k = 1; k < span; ++k) {
          window[k] = rem % order;
          rem /= order;
        }
        const std::vector<double> z = channel.noiseless_block(window);
        const std::size_t b = state * order + input;
        for (std::size_t s = 0; s < m; ++s) {
          branch_p1[b][s] = channel.sample_one_prob(z[s]);
        }
        // Next state: shift input into the most-recent digit.
        std::size_t next = input;
        std::size_t mult = order;
        rem = state;
        for (std::size_t k = 1; k + 1 < span; ++k) {
          next += (rem % order) * mult;
          mult *= order;
          rem /= order;
        }
        branch_next[b] = (span > 1) ? next : 0;
      }
    }
  }

  Rng rng(options.seed);
  const auto sim = channel.simulate(options.symbols, rng);

  // Normalised forward recursion over the hidden state for H(Y).
  std::vector<double> alpha(states, 1.0 / static_cast<double>(states));
  std::vector<double> next_alpha(states);
  double log2_py = 0.0;
  const double input_prob = 1.0 / static_cast<double>(order);
  for (std::size_t t = 0; t < options.symbols; ++t) {
    const std::uint32_t pattern = sim.patterns[t];
    std::fill(next_alpha.begin(), next_alpha.end(), 0.0);
    for (std::size_t state = 0; state < states; ++state) {
      const double a = alpha[state];
      if (a <= 0.0) continue;
      for (std::size_t input = 0; input < order; ++input) {
        const std::size_t b = state * order + input;
        double prob = 1.0;
        const auto& p1 = branch_p1[b];
        for (std::size_t s = 0; s < m; ++s) {
          prob *= ((pattern >> s) & 1u) ? p1[s] : (1.0 - p1[s]);
        }
        next_alpha[branch_next[b]] += a * input_prob * prob;
      }
    }
    double norm = 0.0;
    for (const double v : next_alpha) norm += v;
    if (norm <= 0.0) {
      std::fill(next_alpha.begin(), next_alpha.end(),
                1.0 / static_cast<double>(states));
      norm = 1.0;
    }
    log2_py += std::log2(norm);
    for (std::size_t state = 0; state < states; ++state) {
      alpha[state] = next_alpha[state] / norm;
    }
  }
  const double h_y = -log2_py / static_cast<double>(options.symbols);
  // Qualified: ADL on OneBitOsChannel would also find wi::comm's.
  const double h_y_given_x = perf_baseline::conditional_entropy_rate(channel);
  const double rate = h_y - h_y_given_x;
  return std::clamp(rate, 0.0,
                    std::log2(static_cast<double>(order)));
}

namespace {

struct Flit {
  std::size_t dst_router = 0;
  std::size_t dst_module = 0;
  std::uint64_t inject_cycle = 0;
  bool measured = false;
  std::uint64_t ready_cycle = 0;  ///< earliest cycle it can move again
};

/// One FIFO per channel (plus per-router injection FIFOs).
struct Queue {
  std::deque<Flit> flits;
};

}  // namespace

noc::FlitSimResult simulate_network(const noc::Topology& topology,
                                    const noc::Routing& routing,
                                    const noc::TrafficPattern& traffic,
                                    double injection_rate,
                                    const noc::FlitSimConfig& config) {
  using noc::Route;
  using noc::Topology;
  const std::size_t modules = topology.module_count();
  const std::size_t routers = topology.router_count();
  const std::size_t channels = topology.link_count();
  if (traffic.modules() != modules) {
    throw std::invalid_argument("simulate_network: traffic mismatch");
  }

  // Per-destination cumulative distribution per source for fast sampling.
  std::vector<std::vector<double>> cdf(modules, std::vector<double>(modules));
  for (std::size_t s = 0; s < modules; ++s) {
    double acc = 0.0;
    for (std::size_t d = 0; d < modules; ++d) {
      acc += traffic.probability(s, d);
      cdf[s][d] = acc;
    }
  }

  // Next-hop lookup: for (router, dst_router) we ask the routing function
  // on demand and cache the first link of the path.
  std::vector<std::size_t> next_link_cache(routers * routers, Topology::npos);
  auto next_link = [&](std::size_t at, std::size_t dst) {
    std::size_t& cached = next_link_cache[at * routers + dst];
    if (cached == Topology::npos) {
      const Route r = routing.route(topology, at, dst);
      cached = r.empty() ? Topology::npos : r.front();
      if (r.empty()) {
        throw std::logic_error("simulate_network: empty route for transit");
      }
    }
    return cached;
  };

  std::vector<Queue> channel_queue(channels);
  std::vector<Queue> inject_queue(routers);
  std::vector<std::size_t> rr_state(routers, 0);  // round-robin pointer

  // Incoming channel list per router.
  std::vector<std::vector<std::size_t>> in_channels(routers);
  for (std::size_t l = 0; l < channels; ++l) {
    in_channels[topology.link(l).dst].push_back(l);
  }

  Rng rng(config.seed);
  noc::FlitSimResult result;
  double latency_sum = 0.0;

  const std::uint64_t total_cycles = config.warmup_cycles +
                                     config.measure_cycles +
                                     config.drain_cycles;
  const std::uint64_t measure_begin = config.warmup_cycles;
  const std::uint64_t measure_end =
      config.warmup_cycles + config.measure_cycles;

  for (std::uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool in_window = cycle >= measure_begin && cycle < measure_end;
    // 1. Injection: Bernoulli approximation of Poisson arrivals
    //    (injection_rate < 1 per module per cycle).
    if (cycle < measure_end) {
      for (std::size_t m = 0; m < modules; ++m) {
        if (!rng.bernoulli(injection_rate)) continue;
        const double u = rng.uniform();
        std::size_t d = 0;
        while (d + 1 < modules && cdf[m][d] < u) ++d;
        Flit flit;
        flit.dst_module = d;
        flit.dst_router = topology.module_router(d);
        flit.inject_cycle = cycle;
        flit.measured = in_window;
        flit.ready_cycle = cycle;
        if (flit.measured) ++result.injected;
        inject_queue[topology.module_router(m)].flits.push_back(flit);
      }
    }

    // 2. Switch allocation per router: each output channel (and the
    //    ejection port) accepts up to `bandwidth` flits per cycle,
    //    round-robin over the input queues (injection + incoming
    //    channels).
    for (std::size_t r = 0; r < routers; ++r) {
      // Budget per output channel this cycle.
      const auto& outs = topology.out_links(r);
      std::vector<int> budget(outs.size());
      for (std::size_t i = 0; i < outs.size(); ++i) {
        budget[i] = static_cast<int>(topology.link(outs[i]).bandwidth);
        if (budget[i] < 1) budget[i] = 1;
      }
      int eject_budget = 1;

      // Input queue list: index 0 = injection, then incoming channels.
      const std::size_t n_inputs = 1 + in_channels[r].size();
      const std::size_t start = rr_state[r] % n_inputs;
      for (std::size_t k = 0; k < n_inputs; ++k) {
        const std::size_t qi = (start + k) % n_inputs;
        Queue& q = (qi == 0) ? inject_queue[r]
                             : channel_queue[in_channels[r][qi - 1]];
        // Move as many head flits as outputs allow (one per output).
        while (!q.flits.empty()) {
          Flit& flit = q.flits.front();
          if (flit.ready_cycle > cycle) break;
          if (flit.dst_router == r) {
            if (eject_budget <= 0) break;
            --eject_budget;
            // Delivered.
            if (flit.measured) {
              ++result.delivered;
              latency_sum += static_cast<double>(
                  cycle + static_cast<std::uint64_t>(
                              config.router_delay_cycles) -
                  flit.inject_cycle);
            }
            q.flits.pop_front();
            continue;
          }
          const std::size_t l = next_link(r, flit.dst_router);
          // Find the local output index.
          std::size_t oi = 0;
          while (outs[oi] != l) ++oi;
          if (budget[oi] <= 0) break;
          Queue& dst_queue = channel_queue[l];
          if (dst_queue.flits.size() >= config.buffer_depth) break;
          --budget[oi];
          Flit moved = flit;
          // A hop costs router_delay cycles total (pipeline + transfer),
          // matching the analytic model's per-hop latency.
          moved.ready_cycle =
              cycle + static_cast<std::uint64_t>(config.router_delay_cycles);
          dst_queue.flits.push_back(moved);
          q.flits.pop_front();
        }
      }
      rr_state[r] = (rr_state[r] + 1) % n_inputs;
    }
  }

  result.mean_latency_cycles =
      result.delivered == 0 ? 0.0
                            : latency_sum / static_cast<double>(result.delivered);
  result.delivered_per_cycle =
      static_cast<double>(result.delivered) /
      (static_cast<double>(config.measure_cycles) *
       static_cast<double>(modules));
  // Stability: everything measured was eventually delivered.
  result.stable = result.delivered >= result.injected * 995 / 1000;
  return result;
}

}  // namespace wi::perf_baseline

#pragma once
/// \file baseline_kernels.hpp
/// \brief Pre-optimization reference implementations of the two hot
///        simulation kernels (and their symbolwise/entropy siblings),
///        frozen as of the PR that vectorized them.
///
/// They exist for two reasons: the bench/perf suite and tools/perf_report
/// measure the optimized kernels against them in the same process (so
/// reported speedups are immune to machine drift), and
/// tests/perf/test_kernel_identity.cpp asserts the optimized kernels
/// produce bit-identical outputs at fixed seeds. Do not "fix" or speed
/// these up — they are the measurement yardstick.

#include "wi/comm/info_rate.hpp"
#include "wi/noc/flit_sim.hpp"

namespace wi::perf_baseline {

/// Old info_rate_one_bit_sequence: per-branch sample probabilities in
/// nested vectors, m multiplications per branch per symbol, fresh
/// Monte-Carlo simulation on every call.
[[nodiscard]] double info_rate_one_bit_sequence(
    const comm::OneBitOsChannel& channel,
    const comm::SequenceRateOptions& options = {});

/// Old mi_one_bit_symbolwise: per-window 2^m * m product loop.
[[nodiscard]] double mi_one_bit_symbolwise(
    const comm::OneBitOsChannel& channel);

/// Old conditional_entropy_rate: re-enumerates every window.
[[nodiscard]] double conditional_entropy_rate(
    const comm::OneBitOsChannel& channel);

/// Old simulate_network: std::deque queues, per-router per-cycle budget
/// allocation, lazy next-hop cache with an unbounded output-port scan.
[[nodiscard]] noc::FlitSimResult simulate_network(
    const noc::Topology& topology, const noc::Routing& routing,
    const noc::TrafficPattern& traffic, double injection_rate,
    const noc::FlitSimConfig& config = {});

}  // namespace wi::perf_baseline

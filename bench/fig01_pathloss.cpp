/// \file fig01_pathloss.cpp
/// \brief Reproduces Fig. 1: theoretical pathloss and (synthetic)
///        measurement data for board-to-board communication, 220-245 GHz.
///
/// Series printed:
///  - computed pathloss (n = 2.000), free-space model
///  - synthetic free-space measurement (horn-horn, NWA)
///  - computed pathloss (n = 2.0454), parallel copper boards
///  - synthetic copper-board measurement (diagonal links)
///  - reference lines: free-space PL, +2x9.5 dB antenna gain,
///    +2x12 dB array gain
/// plus the fitted pathloss exponents, which must land at n = 2.000 and
/// n = 2.0454 as reported in the paper.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/rf/campaign.hpp"
#include "wi/rf/pathloss.hpp"

int main() {
  using namespace wi;
  const double carrier_hz = 232.5e9;

  rf::CampaignConfig freespace;
  freespace.distances_m = rf::default_distance_grid_m();
  freespace.copper_boards = false;
  freespace.vna.seed = 2013;
  const auto points_free = rf::run_campaign(freespace);
  const auto fit_free = rf::fit_path_loss(points_free, 0.05);

  rf::CampaignConfig copper = freespace;
  copper.copper_boards = true;
  const auto points_copper = rf::run_campaign(copper);
  const auto fit_copper = rf::fit_path_loss(points_copper, 0.05);

  const rf::PathLossModel model_free =
      rf::PathLossModel::free_space(carrier_hz);
  const rf::PathLossModel model_copper(
      fit_copper.reference_loss_db, fit_copper.exponent, 0.05);

  std::cout << "# Fig. 1 — pathloss vs distance, board-to-board @ "
            << carrier_hz / 1e9 << " GHz\n";
  std::cout << "# fitted exponents: free space n = " << fit_free.exponent
            << " (paper: 2.000), copper boards n = " << fit_copper.exponent
            << " (paper: 2.0454)\n\n";

  Table table({"dist_mm", "model_n2.000_dB", "meas_free_dB",
               "model_n2.045_dB", "meas_copper_dB", "free+2x9.5dB",
               "free+2x12dB"});
  for (std::size_t i = 0; i < points_free.size(); ++i) {
    const double d = points_free[i].distance_m;
    const double pl_free = model_free.loss_db(d);
    table.add_row({Table::num(d * 1e3, 0), Table::num(pl_free, 2),
                   Table::num(points_free[i].pathloss_db, 2),
                   Table::num(model_copper.loss_db(d), 2),
                   Table::num(points_copper[i].pathloss_db, 2),
                   Table::num(pl_free - 19.0, 2),
                   Table::num(pl_free - 24.0, 2)});
  }
  table.print(std::cout);

  std::cout << "\n# check: measured points track the n=2 model; copper "
               "boards add ~0.45 dB/decade (n = "
            << fit_copper.exponent << ")\n";
  return 0;
}

/// \file fig01_pathloss.cpp
/// \brief Reproduces Fig. 1: theoretical pathloss and (synthetic)
///        measurement data for board-to-board communication, 220-245
///        GHz, via the registered "fig01_pathloss" scenario. The fitted
///        exponents must land at n = 2.000 (free space) and n = 2.0454
///        (parallel copper boards) as reported in the paper; they
///        arrive as notes on the result.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("fig01_pathloss"));
  std::cout << "# Fig. 1 — pathloss vs distance, board-to-board @ 232.5 "
               "GHz\n\n";
  print_result(std::cout, result);
  std::cout << "\n# check: measured points track the n=2 model; copper "
               "boards add ~0.45 dB/decade\n";
  return result.ok() ? 0 : 1;
}

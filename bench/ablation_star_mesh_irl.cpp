/// \file ablation_star_mesh_irl.cpp
/// \brief Reproduces the Sec. IV remark on fixing the star-mesh: "a
///        common technique is to employ multiple inter-router links
///        (IRLs)... The drawback of this approach is the high area
///        consumption of the routers due to the big number of ports."
///
/// A declarative sweep over the IRL count of the 64-module star-mesh
/// (crossbar-area proxies arrive as notes of the reference scenarios);
/// the 2D and 3D meshes are run as references. The 3D mesh reaches high
/// throughput without the port explosion.

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  const auto& registry = ScenarioRegistry::paper();
  SimEngine engine;

  std::cout << "# Ablation — star-mesh inter-router links vs router "
               "area (64 modules)\n\n";

  // Saturation/area per IRL count: sweep the registered base scenario.
  ScenarioSpec base = registry.get("ablation_star_mesh_irl");
  base.noc.injection_rates = {0.05};  // rows carry the notes' summary
  const SweepAxis irl_axis{
      "irl",
      {1, 2, 3, 4},
      [](ScenarioSpec& spec, double value) {
        spec.noc.topology.irl = static_cast<std::size_t>(value);
      }};
  const RunResult sweep = engine.run_sweep(base, {irl_axis});
  print_result(std::cout, sweep);

  std::cout << "\n## references (see zero-load/saturation/area notes)\n";
  const auto references = engine.run_all({
      registry.get("fig08a_mesh2d_8x8"),
      registry.get("fig08a_mesh3d_4x4x4"),
  });
  bool references_ok = true;
  for (const auto& result : references) {
    std::cout << "\n";
    print_result(std::cout, result);
    references_ok = references_ok && result.ok();
  }

  std::cout << "\n# check: IRLs buy the star-mesh throughput linearly "
               "but the router area grows quadratically with the port "
               "count; the 3D mesh reaches the highest capacity with "
               "modest per-router area — Sec. IV's conclusion\n";
  return (sweep.ok() && references_ok) ? 0 : 1;
}

/// \file ablation_star_mesh_irl.cpp
/// \brief Reproduces the Sec. IV remark on fixing the star-mesh: "a
///        common technique is to employ multiple inter-router links
///        (IRLs)... The drawback of this approach is the high area
///        consumption of the routers due to the big number of ports."
///
/// Sweeps the IRL count of the 64-module star-mesh and compares
/// saturation throughput and the crossbar-area proxy against the 2D and
/// 3D meshes — showing that the 3D mesh reaches high throughput without
/// the port explosion (and scales naturally, which the IRL fix does
/// not).

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/noc/metrics.hpp"
#include "wi/noc/queueing_model.hpp"

int main() {
  using namespace wi;
  using namespace wi::noc;

  const DimensionOrderRouting routing;
  const TrafficPattern uniform = TrafficPattern::uniform(64);

  std::cout << "# Ablation — star-mesh inter-router links vs router "
               "area (64 modules)\n\n";
  Table table({"topology", "saturation", "lat0_cycles", "crossbar_area",
               "area_per_router"});
  auto add = [&](const Topology& topo) {
    const QueueingModel model(topo, routing, uniform);
    const double area = total_router_crossbar_area(topo);
    table.add_row({topo.name(), Table::num(model.saturation_rate(), 3),
                   Table::num(model.zero_load_latency_cycles(), 2),
                   Table::num(area, 0),
                   Table::num(area / static_cast<double>(topo.router_count()),
                              1)});
  };
  for (const std::size_t irl : {1u, 2u, 3u, 4u}) {
    add(Topology::star_mesh_irl(4, 4, 4, irl));
  }
  add(Topology::mesh_2d(8, 8));
  add(Topology::mesh_3d(4, 4, 4));
  table.print(std::cout);

  std::cout << "\n# check: IRLs buy the star-mesh throughput linearly "
               "but the router area grows quadratically with the port "
               "count; the 3D mesh reaches the highest capacity with "
               "modest per-router area — Sec. IV's conclusion\n";
  return 0;
}

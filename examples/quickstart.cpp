/// \file quickstart.cpp
/// \brief 10-line tour of the declarative scenario API.
///
/// The "quickstart_link_rate" scenario spans every layer at once: the
/// Table I link budget, the two-board geometry (100 mm ahead link,
/// 300 mm diagonal), Butler-matrix beamforming and the 1-bit
/// sequence-detection PHY rate curve (the paper's flagship receiver).
/// SimEngine executes it and returns a structured ResultTable — one row
/// per extreme link with the SNR bought by the 10 dBm power budget and
/// the data rate that SNR carries (the paper's target: at least
/// 100 Gbit/s per link with dual polarization). Notes report the
/// required PTX for the 15 dB planning target and the SNR needed for
/// 100 Gbit/s.
///
/// To explore beyond the paper's operating point, copy the spec and
/// override fields before running, e.g.:
///   ScenarioSpec mine = ScenarioRegistry::paper().get("quickstart_link_rate");
///   mine.link.ptx_dbm = 13.0;
///   mine.phy.receiver = core::PhyReceiver::kUnquantized;  // ideal ADC

#include <iostream>

#include "wi/sim/sim.hpp"

int main() {
  using namespace wi::sim;
  SimEngine engine;
  const RunResult result =
      engine.run(ScenarioRegistry::paper().get("quickstart_link_rate"));
  print_result(std::cout, result);
  return result.ok() ? 0 : 1;
}

/// \file quickstart.cpp
/// \brief 30-line tour: size a >200 GHz wireless board-to-board link
///        with the Table I budget and see what data rate it carries.

#include <iostream>

#include "wi/rf/link_budget.hpp"

int main() {
  // Table I defaults: 232.5 GHz carrier, 25 GHz bandwidth, 4x4 arrays.
  const wi::rf::LinkBudget budget;

  // How much transmit power does the worst link (300 mm diagonal,
  // Butler-matrix beamforming) need for a 15 dB receive SNR?
  const double ptx_dbm = budget.required_tx_power_dbm(
      /*target_snr_db=*/15.0, wi::rf::kLongestLink_m,
      /*butler_mismatch=*/true);
  std::cout << "PTX for 15 dB SNR on the 300 mm diagonal link: " << ptx_dbm
            << " dBm\n";

  // And what does 10 dBm of transmit power buy on the 100 mm ahead link?
  const double snr_db =
      budget.snr_db(/*tx_power_dbm=*/10.0, wi::rf::kShortestLink_m,
                    /*butler_mismatch=*/false);
  const double rate_gbps =
      budget.shannon_rate_bps(snr_db, /*dual_polarization=*/true) / 1e9;
  std::cout << "10 dBm on the 100 mm ahead link: SNR " << snr_db
            << " dB -> up to " << rate_gbps
            << " Gbit/s with dual polarization\n"
            << "(the paper's target: at least 100 Gbit/s per link)\n";
  return 0;
}

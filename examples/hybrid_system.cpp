/// \file hybrid_system.cpp
/// \brief End-to-end system design in the spirit of the whole paper:
///        geometry -> link budget -> PHY rate -> coding plan -> NoC
///        evaluation of the wireless multi-board box vs the backplane
///        baseline.

#include <iostream>

#include "wi/core/coding_planner.hpp"
#include "wi/core/geometry.hpp"
#include "wi/core/hybrid_system.hpp"
#include "wi/core/link_planner.hpp"
#include "wi/core/phy_abstraction.hpp"

int main() {
  using namespace wi;
  using namespace wi::core;

  // --- geometry: 4 boards, 4x4 chip-stack nodes each ---
  const BoardGeometry geometry(4, 100.0, 100.0, 4);
  std::cout << "system: " << geometry.board_count() << " boards, "
            << geometry.node_count() << " nodes; links "
            << geometry.shortest_link_mm() << ".."
            << geometry.longest_link_mm() << " mm\n";

  // --- per-link budget with Butler-matrix beamforming ---
  const WirelessLinkPlanner planner(rf::LinkBudgetParams{},
                                    Beamforming::kButlerMatrix);
  const auto links = planner.plan(geometry, /*ptx_dbm=*/20.0,
                                  /*target_snr_db=*/15.0);
  double worst_snr = 1e9;
  double best_snr = -1e9;
  for (const auto& link : links) {
    worst_snr = std::min(worst_snr, link.snr_db);
    best_snr = std::max(best_snr, link.snr_db);
  }
  std::cout << "planned " << links.size() << " wireless links, SNR "
            << worst_snr << ".." << best_snr << " dB at 20 dBm\n";

  // --- PHY abstraction: what rate does the 1-bit receiver deliver? ---
  const PhyAbstraction phy(PhyReceiver::kOneBitSequence);
  // The 1-bit receiver asymptotes at 2 bpcu x 25 GHz x 2 pol = 100
  // Gbit/s; it gets within ~1.5% of that at high SNR.
  std::cout << "1-bit sequence receiver at worst-link SNR: "
            << phy.link_rate_gbps(worst_snr)
            << " Gbit/s (target 100, the 1-bit asymptote)\n";
  std::cout << "SNR needed for 90 Gbit/s: " << phy.required_snr_db(90.0)
            << " dB\n";

  // --- coding: fit the FEC into a 250-information-bit latency budget ---
  const CodingPlanner coding = CodingPlanner::paper_table();
  if (const auto* point = coding.best_within_latency(250.0)) {
    std::cout << "coding plan: LDPC-CC N=" << point->lifting
              << " W=" << point->window << " ("
              << point->latency_info_bits << " bits latency, "
              << point->required_ebn0_db << " dB)\n";
  }

  // --- NoC comparison: wireless box vs backplane box ---
  HybridSystemConfig config;
  config.boards = 4;
  config.mesh_k = 4;
  config.inter_board_fraction = 0.3;
  const HybridComparison cmp = HybridSystemModel(config).compare();
  std::cout << "\nbackplane: capacity " << cmp.backplane.saturation_rate
            << " flits/cycle/module, zero-load "
            << cmp.backplane.zero_load_latency_cycles << " cycles\n";
  std::cout << "wireless:  capacity " << cmp.wireless.saturation_rate
            << " flits/cycle/module, zero-load "
            << cmp.wireless.zero_load_latency_cycles << " cycles\n";
  std::cout << "capacity gain " << cmp.capacity_gain << "x, latency gain "
            << cmp.latency_gain << "x — the wireless links take the load "
            << "off the backplane.\n";
  return 0;
}

/// \file low_latency_coding.cpp
/// \brief The Sec. V workflow: protograph -> edge spreading -> lifted
///        LDPC-CC -> window decoder, demonstrating the latency /
///        performance knob W and the encoder/decoder split (W can change
///        at run time without touching the encoder).

#include <iostream>

#include "wi/common/rng.hpp"
#include "wi/core/coding_planner.hpp"
#include "wi/fec/ber.hpp"
#include "wi/fec/encoder.hpp"

int main() {
  using namespace wi;
  using namespace wi::fec;

  // The paper's ensemble: B = [4,4] spread as B0=[2,2], B1=B2=[1,1].
  const EdgeSpreading spreading = EdgeSpreading::paper_example();
  std::cout << "edge spreading valid (sum Bi = B): "
            << spreading.is_valid_spreading_of(BaseMatrix({{4, 4}}))
            << ", mcc = " << spreading.mcc() << "\n";

  const LdpcConvolutionalCode code(spreading, /*lifting=*/40,
                                   /*termination=*/24, /*seed=*/7);
  std::cout << "LDPC-CC: N=" << code.lifting() << ", L=" << code.termination()
            << ", rate " << code.rate_asymptotic() << " (terminated "
            << code.rate_terminated() << "), codeword "
            << code.codeword_length() << " bits, Tanner girth "
            << code.parity_check().girth() << "\n";

  // Encode a random message and verify the codeword.
  const GaussianEncoder encoder(code.parity_check());
  Rng rng(11);
  std::vector<std::uint8_t> info(encoder.info_length());
  for (auto& b : info) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  const auto codeword = encoder.encode(info);
  std::cout << "encoder: " << encoder.info_length() << " info bits -> "
            << codeword.size() << " code bits, H x = 0: "
            << code.parity_check().in_null_space(codeword) << "\n";

  // The decoder-side latency knob: same code, different window sizes.
  std::cout << "\nwindow size sweep at Eb/N0 = 3 dB:\n";
  for (const std::size_t w : {3u, 4u, 6u, 8u}) {
    BerConfig config;
    config.ebn0_db = 3.0;
    config.min_errors = 40;
    config.max_codewords = 40;
    config.seed = 100 + w;
    const BerResult r = simulate_ber_window(code, w, config);
    std::cout << "  W=" << w << ": latency "
              << window_decoder_latency_bits(w, code.lifting(), code.nv(),
                                             code.rate_asymptotic())
              << " info bits, BER " << r.ber << "\n";
  }

  // System-level planning with the Fig. 10 operating table.
  const core::CodingPlanner planner = core::CodingPlanner::paper_table();
  for (const double budget : {100.0, 200.0, 400.0}) {
    const auto* best = planner.best_within_latency(budget);
    if (best != nullptr) {
      std::cout << "latency budget " << budget << " bits -> "
                << (best->block_code ? "LDPC-BC" : "LDPC-CC") << " N="
                << best->lifting << (best->block_code ? "" : " W=")
                << (best->block_code ? "" : std::to_string(best->window))
                << " @ " << best->required_ebn0_db << " dB\n";
    }
  }
  std::cout << "latency gain of CC over BC at 3.0 dB: "
            << planner.latency_gain_vs_block_bits(3.0)
            << " info bits (paper: 200)\n";
  return 0;
}

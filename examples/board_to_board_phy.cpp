/// \file board_to_board_phy.cpp
/// \brief Full PHY walk-through for one board-to-board link:
///        1. synthesise the 220-245 GHz channel and check it is benign
///           (reflections >= 15 dB below LoS, Sec. II);
///        2. compute the link budget SNR at a power budget (Table I);
///        3. evaluate the 1-bit 5x-oversampling receiver at that SNR:
///           information rates and uncoded symbol error rates for the
///           symbolwise and sequence detectors (Sec. III).

#include <iostream>

#include "wi/comm/detectors.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/rf/channel.hpp"
#include "wi/rf/link_budget.hpp"
#include "wi/rf/vna.hpp"

int main() {
  using namespace wi;

  // --- 1. channel ---
  rf::BoardToBoardScenario scenario;
  scenario.distance_m = 0.1;  // ahead link
  scenario.copper_boards = true;
  const rf::MultipathChannel channel = rf::board_to_board_channel(scenario);
  rf::SyntheticVna vna;
  const rf::ImpulseResponse ir = rf::to_impulse_response(vna.measure(channel));
  std::cout << "channel: worst reflection "
            << rf::worst_reflection_rel_db(ir, 6)
            << " dB below LoS -> treat as AWGN (the paper's conclusion)\n";

  // --- 2. link budget ---
  const rf::LinkBudget budget;
  const double ptx_dbm = 15.0;
  const double snr_db = budget.snr_db(ptx_dbm, scenario.distance_m, false);
  std::cout << "link budget: " << ptx_dbm << " dBm TX -> " << snr_db
            << " dB SNR at the receiver\n";

  // --- 3. one-bit oversampling receiver ---
  const comm::Constellation c4 = comm::Constellation::ask(4);
  const comm::IsiFilter f_seq = comm::paper_filter_sequence();
  const comm::IsiFilter f_sym = comm::paper_filter_symbolwise();

  const comm::OneBitOsChannel ch_seq(f_seq, c4, snr_db);
  const comm::OneBitOsChannel ch_sym(f_sym, c4, snr_db);
  std::cout << "information rates @ " << snr_db << " dB: sequence "
            << comm::info_rate_one_bit_sequence(ch_seq, {40000, 4})
            << " bpcu, symbolwise " << comm::mi_one_bit_symbolwise(ch_sym)
            << " bpcu (unquantized "
            << comm::mi_unquantized_awgn(c4, snr_db) << ")\n";

  const auto ser_viterbi = comm::simulate_ser_viterbi(ch_seq, 20000, 5);
  const auto ser_symbol = comm::simulate_ser_symbolwise(ch_sym, 20000, 5);
  std::cout << "uncoded SER: Viterbi " << ser_viterbi.ser << " ("
            << ser_viterbi.errors << "/" << ser_viterbi.symbols
            << "), symbolwise " << ser_symbol.ser << "\n";

  const double symbol_rate = budget.params().bandwidth_hz;
  std::cout << "net rate with dual polarization: "
            << comm::info_rate_one_bit_sequence(ch_seq, {40000, 6}) *
                   symbol_rate * 2.0 / 1e9
            << " Gbit/s on a 25 GHz channel\n";
  return 0;
}

/// \file noc_design_space.cpp
/// \brief Explore the Fig. 7 topology family for a 64-module many-core
///        SoC: 2D mesh, star-mesh, 3D mesh and ciliated 3D mesh, plus a
///        TSV-constrained 3D mesh. Prints static metrics (hops,
///        bisection, wire length) and dynamic performance (latency,
///        capacity) from the analytic model, cross-checked by the
///        flit-level simulator.

#include <iostream>

#include "wi/common/table.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/noc/metrics.hpp"
#include "wi/noc/queueing_model.hpp"

int main() {
  using namespace wi;
  using namespace wi::noc;

  const std::vector<Topology> candidates = {
      Topology::mesh_2d(8, 8),
      Topology::star_mesh(4, 4, 4),
      Topology::mesh_3d(4, 4, 4),
      Topology::ciliated_mesh_3d(4, 4, 2, 2),
      Topology::partial_vertical_mesh_3d(4, 4, 4, 2, 2.0),
  };

  std::cout << "64-module NoC design space (uniform traffic)\n\n";
  Table table({"topology", "avg_hops", "diam", "bisect", "wire_mm",
               "lat0_cycles", "capacity"});
  for (const auto& topo : candidates) {
    // DOR needs every mesh link; the partial-vertical variant routes
    // around missing TSVs with shortest-path.
    const bool irregular = topo.name().rfind("Partial", 0) == 0;
    const DimensionOrderRouting dor;
    const ShortestPathRouting spr;
    const Routing& routing =
        irregular ? static_cast<const Routing&>(spr)
                  : static_cast<const Routing&>(dor);
    const TopologyMetrics metrics = compute_metrics(topo, routing);
    const QueueingModel model(topo, routing,
                              TrafficPattern::uniform(topo.module_count()));
    table.add_row({topo.name(), Table::num(metrics.average_hops, 2),
                   Table::num(static_cast<long long>(metrics.diameter_hops)),
                   Table::num(metrics.bisection_bandwidth, 1),
                   Table::num(metrics.total_wire_mm, 0),
                   Table::num(model.zero_load_latency_cycles(), 2),
                   Table::num(model.saturation_rate(), 3)});
  }
  table.print(std::cout);

  // Validate one point against the cycle-accurate simulator.
  const Topology mesh3d = Topology::mesh_3d(4, 4, 4);
  const DimensionOrderRouting routing;
  const TrafficPattern uniform = TrafficPattern::uniform(64);
  const QueueingModel model(mesh3d, routing, uniform);
  FlitSimConfig sim_config;
  const FlitSimResult sim =
      simulate_network(mesh3d, routing, uniform, 0.25, sim_config);
  std::cout << "\n3D mesh @ 0.25 flits/cycle/module: analytic "
            << model.evaluate(0.25).mean_latency_cycles << " cycles, DES "
            << sim.mean_latency_cycles << " cycles ("
            << (sim.stable ? "stable" : "UNSTABLE") << ")\n"
            << "\nThe 3D mesh offers the best latency/throughput "
               "trade-off and the shortest wires — Sec. IV's argument "
               "for 3D NiCS.\n";
  return 0;
}

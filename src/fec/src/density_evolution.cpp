#include "wi/fec/density_evolution.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace wi::fec {

namespace {

/// Edge-class bookkeeping: one entry per parallel edge of the base
/// matrix, grouped per check row and per variable column.
struct EdgeClasses {
  struct Edge {
    std::size_t row = 0;
    std::size_t col = 0;
  };
  std::vector<Edge> edges;
  std::vector<std::vector<std::size_t>> row_edges;  ///< per check row
  std::vector<std::vector<std::size_t>> col_edges;  ///< per variable col
};

EdgeClasses build_edges(const BaseMatrix& protograph) {
  EdgeClasses classes;
  classes.row_edges.resize(protograph.rows());
  classes.col_edges.resize(protograph.cols());
  for (std::size_t r = 0; r < protograph.rows(); ++r) {
    for (std::size_t c = 0; c < protograph.cols(); ++c) {
      for (int e = 0; e < protograph.at(r, c); ++e) {
        classes.row_edges[r].push_back(classes.edges.size());
        classes.col_edges[c].push_back(classes.edges.size());
        classes.edges.push_back({r, c});
      }
    }
  }
  return classes;
}

}  // namespace

DensityEvolutionResult evolve_bec(const BaseMatrix& protograph,
                                  double epsilon,
                                  const DensityEvolutionOptions& options) {
  const EdgeClasses classes = build_edges(protograph);
  const std::size_t n_edges = classes.edges.size();

  // x[e]: erasure prob of the variable-to-check message on edge e;
  // y[e]: check-to-variable.
  std::vector<double> x(n_edges, epsilon);
  std::vector<double> y(n_edges, 0.0);

  DensityEvolutionResult result;
  // Stall detection tracks the *total* erasure mass: on long coupled
  // chains the decoding wave moves inward from the terminated ends, so
  // the maximum stays flat for many iterations while the sum keeps
  // falling.
  double prev_sum = 1e300;
  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    // Check update: y_e = 1 - prod_{e' != e in row} (1 - x_{e'}).
    // Row degrees are tiny (<= 8 for the paper's ensembles), so the
    // leave-one-out product is computed explicitly.
    for (std::size_t r = 0; r < classes.row_edges.size(); ++r) {
      const auto& row = classes.row_edges[r];
      for (const std::size_t e : row) {
        double prod = 1.0;
        for (const std::size_t e2 : row) {
          if (e2 == e) continue;
          prod *= 1.0 - x[e2];
        }
        y[e] = 1.0 - prod;
      }
    }
    // Variable update: x_e = epsilon * prod_{e' != e in col} y_{e'}.
    double max_x = 0.0;
    for (std::size_t c = 0; c < classes.col_edges.size(); ++c) {
      const auto& col = classes.col_edges[c];
      for (const std::size_t e : col) {
        double prod = epsilon;
        for (const std::size_t e2 : col) {
          if (e2 == e) continue;
          prod *= y[e2];
        }
        x[e] = prod;
        max_x = std::max(max_x, x[e]);
      }
    }
    if (max_x < options.convergence_erasure) {
      result.converged = true;
      result.residual_erasure = max_x;
      return result;
    }
    double sum_x = 0.0;
    for (const double v : x) sum_x += v;
    if (prev_sum - sum_x < options.stall_delta && iter > 10) {
      result.residual_erasure = max_x;
      return result;  // stalled above the convergence floor
    }
    prev_sum = sum_x;
  }
  double max_x = 0.0;
  for (const double v : x) max_x = std::max(max_x, v);
  result.residual_erasure = max_x;
  return result;
}

double bec_threshold(const BaseMatrix& protograph, double tolerance,
                     const DensityEvolutionOptions& options) {
  double lo = 0.0;   // converges
  double hi = 1.0;   // fails
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (evolve_bec(protograph, mid, options).converged) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double coupled_bec_threshold(const EdgeSpreading& spreading,
                             std::size_t termination, double tolerance,
                             const DensityEvolutionOptions& options) {
  return bec_threshold(spreading.coupled_protograph(termination), tolerance,
                       options);
}

}  // namespace wi::fec

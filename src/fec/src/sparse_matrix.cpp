#include "wi/fec/sparse_matrix.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace wi::fec {

SparseBinaryMatrix::SparseBinaryMatrix(std::size_t rows, std::size_t cols)
    : row_adj_(rows), col_adj_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("SparseBinaryMatrix: empty dimensions");
  }
}

void SparseBinaryMatrix::insert(std::size_t row, std::size_t col) {
  if (row >= rows() || col >= cols()) {
    throw std::out_of_range("SparseBinaryMatrix::insert: index out of range");
  }
  auto& r = row_adj_[row];
  const auto it = std::lower_bound(r.begin(), r.end(), col);
  if (it != r.end() && *it == col) {
    throw std::invalid_argument(
        "SparseBinaryMatrix::insert: duplicate entry (parallel edge)");
  }
  r.insert(it, static_cast<std::uint32_t>(col));
  auto& c = col_adj_[col];
  c.insert(std::lower_bound(c.begin(), c.end(), row),
           static_cast<std::uint32_t>(row));
  ++nonzeros_;
}

bool SparseBinaryMatrix::contains(std::size_t row, std::size_t col) const {
  const auto& r = row_adj_[row];
  return std::binary_search(r.begin(), r.end(), col);
}

std::vector<std::uint8_t> SparseBinaryMatrix::syndrome(
    const std::vector<std::uint8_t>& word) const {
  if (word.size() != cols()) {
    throw std::invalid_argument("syndrome: word length mismatch");
  }
  std::vector<std::uint8_t> s(rows(), 0);
  for (std::size_t r = 0; r < rows(); ++r) {
    std::uint8_t parity = 0;
    for (const std::uint32_t c : row_adj_[r]) parity ^= word[c];
    s[r] = parity;
  }
  return s;
}

bool SparseBinaryMatrix::in_null_space(
    const std::vector<std::uint8_t>& word) const {
  if (word.size() != cols()) {
    throw std::invalid_argument("in_null_space: word length mismatch");
  }
  for (std::size_t r = 0; r < rows(); ++r) {
    std::uint8_t parity = 0;
    for (const std::uint32_t c : row_adj_[r]) parity ^= word[c];
    if (parity) return false;
  }
  return true;
}

std::size_t SparseBinaryMatrix::girth(std::size_t max_girth) const {
  // BFS from every variable node in the bipartite graph; the shortest
  // cycle through a node v is found when BFS reaches a node by two
  // distinct paths. Standard girth BFS with parent-edge tracking.
  const std::size_t n_var = cols();
  const std::size_t n_chk = rows();
  const std::size_t total = n_var + n_chk;  // vars first, then checks
  std::size_t best = max_girth + 2;

  std::vector<int> dist(total);
  std::vector<int> parent(total);
  for (std::size_t start = 0; start < n_var; ++start) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(parent.begin(), parent.end(), -1);
    std::queue<std::size_t> queue;
    dist[start] = 0;
    queue.push(start);
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop();
      if (static_cast<std::size_t>(2 * dist[u]) >= best) break;
      const bool is_var = u < n_var;
      const auto& neighbors = is_var ? col_adj_[u] : row_adj_[u - n_var];
      for (const std::uint32_t raw : neighbors) {
        const std::size_t v = is_var ? (raw + n_var) : raw;
        if (static_cast<int>(v) == parent[u]) continue;
        if (dist[v] == -1) {
          dist[v] = dist[u] + 1;
          parent[v] = static_cast<int>(u);
          queue.push(v);
        } else {
          // Cycle found: length = dist[u] + dist[v] + 1 (odd walks can't
          // happen in a bipartite graph, so this is a genuine cycle).
          const std::size_t cycle =
              static_cast<std::size_t>(dist[u] + dist[v] + 1);
          best = std::min(best, cycle);
        }
      }
    }
    if (best <= 4) break;  // cannot do better in a simple bipartite graph
  }
  return best;
}

}  // namespace wi::fec

#include "wi/fec/window_decoder.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace wi::fec {

WindowDecoder::WindowDecoder(const LdpcConvolutionalCode& code,
                             std::size_t window, BpOptions bp_options)
    : code_(code), window_(window), bp_options_(bp_options) {
  if (window_ < code_.mcc() + 1) {
    throw std::invalid_argument(
        "WindowDecoder: W must be at least mcc + 1");
  }
  window_ = std::min(window_, code_.termination());

  // Precompute the per-position subproblems: the window structure only
  // depends on the position, so the (expensive) Tanner graph and
  // decoder construction happens once, not once per codeword.
  const std::size_t block_bits = code_.block_bits();
  const std::size_t big_l = code_.termination();
  const std::size_t check_block = code_.nc() * code_.lifting();
  const SparseBinaryMatrix& h = code_.parity_check();

  positions_.reserve(big_l);
  for (std::size_t t = 0; t < big_l; ++t) {
    Position pos;
    const std::size_t var_hi = std::min(t + window_, big_l);
    std::size_t chk_hi = t + window_;
    if (var_hi == big_l) chk_hi = big_l + code_.mcc();  // use termination
    chk_hi = std::min(chk_hi, big_l + code_.mcc());

    pos.var_begin = t * block_bits;
    pos.var_end = var_hi * block_bits;
    pos.chk_begin = t * check_block;
    pos.chk_end = chk_hi * check_block;
    pos.commit_end = (var_hi == big_l) ? pos.var_end
                                       : pos.var_begin + block_bits;
    pos.last = (var_hi == big_l);

    SparseBinaryMatrix sub(pos.chk_end - pos.chk_begin,
                           pos.var_end - pos.var_begin);
    for (std::size_t c = pos.chk_begin; c < pos.chk_end; ++c) {
      for (const std::uint32_t v : h.row(c)) {
        if (v >= pos.var_end) {
          throw std::logic_error("WindowDecoder: future variable in window");
        }
        if (v >= pos.var_begin) {
          sub.insert(c - pos.chk_begin, v - pos.var_begin);
        } else {
          // Frozen (already decoded) variable: its value feeds the
          // check's parity target at decode time.
          pos.frozen.push_back({static_cast<std::uint32_t>(c - pos.chk_begin),
                                static_cast<std::uint32_t>(v)});
        }
      }
    }
    pos.decoder = std::make_unique<BpDecoder>(sub);
    positions_.push_back(std::move(pos));
    if (positions_.back().last) break;  // the tail window commits the rest
  }
}

double WindowDecoder::structural_latency_bits() const {
  return window_decoder_latency_bits(window_, code_.lifting(), code_.nv(),
                                     code_.rate_asymptotic());
}

WindowDecodeResult WindowDecoder::decode(
    const std::vector<double>& channel_llr) const {
  if (channel_llr.size() != code_.codeword_length()) {
    throw std::invalid_argument("WindowDecoder: LLR length mismatch");
  }

  WindowDecodeResult result;
  result.hard.assign(channel_llr.size(), 0);

  for (const Position& pos : positions_) {
    std::vector<std::uint8_t> parity(pos.chk_end - pos.chk_begin, 0);
    for (const auto& [check, var] : pos.frozen) {
      parity[check] ^= result.hard[var];
    }
    std::vector<double> sub_llr(
        channel_llr.begin() + static_cast<std::ptrdiff_t>(pos.var_begin),
        channel_llr.begin() + static_cast<std::ptrdiff_t>(pos.var_end));
    const BpResult bp = pos.decoder->decode(sub_llr, bp_options_, &parity);
    ++result.windows_run;
    result.bp_iterations += static_cast<std::size_t>(bp.iterations);
    if (!bp.converged) ++result.unconverged;

    // Commit the target block (everything left, at the final position).
    for (std::size_t v = pos.var_begin; v < pos.commit_end; ++v) {
      result.hard[v] = bp.hard[v - pos.var_begin];
    }
  }
  return result;
}

}  // namespace wi::fec

#include "wi/fec/ldpc_code.hpp"

#include <algorithm>
#include <stdexcept>

#include "wi/common/rng.hpp"

namespace wi::fec {

namespace {

/// Draw `count` distinct shifts in [0, lifting).
ShiftSet draw_shifts(std::size_t count, std::size_t lifting, Rng& rng) {
  if (count > lifting) {
    throw std::invalid_argument("lifting too small for edge multiplicity");
  }
  ShiftSet shifts;
  while (shifts.size() < count) {
    const std::size_t s = rng.uniform_int(lifting);
    if (std::find(shifts.begin(), shifts.end(), s) == shifts.end()) {
      shifts.push_back(s);
    }
  }
  return shifts;
}

/// Insert the circulants of one protograph entry at block (br, bc).
void place_circulants(SparseBinaryMatrix& h, std::size_t block_row,
                      std::size_t block_col, const ShiftSet& shifts,
                      std::size_t lifting) {
  for (const std::size_t shift : shifts) {
    for (std::size_t i = 0; i < lifting; ++i) {
      h.insert(block_row * lifting + i,
               block_col * lifting + (i + shift) % lifting);
    }
  }
}

/// Shifts for every entry of a base matrix: index [r * cols + c].
std::vector<ShiftSet> draw_shift_table(const BaseMatrix& base,
                                       std::size_t lifting, Rng& rng) {
  std::vector<ShiftSet> table(base.rows() * base.cols());
  for (std::size_t r = 0; r < base.rows(); ++r) {
    for (std::size_t c = 0; c < base.cols(); ++c) {
      const int multiplicity = base.at(r, c);
      if (multiplicity > 0) {
        table[r * base.cols() + c] =
            draw_shifts(static_cast<std::size_t>(multiplicity), lifting, rng);
      }
    }
  }
  return table;
}

SparseBinaryMatrix lift_block(const BaseMatrix& base, std::size_t lifting,
                              const std::vector<ShiftSet>& table) {
  SparseBinaryMatrix h(base.rows() * lifting, base.cols() * lifting);
  for (std::size_t r = 0; r < base.rows(); ++r) {
    for (std::size_t c = 0; c < base.cols(); ++c) {
      const auto& shifts = table[r * base.cols() + c];
      if (!shifts.empty()) place_circulants(h, r, c, shifts, lifting);
    }
  }
  return h;
}

}  // namespace

QcLdpcBlockCode::QcLdpcBlockCode(const BaseMatrix& base, std::size_t lifting,
                                 std::uint64_t seed, int girth_trials)
    : base_(base), lifting_(lifting), h_(1, 1) {
  if (lifting == 0) throw std::invalid_argument("QcLdpcBlockCode: N >= 1");
  Rng rng(seed);
  std::size_t best_girth = 0;
  for (int trial = 0; trial < std::max(1, girth_trials); ++trial) {
    const auto table = draw_shift_table(base, lifting, rng);
    SparseBinaryMatrix candidate = lift_block(base, lifting, table);
    const std::size_t g = candidate.girth();
    if (g > best_girth) {
      best_girth = g;
      h_ = std::move(candidate);
    }
  }
}

double QcLdpcBlockCode::design_rate() const {
  return 1.0 - static_cast<double>(base_.rows()) /
                   static_cast<double>(base_.cols());
}

LdpcConvolutionalCode::LdpcConvolutionalCode(EdgeSpreading spreading,
                                             std::size_t lifting,
                                             std::size_t termination,
                                             std::uint64_t seed,
                                             int girth_trials)
    : spreading_(std::move(spreading)), lifting_(lifting),
      termination_(termination), h_(1, 1) {
  if (lifting == 0 || termination == 0) {
    throw std::invalid_argument("LdpcConvolutionalCode: N, L >= 1");
  }
  Rng rng(seed);
  const std::size_t rows = (termination_ + mcc()) * nc() * lifting_;
  const std::size_t cols = termination_ * nv() * lifting_;

  std::size_t best_girth = 0;
  for (int trial = 0; trial < std::max(1, girth_trials); ++trial) {
    // One shift table per component; reused at every time instant
    // (time-invariant convolutional lifting).
    std::vector<std::vector<ShiftSet>> tables;
    tables.reserve(mcc() + 1);
    for (std::size_t i = 0; i <= mcc(); ++i) {
      tables.push_back(
          draw_shift_table(spreading_.component(i), lifting_, rng));
    }
    SparseBinaryMatrix candidate(rows, cols);
    for (std::size_t t = 0; t < termination_; ++t) {
      for (std::size_t i = 0; i <= mcc(); ++i) {
        const BaseMatrix& b = spreading_.component(i);
        for (std::size_t r = 0; r < nc(); ++r) {
          for (std::size_t c = 0; c < nv(); ++c) {
            const auto& shifts = tables[i][r * b.cols() + c];
            if (!shifts.empty()) {
              place_circulants(candidate, (t + i) * nc() + r, t * nv() + c,
                               shifts, lifting_);
            }
          }
        }
      }
    }
    // Girth of the time-invariant structure shows up within a few
    // sections; probing a truncated prefix keeps this cheap.
    const std::size_t g = candidate.girth();
    if (g > best_girth) {
      best_girth = g;
      h_ = std::move(candidate);
    }
    if (best_girth >= 8) break;  // good enough for BP
  }
}

double LdpcConvolutionalCode::rate_asymptotic() const {
  return 1.0 - static_cast<double>(nc()) / static_cast<double>(nv());
}

double LdpcConvolutionalCode::rate_terminated() const {
  return 1.0 - static_cast<double>((termination_ + mcc()) * nc()) /
                   static_cast<double>(termination_ * nv());
}

double window_decoder_latency_bits(std::size_t window, std::size_t lifting,
                                   std::size_t nv, double rate) {
  return static_cast<double>(window) * static_cast<double>(lifting) *
         static_cast<double>(nv) * rate;
}

double block_code_latency_bits(std::size_t lifting, std::size_t nv,
                               double rate) {
  return static_cast<double>(lifting) * static_cast<double>(nv) * rate;
}

}  // namespace wi::fec

#include "wi/fec/encoder.hpp"

#include <algorithm>
#include <stdexcept>

namespace wi::fec {

GaussianEncoder::GaussianEncoder(const SparseBinaryMatrix& h)
    : n_cols_(h.cols()), words_per_row_((h.cols() + 63) / 64) {
  const std::size_t m = h.rows();
  std::vector<std::uint64_t> rows(m * words_per_row_, 0);
  for (std::size_t r = 0; r < m; ++r) {
    for (const std::uint32_t c : h.row(r)) {
      rows[r * words_per_row_ + c / 64] |= (std::uint64_t{1} << (c % 64));
    }
  }

  auto get_bit = [&](std::size_t r, std::size_t c) {
    return (rows[r * words_per_row_ + c / 64] >> (c % 64)) & 1u;
  };
  auto xor_rows = [&](std::size_t dst, std::size_t src) {
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      rows[dst * words_per_row_ + w] ^= rows[src * words_per_row_ + w];
    }
  };

  // Forward elimination with row swaps; reduce fully (RREF).
  std::size_t pivot_row = 0;
  std::vector<char> is_pivot_col(n_cols_, 0);
  for (std::size_t col = 0; col < n_cols_ && pivot_row < m; ++col) {
    std::size_t r = pivot_row;
    while (r < m && !get_bit(r, col)) ++r;
    if (r == m) continue;
    if (r != pivot_row) {
      for (std::size_t w = 0; w < words_per_row_; ++w) {
        std::swap(rows[r * words_per_row_ + w],
                  rows[pivot_row * words_per_row_ + w]);
      }
    }
    for (std::size_t r2 = 0; r2 < m; ++r2) {
      if (r2 != pivot_row && get_bit(r2, col)) xor_rows(r2, pivot_row);
    }
    pivot_cols_.push_back(col);
    is_pivot_col[col] = 1;
    ++pivot_row;
  }
  for (std::size_t c = 0; c < n_cols_; ++c) {
    if (!is_pivot_col[c]) info_cols_.push_back(c);
  }
  rref_.assign(rows.begin(),
               rows.begin() + static_cast<std::ptrdiff_t>(
                                  pivot_cols_.size() * words_per_row_));
}

std::vector<std::uint8_t> GaussianEncoder::encode(
    const std::vector<std::uint8_t>& info) const {
  if (info.size() != info_length()) {
    throw std::invalid_argument("GaussianEncoder::encode: info length");
  }
  std::vector<std::uint8_t> codeword(n_cols_, 0);
  for (std::size_t i = 0; i < info.size(); ++i) {
    codeword[info_cols_[i]] = info[i] & 1;
  }
  // Pivot bit r = sum over non-pivot columns set in RREF row r.
  for (std::size_t r = 0; r < pivot_cols_.size(); ++r) {
    std::uint8_t parity = 0;
    for (std::size_t i = 0; i < info_cols_.size(); ++i) {
      const std::size_t c = info_cols_[i];
      const std::uint64_t bit =
          (rref_[r * words_per_row_ + c / 64] >> (c % 64)) & 1u;
      parity ^= static_cast<std::uint8_t>(bit & codeword[c]);
    }
    codeword[pivot_cols_[r]] = parity;
  }
  return codeword;
}

}  // namespace wi::fec

#include "wi/fec/base_matrix.hpp"

#include <stdexcept>

namespace wi::fec {

BaseMatrix BaseMatrix::zeros(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("BaseMatrix: empty dimensions");
  }
  BaseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_.assign(rows * cols, 0);
  return m;
}

BaseMatrix::BaseMatrix(std::initializer_list<std::vector<int>> rows)
    : BaseMatrix(std::vector<std::vector<int>>(rows)) {}

BaseMatrix::BaseMatrix(const std::vector<std::vector<int>>& rows) {
  if (rows.empty() || rows[0].empty()) {
    throw std::invalid_argument("BaseMatrix: empty initialiser");
  }
  rows_ = rows.size();
  cols_ = rows[0].size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("BaseMatrix: ragged initialiser");
    }
    for (const int v : row) {
      if (v < 0) throw std::invalid_argument("BaseMatrix: negative entry");
      data_.push_back(v);
    }
  }
}

BaseMatrix BaseMatrix::operator+(const BaseMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("BaseMatrix: shape mismatch in +");
  }
  BaseMatrix out = zeros(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

bool BaseMatrix::operator==(const BaseMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

int BaseMatrix::edge_count() const {
  int total = 0;
  for (const int v : data_) total += v;
  return total;
}

std::vector<int> BaseMatrix::row_degrees() const {
  std::vector<int> degrees(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) degrees[r] += at(r, c);
  }
  return degrees;
}

std::vector<int> BaseMatrix::col_degrees() const {
  std::vector<int> degrees(cols_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) degrees[c] += at(r, c);
  }
  return degrees;
}

EdgeSpreading::EdgeSpreading(std::vector<BaseMatrix> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("EdgeSpreading: need at least B0");
  }
  for (const auto& b : components_) {
    if (b.rows() != components_[0].rows() ||
        b.cols() != components_[0].cols()) {
      throw std::invalid_argument("EdgeSpreading: component shape mismatch");
    }
  }
}

EdgeSpreading EdgeSpreading::paper_example() {
  return EdgeSpreading({BaseMatrix({{2, 2}}), BaseMatrix({{1, 1}}),
                        BaseMatrix({{1, 1}})});
}

BaseMatrix EdgeSpreading::total() const {
  BaseMatrix sum = components_[0];
  for (std::size_t i = 1; i < components_.size(); ++i) {
    sum = sum + components_[i];
  }
  return sum;
}

bool EdgeSpreading::is_valid_spreading_of(const BaseMatrix& base) const {
  return total() == base;
}

BaseMatrix EdgeSpreading::coupled_protograph(std::size_t termination) const {
  if (termination == 0) {
    throw std::invalid_argument("coupled_protograph: L must be >= 1");
  }
  const std::size_t block_rows = termination + mcc();
  BaseMatrix out = BaseMatrix::zeros(block_rows * nc(), termination * nv());
  for (std::size_t t = 0; t < termination; ++t) {
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const BaseMatrix& b = components_[i];
      for (std::size_t r = 0; r < nc(); ++r) {
        for (std::size_t c = 0; c < nv(); ++c) {
          out.at((t + i) * nc() + r, t * nv() + c) += b.at(r, c);
        }
      }
    }
  }
  return out;
}

}  // namespace wi::fec

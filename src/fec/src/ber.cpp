#include "wi/fec/ber.hpp"

#include <cmath>

#include "wi/common/rng.hpp"

namespace wi::fec {

namespace {

double noise_sigma(double ebn0_db, double rate) {
  const double ebn0 = std::pow(10.0, ebn0_db / 10.0);
  return std::sqrt(1.0 / (2.0 * rate * ebn0));
}

}  // namespace

BerResult simulate_ber_block(const QcLdpcBlockCode& code,
                             const BerConfig& config) {
  const std::size_t n = code.block_length();
  const double sigma = noise_sigma(config.ebn0_db, code.design_rate());
  const double llr_scale = 2.0 / (sigma * sigma);
  const BpDecoder decoder(code.parity_check());
  Rng rng(config.seed);

  BerResult result;
  std::vector<double> llr(n);
  while (result.codewords < config.max_codewords &&
         result.bit_errors < config.min_errors) {
    for (std::size_t i = 0; i < n; ++i) {
      llr[i] = llr_scale * (1.0 + sigma * rng.gaussian());
    }
    const BpResult bp = decoder.decode(llr, config.bp);
    for (std::size_t i = 0; i < n; ++i) {
      result.bit_errors += bp.hard[i];
    }
    result.bits += n;
    ++result.codewords;
  }
  result.ber = result.bits == 0 ? 0.0
                                : static_cast<double>(result.bit_errors) /
                                      static_cast<double>(result.bits);
  return result;
}

BerResult simulate_ber_window(const LdpcConvolutionalCode& code,
                              std::size_t window, const BerConfig& config) {
  const std::size_t n = code.codeword_length();
  const double sigma = noise_sigma(config.ebn0_db, code.rate_asymptotic());
  const double llr_scale = 2.0 / (sigma * sigma);
  const WindowDecoder decoder(code, window, config.bp);
  Rng rng(config.seed);

  BerResult result;
  std::vector<double> llr(n);
  while (result.codewords < config.max_codewords &&
         result.bit_errors < config.min_errors) {
    for (std::size_t i = 0; i < n; ++i) {
      llr[i] = llr_scale * (1.0 + sigma * rng.gaussian());
    }
    const WindowDecodeResult wd = decoder.decode(llr);
    for (std::size_t i = 0; i < n; ++i) {
      result.bit_errors += wd.hard[i];
    }
    result.bits += n;
    ++result.codewords;
  }
  result.ber = result.bits == 0 ? 0.0
                                : static_cast<double>(result.bit_errors) /
                                      static_cast<double>(result.bits);
  return result;
}

double required_ebn0_db(const std::function<BerResult(double)>& simulate,
                        double target_ber, double lo_db, double hi_db,
                        double step_db) {
  double prev_db = lo_db;
  double prev_log_ber = 0.0;
  bool have_prev = false;
  for (double ebn0 = lo_db; ebn0 <= hi_db + 1e-9; ebn0 += step_db) {
    const BerResult r = simulate(ebn0);
    // A zero-error run is read as "below target" at this point.
    const double ber = (r.bit_errors == 0)
                           ? target_ber / 10.0
                           : r.ber;
    if (ber <= target_ber) {
      if (!have_prev) return ebn0;  // already below target at the start
      // Linear interpolation in log10(BER).
      const double log_target = std::log10(target_ber);
      const double log_cur = std::log10(ber);
      const double frac =
          (prev_log_ber - log_target) / (prev_log_ber - log_cur);
      return prev_db + frac * (ebn0 - prev_db);
    }
    prev_db = ebn0;
    prev_log_ber = std::log10(ber);
    have_prev = true;
  }
  return hi_db;  // censored: target not reached in range
}

}  // namespace wi::fec

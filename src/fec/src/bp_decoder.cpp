#include "wi/fec/bp_decoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wi::fec {

BpDecoder::BpDecoder(const SparseBinaryMatrix& h)
    : n_vars_(h.cols()), n_checks_(h.rows()) {
  check_edge_begin_.resize(n_checks_ + 1, 0);
  for (std::size_t c = 0; c < n_checks_; ++c) {
    check_edge_begin_[c + 1] =
        check_edge_begin_[c] + static_cast<std::uint32_t>(h.row(c).size());
  }
  edge_var_.resize(check_edge_begin_[n_checks_]);
  var_edges_.resize(n_vars_);
  for (std::size_t c = 0; c < n_checks_; ++c) {
    std::uint32_t e = check_edge_begin_[c];
    for (const std::uint32_t v : h.row(c)) {
      edge_var_[e] = v;
      var_edges_[v].push_back(e);
      ++e;
    }
  }
}

BpResult BpDecoder::decode(const std::vector<double>& channel_llr,
                           const BpOptions& options,
                           const std::vector<std::uint8_t>* check_parity) const {
  if (channel_llr.size() != n_vars_) {
    throw std::invalid_argument("BpDecoder::decode: LLR length mismatch");
  }
  if (check_parity != nullptr && check_parity->size() != n_checks_) {
    throw std::invalid_argument("BpDecoder::decode: parity length mismatch");
  }
  const std::size_t n_edges = edge_var_.size();
  std::vector<double> v2c(n_edges);
  std::vector<double> c2v(n_edges, 0.0);

  BpResult result;
  result.hard.assign(n_vars_, 0);
  result.llr_out = channel_llr;

  // Initial variable-to-check messages are the channel LLRs.
  for (std::size_t e = 0; e < n_edges; ++e) {
    v2c[e] = channel_llr[edge_var_[e]];
  }

  const double clip = options.llr_clip;
  auto clipped = [clip](double x) { return std::clamp(x, -clip, clip); };

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;

    // Check node update.
    for (std::size_t c = 0; c < n_checks_; ++c) {
      const std::uint32_t begin = check_edge_begin_[c];
      const std::uint32_t end = check_edge_begin_[c + 1];
      const double target_sign =
          (check_parity != nullptr && (*check_parity)[c]) ? -1.0 : 1.0;
      if (options.min_sum) {
        // Track the two smallest magnitudes and the total sign.
        double min1 = 1e300;
        double min2 = 1e300;
        std::uint32_t min1_edge = begin;
        double sign_product = target_sign;
        for (std::uint32_t e = begin; e < end; ++e) {
          const double m = v2c[e];
          const double mag = std::abs(m);
          if (m < 0.0) sign_product = -sign_product;
          if (mag < min1) {
            min2 = min1;
            min1 = mag;
            min1_edge = e;
          } else if (mag < min2) {
            min2 = mag;
          }
        }
        for (std::uint32_t e = begin; e < end; ++e) {
          const double mag = (e == min1_edge) ? min2 : min1;
          double sign = sign_product;
          if (v2c[e] < 0.0) sign = -sign;
          c2v[e] = clipped(options.min_sum_scale * sign * mag);
        }
      } else {
        // Sum-product via the tanh rule, leave-one-out by division with
        // a guarded fallback when a message saturates.
        double prod = target_sign;
        bool saturated = false;
        for (std::uint32_t e = begin; e < end; ++e) {
          const double t = std::tanh(0.5 * clipped(v2c[e]));
          if (std::abs(t) < 1e-12) saturated = true;
          prod *= t;
        }
        for (std::uint32_t e = begin; e < end; ++e) {
          double t_out;
          const double t_e = std::tanh(0.5 * clipped(v2c[e]));
          if (!saturated && std::abs(t_e) > 1e-12) {
            t_out = prod / t_e;
          } else {
            // Recompute leave-one-out explicitly.
            t_out = target_sign;
            for (std::uint32_t e2 = begin; e2 < end; ++e2) {
              if (e2 == e) continue;
              t_out *= std::tanh(0.5 * clipped(v2c[e2]));
            }
          }
          t_out = std::clamp(t_out, -0.9999999999, 0.9999999999);
          c2v[e] = clipped(2.0 * std::atanh(t_out));
        }
      }
    }

    // Variable node update and posterior.
    for (std::size_t v = 0; v < n_vars_; ++v) {
      double total = channel_llr[v];
      for (const std::uint32_t e : var_edges_[v]) total += c2v[e];
      result.llr_out[v] = total;
      result.hard[v] = total < 0.0 ? 1 : 0;
      for (const std::uint32_t e : var_edges_[v]) {
        v2c[e] = clipped(total - c2v[e]);
      }
    }

    if (options.early_stop) {
      bool satisfied = true;
      for (std::size_t c = 0; c < n_checks_ && satisfied; ++c) {
        std::uint8_t parity = 0;
        for (std::uint32_t e = check_edge_begin_[c];
             e < check_edge_begin_[c + 1]; ++e) {
          parity ^= result.hard[edge_var_[e]];
        }
        const std::uint8_t target =
            (check_parity != nullptr) ? (*check_parity)[c] : 0;
        if (parity != target) satisfied = false;
      }
      if (satisfied) {
        result.converged = true;
        return result;
      }
    }
  }
  // Final syndrome check when early_stop was off or never hit.
  bool satisfied = true;
  for (std::size_t c = 0; c < n_checks_ && satisfied; ++c) {
    std::uint8_t parity = 0;
    for (std::uint32_t e = check_edge_begin_[c]; e < check_edge_begin_[c + 1];
         ++e) {
      parity ^= result.hard[edge_var_[e]];
    }
    const std::uint8_t target =
        (check_parity != nullptr) ? (*check_parity)[c] : 0;
    if (parity != target) satisfied = false;
  }
  result.converged = satisfied;
  return result;
}

}  // namespace wi::fec

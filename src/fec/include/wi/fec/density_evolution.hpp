#pragma once
/// \file density_evolution.hpp
/// \brief Protograph density evolution over the binary erasure channel.
///
/// The asymptotic (N -> infinity) justification for Fig. 10: spatially
/// coupled (convolutional) LDPC ensembles decode up to a *higher*
/// channel-parameter threshold than the block ensemble they are derived
/// from — "threshold saturation". For the paper's (4,8)-regular B =
/// [4,4] ensemble the block BP threshold is eps ~ 0.3834, while the
/// terminated coupled ensemble B_[1,L] approaches the MAP threshold
/// ~ 0.4977 as L grows. BEC density evolution is exact and fast (one
/// erasure probability per edge), so it makes a crisp ablation
/// alongside the Monte-Carlo AWGN results.

#include <cstddef>

#include "wi/fec/base_matrix.hpp"

namespace wi::fec {

/// Density-evolution settings.
struct DensityEvolutionOptions {
  std::size_t max_iterations = 20000;
  double convergence_erasure = 1e-10;  ///< "decoded" when all below this
  double stall_delta = 1e-12;          ///< stop when progress stalls
};

/// Result of running DE at one channel parameter.
struct DensityEvolutionResult {
  bool converged = false;       ///< erasures driven to ~0
  double residual_erasure = 0.0;///< max edge erasure at stop
  std::size_t iterations = 0;
};

/// Run BEC density evolution on a protograph at channel erasure
/// probability `epsilon`. Every parallel edge of the base matrix is
/// tracked as its own edge class.
[[nodiscard]] DensityEvolutionResult evolve_bec(
    const BaseMatrix& protograph, double epsilon,
    const DensityEvolutionOptions& options = {});

/// BP threshold: the largest epsilon (within `tolerance`) for which DE
/// converges, found by bisection on [0, 1].
[[nodiscard]] double bec_threshold(const BaseMatrix& protograph,
                                   double tolerance = 1e-4,
                                   const DensityEvolutionOptions& options = {});

/// Convenience: threshold of the terminated coupled ensemble B_[1,L]
/// built from an edge spreading (Eq. 3).
[[nodiscard]] double coupled_bec_threshold(
    const EdgeSpreading& spreading, std::size_t termination,
    double tolerance = 1e-4, const DensityEvolutionOptions& options = {});

}  // namespace wi::fec

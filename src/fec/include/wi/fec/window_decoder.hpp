#pragma once
/// \file window_decoder.hpp
/// \brief Sliding window decoder for terminated LDPC convolutional codes
///        (Fig. 9 of the paper).
///
/// A window of W coupled blocks slides over the received sequence. To
/// decode the target block y_t the decoder waits for the W-1 succeeding
/// blocks (this wait is the structural latency of Eq. 4) and needs read
/// access to the mcc previously decoded blocks, whose known values are
/// absorbed into per-check parity targets.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "wi/fec/bp_decoder.hpp"
#include "wi/fec/ldpc_code.hpp"

namespace wi::fec {

/// Window decoder statistics.
struct WindowDecodeResult {
  std::vector<std::uint8_t> hard;  ///< decisions for all L blocks
  std::size_t windows_run = 0;     ///< number of window positions
  std::size_t bp_iterations = 0;   ///< summed BP iterations
  std::size_t unconverged = 0;     ///< windows whose BP did not converge
};

/// Sliding window decoder bound to a code and window size W.
class WindowDecoder {
 public:
  /// \param window  W in [mcc+1, L-1] per the paper (larger values are
  ///                clamped to the full code, equivalent to block BP)
  WindowDecoder(const LdpcConvolutionalCode& code, std::size_t window,
                BpOptions bp_options = {});

  /// Decode a full received LLR sequence (length L * N * nv).
  [[nodiscard]] WindowDecodeResult decode(
      const std::vector<double>& channel_llr) const;

  [[nodiscard]] std::size_t window() const { return window_; }

  /// Structural latency, Eq. 4, using the asymptotic code rate.
  [[nodiscard]] double structural_latency_bits() const;

 private:
  /// Precomputed subproblem for one window position (the Tanner graph
  /// of a window only depends on the position, not the codeword).
  struct Position {
    std::size_t var_begin = 0;
    std::size_t var_end = 0;
    std::size_t chk_begin = 0;
    std::size_t chk_end = 0;
    std::size_t commit_end = 0;  ///< decisions committed up to here
    bool last = false;
    /// (local check index, global frozen variable) pairs feeding the
    /// check parity targets from previously decoded blocks.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> frozen;
    std::unique_ptr<BpDecoder> decoder;
  };

  const LdpcConvolutionalCode& code_;
  std::size_t window_;
  BpOptions bp_options_;
  std::vector<Position> positions_;
};

}  // namespace wi::fec

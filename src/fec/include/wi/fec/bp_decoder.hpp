#pragma once
/// \file bp_decoder.hpp
/// \brief Belief-propagation decoding (sum-product and normalised
///        min-sum) on a Tanner graph, with optional per-check parity
///        targets so a window decoder can freeze already-decoded symbols.

#include <cstdint>
#include <vector>

#include "wi/fec/sparse_matrix.hpp"

namespace wi::fec {

/// Decoder settings.
struct BpOptions {
  int max_iterations = 50;
  bool min_sum = false;          ///< normalised min-sum instead of tanh
  double min_sum_scale = 0.75;   ///< normalisation factor
  bool early_stop = true;        ///< stop when the syndrome matches
  double llr_clip = 30.0;        ///< message clipping for stability
};

/// Decoding outcome.
struct BpResult {
  std::vector<std::uint8_t> hard;  ///< hard decisions per variable
  std::vector<double> llr_out;     ///< posterior LLRs
  int iterations = 0;              ///< iterations actually run
  bool converged = false;          ///< syndrome satisfied
};

/// Flooding-schedule BP decoder bound to a parity-check matrix.
///
/// The LLR convention is positive = bit 0 more likely.
class BpDecoder {
 public:
  explicit BpDecoder(const SparseBinaryMatrix& h);

  /// Decode channel LLRs. `check_parity` (optional) gives a target
  /// parity per check (default all zero); used to absorb the known
  /// contribution of frozen variables outside a decoding window.
  [[nodiscard]] BpResult decode(
      const std::vector<double>& channel_llr, const BpOptions& options = {},
      const std::vector<std::uint8_t>* check_parity = nullptr) const;

  [[nodiscard]] std::size_t variable_count() const { return n_vars_; }
  [[nodiscard]] std::size_t check_count() const { return n_checks_; }

 private:
  std::size_t n_vars_;
  std::size_t n_checks_;
  // Edge arrays: edges are grouped by check; per edge the variable it
  // touches, plus per variable the list of its edge ids.
  std::vector<std::uint32_t> check_edge_begin_;  ///< size n_checks+1
  std::vector<std::uint32_t> edge_var_;          ///< size n_edges
  std::vector<std::vector<std::uint32_t>> var_edges_;
};

}  // namespace wi::fec

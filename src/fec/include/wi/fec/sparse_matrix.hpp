#pragma once
/// \file sparse_matrix.hpp
/// \brief Sparse binary matrix / Tanner graph used by the LDPC codecs.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wi::fec {

/// Sparse binary matrix stored as adjacency lists in both orientations
/// (rows = checks, columns = variables for parity-check use).
class SparseBinaryMatrix {
 public:
  SparseBinaryMatrix(std::size_t rows, std::size_t cols);

  /// Set entry (r, c) to 1. Duplicate insertions cancel over GF(2) and
  /// are rejected to keep the Tanner graph simple.
  void insert(std::size_t row, std::size_t col);

  [[nodiscard]] std::size_t rows() const { return row_adj_.size(); }
  [[nodiscard]] std::size_t cols() const { return col_adj_.size(); }
  [[nodiscard]] std::size_t nonzeros() const { return nonzeros_; }

  [[nodiscard]] const std::vector<std::uint32_t>& row(std::size_t r) const {
    return row_adj_[r];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col(std::size_t c) const {
    return col_adj_[c];
  }

  /// True when (row, col) is set (binary search; lists kept sorted).
  [[nodiscard]] bool contains(std::size_t row, std::size_t col) const;

  /// Syndrome H x over GF(2) for a hard-decision word x (0/1 per bit).
  [[nodiscard]] std::vector<std::uint8_t> syndrome(
      const std::vector<std::uint8_t>& word) const;

  /// True when H x = 0.
  [[nodiscard]] bool in_null_space(const std::vector<std::uint8_t>& word) const;

  /// Girth (shortest cycle length) of the Tanner graph, capped at
  /// `max_girth` for tractability; returns max_girth + 2 when no cycle
  /// up to the cap exists. Used by lifting quality tests.
  [[nodiscard]] std::size_t girth(std::size_t max_girth = 12) const;

 private:
  std::vector<std::vector<std::uint32_t>> row_adj_;
  std::vector<std::vector<std::uint32_t>> col_adj_;
  std::size_t nonzeros_ = 0;
};

}  // namespace wi::fec

#pragma once
/// \file ldpc_code.hpp
/// \brief Quasi-cyclic lifted LDPC block and convolutional codes.
///
/// Every 1 in the (convolutional) protograph is replaced by an N x N
/// permutation matrix (Sec. V-A); we use circulant permutations, with an
/// entry of multiplicity e realised as e distinct circulant shifts.
/// LDPC-CC liftings are time-invariant: the same shift set is reused at
/// every time instant, so the terminated parity-check matrix (Eq. 3)
/// inherits the convolutional structure.

#include <cstdint>
#include <vector>

#include "wi/fec/base_matrix.hpp"
#include "wi/fec/sparse_matrix.hpp"

namespace wi::fec {

/// Circulant shifts for one protograph entry (one shift per edge).
using ShiftSet = std::vector<std::size_t>;

/// QC-LDPC block code: lifted protograph.
class QcLdpcBlockCode {
 public:
  /// Random distinct shifts per edge, seeded; among `girth_trials`
  /// candidate liftings the one with the largest Tanner girth is kept.
  QcLdpcBlockCode(const BaseMatrix& base, std::size_t lifting,
                  std::uint64_t seed = 1, int girth_trials = 8);

  [[nodiscard]] const SparseBinaryMatrix& parity_check() const { return h_; }
  [[nodiscard]] const BaseMatrix& base() const { return base_; }
  [[nodiscard]] std::size_t lifting() const { return lifting_; }
  [[nodiscard]] std::size_t block_length() const { return h_.cols(); }
  [[nodiscard]] std::size_t check_count() const { return h_.rows(); }

  /// 1 - nc/nv (actual rate can be marginally higher on rank deficiency).
  [[nodiscard]] double design_rate() const;

 private:
  BaseMatrix base_;
  std::size_t lifting_;
  SparseBinaryMatrix h_;
};

/// Terminated protograph-based LDPC convolutional code (Sec. V-A).
class LdpcConvolutionalCode {
 public:
  /// \param spreading    edge spreading (B_0..B_mcc), Eq. 2
  /// \param lifting      permutation size N
  /// \param termination  L coupled blocks
  LdpcConvolutionalCode(EdgeSpreading spreading, std::size_t lifting,
                        std::size_t termination, std::uint64_t seed = 1,
                        int girth_trials = 8);

  [[nodiscard]] const SparseBinaryMatrix& parity_check() const { return h_; }
  [[nodiscard]] const EdgeSpreading& spreading() const { return spreading_; }
  [[nodiscard]] std::size_t lifting() const { return lifting_; }       ///< N
  [[nodiscard]] std::size_t termination() const { return termination_; } ///< L
  [[nodiscard]] std::size_t mcc() const { return spreading_.mcc(); }
  [[nodiscard]] std::size_t nc() const { return spreading_.nc(); }
  [[nodiscard]] std::size_t nv() const { return spreading_.nv(); }

  /// Bits per coupled block (N nv).
  [[nodiscard]] std::size_t block_bits() const { return lifting_ * nv(); }
  /// Total codeword length L N nv.
  [[nodiscard]] std::size_t codeword_length() const {
    return termination_ * block_bits();
  }

  /// Asymptotic (unterminated) rate 1 - nc/nv; the paper's R.
  [[nodiscard]] double rate_asymptotic() const;
  /// Terminated rate 1 - (L+mcc)nc / (L nv) — shows the termination loss.
  [[nodiscard]] double rate_terminated() const;

 private:
  EdgeSpreading spreading_;
  std::size_t lifting_;
  std::size_t termination_;
  SparseBinaryMatrix h_;
};

/// Structural latency of a window decoder, Eq. 4:
/// T_WD = W * N * nv * R   [information bits].
[[nodiscard]] double window_decoder_latency_bits(std::size_t window,
                                                 std::size_t lifting,
                                                 std::size_t nv, double rate);

/// Structural latency of a block code, Eq. 5: T_B = N * nv * R.
[[nodiscard]] double block_code_latency_bits(std::size_t lifting,
                                             std::size_t nv, double rate);

}  // namespace wi::fec

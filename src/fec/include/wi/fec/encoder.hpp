#pragma once
/// \file encoder.hpp
/// \brief Systematic LDPC encoder via Gaussian elimination over GF(2).
///
/// Works for any parity-check matrix (block codes and terminated
/// convolutional codes alike): the elimination identifies an information
/// set (the non-pivot columns) and expresses every pivot bit as a parity
/// of information bits. Performance studies use the all-zero codeword
/// (the channel and decoder are symmetric), so this encoder mainly backs
/// functional tests and the examples.

#include <cstdint>
#include <vector>

#include "wi/fec/sparse_matrix.hpp"

namespace wi::fec {

/// GF(2) Gaussian-elimination encoder.
class GaussianEncoder {
 public:
  explicit GaussianEncoder(const SparseBinaryMatrix& h);

  /// Rank of H (= number of dependent/pivot bit positions).
  [[nodiscard]] std::size_t rank() const { return pivot_cols_.size(); }

  /// Number of free information bits (n - rank).
  [[nodiscard]] std::size_t info_length() const {
    return n_cols_ - pivot_cols_.size();
  }

  /// Codeword length n.
  [[nodiscard]] std::size_t block_length() const { return n_cols_; }

  /// Columns carrying information bits, ascending.
  [[nodiscard]] const std::vector<std::size_t>& info_positions() const {
    return info_cols_;
  }

  /// Encode: place `info` at the information positions, solve the pivot
  /// positions so that H x = 0. info.size() must equal info_length().
  [[nodiscard]] std::vector<std::uint8_t> encode(
      const std::vector<std::uint8_t>& info) const;

 private:
  std::size_t n_cols_;
  std::size_t words_per_row_;
  std::vector<std::size_t> pivot_cols_;  ///< pivot column per RREF row
  std::vector<std::size_t> info_cols_;   ///< non-pivot columns
  std::vector<std::uint64_t> rref_;      ///< RREF rows, bit-packed
};

}  // namespace wi::fec

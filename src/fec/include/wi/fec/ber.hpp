#pragma once
/// \file ber.hpp
/// \brief Monte-Carlo bit-error-rate simulation over BPSK/AWGN and the
///        required-Eb/N0 search used for Fig. 10.
///
/// Simulations transmit the all-zero codeword — valid because the code is
/// linear and both channel and decoder are symmetric — and count decoded
/// ones as bit errors. The AWGN noise variance per BPSK symbol is
/// sigma^2 = 1 / (2 R Eb/N0), with R the code's design rate (the paper
/// normalises Eb by the asymptotic rate 1/2).

#include <cstdint>
#include <functional>
#include <vector>

#include "wi/fec/bp_decoder.hpp"
#include "wi/fec/ldpc_code.hpp"
#include "wi/fec/window_decoder.hpp"

namespace wi::fec {

/// Monte-Carlo settings for one BER point.
struct BerConfig {
  double ebn0_db = 2.0;
  std::size_t min_errors = 50;       ///< stop after this many bit errors
  std::size_t max_codewords = 2000;  ///< hard cap on simulated codewords
  std::uint64_t seed = 1;
  BpOptions bp;
};

/// One measured BER point.
struct BerResult {
  double ber = 0.0;
  std::size_t bit_errors = 0;
  std::size_t bits = 0;
  std::size_t codewords = 0;
};

/// BER of a QC-LDPC block code under full BP.
[[nodiscard]] BerResult simulate_ber_block(const QcLdpcBlockCode& code,
                                           const BerConfig& config);

/// BER of a terminated LDPC-CC under sliding window decoding.
[[nodiscard]] BerResult simulate_ber_window(const LdpcConvolutionalCode& code,
                                            std::size_t window,
                                            const BerConfig& config);

/// Required Eb/N0 [dB] to reach `target_ber`: steps up from `lo_db` in
/// `step_db` increments until the simulated BER drops below target, then
/// interpolates linearly in log10(BER). Returns `hi_db` when the target
/// is not reached within the range (reported as a censored point).
[[nodiscard]] double required_ebn0_db(
    const std::function<BerResult(double)>& simulate, double target_ber,
    double lo_db, double hi_db, double step_db = 0.25);

}  // namespace wi::fec

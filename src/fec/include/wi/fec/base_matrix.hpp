#pragma once
/// \file base_matrix.hpp
/// \brief Protograph base matrices and edge spreading (Eqs. 2 and 3).
///
/// A protograph with nc check and nv variable nodes is represented by its
/// bi-adjacency (base) matrix B of edge multiplicities. An LDPC
/// convolutional code spreads the edges of B over component matrices
/// B_0..B_mcc with sum_i B_i = B (Eq. 2); terminating after L time
/// instants yields the convolutional protograph B_[1,L] of Eq. 3.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace wi::fec {

/// Dense small integer matrix of edge multiplicities.
class BaseMatrix {
 public:
  BaseMatrix() = default;
  /// All-`fill` matrix of the given shape.
  [[nodiscard]] static BaseMatrix zeros(std::size_t rows, std::size_t cols);
  /// From a row-major initialiser, e.g. {{2,2}} for B0 = [2,2].
  explicit BaseMatrix(const std::vector<std::vector<int>>& rows);
  /// Brace-friendly overload: BaseMatrix({{4, 4}}).
  BaseMatrix(std::initializer_list<std::vector<int>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] int at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  int& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  /// Element-wise sum; dimensions must match.
  [[nodiscard]] BaseMatrix operator+(const BaseMatrix& other) const;
  [[nodiscard]] bool operator==(const BaseMatrix& other) const;

  /// Total number of edges.
  [[nodiscard]] int edge_count() const;

  /// Row degrees (check degrees) and column degrees (variable degrees).
  [[nodiscard]] std::vector<int> row_degrees() const;
  [[nodiscard]] std::vector<int> col_degrees() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<int> data_;
};

/// Edge spreading B -> (B_0, ..., B_mcc).
class EdgeSpreading {
 public:
  /// \param components  B_0 first; all the same shape; at least one.
  explicit EdgeSpreading(std::vector<BaseMatrix> components);

  /// The paper's running example: B = [4,4] split as B0 = [2,2],
  /// B1 = B2 = [1,1] ((4,8)-regular, mcc = 2, rate 1/2).
  [[nodiscard]] static EdgeSpreading paper_example();

  [[nodiscard]] std::size_t mcc() const { return components_.size() - 1; }
  [[nodiscard]] std::size_t nc() const { return components_[0].rows(); }
  [[nodiscard]] std::size_t nv() const { return components_[0].cols(); }
  [[nodiscard]] const BaseMatrix& component(std::size_t i) const {
    return components_[i];
  }

  /// sum_i B_i (must equal the original B per Eq. 2).
  [[nodiscard]] BaseMatrix total() const;

  /// Validates Eq. 2 against a target base matrix.
  [[nodiscard]] bool is_valid_spreading_of(const BaseMatrix& base) const;

  /// Convolutional protograph B_[1,L] of Eq. 3:
  /// ((L + mcc) nc) x (L nv) with component i at block row t+i, column t.
  [[nodiscard]] BaseMatrix coupled_protograph(std::size_t termination) const;

 private:
  std::vector<BaseMatrix> components_;
};

}  // namespace wi::fec

#pragma once
/// \file quadrature.hpp
/// \brief Gauss–Hermite quadrature for expectations over Gaussian noise.
///
/// Used by the unquantized mutual-information reference curve of Fig. 6:
/// E[g(Z)] with Z ~ N(0,1) is approximated by
///   sum_i w_i / sqrt(pi) * g(sqrt(2) x_i)
/// where (x_i, w_i) are the Gauss–Hermite nodes and weights.

#include <cstddef>
#include <functional>
#include <vector>

namespace wi {

/// Nodes and weights of an n-point Gauss–Hermite rule (weight e^{-x^2}).
struct GaussHermiteRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Computes the n-point rule via Newton iteration on the Hermite
/// polynomials (Golub–Welsch-equivalent accuracy for n <= 128).
[[nodiscard]] GaussHermiteRule gauss_hermite(std::size_t n);

/// Thread-safe memoized rule keyed by node count: the Newton solve is
/// O(n^2 * iterations) and the hot callers (mi_unquantized_awgn on every
/// SNR-grid point) always reuse the same handful of n values. The
/// returned reference stays valid for the lifetime of the process.
[[nodiscard]] const GaussHermiteRule& gauss_hermite_cached(std::size_t n);

/// E[g(Z)] for Z ~ N(mean, stddev^2) using an n-point rule.
[[nodiscard]] double gaussian_expectation(
    const std::function<double(double)>& g, double mean, double stddev,
    std::size_t n = 64);

}  // namespace wi

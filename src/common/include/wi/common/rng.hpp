#pragma once
/// \file rng.hpp
/// \brief Deterministic, fast random number generation.
///
/// All stochastic components of the library take an explicit seed so every
/// experiment is reproducible. The generator is xoshiro256++ (public
/// domain algorithm by Blackman & Vigna), which is much faster than
/// std::mt19937_64 and has excellent statistical quality for simulation
/// workloads.

#include <cstdint>
#include <limits>

namespace wi {

/// xoshiro256++ pseudo random generator with convenience distributions.
///
/// Satisfies the C++ `UniformRandomBitGenerator` concept, so it can also be
/// plugged into `<random>` distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-seed the generator (same expansion as the constructor).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n), n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal sample (Box–Muller with caching).
  double gaussian();

  /// Normal sample with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Number of arrivals of a Poisson process with the given mean
  /// (Knuth's method for small means, normal approximation for large).
  std::uint64_t poisson(double mean);

  /// Exponential sample with the given rate (mean 1/rate).
  double exponential(double rate);

 private:
  std::uint64_t next();

  std::uint64_t s_[4]{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace wi

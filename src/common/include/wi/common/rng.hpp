#pragma once
/// \file rng.hpp
/// \brief Deterministic, fast random number generation.
///
/// All stochastic components of the library take an explicit seed so every
/// experiment is reproducible. The generator is xoshiro256++ (public
/// domain algorithm by Blackman & Vigna), which is much faster than
/// std::mt19937_64 and has excellent statistical quality for simulation
/// workloads.

#include <cmath>
#include <cstdint>
#include <limits>

#include "wi/common/constants.hpp"

namespace wi {

/// xoshiro256++ pseudo random generator with convenience distributions.
///
/// Satisfies the C++ `UniformRandomBitGenerator` concept, so it can also be
/// plugged into `<random>` distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-seed the generator (same expansion as the constructor).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  ///
  /// The distribution helpers below are defined inline: they sit on the
  /// innermost loops of the Monte-Carlo kernels (one-bit channel
  /// simulation, flit injection), where the call overhead of an
  /// out-of-line definition is measurable. The arithmetic is unchanged,
  /// so every seeded stream is bit-identical to the out-of-line version.
  double uniform() {
    // 53 random mantissa bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n), n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's unbiased bounded generation (rejection on the tail).
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      const __uint128_t m = static_cast<__uint128_t>(r) * n;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Standard normal sample (Box–Muller with caching).
  double gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    // Box–Muller; u1 is kept away from 0 to avoid log(0).
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    cached_gaussian_ = radius * std::sin(kTwoPi * u2);
    has_cached_gaussian_ = true;
    return radius * std::cos(kTwoPi * u2);
  }

  /// Normal sample with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Raw 64-bit generator step. Consumes exactly one draw, the same
  /// draw uniform()/bernoulli() would consume: uniform() of that step
  /// is (raw() >> 11) * 0x1.0p-53, and bernoulli(p) of that step is
  /// (raw() >> 11) < ceil(p * 2^53) — the scaling by a power of two is
  /// exact, so batch consumers can test in integer space and stay
  /// bit-compatible with the double path.
  std::uint64_t raw() { return next(); }

  /// Number of arrivals of a Poisson process with the given mean
  /// (Knuth's method for small means, normal approximation for large).
  std::uint64_t poisson(double mean);

  /// Exponential sample with the given rate (mean 1/rate).
  double exponential(double rate);

 private:
  static std::uint64_t rotl64(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl64(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl64(s_[3], 45);
    return result;
  }

  std::uint64_t s_[4]{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace wi

#pragma once
/// \file units.hpp
/// \brief Unit conversions used throughout the library.
///
/// All quantities carry their unit in the identifier (`*_db`, `*_dbm`,
/// `*_hz`, `*_mm`, ...). These helpers convert between logarithmic and
/// linear domains and between power conventions.

#include <cmath>

namespace wi {

/// Convert a linear power ratio to decibels.
[[nodiscard]] inline double lin_to_db(double linear) {
  return 10.0 * std::log10(linear);
}

/// Convert decibels to a linear power ratio.
[[nodiscard]] inline double db_to_lin(double db) {
  return std::pow(10.0, db / 10.0);
}

/// Convert an amplitude (voltage) ratio to decibels (20 log10).
[[nodiscard]] inline double amp_to_db(double amplitude) {
  return 20.0 * std::log10(amplitude);
}

/// Convert decibels to an amplitude (voltage) ratio.
[[nodiscard]] inline double db_to_amp(double db) {
  return std::pow(10.0, db / 20.0);
}

/// Convert power in watt to dBm.
[[nodiscard]] inline double watt_to_dbm(double watt) {
  return 10.0 * std::log10(watt) + 30.0;
}

/// Convert power in dBm to watt.
[[nodiscard]] inline double dbm_to_watt(double dbm) {
  return std::pow(10.0, (dbm - 30.0) / 10.0);
}

/// Convert millimetres to metres.
[[nodiscard]] inline double mm_to_m(double mm) { return mm * 1e-3; }

/// Convert metres to millimetres.
[[nodiscard]] inline double m_to_mm(double m) { return m * 1e3; }

/// Convert gigahertz to hertz.
[[nodiscard]] inline double ghz_to_hz(double ghz) { return ghz * 1e9; }

/// Convert hertz to gigahertz.
[[nodiscard]] inline double hz_to_ghz(double hz) { return hz * 1e-9; }

}  // namespace wi

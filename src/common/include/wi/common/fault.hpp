#pragma once
/// \file fault.hpp
/// \brief Deterministic, seed-driven fault injection shared by the NoC
///        simulator and the wi_serve chaos hooks.
///
/// Every fault decision is a pure function of (seed, stream, index)
/// through a SplitMix64 finalizer chain: no shared RNG state, no draw
/// ordering. A FaultSchedule derived from the same FaultSpec is
/// therefore bit-identical regardless of thread count, iteration order
/// or how many other decisions were made first — the property the
/// campaign statistical goldens and the 1-vs-N-thread identity tests
/// pin down. Injection points test FaultSpec::enabled() (or a null
/// injector pointer) up front, so the disabled path costs one branch.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "wi/common/status.hpp"

namespace wi::fault {

/// SplitMix64 finalizer: one high-quality 64-bit mix step.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Decision streams: each fault site draws from its own stream so the
/// same seed never correlates unrelated decisions. Values are part of
/// the golden contract — append, never renumber.
enum class Stream : std::uint64_t {
  kLinkFail = 1,      ///< does link i fail at all?
  kLinkCycle = 2,     ///< at which cycle does link i fail?
  kRouterFail = 3,    ///< does router i fail at all?
  kRouterCycle = 4,   ///< at which cycle does router i fail?
  kStoreFail = 5,     ///< wi_serve: fail the i-th ResultStore op
  kStoreDelay = 6,    ///< wi_serve: delay the i-th ResultStore op
  kStoreCorrupt = 7,  ///< wi_serve: corrupt the i-th store entry
  kConnDrop = 8,      ///< wi_serve: drop the i-th response on the floor
  kConnStall = 9,     ///< wi_serve: stall the i-th response write
  kRetryJitter = 10,  ///< client: backoff jitter of the i-th retry
  kChaosShape = 11,   ///< wi_loadgen: per-request chaos shaping
};

/// The derivation primitive: hash of (seed, stream, index), stateless
/// and order-free.
[[nodiscard]] constexpr std::uint64_t derive(std::uint64_t seed,
                                             Stream stream,
                                             std::uint64_t index) {
  return splitmix64(
      splitmix64(splitmix64(seed) ^ static_cast<std::uint64_t>(stream)) ^
      index);
}

/// Top 53 bits of a hash as a double in [0, 1).
[[nodiscard]] constexpr double unit_interval(std::uint64_t hash) {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

/// One Bernoulli fault decision: derive + threshold.
[[nodiscard]] constexpr bool decide(std::uint64_t seed, Stream stream,
                                    std::uint64_t index, double rate) {
  return rate > 0.0 && unit_interval(derive(seed, stream, index)) < rate;
}

/// Declarative fault model of one simulation: independent per-entity
/// failure probabilities plus the activation window (as fractions of
/// the simulated horizon) inside which each failure strikes.
struct FaultSpec {
  double link_fail_rate = 0.0;    ///< P(any given link dies)
  double router_fail_rate = 0.0;  ///< P(any given router dies)
  double window_begin = 0.0;      ///< earliest activation [0,1] of horizon
  double window_end = 0.5;        ///< latest activation [0,1] of horizon
  std::uint64_t seed = 1;         ///< fault stream seed (independent of
                                  ///< the traffic seed)

  /// False means every injection point short-circuits: the simulation
  /// takes the exact legacy code path.
  [[nodiscard]] bool enabled() const {
    return link_fail_rate > 0.0 || router_fail_rate > 0.0;
  }

  [[nodiscard]] Status validate(const std::string& context) const;
};

/// One scheduled failure.
struct FaultEvent {
  enum class Kind : std::uint8_t { kLink = 0, kRouter = 1 };
  Kind kind = Kind::kLink;
  std::uint32_t index = 0;      ///< link or router index
  std::uint64_t at_cycle = 0;   ///< activation cycle
};

/// The materialized schedule: every failing entity with its activation
/// cycle, sorted by (at_cycle, kind, index).
struct FaultSchedule {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t links_failed() const;
  [[nodiscard]] std::size_t routers_failed() const;

  /// Derive the schedule for a network of `link_count` links and
  /// `router_count` routers over `horizon_cycles` cycles. Pure in all
  /// arguments; entity decisions are independent (per-entity derive),
  /// so any partition of the entity range yields the same schedule.
  [[nodiscard]] static FaultSchedule derive(const FaultSpec& spec,
                                            std::size_t link_count,
                                            std::size_t router_count,
                                            std::uint64_t horizon_cycles);
};

}  // namespace wi::fault

#pragma once
/// \file json.hpp
/// \brief Minimal JSON value with a deterministic writer — the
///        serialization substrate for result tables, scenario specs and
///        the on-disk result store.
///
/// Design constraints (why not a third-party library): the container
/// ships no JSON dependency, and the result store content-keys cached
/// results by hashing the serialized spec — so `dump()` must be
/// deterministic. Objects therefore preserve insertion order and
/// numbers use the shortest round-trip (`std::to_chars`) form.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wi {

/// One JSON value: null, bool, finite number, string, array or object.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered key/value list (deterministic dump; duplicate
  /// keys are rejected by set/parse).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  ///< null
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value);  ///< throws StatusError(kParseError) if non-finite
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(long long value) : Json(static_cast<double>(value)) {}
  Json(unsigned long long value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  Json(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}
  Json(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  /// Parse a complete JSON document (trailing garbage is an error).
  /// Throws StatusError(kParseError) with position context on failure.
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw StatusError(kParseError) on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Object member by key; throws StatusError(kParseError) when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Append an object member; throws on non-objects / duplicate keys.
  void set(std::string key, Json value);

  /// Append an array element; throws on non-arrays.
  void push_back(Json value);

  /// Serialize. indent < 0: compact one-line form (the canonical /
  /// hashable form); indent >= 0: pretty-printed with that step.
  [[nodiscard]] std::string dump(int indent = -1) const;

  [[nodiscard]] bool operator==(const Json&) const = default;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace wi

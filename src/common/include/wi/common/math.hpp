#pragma once
/// \file math.hpp
/// \brief Small numerical helpers shared by all modules.

#include <cstddef>
#include <vector>

namespace wi {

/// Gaussian tail probability Q(x) = P(N(0,1) > x).
[[nodiscard]] double qfunc(double x);

/// Inverse of qfunc on (0, 1) via Newton iteration.
[[nodiscard]] double qfunc_inv(double p);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

/// Binary entropy H_b(p) in bits; returns 0 at p in {0,1}.
[[nodiscard]] double binary_entropy(double p);

/// x * log2(x) with the 0*log 0 = 0 convention.
[[nodiscard]] double xlog2x(double x);

/// n uniformly spaced points including both endpoints (n >= 2),
/// or the single point {lo} for n == 1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Piecewise-linear interpolation of (xs, ys) at x; clamps outside the
/// range. xs must be strictly increasing and the sizes must match.
[[nodiscard]] double interp_linear(const std::vector<double>& xs,
                                   const std::vector<double>& ys, double x);

/// Greatest common divisor of two non-negative integers.
[[nodiscard]] unsigned long long gcd_u64(unsigned long long a,
                                         unsigned long long b);

/// True when |a - b| <= atol + rtol * |b|.
[[nodiscard]] bool approx_equal(double a, double b, double rtol = 1e-9,
                                double atol = 1e-12);

}  // namespace wi

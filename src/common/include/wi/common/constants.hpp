#pragma once
/// \file constants.hpp
/// \brief Physical constants used by the RF and link-budget modules.

namespace wi {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight_mps = 299'792'458.0;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann_jpk = 1.380649e-23;

/// Thermal noise density at 290 K [dBm/Hz]: 10*log10(k*290*1000).
inline constexpr double kThermalNoiseDensity290k_dbmhz = -173.975;

/// pi with double precision.
inline constexpr double kPi = 3.141592653589793238462643383279502884;

/// Two pi.
inline constexpr double kTwoPi = 2.0 * kPi;

}  // namespace wi

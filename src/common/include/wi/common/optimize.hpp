#pragma once
/// \file optimize.hpp
/// \brief Derivative-free optimisation used by the ISI filter design and
///        the required-Eb/N0 searches.

#include <functional>
#include <vector>

namespace wi {

/// Result of a one-dimensional root/threshold search.
struct RootResult {
  double x = 0.0;        ///< location of the root/threshold
  double fx = 0.0;       ///< residual at x
  int iterations = 0;    ///< iterations spent
  bool converged = false;
};

/// Bisection on a bracketing interval [lo, hi]; f(lo) and f(hi) must have
/// opposite signs. Monotonicity is not required, only the bracket.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double lo, double hi, double xtol = 1e-6,
                                int max_iter = 100);

/// Golden-section search for the minimum of a unimodal f on [lo, hi].
[[nodiscard]] RootResult golden_section_min(
    const std::function<double(double)>& f, double lo, double hi,
    double xtol = 1e-6, int max_iter = 200);

/// Options for Nelder–Mead.
struct NelderMeadOptions {
  int max_evals = 2000;     ///< budget of objective evaluations
  double xtol = 1e-6;       ///< simplex size tolerance
  double ftol = 1e-9;       ///< objective spread tolerance
  double initial_step = 0.25;  ///< simplex edge length around the start
};

/// Result of a multidimensional minimisation.
struct MinimizeResult {
  std::vector<double> x;  ///< best point
  double fx = 0.0;        ///< best objective value
  int evaluations = 0;    ///< number of f evaluations
  bool converged = false;
};

/// Nelder–Mead downhill simplex minimisation of f starting from x0.
/// Robust to noisy objectives (used with Monte-Carlo information rates).
[[nodiscard]] MinimizeResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, const NelderMeadOptions& options = {});

/// Cyclic coordinate descent with a shrinking step; cheap local polish
/// for low-dimensional problems with bound constraints.
[[nodiscard]] MinimizeResult coordinate_descent(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, double initial_step = 0.25,
    double min_step = 1e-4, int max_sweeps = 100);

}  // namespace wi

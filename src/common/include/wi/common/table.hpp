#pragma once
/// \file table.hpp
/// \brief Minimal fixed-width / CSV table printer used by the benchmark
///        harnesses to emit the paper's tables and figure series.

#include <iosfwd>
#include <string>
#include <vector>

namespace wi {

/// Column-oriented table: set headers once, append rows, print aligned
/// text or CSV. Cells are stored as strings; format_cell helpers convert
/// numerics with a fixed precision.
class Table {
 public:
  /// Headerless placeholder (e.g. the table of a failed scenario run);
  /// add_row on it throws until headers are assigned.
  Table() = default;

  explicit Table(std::vector<std::string> headers);

  /// Append one row; the arity must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Number of columns.
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }

  /// Cell (row, column); bounds-checked.
  [[nodiscard]] const std::string& cell(std::size_t row,
                                        std::size_t column) const {
    return rows_.at(row).at(column);
  }

  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Exact (cell-for-cell) comparison — the reproducibility contract of
  /// the parallel sweep runner.
  [[nodiscard]] bool operator==(const Table&) const = default;

  /// Fixed-width aligned rendering with a header separator.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (no quoting; values must not contain ',').
  void print_csv(std::ostream& os) const;

  /// Format a double with the given number of decimals.
  [[nodiscard]] static std::string num(double value, int decimals = 3);

  /// Format an integer.
  [[nodiscard]] static std::string num(long long value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wi

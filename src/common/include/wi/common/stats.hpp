#pragma once
/// \file stats.hpp
/// \brief Streaming statistics and simple histograms for simulations.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wi {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  /// Incorporate one sample.
  void add(double x);

  /// Incorporate another accumulator (parallel merge). Folding a
  /// single-sample accumulator is exact: bit-identical to add()ing
  /// that sample directly (the campaign shard aggregator depends on
  /// this to reproduce the single-process aggregate bit-for-bit).
  void merge(const RunningStats& other);

  /// Number of samples seen so far.
  [[nodiscard]] std::size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const { return mean_; }

  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const;

  /// Square root of variance().
  [[nodiscard]] double stddev() const;

  /// Smallest sample seen; +inf when empty.
  [[nodiscard]] double min() const { return min_; }

  /// Largest sample seen; -inf when empty.
  [[nodiscard]] double max() const { return max_; }

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_halfwidth() const;

  /// Reset to the empty state.
  void reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1.0 / 0.0;
  double max_ = -1.0 / 0.0;
};

/// Fixed-range histogram with uniform bins plus under/overflow counters.
class Histogram {
 public:
  /// Bins cover [lo, hi) uniformly; bins must be >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Count one sample (under/overflow tracked separately).
  void add(double x);

  /// Incorporate another histogram (parallel merge). Both sides must
  /// use identical binning; throws std::invalid_argument otherwise.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Centre of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const;

  /// Empirical quantile (linear in the bin index); q in [0,1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace wi

#pragma once
/// \file table_io.hpp
/// \brief Table (de)serialization and tolerance comparison — the data
///        plane of the result store and the golden-result CI gate.
///
/// CSV follows RFC 4180: cells containing commas, quotes or newlines
/// are quoted with `""` escaping, so round trips are lossless even for
/// status-message cells. A headerless placeholder Table serializes to
/// an empty document and parses back as headerless. JSON uses
/// `{"headers": [...]|null, "rows": [[...]]}` with every cell kept as a
/// string (cells may hold non-finite values like "nan"/"inf", which
/// JSON numbers cannot represent).

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "wi/common/json.hpp"
#include "wi/common/table.hpp"

namespace wi {

/// RFC 4180 CSV rendering (header row first unless headerless).
void write_csv(std::ostream& os, const Table& table);
[[nodiscard]] std::string to_csv(const Table& table);

/// Parse CSV text produced by write_csv (or any RFC 4180 document with
/// a header row). Empty input yields the headerless placeholder.
/// Throws StatusError(kParseError) on ragged rows or malformed quoting.
[[nodiscard]] Table table_from_csv(std::string_view text);
[[nodiscard]] Table table_from_csv(std::istream& is);

/// JSON form: {"headers": [...]|null, "rows": [[...], ...]}.
[[nodiscard]] Json table_to_json(const Table& table);
[[nodiscard]] Table table_from_json(const Json& json);

/// Full-string numeric parse of a table cell; false for cells like
/// "12 cycles" or "-". Shared by compare_tables and the campaign
/// aggregator, so both agree on what counts as a numeric cell.
[[nodiscard]] bool parse_cell_number(const std::string& cell, double& value);

/// One cell-level disagreement found by compare_tables.
struct CellMismatch {
  std::size_t row = 0;     ///< data-row index (headers are row-less)
  std::size_t column = 0;
  std::string expected;
  std::string actual;
};

/// Outcome of a tolerance comparison.
struct TableDiff {
  bool match = false;
  /// Human-readable shape/header problem ("row count 3 != 5", ...);
  /// empty when only cell values disagree.
  std::string shape_error;
  std::vector<CellMismatch> mismatches;  ///< capped by max_mismatches
  std::size_t mismatch_count = 0;        ///< total, uncapped
};

/// Tolerances for compare_tables. Cells that parse fully as numbers are
/// compared with |a - e| <= max(abs_tol, rel_tol * max(|a|, |e|)); two
/// NaNs match, infinities match by sign. Everything else is compared as
/// exact strings (headers always exactly).
struct CompareOptions {
  double rel_tol = 1e-9;
  double abs_tol = 1e-12;
  std::size_t max_mismatches = 20;  ///< reporting cap
};

[[nodiscard]] TableDiff compare_tables(const Table& actual,
                                       const Table& expected,
                                       const CompareOptions& options = {});

/// Render a diff for error logs: the shape error or up to
/// `max_mismatches` "row R col C (header): expected E, got A" lines.
[[nodiscard]] std::string format_diff(const TableDiff& diff,
                                      const Table& expected);

}  // namespace wi

#pragma once
/// \file status.hpp
/// \brief Structured error reporting shared by all layers.
///
/// A Status carries a machine-readable code plus a human-readable
/// message. Deep layers (e.g. routing) throw a StatusError; the
/// scenario engine catches it at the per-scenario boundary and surfaces
/// the Status in the result row, so one bad grid point never aborts a
/// whole sweep. `wi::sim` re-exports these names as its public error
/// type.

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace wi {

/// Error taxonomy of the library.
enum class StatusCode {
  kOk = 0,
  kInvalidSpec,        ///< a ScenarioSpec failed validation
  kUnreachableRoute,   ///< routing found no path between two routers
  kUnsupported,        ///< a requested combination is not implemented
  kExecutionError,     ///< unexpected failure while running a scenario
  kParseError,         ///< malformed serialized input (JSON/CSV)
  kNotFound,           ///< a lookup (file, cache entry, scenario) missed
  kUnavailable,        ///< a service cannot take the request now
                       ///< (queue full, draining for shutdown): the
                       ///< explicit backpressure signal — retry later
  kDeadlineExceeded,   ///< the request's deadline passed before the
                       ///< work ran (or a client timed out waiting):
                       ///< retrying with a larger deadline may succeed
};

/// Short stable identifier of a code ("ok", "invalid_spec", ...).
[[nodiscard]] constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidSpec: return "invalid_spec";
    case StatusCode::kUnreachableRoute: return "unreachable_route";
    case StatusCode::kUnsupported: return "unsupported";
    case StatusCode::kExecutionError: return "execution_error";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

/// Inverse of status_code_name — the parse half of every codec that
/// serializes a Status (result store entries, the wi_serve protocol).
/// nullopt for unknown names.
[[nodiscard]] constexpr std::optional<StatusCode> status_code_from_name(
    std::string_view name) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidSpec,
        StatusCode::kUnreachableRoute, StatusCode::kUnsupported,
        StatusCode::kExecutionError, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded}) {
    if (name == status_code_name(code)) return code;
  }
  return std::nullopt;
}

/// Value-type result status: a code plus context message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  [[nodiscard]] bool operator==(const Status&) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception wrapper used where an API cannot return a Status.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace wi

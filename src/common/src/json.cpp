#include "wi/common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "wi/common/status.hpp"

namespace wi {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw StatusError(Status(StatusCode::kParseError, message));
}

[[nodiscard]] const char* kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "bool";
    case Json::Kind::kNumber: return "number";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray: return "array";
    case Json::Kind::kObject: return "object";
  }
  return "unknown";
}

void expect_kind(const Json& value, Json::Kind kind) {
  if (value.kind() != kind) {
    fail(std::string("expected ") + kind_name(kind) + ", got " +
         kind_name(value.kind()));
  }
}

/// Recursive-descent parser over a string_view with a position cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) error("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void error(const std::string& message) const {
    fail("json: " + message + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      error(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  // Containers nest via recursion; a malicious/garbage document of
  // repeated '[' must produce a kParseError, not a stack overflow.
  static constexpr int kMaxDepth = 256;

  [[nodiscard]] Json parse_value() {
    skip_whitespace();
    if (depth_ >= kMaxDepth) error("nesting deeper than 256 levels");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        error("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        error("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        error("invalid literal");
      default: return parse_number();
    }
  }

  [[nodiscard]] Json parse_object() {
    expect('{');
    ++depth_;
    Json object = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return object;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return object;
    }
  }

  [[nodiscard]] Json parse_array() {
    expect('[');
    ++depth_;
    Json array = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return array;
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else error("invalid \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed for this library's ASCII-oriented payloads).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: error("invalid escape character");
      }
    }
  }

  [[nodiscard]] Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      error("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double value, std::string& out) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) fail("json: number formatting failed");
  out.append(buffer, end);
}

void dump_value(const Json& value, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline_indent = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (value.kind()) {
    case Json::Kind::kNull: out += "null"; return;
    case Json::Kind::kBool: out += value.as_bool() ? "true" : "false"; return;
    case Json::Kind::kNumber: dump_number(value.as_number(), out); return;
    case Json::Kind::kString: dump_string(value.as_string(), out); return;
    case Json::Kind::kArray: {
      const auto& array = value.as_array();
      if (array.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(depth + 1);
        dump_value(array[i], indent, depth + 1, out);
      }
      newline_indent(depth);
      out += ']';
      return;
    }
    case Json::Kind::kObject: {
      const auto& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(depth + 1);
        dump_string(object[i].first, out);
        out += ':';
        if (pretty) out += ' ';
        dump_value(object[i].second, indent, depth + 1, out);
      }
      newline_indent(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

Json::Json(double value) : kind_(Kind::kNumber), number_(value) {
  if (!std::isfinite(value)) {
    fail("json: numbers must be finite (serialize non-finite values as "
         "strings)");
  }
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  expect_kind(*this, Kind::kBool);
  return bool_;
}

double Json::as_number() const {
  expect_kind(*this, Kind::kNumber);
  return number_;
}

const std::string& Json::as_string() const {
  expect_kind(*this, Kind::kString);
  return string_;
}

const Json::Array& Json::as_array() const {
  expect_kind(*this, Kind::kArray);
  return array_;
}

const Json::Object& Json::as_object() const {
  expect_kind(*this, Kind::kObject);
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  expect_kind(*this, Kind::kObject);
  const Json* value = find(key);
  if (value == nullptr) fail("json: missing key '" + std::string(key) + "'");
  return *value;
}

void Json::set(std::string key, Json value) {
  expect_kind(*this, Kind::kObject);
  if (find(key) != nullptr) fail("json: duplicate key '" + key + "'");
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  expect_kind(*this, Kind::kArray);
  array_.push_back(std::move(value));
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

}  // namespace wi

#include "wi/common/quadrature.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "wi/common/constants.hpp"

namespace wi {

GaussHermiteRule gauss_hermite(std::size_t n) {
  if (n == 0 || n > 256) {
    throw std::invalid_argument("gauss_hermite: n must be in [1, 256]");
  }
  GaussHermiteRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);

  const double pi_quarter = std::pow(kPi, -0.25);
  // Roots come in +/- pairs; solve for the upper half with Newton.
  const std::size_t m = (n + 1) / 2;
  double z = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    // Initial guesses (Numerical Recipes heuristics).
    if (i == 0) {
      z = std::sqrt(2.0 * static_cast<double>(n) + 1.0) -
          1.85575 * std::pow(2.0 * static_cast<double>(n) + 1.0, -1.0 / 6.0);
    } else if (i == 1) {
      z -= 1.14 * std::pow(static_cast<double>(n), 0.426) / z;
    } else if (i == 2) {
      z = 1.86 * z - 0.86 * rule.nodes[0];
    } else if (i == 3) {
      z = 1.91 * z - 0.91 * rule.nodes[1];
    } else {
      z = 2.0 * z - rule.nodes[i - 2];
    }
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Recurrence for orthonormal Hermite functions.
      double p1 = pi_quarter;
      double p2 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double p3 = p2;
        p2 = p1;
        const double jd = static_cast<double>(j);
        p1 = z * std::sqrt(2.0 / (jd + 1.0)) * p2 -
             std::sqrt(jd / (jd + 1.0)) * p3;
      }
      pp = std::sqrt(2.0 * static_cast<double>(n)) * p2;
      const double dz = p1 / pp;
      z -= dz;
      if (std::abs(dz) < 1e-14) break;
    }
    rule.nodes[i] = z;
    // Store symmetric counterparts from the top of the array.
    rule.nodes[n - 1 - i] = -z;
    const double w = 2.0 / (pp * pp);
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  // Sort ascending for predictable iteration order.
  for (std::size_t i = 0; i < n / 2; ++i) {
    std::swap(rule.nodes[i], rule.nodes[n - 1 - i]);
    std::swap(rule.weights[i], rule.weights[n - 1 - i]);
  }
  return rule;
}

const GaussHermiteRule& gauss_hermite_cached(std::size_t n) {
  // std::map node handles are address-stable, so returned references
  // outlive later insertions. The (sub-millisecond, once-per-n) Newton
  // solve deliberately runs under the lock: concurrent first callers
  // almost always want the same n and must wait for it anyway, and the
  // simple critical section guarantees each rule is built exactly once.
  static std::mutex mutex;
  static std::map<std::size_t, GaussHermiteRule> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  return cache.emplace(n, gauss_hermite(n)).first->second;
}

double gaussian_expectation(const std::function<double(double)>& g,
                            double mean, double stddev, std::size_t n) {
  const GaussHermiteRule& rule = gauss_hermite_cached(n);
  const double inv_sqrt_pi = 1.0 / std::sqrt(kPi);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = mean + stddev * std::sqrt(2.0) * rule.nodes[i];
    sum += rule.weights[i] * g(x);
  }
  return sum * inv_sqrt_pi;
}

}  // namespace wi

#include "wi/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wi {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.count_ == 1) {
    // A single-sample accumulator holds its sample exactly (mean_ == x,
    // m2_ == 0), so fold it through add(): bit-identical to having
    // added the sample directly. The campaign aggregator folds one
    // single-sample accumulator per seed, and this case is what makes
    // a shard-merged aggregate bit-match the single-process one.
    add(other.mean_);
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::reset() { *this = RunningStats{}; }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins >= 1 and hi > lo");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(idx, counts_.size() - 1)];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument(
        "Histogram::merge: incompatible binning");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return bin_center(i);
  }
  return hi_;
}

}  // namespace wi

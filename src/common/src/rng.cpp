#include "wi/common/rng.hpp"

#include <cmath>

#include "wi/common/constants.hpp"

namespace wi {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire's unbiased bounded generation (rejection on the tail).
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    const __uint128_t m = static_cast<__uint128_t>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 is kept away from 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = radius * std::sin(kTwoPi * u2);
  has_cached_gaussian_ = true;
  return radius * std::cos(kTwoPi * u2);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = gaussian(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

double Rng::exponential(double rate) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

}  // namespace wi

#include "wi/common/rng.hpp"

#include <cmath>

namespace wi {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = gaussian(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

double Rng::exponential(double rate) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

}  // namespace wi

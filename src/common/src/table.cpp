#include "wi/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wi {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: headerless placeholder");
  }
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double value, int decimals) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals) << value;
  return oss.str();
}

std::string Table::num(long long value) { return std::to_string(value); }

}  // namespace wi

#include "wi/common/fault.hpp"

#include <algorithm>

namespace wi::fault {

namespace {

[[nodiscard]] bool rate_ok(double rate) {
  return rate >= 0.0 && rate <= 1.0;
}

/// Activation cycle of one failing entity: uniform over the window
/// [begin, end] fractions of the horizon, derived from the entity's own
/// cycle stream.
[[nodiscard]] std::uint64_t activation_cycle(const FaultSpec& spec,
                                             Stream cycle_stream,
                                             std::uint64_t index,
                                             std::uint64_t horizon) {
  const double u = unit_interval(derive(spec.seed, cycle_stream, index));
  const double begin = spec.window_begin * static_cast<double>(horizon);
  const double span =
      (spec.window_end - spec.window_begin) * static_cast<double>(horizon);
  std::uint64_t cycle = static_cast<std::uint64_t>(begin + u * span);
  if (horizon > 0 && cycle >= horizon) cycle = horizon - 1;
  return cycle;
}

}  // namespace

Status FaultSpec::validate(const std::string& context) const {
  if (!rate_ok(link_fail_rate)) {
    return {StatusCode::kInvalidSpec,
            context + ": fault link_fail_rate must be in [0, 1]"};
  }
  if (!rate_ok(router_fail_rate)) {
    return {StatusCode::kInvalidSpec,
            context + ": fault router_fail_rate must be in [0, 1]"};
  }
  if (!(window_begin >= 0.0 && window_begin <= 1.0) ||
      !(window_end >= 0.0 && window_end <= 1.0) ||
      window_begin > window_end) {
    return {StatusCode::kInvalidSpec,
            context + ": fault activation window must satisfy "
                      "0 <= window_begin <= window_end <= 1"};
  }
  return Status::ok();
}

std::size_t FaultSchedule::links_failed() const {
  std::size_t n = 0;
  for (const FaultEvent& e : events) {
    if (e.kind == FaultEvent::Kind::kLink) ++n;
  }
  return n;
}

std::size_t FaultSchedule::routers_failed() const {
  return events.size() - links_failed();
}

FaultSchedule FaultSchedule::derive(const FaultSpec& spec,
                                    std::size_t link_count,
                                    std::size_t router_count,
                                    std::uint64_t horizon_cycles) {
  FaultSchedule schedule;
  if (!spec.enabled() || horizon_cycles == 0) return schedule;
  for (std::size_t l = 0; l < link_count; ++l) {
    if (!decide(spec.seed, Stream::kLinkFail, l, spec.link_fail_rate)) {
      continue;
    }
    schedule.events.push_back(
        {FaultEvent::Kind::kLink, static_cast<std::uint32_t>(l),
         activation_cycle(spec, Stream::kLinkCycle, l, horizon_cycles)});
  }
  for (std::size_t r = 0; r < router_count; ++r) {
    if (!decide(spec.seed, Stream::kRouterFail, r, spec.router_fail_rate)) {
      continue;
    }
    schedule.events.push_back(
        {FaultEvent::Kind::kRouter, static_cast<std::uint32_t>(r),
         activation_cycle(spec, Stream::kRouterCycle, r, horizon_cycles)});
  }
  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.at_cycle != b.at_cycle) return a.at_cycle < b.at_cycle;
              if (a.kind != b.kind) {
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              }
              return a.index < b.index;
            });
  return schedule;
}

}  // namespace wi::fault

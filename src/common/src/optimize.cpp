#include "wi/common/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace wi {

RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, double xtol, int max_iter) {
  RootResult result;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  if ((flo > 0.0) == (fhi > 0.0)) {
    throw std::invalid_argument("bisect: interval does not bracket a root");
  }
  double mid = 0.5 * (lo + hi);
  for (int i = 0; i < max_iter; ++i) {
    mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    ++result.iterations;
    if (fmid == 0.0 || (hi - lo) < xtol) {
      result.converged = true;
      result.x = mid;
      result.fx = fmid;
      return result;
    }
    if ((fmid > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  result.x = mid;
  result.fx = f(mid);
  result.converged = (hi - lo) < xtol;
  return result;
}

RootResult golden_section_min(const std::function<double(double)>& f,
                              double lo, double hi, double xtol,
                              int max_iter) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  RootResult result;
  for (int i = 0; i < max_iter && (b - a) > xtol; ++i) {
    ++result.iterations;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  result.x = 0.5 * (a + b);
  result.fx = f(result.x);
  result.converged = (b - a) <= xtol;
  return result;
}

MinimizeResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("nelder_mead: empty start point");

  MinimizeResult result;
  result.evaluations = 0;

  auto eval = [&](const std::vector<double>& x) {
    ++result.evaluations;
    return f(x);
  };

  // Initial simplex: x0 plus a displaced vertex per coordinate.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    simplex[i + 1][i] +=
        (x0[i] != 0.0) ? options.initial_step * std::abs(x0[i])
                       : options.initial_step;
  }
  for (std::size_t i = 0; i <= n; ++i) fvals[i] = eval(simplex[i]);

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  std::vector<std::size_t> order(n + 1);
  while (result.evaluations < options.max_evals) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });

    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    // Convergence: simplex diameter and objective spread both small.
    double diameter = 0.0;
    for (std::size_t i = 0; i <= n; ++i) {
      double dist = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double d = simplex[i][j] - simplex[best][j];
        dist += d * d;
      }
      diameter = std::max(diameter, std::sqrt(dist));
    }
    if (diameter < options.xtol &&
        std::abs(fvals[worst] - fvals[best]) < options.ftol) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (auto& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> x(n);
      for (std::size_t j = 0; j < n; ++j) {
        x[j] = centroid[j] + coeff * (centroid[j] - simplex[worst][j]);
      }
      return x;
    };

    const std::vector<double> reflected = blend(kAlpha);
    const double f_reflected = eval(reflected);

    if (f_reflected < fvals[best]) {
      const std::vector<double> expanded = blend(kGamma);
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        fvals[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        fvals[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < fvals[second_worst]) {
      simplex[worst] = reflected;
      fvals[worst] = f_reflected;
      continue;
    }
    const std::vector<double> contracted = blend(-kRho);
    const double f_contracted = eval(contracted);
    if (f_contracted < fvals[worst]) {
      simplex[worst] = contracted;
      fvals[worst] = f_contracted;
      continue;
    }
    // Shrink towards the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < n; ++j) {
        simplex[i][j] =
            simplex[best][j] + kSigma * (simplex[i][j] - simplex[best][j]);
      }
      fvals[i] = eval(simplex[i]);
    }
  }

  const std::size_t best = static_cast<std::size_t>(
      std::min_element(fvals.begin(), fvals.end()) - fvals.begin());
  result.x = simplex[best];
  result.fx = fvals[best];
  return result;
}

MinimizeResult coordinate_descent(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, double initial_step, double min_step,
    int max_sweeps) {
  MinimizeResult result;
  std::vector<double> x = x0;
  double fx = f(x);
  ++result.evaluations;
  double step = initial_step;
  for (int sweep = 0; sweep < max_sweeps && step >= min_step; ++sweep) {
    bool improved = false;
    for (std::size_t j = 0; j < x.size(); ++j) {
      for (const double direction : {+1.0, -1.0}) {
        std::vector<double> candidate = x;
        candidate[j] += direction * step;
        const double fc = f(candidate);
        ++result.evaluations;
        if (fc < fx) {
          x = std::move(candidate);
          fx = fc;
          improved = true;
          break;
        }
      }
    }
    if (!improved) step *= 0.5;
  }
  result.x = std::move(x);
  result.fx = fx;
  result.converged = step < min_step;
  return result;
}

}  // namespace wi

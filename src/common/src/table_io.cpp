#include "wi/common/table_io.hpp"

#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "wi/common/status.hpp"

namespace wi {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw StatusError(Status(StatusCode::kParseError, message));
}

[[nodiscard]] bool needs_quoting(const std::string& cell) {
  for (const char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void write_cell(std::ostream& os, const std::string& cell) {
  if (!needs_quoting(cell)) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c != 0) os << ',';
    write_cell(os, row[c]);
  }
  os << '\n';
}

/// Split an RFC 4180 document into records of fields. Handles quoted
/// fields with embedded separators/newlines and CRLF line endings.
[[nodiscard]] std::vector<std::vector<std::string>> parse_records(
    std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // current field consumed a char or quote
  std::size_t i = 0;
  const auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };
  while (i < text.size()) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field_started) {
          fail("csv: quote inside unquoted field at offset " +
               std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;
        if (i < text.size() && text[i] == '\n') break;  // handled as \n
        [[fallthrough]];
      case '\n':
        if (c == '\n') ++i;
        end_record();
        break;
      default:
        field += c;
        field_started = true;
        ++i;
    }
  }
  if (in_quotes) fail("csv: unterminated quoted field");
  // Flush a final record not terminated by a newline ("a,b<EOF>" and
  // the dangling empty field of "a,<EOF>" both included).
  if (field_started || !record.empty()) end_record();
  return records;
}

[[nodiscard]] bool cells_match(const std::string& actual,
                               const std::string& expected,
                               const CompareOptions& options) {
  if (actual == expected) return true;
  double a = 0.0;
  double e = 0.0;
  if (!parse_cell_number(actual, a) || !parse_cell_number(expected, e)) {
    return false;
  }
  if (std::isnan(a) || std::isnan(e)) return std::isnan(a) && std::isnan(e);
  if (std::isinf(a) || std::isinf(e)) return a == e;
  const double scale = std::max(std::fabs(a), std::fabs(e));
  return std::fabs(a - e) <=
         std::max(options.abs_tol, options.rel_tol * scale);
}

}  // namespace

bool parse_cell_number(const std::string& cell, double& value) {
  if (cell.empty()) return false;
  const char* begin = cell.c_str();
  char* end = nullptr;
  value = std::strtod(begin, &end);
  return end == begin + cell.size();
}

void write_csv(std::ostream& os, const Table& table) {
  if (table.columns() == 0) return;  // headerless placeholder
  write_row(os, table.headers());
  for (std::size_t r = 0; r < table.rows(); ++r) write_row(os, table.row(r));
}

std::string to_csv(const Table& table) {
  std::ostringstream oss;
  write_csv(oss, table);
  return oss.str();
}

Table table_from_csv(std::string_view text) {
  const auto records = parse_records(text);
  if (records.empty()) return Table();  // headerless placeholder
  Table table(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != records.front().size()) {
      fail("csv: row " + std::to_string(r) + " has " +
           std::to_string(records[r].size()) + " fields, header has " +
           std::to_string(records.front().size()));
    }
    table.add_row(records[r]);
  }
  return table;
}

Table table_from_csv(std::istream& is) {
  std::ostringstream oss;
  oss << is.rdbuf();
  return table_from_csv(oss.str());
}

Json table_to_json(const Table& table) {
  Json json = Json::object();
  if (table.columns() == 0) {
    json.set("headers", Json());
  } else {
    Json headers = Json::array();
    for (const auto& h : table.headers()) headers.push_back(Json(h));
    json.set("headers", std::move(headers));
  }
  Json rows = Json::array();
  for (std::size_t r = 0; r < table.rows(); ++r) {
    Json row = Json::array();
    for (const auto& cell : table.row(r)) row.push_back(Json(cell));
    rows.push_back(std::move(row));
  }
  json.set("rows", std::move(rows));
  return json;
}

Table table_from_json(const Json& json) {
  const Json& headers = json.at("headers");
  if (headers.is_null()) {
    if (!json.at("rows").as_array().empty()) {
      fail("table json: headerless table cannot carry rows");
    }
    return Table();
  }
  std::vector<std::string> header_cells;
  for (const auto& h : headers.as_array()) header_cells.push_back(h.as_string());
  Table table(header_cells);
  for (const auto& row : json.at("rows").as_array()) {
    std::vector<std::string> cells;
    for (const auto& cell : row.as_array()) cells.push_back(cell.as_string());
    if (cells.size() != header_cells.size()) {
      fail("table json: row arity mismatch");
    }
    table.add_row(std::move(cells));
  }
  return table;
}

TableDiff compare_tables(const Table& actual, const Table& expected,
                         const CompareOptions& options) {
  TableDiff diff;
  if (actual.headers() != expected.headers()) {
    diff.shape_error = "header mismatch: expected [" +
                       (expected.columns() ? expected.headers()[0] : "") +
                       ", ...] (" + std::to_string(expected.columns()) +
                       " columns), got " + std::to_string(actual.columns()) +
                       " columns";
    return diff;
  }
  if (actual.rows() != expected.rows()) {
    diff.shape_error = "row count mismatch: expected " +
                       std::to_string(expected.rows()) + ", got " +
                       std::to_string(actual.rows());
    return diff;
  }
  for (std::size_t r = 0; r < expected.rows(); ++r) {
    for (std::size_t c = 0; c < expected.columns(); ++c) {
      if (cells_match(actual.cell(r, c), expected.cell(r, c), options)) {
        continue;
      }
      ++diff.mismatch_count;
      if (diff.mismatches.size() < options.max_mismatches) {
        diff.mismatches.push_back(
            {r, c, expected.cell(r, c), actual.cell(r, c)});
      }
    }
  }
  diff.match = diff.mismatch_count == 0;
  return diff;
}

std::string format_diff(const TableDiff& diff, const Table& expected) {
  if (diff.match) return "tables match";
  if (!diff.shape_error.empty()) return diff.shape_error;
  std::string out = std::to_string(diff.mismatch_count) + " cell mismatch" +
                    (diff.mismatch_count == 1 ? "" : "es");
  for (const auto& m : diff.mismatches) {
    out += "\n  row " + std::to_string(m.row) + " col " +
           std::to_string(m.column);
    if (m.column < expected.columns()) {
      out += " (" + expected.headers()[m.column] + ")";
    }
    out += ": expected '" + m.expected + "', got '" + m.actual + "'";
  }
  if (diff.mismatch_count > diff.mismatches.size()) {
    out += "\n  ... and " +
           std::to_string(diff.mismatch_count - diff.mismatches.size()) +
           " more";
  }
  return out;
}

}  // namespace wi

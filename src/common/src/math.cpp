#include "wi/common/math.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wi {

double qfunc(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double normal_cdf(double x) { return 1.0 - qfunc(x); }

double qfunc_inv(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("qfunc_inv: p must lie in (0,1)");
  }
  // Initial guess from the Beasley–Springer/Moro-style approximation,
  // then polish with Newton steps on Q(x) - p = 0.
  double x = 0.0;
  {
    const double t = std::sqrt(-2.0 * std::log(std::min(p, 1.0 - p)));
    double approx =
        t - (2.30753 + 0.27061 * t) / (1.0 + t * (0.99229 + 0.04481 * t));
    x = (p < 0.5) ? approx : -approx;
  }
  for (int i = 0; i < 60; ++i) {
    const double f = qfunc(x) - p;
    const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
    if (pdf < 1e-300) break;
    const double step = f / pdf;  // dQ/dx = -pdf
    x += step;
    if (std::abs(step) < 1e-13 * std::max(1.0, std::abs(x))) break;
  }
  return x;
}

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double xlog2x(double x) {
  if (x <= 0.0) return 0.0;
  return x * std::log2(x);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;
  return out;
}

double interp_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys, double x) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("interp_linear: size mismatch or empty");
  }
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

unsigned long long gcd_u64(unsigned long long a, unsigned long long b) {
  while (b != 0) {
    const unsigned long long r = a % b;
    a = b;
    b = r;
  }
  return a;
}

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::abs(b);
}

}  // namespace wi

#include "wi/core/nics_stack.hpp"

#include <stdexcept>

#include "wi/noc/routing.hpp"
#include "wi/noc/traffic.hpp"

namespace wi::core {

VerticalLinkParams vertical_link_params(VerticalLinkTech tech) {
  switch (tech) {
    case VerticalLinkTech::kTsv:
      return {2.0, 4.0, "TSV"};
    case VerticalLinkTech::kInductive:
      return {1.0, 1.5, "inductive"};
    case VerticalLinkTech::kCapacitive:
      return {0.75, 1.0, "capacitive"};
  }
  throw std::logic_error("vertical_link_params: unknown technology");
}

NicsStackModel::NicsStackModel(NicsStackConfig config) : config_(config) {
  if (config_.layers == 0 || config_.mesh_k == 0 ||
      config_.vertical_period == 0) {
    throw std::invalid_argument("NicsStackModel: positive dimensions");
  }
  if (config_.vertical_traffic_fraction < 0.0 ||
      config_.vertical_traffic_fraction > 1.0) {
    throw std::invalid_argument("NicsStackModel: fraction in [0,1]");
  }
}

noc::Topology NicsStackModel::build_topology() const {
  const VerticalLinkParams params = vertical_link_params(config_.tech);
  return noc::Topology::partial_vertical_mesh_3d(
      config_.mesh_k, config_.mesh_k, config_.layers,
      config_.vertical_period, params.bandwidth);
}

noc::TrafficPattern NicsStackModel::build_traffic() const {
  const std::size_t per_layer = config_.mesh_k * config_.mesh_k;
  const std::size_t modules = per_layer * config_.layers;
  const double vertical = config_.vertical_traffic_fraction;
  std::vector<double> matrix(modules * modules, 0.0);
  for (std::size_t s = 0; s < modules; ++s) {
    const std::size_t column = s % per_layer;  // same (x, y) stack
    for (std::size_t d = 0; d < modules; ++d) {
      if (s == d) continue;
      double p = (1.0 - vertical) / static_cast<double>(modules - 1);
      if (d % per_layer == column) {
        p += vertical / static_cast<double>(config_.layers - 1);
      }
      matrix[s * modules + d] = p;
    }
  }
  return noc::TrafficPattern(std::move(matrix), modules);
}

NicsStackModel::StackEvaluation NicsStackModel::evaluate() const {
  const noc::Topology topo = build_topology();
  // Dimension-order routing on the full mesh keeps channel loads
  // balanced; irregular (sparse-vertical) stacks need shortest-path.
  const noc::DimensionOrderRouting dor;
  const noc::ShortestPathRouting spr;
  const noc::Routing& routing =
      (config_.vertical_period == 1)
          ? static_cast<const noc::Routing&>(dor)
          : static_cast<const noc::Routing&>(spr);
  const noc::TrafficPattern traffic = build_traffic();
  const noc::QueueingModel model(topo, routing, traffic, config_.model);

  StackEvaluation eval;
  eval.zero_load_latency_cycles = model.zero_load_latency_cycles();
  eval.saturation_rate = model.saturation_rate();
  const VerticalLinkParams params = vertical_link_params(config_.tech);
  for (const auto& link : topo.links()) {
    if (link.vertical) {
      eval.vertical_link_count += 0.5;  // directed pairs count once
      eval.area_cost += 0.5 * params.area_cost;
    }
  }
  return eval;
}

}  // namespace wi::core

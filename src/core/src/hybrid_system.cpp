#include "wi/core/hybrid_system.hpp"

#include <cmath>
#include <stdexcept>

namespace wi::core {

HybridSystemModel::HybridSystemModel(HybridSystemConfig config)
    : config_(config) {
  if (config_.boards < 2 || config_.mesh_k == 0) {
    throw std::invalid_argument("HybridSystemModel: >= 2 boards, k >= 1");
  }
  if (config_.inter_board_fraction < 0.0 ||
      config_.inter_board_fraction > 1.0 ||
      config_.wireless_node_fraction < 0.0 ||
      config_.wireless_node_fraction > 1.0) {
    throw std::invalid_argument("HybridSystemModel: fractions in [0,1]");
  }
}

namespace {

/// Adds a k x k board mesh at layer z; returns the board's router base
/// index. Boards are stacked along z so coordinates stay unique.
std::size_t add_board(noc::Topology& topo, std::size_t k, int z) {
  const std::size_t base = topo.router_count();
  for (std::size_t y = 0; y < k; ++y) {
    for (std::size_t x = 0; x < k; ++x) {
      topo.add_router({static_cast<int>(x), static_cast<int>(y), z});
    }
  }
  auto idx = [&](std::size_t x, std::size_t y) { return base + y * k + x; };
  for (std::size_t y = 0; y < k; ++y) {
    for (std::size_t x = 0; x < k; ++x) {
      if (x + 1 < k) {
        topo.add_link({idx(x, y), idx(x + 1, y), 1.0, 1.0, false});
        topo.add_link({idx(x + 1, y), idx(x, y), 1.0, 1.0, false});
      }
      if (y + 1 < k) {
        topo.add_link({idx(x, y), idx(x, y + 1), 1.0, 1.0, false});
        topo.add_link({idx(x, y + 1), idx(x, y), 1.0, 1.0, false});
      }
    }
  }
  for (std::size_t m = 0; m < k * k; ++m) topo.attach_module(base + m);
  return base;
}

}  // namespace

noc::Topology HybridSystemModel::build_backplane_topology() const {
  const std::size_t k = config_.mesh_k;
  noc::Topology topo("Backplane system", k, k,
                     config_.boards + 1 /* spine layer */);
  std::vector<std::size_t> bases;
  for (std::size_t b = 0; b < config_.boards; ++b) {
    bases.push_back(add_board(topo, k, static_cast<int>(b)));
  }
  // Backplane spine: one bridge router per board, chained. The bridge
  // is the board's edge connector: every router of row y = 0 has a
  // trace to it, so the spine links (not the board entry) are the
  // backplane's capacity limit.
  std::vector<std::size_t> bridges;
  for (std::size_t b = 0; b < config_.boards; ++b) {
    const std::size_t bridge = topo.add_router(
        {-1, 0, static_cast<int>(b)});
    bridges.push_back(bridge);
    for (std::size_t x = 0; x < k; ++x) {
      const std::size_t edge_router = bases[b] + x;  // row y = 0
      topo.add_link({edge_router, bridge, 1.0, 20.0, false});
      topo.add_link({bridge, edge_router, 1.0, 20.0, false});
    }
  }
  for (std::size_t b = 0; b + 1 < config_.boards; ++b) {
    topo.add_link({bridges[b], bridges[b + 1], config_.backplane_bandwidth,
                   25.0, false});
    topo.add_link({bridges[b + 1], bridges[b], config_.backplane_bandwidth,
                   25.0, false});
  }
  return topo;
}

noc::Topology HybridSystemModel::build_wireless_topology() const {
  const std::size_t k = config_.mesh_k;
  noc::Topology topo("Wireless system", k, k, config_.boards);
  std::vector<std::size_t> bases;
  for (std::size_t b = 0; b < config_.boards; ++b) {
    bases.push_back(add_board(topo, k, static_cast<int>(b)));
  }
  // Direct wireless links between facing nodes of adjacent boards.
  // A fraction of node positions carries an array; positions are taken
  // in row-major order (deterministic, testable).
  const std::size_t per_board = modules_per_board();
  const auto equipped = static_cast<std::size_t>(
      std::ceil(config_.wireless_node_fraction *
                static_cast<double>(per_board)));
  for (std::size_t b = 0; b + 1 < config_.boards; ++b) {
    for (std::size_t m = 0; m < equipped; ++m) {
      const std::size_t lower = bases[b] + m;
      const std::size_t upper = bases[b + 1] + m;
      topo.add_link({lower, upper, config_.wireless_bandwidth, 100.0, true});
      topo.add_link({upper, lower, config_.wireless_bandwidth, 100.0, true});
    }
  }
  return topo;
}

noc::TrafficPattern HybridSystemModel::build_traffic() const {
  const std::size_t per_board = modules_per_board();
  const std::size_t modules = per_board * config_.boards;
  std::vector<double> matrix(modules * modules, 0.0);
  for (std::size_t s = 0; s < modules; ++s) {
    const std::size_t sb = s / per_board;
    for (std::size_t d = 0; d < modules; ++d) {
      if (s == d) continue;
      const std::size_t db = d / per_board;
      if (sb == db) {
        matrix[s * modules + d] =
            (1.0 - config_.inter_board_fraction) /
            static_cast<double>(per_board - 1);
      } else {
        matrix[s * modules + d] =
            config_.inter_board_fraction /
            static_cast<double>(modules - per_board);
      }
    }
  }
  return noc::TrafficPattern(std::move(matrix), modules);
}

SystemEvaluation HybridSystemModel::evaluate(
    const noc::Topology& topology) const {
  const noc::ShortestPathRouting routing;
  const noc::TrafficPattern traffic = build_traffic();
  const noc::QueueingModel model(topology, routing, traffic, config_.model);
  SystemEvaluation eval;
  eval.zero_load_latency_cycles = model.zero_load_latency_cycles();
  eval.saturation_rate = model.saturation_rate();
  eval.latency_at_low_load = model.evaluate(0.05).mean_latency_cycles;
  return eval;
}

HybridComparison HybridSystemModel::compare() const {
  HybridComparison cmp;
  cmp.backplane = evaluate(build_backplane_topology());
  cmp.wireless = evaluate(build_wireless_topology());
  cmp.capacity_gain =
      cmp.wireless.saturation_rate / cmp.backplane.saturation_rate;
  cmp.latency_gain = cmp.backplane.zero_load_latency_cycles /
                     cmp.wireless.zero_load_latency_cycles;
  return cmp;
}

}  // namespace wi::core

#include "wi/core/geometry.hpp"

#include <cmath>
#include <stdexcept>

#include "wi/common/constants.hpp"

namespace wi::core {

double distance_mm(const Position& a, const Position& b) {
  const double dx = a.x_mm - b.x_mm;
  const double dy = a.y_mm - b.y_mm;
  const double dz = a.z_mm - b.z_mm;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

double boresight_angle_deg(const Position& a, const Position& b) {
  const double dx = b.x_mm - a.x_mm;
  const double dy = b.y_mm - a.y_mm;
  const double dz = b.z_mm - a.z_mm;
  const double lateral = std::sqrt(dx * dx + dy * dy);
  if (lateral == 0.0 && dz == 0.0) return 0.0;
  return std::atan2(lateral, std::abs(dz)) * 180.0 / kPi;
}

BoardGeometry::BoardGeometry(std::size_t boards, double board_size_mm,
                             double separation_mm,
                             std::size_t nodes_per_edge)
    : boards_(boards), board_size_mm_(board_size_mm),
      separation_mm_(separation_mm), nodes_per_edge_(nodes_per_edge) {
  if (boards == 0 || nodes_per_edge == 0) {
    throw std::invalid_argument("BoardGeometry: need boards and nodes");
  }
  if (!(board_size_mm > 0.0) || !(separation_mm > 0.0)) {
    throw std::invalid_argument("BoardGeometry: positive dimensions");
  }
  // Nodes on a centred grid with half-pitch margins.
  const double pitch =
      board_size_mm / static_cast<double>(nodes_per_edge);
  for (std::size_t b = 0; b < boards; ++b) {
    for (std::size_t j = 0; j < nodes_per_edge; ++j) {
      for (std::size_t i = 0; i < nodes_per_edge; ++i) {
        Node node;
        node.board = b;
        node.position = {pitch * (0.5 + static_cast<double>(i)),
                         pitch * (0.5 + static_cast<double>(j)),
                         separation_mm * static_cast<double>(b)};
        nodes_.push_back(node);
      }
    }
  }
}

double BoardGeometry::shortest_link_mm() const { return separation_mm_; }

double BoardGeometry::longest_link_mm() const {
  // Opposite corners of adjacent boards.
  const double pitch =
      board_size_mm_ / static_cast<double>(nodes_per_edge_);
  const double span = board_size_mm_ - pitch;  // first to last node
  return std::sqrt(2.0 * span * span + separation_mm_ * separation_mm_);
}

std::vector<std::pair<std::size_t, std::size_t>>
BoardGeometry::adjacent_board_pairs() const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t a = 0; a < nodes_.size(); ++a) {
    for (std::size_t b = 0; b < nodes_.size(); ++b) {
      if (nodes_[b].board == nodes_[a].board + 1) {
        pairs.emplace_back(a, b);
      }
    }
  }
  return pairs;
}

}  // namespace wi::core

#include "wi/core/phy_abstraction.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "wi/common/math.hpp"
#include "wi/comm/info_rate.hpp"

namespace wi::core {

namespace {

comm::IsiFilter filter_for(PhyReceiver receiver) {
  switch (receiver) {
    case PhyReceiver::kOneBitSequence:
      return comm::paper_filter_sequence();
    case PhyReceiver::kOneBitSymbolwise:
      return comm::paper_filter_symbolwise();
    default:
      return comm::IsiFilter::rectangular(5);
  }
}

}  // namespace

PhyAbstraction::PhyAbstraction(PhyReceiver receiver, double bandwidth_hz,
                               std::size_t polarizations,
                               std::size_t threads)
    : receiver_(receiver), bandwidth_hz_(bandwidth_hz),
      polarizations_(polarizations) {
  snr_grid_db_ = linspace(-5.0, 35.0, 17);
  rate_bpcu_.assign(snr_grid_db_.size(), 0.0);
  const comm::Constellation constellation = comm::Constellation::ask(4);
  // One grid point: a self-contained, deterministically seeded
  // computation (the sequence receivers run their Monte-Carlo with the
  // options' fixed seed), so points can execute in any order and on any
  // thread with bit-identical results.
  auto compute_point = [&](std::size_t i) {
    const double snr = snr_grid_db_[i];
    double rate = 0.0;
    switch (receiver_) {
      case PhyReceiver::kUnquantized:
        rate = comm::mi_unquantized_awgn(constellation, snr);
        break;
      case PhyReceiver::kOneBitSymbolwise: {
        const comm::OneBitOsChannel channel(filter_for(receiver_),
                                            constellation, snr);
        rate = comm::mi_one_bit_symbolwise(channel);
        break;
      }
      case PhyReceiver::kOneBitSequence:
      case PhyReceiver::kOneBitRect: {
        const comm::OneBitOsChannel channel(filter_for(receiver_),
                                            constellation, snr);
        comm::SequenceRateOptions options;
        options.symbols = 20000;  // fast, ±0.03 bpcu is plenty here
        rate = comm::info_rate_one_bit_sequence(channel, options);
        break;
      }
    }
    rate_bpcu_[i] = rate;
  };

  std::size_t workers = threads;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers = std::min(workers, snr_grid_db_.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < snr_grid_db_.size(); ++i) compute_point(i);
  } else {
    // Work stealing over the grid; each point writes only its own slot.
    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    auto worker = [&]() {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= snr_grid_db_.size()) break;
        try {
          compute_point(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
    worker();
    for (auto& thread : pool) thread.join();
    if (error) std::rethrow_exception(error);
  }
  // Enforce monotonicity (Monte-Carlo jitter) so required_snr_db is
  // well defined.
  for (std::size_t i = 1; i < rate_bpcu_.size(); ++i) {
    rate_bpcu_[i] = std::max(rate_bpcu_[i], rate_bpcu_[i - 1]);
  }
}

double PhyAbstraction::info_rate_bpcu(double snr_db) const {
  return interp_linear(snr_grid_db_, rate_bpcu_, snr_db);
}

double PhyAbstraction::link_rate_gbps(double snr_db) const {
  return info_rate_bpcu(snr_db) * bandwidth_hz_ *
         static_cast<double>(polarizations_) / 1e9;
}

double PhyAbstraction::required_snr_db(double target_gbps) const {
  const double target_bpcu =
      target_gbps * 1e9 /
      (bandwidth_hz_ * static_cast<double>(polarizations_));
  if (target_bpcu > rate_bpcu_.back()) {
    return std::numeric_limits<double>::infinity();
  }
  // Clamp at the grid start (mirrors info_rate_bpcu's clamping).
  if (target_bpcu <= rate_bpcu_.front()) {
    return snr_grid_db_.front();
  }
  // Invert the monotone piecewise-linear curve.
  for (std::size_t i = 1; i < snr_grid_db_.size(); ++i) {
    if (rate_bpcu_[i] >= target_bpcu) {
      const double r0 = rate_bpcu_[i - 1];
      const double r1 = rate_bpcu_[i];
      if (r1 == r0) return snr_grid_db_[i];
      const double t = (target_bpcu - r0) / (r1 - r0);
      return snr_grid_db_[i - 1] +
             t * (snr_grid_db_[i] - snr_grid_db_[i - 1]);
    }
  }
  return snr_grid_db_.back();
}

}  // namespace wi::core

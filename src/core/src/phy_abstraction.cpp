#include "wi/core/phy_abstraction.hpp"

#include <cmath>
#include <limits>

#include "wi/common/math.hpp"
#include "wi/comm/info_rate.hpp"

namespace wi::core {

namespace {

comm::IsiFilter filter_for(PhyReceiver receiver) {
  switch (receiver) {
    case PhyReceiver::kOneBitSequence:
      return comm::paper_filter_sequence();
    case PhyReceiver::kOneBitSymbolwise:
      return comm::paper_filter_symbolwise();
    default:
      return comm::IsiFilter::rectangular(5);
  }
}

}  // namespace

PhyAbstraction::PhyAbstraction(PhyReceiver receiver, double bandwidth_hz,
                               std::size_t polarizations)
    : receiver_(receiver), bandwidth_hz_(bandwidth_hz),
      polarizations_(polarizations) {
  snr_grid_db_ = linspace(-5.0, 35.0, 17);
  rate_bpcu_.reserve(snr_grid_db_.size());
  const comm::Constellation constellation = comm::Constellation::ask(4);
  for (const double snr : snr_grid_db_) {
    double rate = 0.0;
    switch (receiver_) {
      case PhyReceiver::kUnquantized:
        rate = comm::mi_unquantized_awgn(constellation, snr);
        break;
      case PhyReceiver::kOneBitSymbolwise: {
        const comm::OneBitOsChannel channel(filter_for(receiver_),
                                            constellation, snr);
        rate = comm::mi_one_bit_symbolwise(channel);
        break;
      }
      case PhyReceiver::kOneBitSequence:
      case PhyReceiver::kOneBitRect: {
        const comm::OneBitOsChannel channel(filter_for(receiver_),
                                            constellation, snr);
        comm::SequenceRateOptions options;
        options.symbols = 20000;  // fast, ±0.03 bpcu is plenty here
        rate = comm::info_rate_one_bit_sequence(channel, options);
        break;
      }
    }
    rate_bpcu_.push_back(rate);
  }
  // Enforce monotonicity (Monte-Carlo jitter) so required_snr_db is
  // well defined.
  for (std::size_t i = 1; i < rate_bpcu_.size(); ++i) {
    rate_bpcu_[i] = std::max(rate_bpcu_[i], rate_bpcu_[i - 1]);
  }
}

double PhyAbstraction::info_rate_bpcu(double snr_db) const {
  return interp_linear(snr_grid_db_, rate_bpcu_, snr_db);
}

double PhyAbstraction::link_rate_gbps(double snr_db) const {
  return info_rate_bpcu(snr_db) * bandwidth_hz_ *
         static_cast<double>(polarizations_) / 1e9;
}

double PhyAbstraction::required_snr_db(double target_gbps) const {
  const double target_bpcu =
      target_gbps * 1e9 /
      (bandwidth_hz_ * static_cast<double>(polarizations_));
  if (target_bpcu > rate_bpcu_.back()) {
    return std::numeric_limits<double>::infinity();
  }
  // Clamp at the grid start (mirrors info_rate_bpcu's clamping).
  if (target_bpcu <= rate_bpcu_.front()) {
    return snr_grid_db_.front();
  }
  // Invert the monotone piecewise-linear curve.
  for (std::size_t i = 1; i < snr_grid_db_.size(); ++i) {
    if (rate_bpcu_[i] >= target_bpcu) {
      const double r0 = rate_bpcu_[i - 1];
      const double r1 = rate_bpcu_[i];
      if (r1 == r0) return snr_grid_db_[i];
      const double t = (target_bpcu - r0) / (r1 - r0);
      return snr_grid_db_[i - 1] +
             t * (snr_grid_db_[i] - snr_grid_db_[i - 1]);
    }
  }
  return snr_grid_db_.back();
}

}  // namespace wi::core

#include "wi/core/coding_planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wi::core {

CodingPlanner::CodingPlanner(std::vector<CodingPoint> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("CodingPlanner: empty operating table");
  }
}

CodingPlanner CodingPlanner::paper_table() {
  // Shape-faithful operating points of the (4,8)-regular ensemble:
  // LDPC-CC with N in {25, 40, 60} and W in {3..8}, LDPC-BC references.
  // Latencies from Eq. 4/5 (R = 1/2, nv = 2 => T = W*N resp. N).
  // Required Eb/N0 values follow the paper's Fig. 10 curves (anchored
  // at its worked example: CC reaches 3 dB at T_WD = 200, the BC at
  // T_B = 400). Our own Monte-Carlo reproduction confirms the ordering
  // and the W/N trends but sits ~1.5 dB higher in absolute terms due
  // to short termination and QC-circulant liftings — see
  // bench/fig10_ldpc_latency, tools/fig10_keypoint and EXPERIMENTS.md.
  std::vector<CodingPoint> points;
  const auto add_cc = [&](std::size_t n, std::size_t w, double ebn0) {
    points.push_back({n, w, static_cast<double>(n * w), ebn0, false});
  };
  const auto add_bc = [&](std::size_t n, double ebn0) {
    points.push_back({n, 0, static_cast<double>(n), ebn0, true});
  };
  add_cc(25, 3, 4.8);  add_cc(25, 4, 4.2);  add_cc(25, 5, 3.9);
  add_cc(25, 6, 3.7);  add_cc(25, 7, 3.6);  add_cc(25, 8, 3.55);
  add_cc(40, 3, 4.0);  add_cc(40, 4, 3.4);  add_cc(40, 5, 3.0);
  add_cc(40, 6, 2.9);  add_cc(40, 7, 2.85); add_cc(40, 8, 2.8);
  add_cc(60, 4, 3.1);  add_cc(60, 5, 2.9);  add_cc(60, 6, 2.75);
  add_bc(100, 4.6);    add_bc(200, 3.8);    add_bc(300, 3.3);
  add_bc(400, 3.0);
  return CodingPlanner(std::move(points));
}

const CodingPoint* CodingPlanner::best_within_latency(
    double max_latency_info_bits) const {
  const CodingPoint* best = nullptr;
  for (const auto& p : points_) {
    if (p.latency_info_bits > max_latency_info_bits) continue;
    if (best == nullptr || p.required_ebn0_db < best->required_ebn0_db) {
      best = &p;
    }
  }
  return best;
}

const CodingPoint* CodingPlanner::best_window_for_lifting(
    std::size_t lifting, double max_latency_info_bits) const {
  const CodingPoint* best = nullptr;
  for (const auto& p : points_) {
    if (p.block_code || p.lifting != lifting) continue;
    if (p.latency_info_bits > max_latency_info_bits) continue;
    if (best == nullptr || p.required_ebn0_db < best->required_ebn0_db) {
      best = &p;
    }
  }
  return best;
}

double CodingPlanner::latency_gain_vs_block_bits(double ebn0_db) const {
  // Smallest latency reaching the target Eb/N0 for each family.
  double best_cc = std::numeric_limits<double>::infinity();
  double best_bc = std::numeric_limits<double>::infinity();
  for (const auto& p : points_) {
    if (p.required_ebn0_db > ebn0_db) continue;
    auto& slot = p.block_code ? best_bc : best_cc;
    slot = std::min(slot, p.latency_info_bits);
  }
  if (!std::isfinite(best_cc) || !std::isfinite(best_bc)) return 0.0;
  return best_bc - best_cc;
}

}  // namespace wi::core

#include "wi/core/link_planner.hpp"

#include <cmath>

namespace wi::core {

WirelessLinkPlanner::WirelessLinkPlanner(rf::LinkBudgetParams budget,
                                         Beamforming beamforming)
    : budget_(budget), beamforming_(beamforming) {}

bool WirelessLinkPlanner::charges_butler(double steering_angle_deg) const {
  // Boresight targets hit a Butler beam centre; only steered links pay
  // the direction mismatch (the paper: "only the worst-case links suffer
  // from the butler matrix realization").
  return beamforming_ == Beamforming::kButlerMatrix &&
         std::abs(steering_angle_deg) > 5.0;
}

double WirelessLinkPlanner::required_ptx_dbm(double target_snr_db,
                                             double distance_mm,
                                             double steering_angle_deg) const {
  return budget_.required_tx_power_dbm(target_snr_db, distance_mm * 1e-3,
                                       charges_butler(steering_angle_deg));
}

double WirelessLinkPlanner::snr_db(double ptx_dbm, double distance_mm,
                                   double steering_angle_deg) const {
  return budget_.snr_db(ptx_dbm, distance_mm * 1e-3,
                        charges_butler(steering_angle_deg));
}

std::vector<PlannedLink> WirelessLinkPlanner::plan(
    const BoardGeometry& geometry, double ptx_dbm,
    double target_snr_db) const {
  std::vector<PlannedLink> links;
  for (const auto& [a, b] : geometry.adjacent_board_pairs()) {
    PlannedLink link;
    link.src_node = a;
    link.dst_node = b;
    link.distance_mm =
        distance_mm(geometry.node(a).position, geometry.node(b).position);
    link.steering_angle_deg = boresight_angle_deg(
        geometry.node(a).position, geometry.node(b).position);
    link.required_ptx_dbm = required_ptx_dbm(
        target_snr_db, link.distance_mm, link.steering_angle_deg);
    link.snr_db =
        snr_db(ptx_dbm, link.distance_mm, link.steering_angle_deg);
    link.rate_gbps =
        budget_.shannon_rate_bps(link.snr_db, /*dual_polarization=*/true) /
        1e9;
    links.push_back(link);
  }
  return links;
}

}  // namespace wi::core

#pragma once
/// \file link_planner.hpp
/// \brief Plans the wireless board-to-board links of a system: per link
///        the distance, steering angle, required transmit power (Fig. 4)
///        and — given a power budget — the achieved SNR and data rate.

#include <vector>

#include "wi/core/geometry.hpp"
#include "wi/rf/antenna.hpp"
#include "wi/rf/link_budget.hpp"

namespace wi::core {

/// Beamforming realisation at the nodes.
enum class Beamforming {
  kIdealSteering,  ///< continuous beamsteering (ref. [4])
  kButlerMatrix,   ///< fixed beam set, worst-case mismatch (ref. [5])
};

/// Planner output per link.
struct PlannedLink {
  std::size_t src_node = 0;
  std::size_t dst_node = 0;
  double distance_mm = 0.0;
  double steering_angle_deg = 0.0;
  double required_ptx_dbm = 0.0;  ///< for the target SNR
  double snr_db = 0.0;            ///< at the provided power budget
  double rate_gbps = 0.0;         ///< Shannon rate at snr_db (dual pol)
};

/// Plans every adjacent-board link of a geometry.
class WirelessLinkPlanner {
 public:
  /// \param budget       link-budget parameters (Table I defaults)
  /// \param beamforming  ideal steering or Butler matrix
  WirelessLinkPlanner(rf::LinkBudgetParams budget, Beamforming beamforming);

  /// Required PTX [dBm] for a target SNR over a given distance/angle.
  /// The Butler inaccuracy is charged only for off-boresight targets
  /// (the paper charges it on the worst-case links).
  [[nodiscard]] double required_ptx_dbm(double target_snr_db,
                                        double distance_mm,
                                        double steering_angle_deg) const;

  /// SNR [dB] at a given transmit power.
  [[nodiscard]] double snr_db(double ptx_dbm, double distance_mm,
                              double steering_angle_deg) const;

  /// Plan all adjacent-board links of a geometry at a fixed transmit
  /// power and target SNR.
  [[nodiscard]] std::vector<PlannedLink> plan(const BoardGeometry& geometry,
                                              double ptx_dbm,
                                              double target_snr_db) const;

  [[nodiscard]] const rf::LinkBudget& budget() const { return budget_; }

 private:
  [[nodiscard]] bool charges_butler(double steering_angle_deg) const;

  rf::LinkBudget budget_;
  Beamforming beamforming_;
};

}  // namespace wi::core

#pragma once
/// \file geometry.hpp
/// \brief Physical geometry of a multi-board system with wireless nodes.
///
/// The paper's scenario: printed circuit boards (e.g. 10 cm x 10 cm)
/// stacked in parallel, each carrying a grid of chip-stack nodes with
/// 4x4 antenna arrays (2 mm x 2 mm) on their interposers. The extreme
/// links of the two-board case are the "ahead" link (100 mm) and the
/// "diagonal" link (300 mm) used in Table I / Fig. 4.

#include <cstddef>
#include <vector>

namespace wi::core {

/// 3D position in millimetres.
struct Position {
  double x_mm = 0.0;
  double y_mm = 0.0;
  double z_mm = 0.0;
};

/// Euclidean distance [mm].
[[nodiscard]] double distance_mm(const Position& a, const Position& b);

/// Off-boresight angle [deg] of the line a->b relative to the board
/// normal (z axis) — the steering angle an array on a board must serve.
[[nodiscard]] double boresight_angle_deg(const Position& a,
                                         const Position& b);

/// One wireless communication node (chip-stack with antenna array).
struct Node {
  std::size_t board = 0;   ///< board index
  Position position;       ///< antenna phase-centre position
};

/// Parallel-board system geometry.
class BoardGeometry {
 public:
  /// \param boards          number of parallel boards (>= 1)
  /// \param board_size_mm   square board edge (default 100 mm)
  /// \param separation_mm   board-to-board spacing (Fig. 4 uses 100 mm)
  /// \param nodes_per_edge  nodes per board edge (grid)
  BoardGeometry(std::size_t boards, double board_size_mm,
                double separation_mm, std::size_t nodes_per_edge);

  [[nodiscard]] std::size_t board_count() const { return boards_; }
  [[nodiscard]] std::size_t nodes_per_board() const {
    return nodes_per_edge_ * nodes_per_edge_;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(std::size_t i) const { return nodes_[i]; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] double separation_mm() const { return separation_mm_; }
  [[nodiscard]] double board_size_mm() const { return board_size_mm_; }

  /// Shortest ("ahead") inter-board link distance [mm].
  [[nodiscard]] double shortest_link_mm() const;

  /// Longest ("diagonal") link distance between adjacent boards [mm].
  [[nodiscard]] double longest_link_mm() const;

  /// All node index pairs on adjacent boards (candidate wireless links).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  adjacent_board_pairs() const;

 private:
  std::size_t boards_;
  double board_size_mm_;
  double separation_mm_;
  std::size_t nodes_per_edge_;
  std::vector<Node> nodes_;
};

}  // namespace wi::core

#pragma once
/// \file nics_stack.hpp
/// \brief 3D Network-in-Chip-Stack (NiCS) intra-connect model (Sec. IV).
///
/// Models a 3D chip stack whose layers are 2D meshes joined by vertical
/// links of a chosen technology — through-silicon vias, inductive or
/// capacitive coupling (the paper's two wireless intra-stack options).
/// Each technology brings its own bandwidth/area trade-off; the TSV area
/// remark of Sec. IV is modelled by a configurable fraction of router
/// columns that actually get a vertical link.

#include <cstddef>
#include <string>

#include "wi/noc/queueing_model.hpp"
#include "wi/noc/topology.hpp"

namespace wi::core {

/// Vertical interconnect technology.
enum class VerticalLinkTech {
  kTsv,        ///< through-silicon via: fast, large area
  kInductive,  ///< inductive coupling: contactless, moderate bandwidth
  kCapacitive, ///< capacitive coupling: contactless, short range
};

/// Technology parameters (bandwidth relative to a planar NoC channel).
struct VerticalLinkParams {
  double bandwidth = 1.0;    ///< flits/cycle
  double area_cost = 1.0;    ///< relative router area for the port
  std::string name;
};

/// Reference parameters per technology. Vertical inter-chip links are
/// expected to offer *more* bandwidth than on-chip wires (Sec. IV), so
/// TSVs default to 2x.
[[nodiscard]] VerticalLinkParams vertical_link_params(VerticalLinkTech tech);

/// Stack configuration.
struct NicsStackConfig {
  std::size_t layers = 4;          ///< chips in the stack
  std::size_t mesh_k = 4;          ///< per-layer k x k mesh
  VerticalLinkTech tech = VerticalLinkTech::kTsv;
  /// Every `vertical_period`-th router (x+y) column carries a vertical
  /// link (1 = all; 2 = half; ... the TSV area constraint).
  std::size_t vertical_period = 1;
  /// Fraction of traffic that targets the module at the same (x, y) on
  /// another layer (memory-on-logic style vertical streams); the rest
  /// is global uniform. Vertical-heavy mixes make the vertical-link
  /// bandwidth the binding resource.
  double vertical_traffic_fraction = 0.0;
  noc::QueueingModelParams model;
};

/// Builder/evaluator for one chip stack.
class NicsStackModel {
 public:
  explicit NicsStackModel(NicsStackConfig config);

  /// The stack's topology (3D mesh, possibly with sparse verticals).
  [[nodiscard]] noc::Topology build_topology() const;

  /// Uniform traffic blended with the configured vertical fraction.
  [[nodiscard]] noc::TrafficPattern build_traffic() const;

  /// Zero-load latency and capacity under uniform traffic.
  struct StackEvaluation {
    double zero_load_latency_cycles = 0.0;
    double saturation_rate = 0.0;
    double vertical_link_count = 0.0;
    double area_cost = 0.0;  ///< summed vertical port area
  };
  [[nodiscard]] StackEvaluation evaluate() const;

  [[nodiscard]] const NicsStackConfig& config() const { return config_; }

 private:
  NicsStackConfig config_;
};

}  // namespace wi::core

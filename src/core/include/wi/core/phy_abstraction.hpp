#pragma once
/// \file phy_abstraction.hpp
/// \brief SNR -> data-rate abstraction of the 1-bit oversampling PHY.
///
/// Bridges Sec. II (link budget gives an SNR) and Sec. III (the 1-bit
/// receiver turns SNR into an information rate in bit/channel use): the
/// achievable link data rate is
///   rate = I(SNR) [bpcu] * symbol_rate * polarizations,
/// with the symbol rate equal to the 25 GHz signal bandwidth. With the
/// sequence-optimised ISI filter I approaches 2 bpcu, which is how the
/// paper reaches 100 Gbit/s with dual polarization.

#include <cstddef>
#include <vector>

#include "wi/comm/filter_design.hpp"

namespace wi::core {

/// Receiver architecture choices exposed by the abstraction.
enum class PhyReceiver {
  kOneBitSequence,    ///< 1-bit, 5x OS, sequence estimation (best)
  kOneBitSymbolwise,  ///< 1-bit, 5x OS, symbol-by-symbol
  kOneBitRect,        ///< 1-bit, 5x OS, rectangular pulse
  kUnquantized,       ///< ideal ADC reference
};

/// Tabulated rate curve of one PHY configuration.
class PhyAbstraction {
 public:
  /// Builds (or interpolates) the rate curve for the chosen receiver.
  /// The curve is computed once at construction over snr_grid_db.
  ///
  /// Each grid point is an independent, deterministically seeded
  /// computation, so the build parallelizes across `threads` workers
  /// with bit-identical results at any thread count (0 = one worker per
  /// hardware thread, capped at the grid size; 1 = serial).
  explicit PhyAbstraction(PhyReceiver receiver,
                          double bandwidth_hz = 25e9,
                          std::size_t polarizations = 2,
                          std::size_t threads = 0);

  /// Information rate [bit/channel use] at an SNR (linear interpolation
  /// on the precomputed grid, clamped at the ends).
  [[nodiscard]] double info_rate_bpcu(double snr_db) const;

  /// Link data rate [Gbit/s] at an SNR.
  [[nodiscard]] double link_rate_gbps(double snr_db) const;

  /// SNR [dB] needed for a target data rate; +inf when unreachable.
  [[nodiscard]] double required_snr_db(double target_gbps) const;

  [[nodiscard]] PhyReceiver receiver() const { return receiver_; }
  [[nodiscard]] double bandwidth_hz() const { return bandwidth_hz_; }
  [[nodiscard]] std::size_t polarizations() const { return polarizations_; }

  /// The precomputed curve (for tests and serialization): SNR grid [dB]
  /// and the monotonized information rate [bpcu] at each grid point.
  [[nodiscard]] const std::vector<double>& snr_grid_db() const {
    return snr_grid_db_;
  }
  [[nodiscard]] const std::vector<double>& rate_curve_bpcu() const {
    return rate_bpcu_;
  }

 private:
  PhyReceiver receiver_;
  double bandwidth_hz_;
  std::size_t polarizations_;
  std::vector<double> snr_grid_db_;
  std::vector<double> rate_bpcu_;
};

}  // namespace wi::core

#pragma once
/// \file hybrid_system.hpp
/// \brief End-to-end model of the paper's proposal: replace the
///        backplane bus of a multi-board system with direct wireless
///        board-to-board links ("take the load off the backplane").
///
/// Two system variants are built over identical per-board NoCs:
///  - backplane baseline: every board bridges through one backplane
///    spine router; all inter-board traffic funnels through it;
///  - wireless system: chip-stack nodes carry >200 GHz arrays, giving a
///    grid of direct links between facing nodes of adjacent boards.
/// Both are evaluated with the analytic queueing model under a traffic
/// mix with a configurable inter-board fraction.

#include <cstddef>
#include <vector>

#include "wi/noc/queueing_model.hpp"
#include "wi/noc/topology.hpp"
#include "wi/noc/traffic.hpp"

namespace wi::core {

/// System configuration.
struct HybridSystemConfig {
  std::size_t boards = 4;          ///< boards in the box
  std::size_t mesh_k = 4;          ///< per-board k x k node mesh
  double inter_board_fraction = 0.3;  ///< share of traffic leaving a board
  /// Wireless link bandwidth in flits/cycle, normalised to an on-board
  /// NoC channel = 1.0 (100 Gbit/s per the paper's target).
  double wireless_bandwidth = 1.0;
  /// Backplane spine link bandwidth in flits/cycle (a shared bus
  /// serving whole boards — the aggregation bottleneck the paper wants
  /// to relieve).
  double backplane_bandwidth = 2.0;
  /// Fraction of node positions equipped with an antenna array
  /// (1.0 = every node has a direct wireless counterpart link).
  double wireless_node_fraction = 1.0;
  noc::QueueingModelParams model;
};

/// Evaluation outcome for one variant.
struct SystemEvaluation {
  double zero_load_latency_cycles = 0.0;
  double saturation_rate = 0.0;  ///< flits/cycle/module capacity
  double latency_at_low_load = 0.0;   ///< at 0.05 flits/cycle/module
};

/// Comparison of the two variants.
struct HybridComparison {
  SystemEvaluation backplane;
  SystemEvaluation wireless;
  double capacity_gain = 0.0;  ///< wireless/backplane saturation ratio
  double latency_gain = 0.0;   ///< backplane/wireless zero-load ratio
};

/// Builder/evaluator for the two variants.
class HybridSystemModel {
 public:
  explicit HybridSystemModel(HybridSystemConfig config);

  /// Multi-board topology with a backplane spine.
  [[nodiscard]] noc::Topology build_backplane_topology() const;

  /// Multi-board topology with direct wireless board-to-board links.
  [[nodiscard]] noc::Topology build_wireless_topology() const;

  /// Traffic pattern: uniform within a board, uniform across boards for
  /// the inter-board fraction.
  [[nodiscard]] noc::TrafficPattern build_traffic() const;

  /// Evaluate one topology under the system traffic.
  [[nodiscard]] SystemEvaluation evaluate(const noc::Topology& topology) const;

  /// Evaluate both variants and compare.
  [[nodiscard]] HybridComparison compare() const;

  [[nodiscard]] const HybridSystemConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::size_t modules_per_board() const {
    return config_.mesh_k * config_.mesh_k;
  }

  HybridSystemConfig config_;
};

}  // namespace wi::core

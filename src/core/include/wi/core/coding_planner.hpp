#pragma once
/// \file coding_planner.hpp
/// \brief Selects an LDPC-CC (N, W) configuration under a structural
///        latency budget — the system-level use of Fig. 10.
///
/// The window size W is a pure decoder property: it can be adapted at
/// run time without touching the encoder, which is exactly the
/// flexibility the paper advertises. The planner therefore (a) picks the
/// strongest configuration whose Eq.-4 latency fits the budget and (b)
/// can re-plan W for an already-deployed code when the budget changes.

#include <cstddef>
#include <vector>

namespace wi::core {

/// One operating point of a coding scheme (from Fig. 10's curves).
struct CodingPoint {
  std::size_t lifting = 0;        ///< N
  std::size_t window = 0;         ///< W (0 for a block code)
  double latency_info_bits = 0.0; ///< Eq. 4 / Eq. 5
  double required_ebn0_db = 0.0;  ///< for the target BER
  bool block_code = false;
};

/// Planner over a table of measured operating points.
class CodingPlanner {
 public:
  /// \param points  measured (or benchmarked) operating points
  explicit CodingPlanner(std::vector<CodingPoint> points);

  /// Built-in table for the paper's (4,8)-regular ensemble (B0=[2,2],
  /// B1=B2=[1,1]) at BER 1e-5, from our Fig. 10 reproduction run.
  [[nodiscard]] static CodingPlanner paper_table();

  /// Best point (lowest required Eb/N0) within a latency budget;
  /// returns nullptr when nothing fits.
  [[nodiscard]] const CodingPoint* best_within_latency(
      double max_latency_info_bits) const;

  /// Best point for a fixed, already-deployed code (fixed N): only the
  /// window may change (decoder-side adaptation).
  [[nodiscard]] const CodingPoint* best_window_for_lifting(
      std::size_t lifting, double max_latency_info_bits) const;

  /// Latency saved vs the best block code at equal required Eb/N0
  /// (the paper's headline: 200 vs 400 info bits at 3 dB).
  [[nodiscard]] double latency_gain_vs_block_bits(double ebn0_db) const;

  [[nodiscard]] const std::vector<CodingPoint>& points() const {
    return points_;
  }

 private:
  std::vector<CodingPoint> points_;
};

}  // namespace wi::core

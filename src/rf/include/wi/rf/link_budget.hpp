#pragma once
/// \file link_budget.hpp
/// \brief Link budget of the >200 GHz board-to-board wireless link
///        (Table I and Fig. 4 of the paper).
///
/// Default parameters reproduce Table I exactly:
///   RX noise figure 10 dB, pathloss exponent 2, PL(0.1 m) = 59.8 dB and
///   PL(0.3 m) = 69.3 dB at 232.5 GHz, array gain 12 dB per side, Butler
///   matrix inaccuracy 5 dB, polarization mismatch 3 dB, implementation
///   loss 5 dB, RX temperature 323 K. Bandwidth 25 GHz gives 100 Gbit/s
///   with dual polarization at ~2 bit/s/Hz.

namespace wi::rf {

/// Table I parameters (defaults = the paper's values).
struct LinkBudgetParams {
  double carrier_freq_hz = 232.5e9;
  double bandwidth_hz = 25e9;
  double rx_noise_figure_db = 10.0;
  double path_loss_exponent = 2.0;
  double array_gain_db = 12.0;            ///< per side (4x4 array)
  double butler_inaccuracy_db = 5.0;      ///< worst-case beams only
  double polarization_mismatch_db = 3.0;
  double implementation_loss_db = 5.0;
  double rx_temperature_k = 323.0;
};

/// Distances of the extreme links in the two-board scenario.
inline constexpr double kShortestLink_m = 0.1;  ///< ahead link
inline constexpr double kLongestLink_m = 0.3;   ///< diagonal link

/// Link budget calculator.
class LinkBudget {
 public:
  explicit LinkBudget(LinkBudgetParams params = {});

  /// Pathloss at a distance per the log-distance model anchored at the
  /// Friis value of the carrier (matches Table I at 0.1 / 0.3 m).
  [[nodiscard]] double path_loss_db(double distance_m) const;

  /// Thermal noise power over the signal bandwidth at the RX
  /// temperature, including the noise figure [dBm].
  [[nodiscard]] double noise_power_dbm() const;

  /// Required transmit power [dBm] for a target receive SNR (Fig. 4).
  /// \param butler_mismatch  charge the Butler inaccuracy (worst-case
  ///                         direction between two fixed beams)
  [[nodiscard]] double required_tx_power_dbm(double target_snr_db,
                                             double distance_m,
                                             bool butler_mismatch) const;

  /// Receive SNR [dB] for a given transmit power (inverse of the above).
  [[nodiscard]] double snr_db(double tx_power_dbm, double distance_m,
                              bool butler_mismatch) const;

  /// Shannon-limit link rate [bit/s] at a given SNR; doubled when
  /// dual polarization is used (the paper's 100 Gbit/s target).
  [[nodiscard]] double shannon_rate_bps(double snr_db,
                                        bool dual_polarization) const;

  [[nodiscard]] const LinkBudgetParams& params() const { return params_; }

 private:
  LinkBudgetParams params_;
};

}  // namespace wi::rf

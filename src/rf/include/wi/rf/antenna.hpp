#pragma once
/// \file antenna.hpp
/// \brief Antenna models: standard-gain horn, planar phased array, and a
///        Butler-matrix beamformer with its quantised beam set.
///
/// The paper uses ~10 dB horns for the channel measurements (9.5 dB
/// effective gain after phase-centre correction) and proposes 4x4 arrays
/// (12 dB array gain) with either full beamsteering or a Butler-matrix
/// realisation whose direction mismatch costs up to 5 dB (Table I).

#include <cstddef>
#include <vector>

namespace wi::rf {

/// Standard-gain horn with a Gaussian main-lobe approximation.
class HornAntenna {
 public:
  /// \param boresight_gain_dbi   gain on boresight
  /// \param hpbw_deg             half-power beamwidth (full angle)
  explicit HornAntenna(double boresight_gain_dbi, double hpbw_deg = 30.0);

  /// Gain towards an off-boresight angle [deg]; Gaussian rolloff with a
  /// -30 dB sidelobe floor relative to boresight.
  [[nodiscard]] double gain_dbi(double angle_deg) const;

  [[nodiscard]] double boresight_gain_dbi() const { return gain_dbi_; }

 private:
  double gain_dbi_;
  double hpbw_deg_;
};

/// Uniform rectangular phased array of isotropic-ish elements.
///
/// A 4x4 array gives 10 log10(16) ≈ 12 dB array gain (Table I).
class PlanarArray {
 public:
  /// \param rows, cols           element grid (>= 1 each)
  /// \param element_gain_dbi     per-element gain
  /// \param spacing_wavelengths  element pitch in wavelengths (default 0.5)
  PlanarArray(std::size_t rows, std::size_t cols, double element_gain_dbi = 0.0,
              double spacing_wavelengths = 0.5);

  [[nodiscard]] std::size_t element_count() const { return rows_ * cols_; }

  /// Ideal broadside array gain: 10 log10(N) + element gain.
  [[nodiscard]] double broadside_gain_dbi() const;

  /// Normalised array-factor power [dB <= 0] towards (azimuth) angle
  /// `theta_deg` when the main beam is steered to `steer_deg`
  /// (separable pattern; one principal plane).
  [[nodiscard]] double array_factor_db(double theta_deg,
                                       double steer_deg) const;

  /// Gain including the array factor when steered to steer_deg and
  /// observed at theta_deg.
  [[nodiscard]] double gain_dbi(double theta_deg, double steer_deg) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  double element_gain_dbi_;
  double spacing_wl_;
};

/// Butler-matrix fed array: only a fixed set of beams is available, so a
/// target direction between two beams suffers scalloping loss, and the
/// hardware adds a fixed network inaccuracy (Table I budgets 5 dB total).
class ButlerMatrixBeamformer {
 public:
  /// \param array                the fed array (defines the patterns)
  /// \param beam_count           number of orthogonal beams (ports)
  /// \param network_loss_db      fixed insertion/phase-error loss
  ButlerMatrixBeamformer(PlanarArray array, std::size_t beam_count,
                         double network_loss_db = 2.0);

  /// Steering angles [deg] of the available beams.
  [[nodiscard]] const std::vector<double>& beam_angles_deg() const {
    return beam_angles_deg_;
  }

  /// Index of the beam whose pattern maximises gain towards the target.
  [[nodiscard]] std::size_t best_beam(double target_deg) const;

  /// Effective gain towards the target using the best available beam,
  /// including scalloping and network loss.
  [[nodiscard]] double effective_gain_dbi(double target_deg) const;

  /// Worst-case loss vs ideal steering over targets in [-60, 60] deg;
  /// with the default configuration this lands near the paper's 5 dB
  /// "Butler matrix inaccuracy" budget entry.
  [[nodiscard]] double worst_case_mismatch_db() const;

 private:
  PlanarArray array_;
  std::vector<double> beam_angles_deg_;
  double network_loss_db_;
};

}  // namespace wi::rf

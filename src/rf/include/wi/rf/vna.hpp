#pragma once
/// \file vna.hpp
/// \brief Synthetic vector network analyser.
///
/// Substitutes the R&S ZVA24 (220–245 GHz extension) used by the paper:
/// sweeps a `MultipathChannel` in the frequency domain with 4096 samples,
/// adds receiver noise, and post-processes sweeps into impulse responses
/// (windowed IDFT) and scalar pathloss values (band-averaged |S21|^2) —
/// the same extraction pipeline the authors apply to real measurements
/// for Figs. 1–3.

#include <vector>

#include "wi/common/rng.hpp"
#include "wi/dsp/window.hpp"
#include "wi/rf/channel.hpp"

namespace wi::rf {

/// One S21 frequency sweep.
struct FrequencySweep {
  std::vector<double> freqs_hz;  ///< sample frequencies (ascending)
  std::vector<cplx> s21;         ///< complex transmission coefficient
};

/// Band-limited impulse response derived from a sweep.
struct ImpulseResponse {
  std::vector<double> delay_s;       ///< time axis (starting at 0)
  std::vector<double> magnitude_db;  ///< 20 log10 |h(tau)|
};

/// Sweep configuration mirroring the measurement campaign.
struct VnaConfig {
  double f_start_hz = 220e9;
  double f_stop_hz = 245e9;
  std::size_t points = 4096;
  double noise_floor_db = -110.0;  ///< per-sample additive noise level
  std::uint64_t seed = 1;
};

/// Synthetic VNA instrument.
class SyntheticVna {
 public:
  explicit SyntheticVna(VnaConfig config = {});

  /// Measure S21 of a channel over the configured band. Each call
  /// advances the internal noise generator (repeat measurements differ,
  /// like a real instrument); construct with the same config/seed to
  /// reproduce a campaign exactly.
  [[nodiscard]] FrequencySweep measure(const MultipathChannel& channel);

  [[nodiscard]] const VnaConfig& config() const { return config_; }

 private:
  VnaConfig config_;
  Rng rng_;
};

/// Windowed IDFT of a sweep. The delay axis resolution is 1/bandwidth;
/// the unambiguous range is points/bandwidth.
[[nodiscard]] ImpulseResponse to_impulse_response(
    const FrequencySweep& sweep,
    dsp::WindowKind window = dsp::WindowKind::kHann);

/// Scalar pathloss: -10 log10(band average of |S21|^2) with the antenna
/// gains added back (so the result is the pure channel loss).
[[nodiscard]] double extract_pathloss_db(const FrequencySweep& sweep,
                                         double total_antenna_gain_db);

/// Peak-to-peak magnitude ripple of a sweep [dB]: the paper concludes
/// the board-to-board channel "can be assumed to be static and largely
/// frequency flat"; this quantifies the flatness over the 25 GHz band.
[[nodiscard]] double magnitude_ripple_db(const FrequencySweep& sweep);

/// Largest reflection level relative to the LoS peak [dB] within the
/// impulse response, ignoring a guard of `guard_samples` around the peak.
/// The paper reports this to be <= -15 dB in all scenarios.
[[nodiscard]] double worst_reflection_rel_db(const ImpulseResponse& ir,
                                             std::size_t guard_samples = 8);

}  // namespace wi::rf

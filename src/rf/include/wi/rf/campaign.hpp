#pragma once
/// \file campaign.hpp
/// \brief Scripted measurement campaigns over the synthetic VNA.
///
/// Reproduces the paper's two measurement setups (Sec. II-A):
///  1. free space with absorber material, distance stepped by motor;
///  2. parallel copper boards at 50 mm separation, diagonal links
///     realised by rotating the boards (equivalent to longer port
///     distances).
/// Each campaign yields pathloss-vs-distance points which are then fitted
/// with the log-distance model (Fig. 1: n = 2.000 free space, n = 2.0454
/// copper boards).

#include <cstdint>
#include <vector>

#include "wi/rf/channel.hpp"
#include "wi/rf/pathloss.hpp"
#include "wi/rf/vna.hpp"

namespace wi::rf {

/// Campaign configuration.
struct CampaignConfig {
  std::vector<double> distances_m;  ///< stepped port distances
  bool copper_boards = false;       ///< setup 2 when true
  double board_separation_m = 0.05;
  double horn_gain_dbi = 9.5;
  VnaConfig vna;                    ///< instrument settings
};

/// Default distance grid 20..200 mm in 10 mm steps (as in Fig. 1's axis).
[[nodiscard]] std::vector<double> default_distance_grid_m();

/// Runs a full campaign: for each distance, build the scenario channel,
/// sweep it, and extract the pathloss.
[[nodiscard]] std::vector<PathLossPoint> run_campaign(
    const CampaignConfig& config);

/// Convenience: run a campaign and fit the log-distance model.
[[nodiscard]] PathLossFit run_and_fit(const CampaignConfig& config,
                                      double reference_distance_m = 0.05);

}  // namespace wi::rf

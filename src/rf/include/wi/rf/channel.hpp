#pragma once
/// \file channel.hpp
/// \brief Deterministic multipath channel model of the board-to-board
///        measurement scenario (the substitution for the physical R&S
///        ZVA24 testbed).
///
/// The measured impulse responses (Fig. 2/3) show a line-of-sight tap
/// followed by reflection clusters attributable to the antenna ports, the
/// horn apertures and — when present — the parallel copper boards. The
/// paper's key observation is that every reflection stays >= 15 dB below
/// the LoS tap. `board_to_board_channel` synthesises exactly these
/// clusters from the scenario geometry so the VNA pipeline reproduces the
/// figures from the same physics.

#include <complex>
#include <string>
#include <vector>

namespace wi::rf {

using cplx = std::complex<double>;

/// One propagation path.
struct Tap {
  double delay_s = 0.0;   ///< absolute propagation delay
  double gain_db = 0.0;   ///< path gain (negative; includes antennas)
  double phase_rad = 0.0; ///< carrier phase offset
  std::string label;      ///< provenance ("LoS", "copper board", ...)
};

/// Linear time-invariant multipath channel as a tapped delay line.
class MultipathChannel {
 public:
  MultipathChannel() = default;
  explicit MultipathChannel(std::vector<Tap> taps);

  /// Add one path.
  void add_tap(Tap tap);

  [[nodiscard]] const std::vector<Tap>& taps() const { return taps_; }

  /// Complex baseband-equivalent frequency response at an RF frequency:
  /// H(f) = sum_i g_i e^{j phi_i} e^{-j 2 pi f tau_i}.
  [[nodiscard]] cplx frequency_response(double freq_hz) const;

  /// Gain of the strongest tap [dB].
  [[nodiscard]] double strongest_tap_db() const;

  /// Delay of the strongest tap [s].
  [[nodiscard]] double strongest_tap_delay_s() const;

  /// Largest reflection gain relative to the strongest tap [dB];
  /// returns -inf-like (-300) when only one tap exists.
  [[nodiscard]] double worst_reflection_rel_db() const;

 private:
  std::vector<Tap> taps_;
};

/// Geometry of the two-board measurement scenario.
struct BoardToBoardScenario {
  double distance_m = 0.05;        ///< port-to-port link distance
  bool copper_boards = false;      ///< parallel copper boards present
  double board_separation_m = 0.05;///< board-to-board spacing (lower bound)
  double horn_gain_dbi = 9.5;      ///< effective horn gain (phase-centre
                                   ///  corrected, paper Fig. 1)
  double carrier_freq_hz = 232.5e9;///< sweep centre
  double waveguide_length_m = 0.02;///< port-to-aperture feed length
  double horn_return_loss_db = 12.0;   ///< aperture reflection per bounce
  double port_return_loss_db = 18.0;   ///< port/flange reflection per bounce
  double copper_reflection_db = 1.0;   ///< copper is nearly ideal (-1 dB)
};

/// Build the multipath channel for a scenario. Clusters generated:
///  - "LoS": direct path, Friis loss minus 2x horn gain.
///  - "antenna ports": double bounce inside the feed (always present).
///  - "horn antenna and antenna port": mixed feed/aperture bounce.
///  - "horn antennas": aperture-to-aperture triple transit (3x distance).
///  - "copper boards (+horn antennas)": board-bounce paths (only when
///    copper_boards is set); off-axis, so horn pattern suppression keeps
///    them >= 15 dB below LoS, as measured.
[[nodiscard]] MultipathChannel board_to_board_channel(
    const BoardToBoardScenario& scenario);

/// Extra diffuse loss of the copper-board environment relative to free
/// space at a given distance. Calibrated so a pathloss fit over the
/// campaign distances yields n ≈ 2.0454 (paper Fig. 1) instead of 2.000.
[[nodiscard]] double copper_board_excess_loss_db(double distance_m);

}  // namespace wi::rf

#pragma once
/// \file pathloss.hpp
/// \brief Log-distance pathloss model (Eq. 1 of the paper) and Friis
///        free-space loss, plus least-squares exponent fitting.
///
/// PL_d[dB] = PL_d0[dB] + 10 n log10(d / d0)
///
/// The paper validates n = 2.000 for free space and n = 2.0454 for the
/// parallel-copper-board scenario at 220–245 GHz (Fig. 1).

#include <vector>

namespace wi::rf {

/// Log-distance pathloss model.
class PathLossModel {
 public:
  /// \param reference_loss_db  PL at the reference distance
  /// \param exponent           pathloss exponent n
  /// \param reference_distance_m  d0 (> 0)
  PathLossModel(double reference_loss_db, double exponent,
                double reference_distance_m = 1.0);

  /// Free-space model at the given carrier: exponent 2, Friis reference.
  [[nodiscard]] static PathLossModel free_space(double carrier_freq_hz);

  /// PL(d) in dB per Eq. (1).
  [[nodiscard]] double loss_db(double distance_m) const;

  [[nodiscard]] double exponent() const { return exponent_; }
  [[nodiscard]] double reference_loss_db() const { return reference_loss_db_; }
  [[nodiscard]] double reference_distance_m() const {
    return reference_distance_m_;
  }

 private:
  double reference_loss_db_;
  double exponent_;
  double reference_distance_m_;
};

/// Friis free-space loss 20 log10(4 pi d / lambda) in dB.
[[nodiscard]] double friis_loss_db(double distance_m, double carrier_freq_hz);

/// One extracted pathloss sample.
struct PathLossPoint {
  double distance_m = 0.0;
  double pathloss_db = 0.0;
};

/// Result of fitting Eq. (1) to measured points.
struct PathLossFit {
  double exponent = 0.0;           ///< fitted n
  double reference_loss_db = 0.0;  ///< fitted PL(d0)
  double rmse_db = 0.0;            ///< residual RMS error
  double reference_distance_m = 1.0;
};

/// Ordinary least squares of pathloss_db on 10 log10(d/d0).
/// Needs at least two distinct distances.
[[nodiscard]] PathLossFit fit_path_loss(const std::vector<PathLossPoint>& points,
                                        double reference_distance_m = 1.0);

}  // namespace wi::rf

#include "wi/rf/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "wi/common/constants.hpp"
#include "wi/rf/antenna.hpp"
#include "wi/rf/pathloss.hpp"

namespace wi::rf {

MultipathChannel::MultipathChannel(std::vector<Tap> taps)
    : taps_(std::move(taps)) {}

void MultipathChannel::add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

cplx MultipathChannel::frequency_response(double freq_hz) const {
  cplx h{0.0, 0.0};
  for (const auto& tap : taps_) {
    const double amplitude = std::pow(10.0, tap.gain_db / 20.0);
    const double phase = tap.phase_rad - kTwoPi * freq_hz * tap.delay_s;
    h += cplx(amplitude * std::cos(phase), amplitude * std::sin(phase));
  }
  return h;
}

double MultipathChannel::strongest_tap_db() const {
  if (taps_.empty()) return -300.0;
  return std::max_element(taps_.begin(), taps_.end(),
                          [](const Tap& a, const Tap& b) {
                            return a.gain_db < b.gain_db;
                          })
      ->gain_db;
}

double MultipathChannel::strongest_tap_delay_s() const {
  if (taps_.empty()) return 0.0;
  return std::max_element(taps_.begin(), taps_.end(),
                          [](const Tap& a, const Tap& b) {
                            return a.gain_db < b.gain_db;
                          })
      ->delay_s;
}

double MultipathChannel::worst_reflection_rel_db() const {
  if (taps_.size() < 2) return -300.0;
  const double strongest = strongest_tap_db();
  double worst = -300.0;
  for (const auto& tap : taps_) {
    const double rel = tap.gain_db - strongest;
    if (rel < -1e-9) worst = std::max(worst, rel);
  }
  return worst;
}

double copper_board_excess_loss_db(double distance_m) {
  // Diffuse scattering / edge diffraction between the plates grows with
  // distance: 0.454 dB per decade on top of the n = 2 spreading turns
  // the fitted exponent into the paper's 2.0454 over the campaign range
  // (the reference sits below the smallest measured distance so every
  // campaign point carries the slope).
  const double reference_m = 0.01;
  if (distance_m <= reference_m) return 0.0;
  return 0.454 * std::log10(distance_m / reference_m);
}

MultipathChannel board_to_board_channel(const BoardToBoardScenario& s) {
  if (!(s.distance_m > 0.0)) {
    throw std::invalid_argument("board_to_board_channel: distance > 0");
  }
  MultipathChannel channel;
  const double c = kSpeedOfLight_mps;
  const double friis = friis_loss_db(s.distance_m, s.carrier_freq_hz);
  const double antenna_gain = 2.0 * s.horn_gain_dbi;

  // Line of sight: port -> waveguide -> aperture -> air -> aperture -> port.
  const double los_delay =
      (s.distance_m + 2.0 * s.waveguide_length_m) / c;
  double los_gain = -(friis - antenna_gain);
  if (s.copper_boards) los_gain -= copper_board_excess_loss_db(s.distance_m);
  channel.add_tap({los_delay, los_gain, 0.0, "LoS"});

  // Antenna-port cluster: standing wave inside the feed, one extra
  // round trip of the waveguide on each side.
  const double port_delay = los_delay + 2.0 * s.waveguide_length_m / c;
  channel.add_tap({port_delay, los_gain - 2.0 * s.port_return_loss_db, 1.1,
                   "antenna ports"});

  // Mixed horn-aperture / port bounce.
  const double mixed_delay = los_delay + 4.0 * s.waveguide_length_m / c;
  channel.add_tap({mixed_delay,
                   los_gain - s.port_return_loss_db - s.horn_return_loss_db,
                   2.3, "horn antenna and antenna port"});

  // Horn-to-horn triple transit: the wave reflects off the receive
  // aperture, travels back, reflects again and arrives after 3x the
  // distance; two aperture bounces plus the extra 2x spreading loss.
  const double triple_delay = (3.0 * s.distance_m + 2.0 * s.waveguide_length_m) / c;
  const double extra_spreading =
      friis_loss_db(3.0 * s.distance_m, s.carrier_freq_hz) - friis;
  channel.add_tap({triple_delay,
                   los_gain - 2.0 * s.horn_return_loss_db - extra_spreading,
                   0.7, "horn antennas"});

  if (s.copper_boards) {
    // The antennas sit in notches of the two parallel plates, so the
    // dominant board reflection is the plate-to-plate double bounce: the
    // wave crosses the gap, scatters off the plate around the receive
    // notch, returns, scatters again and arrives after roughly three gap
    // transits (image method: transverse offset unchanged, longitudinal
    // path 3x the separation). Each plate interaction scatters around
    // the notch, costing `plate_scatter_db`; copper itself is nearly
    // lossless.
    const double plate_scatter_db = 7.5;
    const double h = s.board_separation_m;
    const double in_plane =
        std::sqrt(std::max(0.0, s.distance_m * s.distance_m - h * h));
    const HornAntenna horn(s.horn_gain_dbi);
    const double los_angle_deg = std::atan2(in_plane, h) * 180.0 / kPi;

    auto add_bounce = [&](int transits, double extra_scatter_db,
                          double phase) {
      const double path =
          std::hypot(in_plane, static_cast<double>(transits) * h);
      const double angle_deg =
          std::atan2(in_plane, static_cast<double>(transits) * h) * 180.0 /
          kPi;
      // The horns are aligned on the LoS direction; the bounce departs
      // at a (smaller) angle, costing pattern loss at both ends.
      const double pattern_loss =
          2.0 * (horn.gain_dbi(0.0) -
                 horn.gain_dbi(angle_deg - los_angle_deg));
      const double spreading =
          friis_loss_db(path, s.carrier_freq_hz) - friis;
      channel.add_tap({(path + 2.0 * s.waveguide_length_m) / c,
                       los_gain - spreading - pattern_loss -
                           extra_scatter_db - s.copper_reflection_db,
                       phase, "copper boards (+horn antennas)"});
    };
    add_bounce(3, 2.0 * plate_scatter_db, 2.9);   // double bounce
    add_bounce(5, 4.0 * plate_scatter_db, 1.7);   // quadruple bounce
  }
  return channel;
}

}  // namespace wi::rf

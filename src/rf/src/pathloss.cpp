#include "wi/rf/pathloss.hpp"

#include <cmath>
#include <stdexcept>

#include "wi/common/constants.hpp"

namespace wi::rf {

PathLossModel::PathLossModel(double reference_loss_db, double exponent,
                             double reference_distance_m)
    : reference_loss_db_(reference_loss_db), exponent_(exponent),
      reference_distance_m_(reference_distance_m) {
  if (!(reference_distance_m > 0.0)) {
    throw std::invalid_argument("PathLossModel: d0 must be positive");
  }
}

PathLossModel PathLossModel::free_space(double carrier_freq_hz) {
  return PathLossModel(friis_loss_db(1.0, carrier_freq_hz), 2.0, 1.0);
}

double PathLossModel::loss_db(double distance_m) const {
  if (!(distance_m > 0.0)) {
    throw std::invalid_argument("PathLossModel: distance must be positive");
  }
  return reference_loss_db_ +
         10.0 * exponent_ * std::log10(distance_m / reference_distance_m_);
}

double friis_loss_db(double distance_m, double carrier_freq_hz) {
  if (!(distance_m > 0.0) || !(carrier_freq_hz > 0.0)) {
    throw std::invalid_argument("friis_loss_db: positive arguments required");
  }
  const double lambda = kSpeedOfLight_mps / carrier_freq_hz;
  return 20.0 * std::log10(4.0 * kPi * distance_m / lambda);
}

PathLossFit fit_path_loss(const std::vector<PathLossPoint>& points,
                          double reference_distance_m) {
  if (points.size() < 2) {
    throw std::invalid_argument("fit_path_loss: need at least two points");
  }
  // Regress y = a + n * x with x = 10 log10(d/d0).
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const double count = static_cast<double>(points.size());
  for (const auto& p : points) {
    const double x = 10.0 * std::log10(p.distance_m / reference_distance_m);
    sx += x;
    sy += p.pathloss_db;
    sxx += x * x;
    sxy += x * p.pathloss_db;
  }
  const double denom = count * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    throw std::invalid_argument("fit_path_loss: distances are degenerate");
  }
  PathLossFit fit;
  fit.reference_distance_m = reference_distance_m;
  fit.exponent = (count * sxy - sx * sy) / denom;
  fit.reference_loss_db = (sy - fit.exponent * sx) / count;
  double sq = 0.0;
  for (const auto& p : points) {
    const double x = 10.0 * std::log10(p.distance_m / reference_distance_m);
    const double pred = fit.reference_loss_db + fit.exponent * x;
    sq += (p.pathloss_db - pred) * (p.pathloss_db - pred);
  }
  fit.rmse_db = std::sqrt(sq / count);
  return fit;
}

}  // namespace wi::rf

#include "wi/rf/vna.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "wi/common/units.hpp"
#include "wi/dsp/fft.hpp"

namespace wi::rf {

SyntheticVna::SyntheticVna(VnaConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.points < 2 || !(config_.f_stop_hz > config_.f_start_hz)) {
    throw std::invalid_argument("SyntheticVna: invalid sweep configuration");
  }
}

FrequencySweep SyntheticVna::measure(const MultipathChannel& channel) {
  FrequencySweep sweep;
  sweep.freqs_hz.resize(config_.points);
  sweep.s21.resize(config_.points);
  const double step = (config_.f_stop_hz - config_.f_start_hz) /
                      static_cast<double>(config_.points - 1);
  const double noise_amp = db_to_amp(config_.noise_floor_db);
  for (std::size_t i = 0; i < config_.points; ++i) {
    const double f = config_.f_start_hz + step * static_cast<double>(i);
    sweep.freqs_hz[i] = f;
    const cplx noise(noise_amp * rng_.gaussian() / std::sqrt(2.0),
                     noise_amp * rng_.gaussian() / std::sqrt(2.0));
    sweep.s21[i] = channel.frequency_response(f) + noise;
  }
  return sweep;
}

ImpulseResponse to_impulse_response(const FrequencySweep& sweep,
                                    dsp::WindowKind window) {
  const std::size_t n = sweep.s21.size();
  if (n < 2) throw std::invalid_argument("to_impulse_response: empty sweep");
  const std::vector<double> w = dsp::make_window(window, n);
  double w_sum = 0.0;
  for (const double v : w) w_sum += v;
  std::vector<dsp::cplx> spectrum(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Normalise by the window DC gain so tap amplitudes stay calibrated.
    spectrum[i] = sweep.s21[i] * (w[i] * static_cast<double>(n) / w_sum);
  }
  std::vector<dsp::cplx> h = dsp::ifft(std::move(spectrum));

  const double bandwidth = sweep.freqs_hz.back() - sweep.freqs_hz.front();
  const double dt = 1.0 / bandwidth / (static_cast<double>(n) /
                                       static_cast<double>(n - 1));
  ImpulseResponse ir;
  ir.delay_s.resize(n);
  ir.magnitude_db.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ir.delay_s[i] = dt * static_cast<double>(i);
    const double mag = std::abs(h[i]);
    ir.magnitude_db[i] = 20.0 * std::log10(std::max(mag, 1e-15));
  }
  return ir;
}

double extract_pathloss_db(const FrequencySweep& sweep,
                           double total_antenna_gain_db) {
  if (sweep.s21.empty()) {
    throw std::invalid_argument("extract_pathloss_db: empty sweep");
  }
  double mean_power = 0.0;
  for (const auto& s : sweep.s21) mean_power += std::norm(s);
  mean_power /= static_cast<double>(sweep.s21.size());
  return -lin_to_db(mean_power) + total_antenna_gain_db;
}

double magnitude_ripple_db(const FrequencySweep& sweep) {
  if (sweep.s21.empty()) {
    throw std::invalid_argument("magnitude_ripple_db: empty sweep");
  }
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& s : sweep.s21) {
    const double mag_db = 20.0 * std::log10(std::max(std::abs(s), 1e-15));
    lo = std::min(lo, mag_db);
    hi = std::max(hi, mag_db);
  }
  return hi - lo;
}

double worst_reflection_rel_db(const ImpulseResponse& ir,
                               std::size_t guard_samples) {
  if (ir.magnitude_db.empty()) return -300.0;
  std::size_t peak = 0;
  for (std::size_t i = 1; i < ir.magnitude_db.size(); ++i) {
    if (ir.magnitude_db[i] > ir.magnitude_db[peak]) peak = i;
  }
  double worst = -300.0;
  for (std::size_t i = 0; i < ir.magnitude_db.size(); ++i) {
    const std::size_t dist = (i > peak) ? i - peak : peak - i;
    if (dist <= guard_samples) continue;
    worst = std::max(worst, ir.magnitude_db[i] - ir.magnitude_db[peak]);
  }
  return worst;
}

}  // namespace wi::rf

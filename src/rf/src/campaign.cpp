#include "wi/rf/campaign.hpp"

#include <stdexcept>

namespace wi::rf {

std::vector<double> default_distance_grid_m() {
  std::vector<double> grid;
  for (int mm = 20; mm <= 200; mm += 10) {
    grid.push_back(static_cast<double>(mm) * 1e-3);
  }
  return grid;
}

std::vector<PathLossPoint> run_campaign(const CampaignConfig& config) {
  if (config.distances_m.empty()) {
    throw std::invalid_argument("run_campaign: no distances configured");
  }
  SyntheticVna vna(config.vna);
  std::vector<PathLossPoint> points;
  points.reserve(config.distances_m.size());
  for (const double d : config.distances_m) {
    BoardToBoardScenario scenario;
    scenario.distance_m = d;
    scenario.copper_boards = config.copper_boards;
    scenario.board_separation_m = config.board_separation_m;
    scenario.horn_gain_dbi = config.horn_gain_dbi;
    scenario.carrier_freq_hz =
        0.5 * (config.vna.f_start_hz + config.vna.f_stop_hz);
    const MultipathChannel channel = board_to_board_channel(scenario);
    const FrequencySweep sweep = vna.measure(channel);
    points.push_back(
        {d, extract_pathloss_db(sweep, 2.0 * config.horn_gain_dbi)});
  }
  return points;
}

PathLossFit run_and_fit(const CampaignConfig& config,
                        double reference_distance_m) {
  return fit_path_loss(run_campaign(config), reference_distance_m);
}

}  // namespace wi::rf

#include "wi/rf/link_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "wi/common/constants.hpp"
#include "wi/common/units.hpp"
#include "wi/rf/pathloss.hpp"

namespace wi::rf {

LinkBudget::LinkBudget(LinkBudgetParams params) : params_(params) {
  if (!(params_.bandwidth_hz > 0.0) || !(params_.carrier_freq_hz > 0.0) ||
      !(params_.rx_temperature_k > 0.0)) {
    throw std::invalid_argument("LinkBudget: invalid parameters");
  }
}

double LinkBudget::path_loss_db(double distance_m) const {
  const double reference = friis_loss_db(1.0, params_.carrier_freq_hz);
  return reference +
         10.0 * params_.path_loss_exponent * std::log10(distance_m);
}

double LinkBudget::noise_power_dbm() const {
  const double noise_watt =
      kBoltzmann_jpk * params_.rx_temperature_k * params_.bandwidth_hz;
  return watt_to_dbm(noise_watt) + params_.rx_noise_figure_db;
}

double LinkBudget::required_tx_power_dbm(double target_snr_db,
                                         double distance_m,
                                         bool butler_mismatch) const {
  double ptx = target_snr_db + noise_power_dbm() + path_loss_db(distance_m);
  ptx -= 2.0 * params_.array_gain_db;  // TX and RX arrays
  ptx += params_.polarization_mismatch_db + params_.implementation_loss_db;
  if (butler_mismatch) ptx += params_.butler_inaccuracy_db;
  return ptx;
}

double LinkBudget::snr_db(double tx_power_dbm, double distance_m,
                          bool butler_mismatch) const {
  // required_tx_power is affine in the SNR, so invert directly.
  const double ptx_at_zero_snr =
      required_tx_power_dbm(0.0, distance_m, butler_mismatch);
  return tx_power_dbm - ptx_at_zero_snr;
}

double LinkBudget::shannon_rate_bps(double snr_db,
                                    bool dual_polarization) const {
  const double capacity =
      params_.bandwidth_hz * std::log2(1.0 + db_to_lin(snr_db));
  return dual_polarization ? 2.0 * capacity : capacity;
}

}  // namespace wi::rf

#include "wi/rf/antenna.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "wi/common/constants.hpp"

namespace wi::rf {

HornAntenna::HornAntenna(double boresight_gain_dbi, double hpbw_deg)
    : gain_dbi_(boresight_gain_dbi), hpbw_deg_(hpbw_deg) {
  if (!(hpbw_deg > 0.0)) {
    throw std::invalid_argument("HornAntenna: beamwidth must be positive");
  }
}

double HornAntenna::gain_dbi(double angle_deg) const {
  // Gaussian beam: -3 dB at hpbw/2  =>  loss = 12 (theta/hpbw)^2 dB.
  const double loss_db = 12.0 * std::pow(angle_deg / hpbw_deg_, 2.0);
  return gain_dbi_ - std::min(loss_db, 30.0);
}

PlanarArray::PlanarArray(std::size_t rows, std::size_t cols,
                         double element_gain_dbi, double spacing_wavelengths)
    : rows_(rows), cols_(cols), element_gain_dbi_(element_gain_dbi),
      spacing_wl_(spacing_wavelengths) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("PlanarArray: need at least one element");
  }
  if (!(spacing_wavelengths > 0.0)) {
    throw std::invalid_argument("PlanarArray: spacing must be positive");
  }
}

double PlanarArray::broadside_gain_dbi() const {
  return 10.0 * std::log10(static_cast<double>(element_count())) +
         element_gain_dbi_;
}

double PlanarArray::array_factor_db(double theta_deg, double steer_deg) const {
  // Uniform linear array factor along the steering plane (cols_ elements).
  const std::size_t n = cols_;
  const double psi =
      kTwoPi * spacing_wl_ *
      (std::sin(theta_deg * kPi / 180.0) - std::sin(steer_deg * kPi / 180.0));
  double magnitude = 0.0;
  if (std::abs(psi) < 1e-12) {
    magnitude = static_cast<double>(n);
  } else {
    magnitude = std::abs(std::sin(0.5 * static_cast<double>(n) * psi) /
                         std::sin(0.5 * psi));
  }
  const double normalized = magnitude / static_cast<double>(n);
  const double power_db = 20.0 * std::log10(std::max(normalized, 1e-6));
  return power_db;
}

double PlanarArray::gain_dbi(double theta_deg, double steer_deg) const {
  return broadside_gain_dbi() + array_factor_db(theta_deg, steer_deg);
}

ButlerMatrixBeamformer::ButlerMatrixBeamformer(PlanarArray array,
                                               std::size_t beam_count,
                                               double network_loss_db)
    : array_(array), network_loss_db_(network_loss_db) {
  if (beam_count == 0) {
    throw std::invalid_argument("ButlerMatrixBeamformer: need >= 1 beam");
  }
  // Classic Butler beams at sin(theta_k) = (2k + 1 - K) / K for a
  // half-wavelength-spaced K-element array.
  beam_angles_deg_.reserve(beam_count);
  const double count = static_cast<double>(beam_count);
  for (std::size_t k = 0; k < beam_count; ++k) {
    const double s = (2.0 * static_cast<double>(k) + 1.0 - count) / count;
    beam_angles_deg_.push_back(std::asin(std::clamp(s, -1.0, 1.0)) * 180.0 /
                               kPi);
  }
}

std::size_t ButlerMatrixBeamformer::best_beam(double target_deg) const {
  std::size_t best = 0;
  double best_gain = -1e9;
  for (std::size_t k = 0; k < beam_angles_deg_.size(); ++k) {
    const double g = array_.gain_dbi(target_deg, beam_angles_deg_[k]);
    if (g > best_gain) {
      best_gain = g;
      best = k;
    }
  }
  return best;
}

double ButlerMatrixBeamformer::effective_gain_dbi(double target_deg) const {
  const std::size_t k = best_beam(target_deg);
  return array_.gain_dbi(target_deg, beam_angles_deg_[k]) - network_loss_db_;
}

double ButlerMatrixBeamformer::worst_case_mismatch_db() const {
  double worst = 0.0;
  for (double target = -60.0; target <= 60.0; target += 0.25) {
    const double ideal = array_.gain_dbi(target, target);
    const double actual = effective_gain_dbi(target);
    worst = std::max(worst, ideal - actual);
  }
  return worst;
}

}  // namespace wi::rf

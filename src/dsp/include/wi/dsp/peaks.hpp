#pragma once
/// \file peaks.hpp
/// \brief Peak detection on magnitude profiles.
///
/// Used to identify reflection taps in synthetic impulse responses
/// (Fig. 2/3): the paper's claim is that every reflection stays at least
/// 15 dB below the line-of-sight tap.

#include <cstddef>
#include <vector>

namespace wi::dsp {

/// A detected local maximum.
struct Peak {
  std::size_t index = 0;  ///< sample index
  double value = 0.0;     ///< amplitude at the peak
};

/// Local maxima of x that exceed `min_value` and are separated by at
/// least `min_distance` samples (greedy, strongest first).
[[nodiscard]] std::vector<Peak> find_peaks(const std::vector<double>& x,
                                           double min_value,
                                           std::size_t min_distance);

/// Index of the global maximum (0 for an empty vector).
[[nodiscard]] std::size_t argmax(const std::vector<double>& x);

}  // namespace wi::dsp

#pragma once
/// \file fft.hpp
/// \brief Discrete Fourier transforms.
///
/// Power-of-two lengths use an iterative radix-2 Cooley–Tukey FFT;
/// arbitrary lengths fall back to Bluestein's chirp-z algorithm (which
/// itself runs on the radix-2 kernel), so every length is O(n log n).
/// The VNA channel sounder (Fig. 1–3) relies on the inverse transform to
/// convert 4096-point frequency sweeps into impulse responses.

#include <complex>
#include <vector>

namespace wi::dsp {

using cplx = std::complex<double>;

/// True when n is a power of two (n >= 1).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// Forward DFT: X[k] = sum_n x[n] e^{-j 2 pi k n / N}. Any length.
[[nodiscard]] std::vector<cplx> fft(std::vector<cplx> x);

/// Inverse DFT with 1/N normalisation.
[[nodiscard]] std::vector<cplx> ifft(std::vector<cplx> x);

/// In-place radix-2 FFT; size must be a power of two.
/// inverse = true computes the unnormalised inverse transform.
void fft_radix2_inplace(std::vector<cplx>& x, bool inverse);

/// Linear convolution of two real sequences (direct method).
[[nodiscard]] std::vector<double> convolve(const std::vector<double>& a,
                                           const std::vector<double>& b);

/// Circular cross-correlation via FFT (used in tests).
[[nodiscard]] std::vector<cplx> circular_correlation(
    const std::vector<cplx>& a, const std::vector<cplx>& b);

}  // namespace wi::dsp

#pragma once
/// \file window.hpp
/// \brief Spectral windows and time gating for the VNA post-processing.
///
/// The synthetic channel sounder applies a window to the frequency sweep
/// before the inverse transform to suppress sidelobes of the band-limited
/// impulse response, mirroring standard VNA time-domain practice.

#include <cstddef>
#include <vector>

namespace wi::dsp {

enum class WindowKind {
  kRectangular,  ///< no shaping
  kHann,         ///< raised cosine
  kHamming,      ///< 0.54/0.46 variant
  kBlackman,     ///< three-term, lower sidelobes
};

/// Window taps of the requested length (symmetric definition).
[[nodiscard]] std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Zero out samples outside [start, stop) — crude time gate used to
/// isolate the line-of-sight tap in impulse responses.
[[nodiscard]] std::vector<double> time_gate(std::vector<double> x,
                                            std::size_t start,
                                            std::size_t stop);

}  // namespace wi::dsp

#pragma once
/// \file filter.hpp
/// \brief FIR filtering, resampling and pulse-shaping primitives.
///
/// The 1-bit oversampling study (Fig. 5–6) models intersymbol interference
/// as an FIR filter sampled at the oversampling rate; these helpers apply
/// such filters to symbol sequences.

#include <cstddef>
#include <vector>

namespace wi::dsp {

/// Direct-form FIR filter y[n] = sum_k h[k] x[n-k] (zero initial state).
/// Output has the same length as the input (tail truncated).
[[nodiscard]] std::vector<double> fir_filter(const std::vector<double>& taps,
                                             const std::vector<double>& x);

/// Insert (factor-1) zeros between samples (expander).
[[nodiscard]] std::vector<double> upsample(const std::vector<double>& x,
                                           std::size_t factor);

/// Keep every factor-th sample starting at the given offset.
[[nodiscard]] std::vector<double> downsample(const std::vector<double>& x,
                                             std::size_t factor,
                                             std::size_t offset = 0);

/// Rectangular pulse of `samples_per_symbol` unit taps (amplitude keeps
/// unit symbol energy when scaled by 1/samples_per_symbol outside).
[[nodiscard]] std::vector<double> rectangular_pulse(
    std::size_t samples_per_symbol);

/// Root-raised-cosine pulse (span in symbols, oversampling factor,
/// roll-off in [0,1]); normalised to unit energy.
[[nodiscard]] std::vector<double> root_raised_cosine(
    std::size_t span_symbols, std::size_t samples_per_symbol, double rolloff);

/// Energy (sum of squares) of a tap vector.
[[nodiscard]] double energy(const std::vector<double>& taps);

/// Scale taps to unit energy (no-op on an all-zero vector).
[[nodiscard]] std::vector<double> normalize_energy(std::vector<double> taps);

}  // namespace wi::dsp

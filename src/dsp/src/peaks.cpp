#include "wi/dsp/peaks.hpp"

#include <algorithm>

namespace wi::dsp {

std::vector<Peak> find_peaks(const std::vector<double>& x, double min_value,
                             std::size_t min_distance) {
  std::vector<Peak> candidates;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool left_ok = (i == 0) || (x[i] >= x[i - 1]);
    const bool right_ok = (i + 1 == x.size()) || (x[i] > x[i + 1]);
    if (left_ok && right_ok && x[i] >= min_value) {
      candidates.push_back({i, x[i]});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });
  std::vector<Peak> selected;
  for (const auto& c : candidates) {
    const bool too_close = std::any_of(
        selected.begin(), selected.end(), [&](const Peak& s) {
          const std::size_t lo = std::min(s.index, c.index);
          const std::size_t hi = std::max(s.index, c.index);
          return hi - lo < min_distance;
        });
    if (!too_close) selected.push_back(c);
  }
  std::sort(selected.begin(), selected.end(),
            [](const Peak& a, const Peak& b) { return a.index < b.index; });
  return selected;
}

std::size_t argmax(const std::vector<double>& x) {
  if (x.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(x.begin(), x.end()) - x.begin());
}

}  // namespace wi::dsp

#include "wi/dsp/window.hpp"

#include <cmath>

#include "wi/common/constants.hpp"

namespace wi::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;
    switch (kind) {
      case WindowKind::kRectangular:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) +
               0.08 * std::cos(2.0 * kTwoPi * x);
        break;
    }
  }
  return w;
}

std::vector<double> time_gate(std::vector<double> x, std::size_t start,
                              std::size_t stop) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i < start || i >= stop) x[i] = 0.0;
  }
  return x;
}

}  // namespace wi::dsp

#include "wi/dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "wi/common/constants.hpp"

namespace wi::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_radix2_inplace(std::vector<cplx>& x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2_inplace: size must be 2^k");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 1.0 : -1.0) * kTwoPi / static_cast<double>(len);
    const cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = x[i + k];
        const cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bluestein chirp-z transform for arbitrary length.
std::vector<cplx> bluestein(const std::vector<cplx>& x, bool inverse) {
  const std::size_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;
  // w[k] = e^{sign * j pi k^2 / n}; indices squared mod 2n to avoid overflow.
  std::vector<cplx> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    w[k] = cplx(std::cos(angle), std::sin(angle));
  }
  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<cplx> a(m, cplx{});
  std::vector<cplx> b(m, cplx{});
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = x[k] * w[k];
    b[k] = std::conj(w[k]);
  }
  for (std::size_t k = 1; k < n; ++k) b[m - k] = std::conj(w[k]);
  fft_radix2_inplace(a, false);
  fft_radix2_inplace(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2_inplace(a, true);
  const double scale = 1.0 / static_cast<double>(m);
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * w[k] * scale;
  return out;
}

}  // namespace

std::vector<cplx> fft(std::vector<cplx> x) {
  if (x.empty()) return x;
  if (is_power_of_two(x.size())) {
    fft_radix2_inplace(x, false);
    return x;
  }
  return bluestein(x, false);
}

std::vector<cplx> ifft(std::vector<cplx> x) {
  if (x.empty()) return x;
  const double inv_n = 1.0 / static_cast<double>(x.size());
  if (is_power_of_two(x.size())) {
    fft_radix2_inplace(x, true);
  } else {
    x = bluestein(x, true);
  }
  for (auto& v : x) v *= inv_n;
  return x;
}

std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

std::vector<cplx> circular_correlation(const std::vector<cplx>& a,
                                       const std::vector<cplx>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("circular_correlation: size mismatch");
  }
  std::vector<cplx> fa = fft(a);
  std::vector<cplx> fb = fft(b);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= std::conj(fb[i]);
  return ifft(std::move(fa));
}

}  // namespace wi::dsp

#include "wi/dsp/filter.hpp"

#include <cmath>
#include <stdexcept>

#include "wi/common/constants.hpp"

namespace wi::dsp {

std::vector<double> fir_filter(const std::vector<double>& taps,
                               const std::vector<double>& x) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0.0;
    const std::size_t kmax = std::min(taps.size(), n + 1);
    for (std::size_t k = 0; k < kmax; ++k) {
      acc += taps[k] * x[n - k];
    }
    y[n] = acc;
  }
  return y;
}

std::vector<double> upsample(const std::vector<double>& x,
                             std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("upsample: factor must be > 0");
  std::vector<double> y(x.size() * factor, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) y[i * factor] = x[i];
  return y;
}

std::vector<double> downsample(const std::vector<double>& x,
                               std::size_t factor, std::size_t offset) {
  if (factor == 0) {
    throw std::invalid_argument("downsample: factor must be > 0");
  }
  std::vector<double> y;
  y.reserve(x.size() / factor + 1);
  for (std::size_t i = offset; i < x.size(); i += factor) y.push_back(x[i]);
  return y;
}

std::vector<double> rectangular_pulse(std::size_t samples_per_symbol) {
  return std::vector<double>(samples_per_symbol, 1.0);
}

std::vector<double> root_raised_cosine(std::size_t span_symbols,
                                       std::size_t samples_per_symbol,
                                       double rolloff) {
  if (rolloff < 0.0 || rolloff > 1.0) {
    throw std::invalid_argument("root_raised_cosine: rolloff in [0,1]");
  }
  const std::size_t n = span_symbols * samples_per_symbol + 1;
  std::vector<double> h(n);
  const double mid = static_cast<double>(n - 1) / 2.0;
  const double sps = static_cast<double>(samples_per_symbol);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) - mid) / sps;  // in symbols
    double value = 0.0;
    const double beta = rolloff;
    if (std::abs(t) < 1e-12) {
      value = 1.0 + beta * (4.0 / kPi - 1.0);
    } else if (beta > 0.0 &&
               std::abs(std::abs(t) - 1.0 / (4.0 * beta)) < 1e-9) {
      const double a = (1.0 + 2.0 / kPi) * std::sin(kPi / (4.0 * beta));
      const double b = (1.0 - 2.0 / kPi) * std::cos(kPi / (4.0 * beta));
      value = beta / std::sqrt(2.0) * (a + b);
    } else {
      const double num = std::sin(kPi * t * (1.0 - beta)) +
                         4.0 * beta * t * std::cos(kPi * t * (1.0 + beta));
      const double den = kPi * t * (1.0 - std::pow(4.0 * beta * t, 2.0));
      value = num / den;
    }
    h[i] = value;
  }
  return normalize_energy(std::move(h));
}

double energy(const std::vector<double>& taps) {
  double e = 0.0;
  for (const double t : taps) e += t * t;
  return e;
}

std::vector<double> normalize_energy(std::vector<double> taps) {
  const double e = energy(taps);
  if (e <= 0.0) return taps;
  const double scale = 1.0 / std::sqrt(e);
  for (auto& t : taps) t *= scale;
  return taps;
}

}  // namespace wi::dsp

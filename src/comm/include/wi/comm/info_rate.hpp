#pragma once
/// \file info_rate.hpp
/// \brief Information-rate computations for Fig. 6.
///
/// Six quantities are needed:
///  - unquantized 4-ASK over AWGN (upper reference) — exact via
///    Gauss–Hermite quadrature;
///  - 1-bit, no oversampling — exact (binary-output DMC);
///  - 1-bit, M-fold oversampling, symbol-by-symbol detection — exact by
///    enumerating interference windows and the 2^M output patterns;
///  - 1-bit, M-fold oversampling, sequence estimation — simulation-based
///    (Arnold–Loeliger forward recursion for H(Y), exact H(Y|X));
///  computed for the rectangular pulse and the three Fig. 5 designs.

#include <cstddef>
#include <cstdint>

#include "wi/comm/os_channel.hpp"

namespace wi::comm {

/// Mutual information [bit/channel use] of an unquantized real AWGN
/// channel with equiprobable constellation inputs at the given SNR
/// (signal power / noise power). Gauss–Hermite with `nodes` points.
[[nodiscard]] double mi_unquantized_awgn(const Constellation& constellation,
                                         double snr_db,
                                         std::size_t nodes = 96);

/// The "No Quantization" reference of Fig. 6: an ideal (unquantized)
/// receiver that matched-filters the whole M-sample block. With the
/// ||h||^2 = M power constraint the block carries M times the energy of
/// one sample, so the effective SNR is snr_per_sample + 10 log10(M).
/// This upper-bounds every M-fold oversampled 1-bit receiver.
[[nodiscard]] double mi_unquantized_matched_filter(
    const Constellation& constellation, double snr_per_sample_db,
    std::size_t oversampling, std::size_t nodes = 96);

/// Mutual information of a 1-bit quantized, symbol-rate-sampled AWGN
/// channel (M = 1, rectangular pulse): saturates at 1 bpcu.
[[nodiscard]] double mi_one_bit_no_oversampling(
    const Constellation& constellation, double snr_db);

/// Exact I(X_t; Y_t) for the 1-bit oversampled channel with
/// symbol-by-symbol detection; interference from neighbouring symbols is
/// marginalised (treated as dithering, as in the paper).
[[nodiscard]] double mi_one_bit_symbolwise(const OneBitOsChannel& channel);

/// Settings for the sequence information-rate estimator.
struct SequenceRateOptions {
  std::size_t symbols = 200000;  ///< simulated sequence length
  std::uint64_t seed = 7;        ///< RNG seed
};

/// Simulation-based information rate lim (1/n) I(X; Y) for i.u.d.
/// inputs (sequence estimation bound): H(Y) by the normalised forward
/// recursion over the ISI state trellis, H(Y|X) in closed form.
///
/// The Monte-Carlo randomness (symbol stream + raw noise draws) depends
/// only on (seed, symbols, constellation order, M) and is memoized
/// process-wide, so sweeping SNR or the ISI filter at a fixed seed —
/// e.g. a PhyAbstraction curve build — pays the simulation cost once.
/// Results are bit-identical to an unmemoized run and the function is
/// safe to call concurrently.
[[nodiscard]] double info_rate_one_bit_sequence(
    const OneBitOsChannel& channel, const SequenceRateOptions& options = {});

/// Closed-form conditional output entropy rate H(Y|X) [bit/symbol]:
/// expectation over all symbol windows of the per-sample binary
/// entropies (noise independent across samples).
[[nodiscard]] double conditional_entropy_rate(const OneBitOsChannel& channel);

}  // namespace wi::comm

#pragma once
/// \file os_channel.hpp
/// \brief AWGN channel with M-fold oversampling and 1-bit quantization at
///        the receiver (Sec. III architecture, ref. [7] of the paper).
///
/// Per symbol interval the receiver observes M one-bit samples
///   y_m = sign(z_m + n_m),  n_m iid N(0, sigma^2),
/// where z_m is the noiseless filter output. Noise samples are modelled
/// as uncorrelated within the oversampling vector, exactly as the paper
/// assumes. SNR is defined as average signal sample power (= 1 by the
/// filter normalisation) over sigma^2.

#include <cstdint>
#include <vector>

#include "wi/common/rng.hpp"
#include "wi/comm/isi.hpp"
#include "wi/comm/modulation.hpp"

namespace wi::comm {

/// Noise standard deviation for an SNR in dB (unit signal power).
[[nodiscard]] double noise_std_for_snr_db(double snr_db);

/// One-bit oversampled AWGN channel bound to a filter and constellation.
class OneBitOsChannel {
 public:
  OneBitOsChannel(IsiFilter filter, Constellation constellation,
                  double snr_db);

  [[nodiscard]] const IsiFilter& filter() const { return filter_; }
  [[nodiscard]] const Constellation& constellation() const {
    return constellation_;
  }
  [[nodiscard]] double noise_std() const { return noise_std_; }
  [[nodiscard]] std::size_t samples_per_symbol() const {
    return filter_.samples_per_symbol();
  }
  /// Number of trellis states = order^(span-1).
  [[nodiscard]] std::size_t state_count() const { return state_count_; }

  /// P(y_m = 1 | noiseless sample z).
  [[nodiscard]] double sample_one_prob(double z) const;

  /// Probability of an M-bit output pattern given a symbol window
  /// (window[0] = current symbol index, window[k] = k symbols ago).
  [[nodiscard]] double block_prob(std::uint32_t pattern,
                                  const std::vector<std::size_t>& window) const;

  /// Noiseless samples for a symbol-index window (size M).
  [[nodiscard]] std::vector<double> noiseless_block(
      const std::vector<std::size_t>& window) const;

  /// Simulate: draw iid uniform symbols, emit one M-bit pattern per
  /// symbol. Outputs are bit-packed (LSB = first sample of the block).
  struct SimulationResult {
    std::vector<std::size_t> symbols;    ///< transmitted symbol indices
    std::vector<std::uint32_t> patterns; ///< received 1-bit blocks
  };
  [[nodiscard]] SimulationResult simulate(std::size_t n_symbols,
                                          Rng& rng) const;

  /// Enumerate every symbol window (span symbols); used by the exact
  /// computations. Each entry lists symbol indices, current first.
  [[nodiscard]] std::vector<std::vector<std::size_t>> all_windows() const;

 private:
  IsiFilter filter_;
  Constellation constellation_;
  double noise_std_;
  std::size_t state_count_;
};

}  // namespace wi::comm

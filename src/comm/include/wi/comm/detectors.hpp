#pragma once
/// \file detectors.hpp
/// \brief Receivers for the 1-bit oversampled channel: symbol-by-symbol
///        MAP detection and Viterbi sequence estimation.
///
/// These realise the two receiver architectures whose achievable rates
/// Fig. 6 compares; the symbol-error-rate simulator is used in tests and
/// in the board-to-board PHY example.

#include <cstdint>
#include <vector>

#include "wi/comm/os_channel.hpp"

namespace wi::comm {

/// Symbol-by-symbol MAP detector: argmax_a P(y_t | x_t = a) with the
/// interfering symbols marginalised (the ISI acts as dithering).
class SymbolwiseDetector {
 public:
  explicit SymbolwiseDetector(const OneBitOsChannel& channel);

  /// Most likely current symbol index for one received pattern.
  [[nodiscard]] std::size_t detect(std::uint32_t pattern) const;

 private:
  std::vector<std::size_t> decision_table_;  ///< pattern -> symbol index
};

/// Viterbi sequence estimator over the ISI state trellis with exact
/// per-branch log probabilities of the observed 1-bit patterns.
class ViterbiDetector {
 public:
  explicit ViterbiDetector(const OneBitOsChannel& channel);

  /// Maximum-likelihood symbol sequence for the received patterns.
  [[nodiscard]] std::vector<std::size_t> detect(
      const std::vector<std::uint32_t>& patterns) const;

 private:
  std::size_t order_;
  std::size_t states_;
  std::size_t samples_;
  std::vector<std::size_t> branch_next_;            ///< [state*order+input]
  std::vector<std::vector<double>> branch_logp_;    ///< [branch][pattern]
};

/// Monte-Carlo symbol error rate of either receiver.
struct SerResult {
  double ser = 0.0;
  std::size_t errors = 0;
  std::size_t symbols = 0;
};

/// SER of the symbolwise detector.
[[nodiscard]] SerResult simulate_ser_symbolwise(const OneBitOsChannel& channel,
                                                std::size_t n_symbols,
                                                std::uint64_t seed);

/// SER of the Viterbi sequence detector (edge symbols excluded from the
/// count to avoid termination effects).
[[nodiscard]] SerResult simulate_ser_viterbi(const OneBitOsChannel& channel,
                                             std::size_t n_symbols,
                                             std::uint64_t seed);

}  // namespace wi::comm

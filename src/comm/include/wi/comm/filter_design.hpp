#pragma once
/// \file filter_design.hpp
/// \brief ISI filter optimisation — the Fig. 5 designs.
///
/// Three strategies from the paper:
///  (b) maximise the exact symbol-by-symbol information rate at a design
///      SNR (the ISI acts as dithering for a symbolwise receiver);
///  (c) maximise the sequence information rate at a design SNR (the
///      linear combinations introduced by the ISI are exploited by a
///      sequence estimator);
///  (d) a noise-agnostic "suboptimal" design that only enforces unique
///      detectability in the noise-free case while maximising the margin
///      of the noiseless samples against the 1-bit threshold.
///
/// All designs keep the transmit-power constraint ||h||^2 = M via the
/// IsiFilter normalisation.

#include <cstdint>

#include "wi/comm/isi.hpp"
#include "wi/comm/modulation.hpp"
#include "wi/comm/os_channel.hpp"

namespace wi::comm {

/// Common optimiser settings.
struct FilterDesignOptions {
  std::size_t samples_per_symbol = 5;  ///< M (paper: 5-fold)
  std::size_t span_symbols = 3;        ///< filter length in symbols
  double design_snr_db = 25.0;         ///< paper optimises at 25 dB
  int max_evals = 1500;                ///< Nelder–Mead budget per restart
  int restarts = 2;                    ///< random restarts
  std::uint64_t seed = 11;             ///< for restarts / MC rates
  std::size_t sequence_mc_symbols = 4000;  ///< MC length inside the
                                           ///  sequence objective
};

/// Fig. 5(b): optimal ISI for symbol-by-symbol detection.
[[nodiscard]] IsiFilter optimize_filter_symbolwise(
    const Constellation& constellation, const FilterDesignOptions& options);

/// Fig. 5(c): optimal ISI for sequence detection.
[[nodiscard]] IsiFilter optimize_filter_sequence(
    const Constellation& constellation, const FilterDesignOptions& options);

/// Fig. 5(d): suboptimal design from the noise-free unique-detection
/// property (no knowledge of the noise statistics needed).
[[nodiscard]] IsiFilter design_filter_suboptimal(
    const Constellation& constellation, const FilterDesignOptions& options);

/// Finite-delay unique decodability in the noise-free case: every pair of
/// trellis paths that diverges must produce different 1-bit output
/// patterns within `max_delay` symbols. Samples closer than `margin` to
/// the threshold are treated as ambiguous.
[[nodiscard]] bool is_uniquely_detectable(const IsiFilter& filter,
                                          const Constellation& constellation,
                                          std::size_t max_delay = 8,
                                          double margin = 1e-9);

/// Number of ambiguity events in the noise-free pair trellis: divergent
/// path pairs that merge or cycle with compatible outputs, plus pairs
/// still alive after `max_delay` steps. Zero iff uniquely detectable;
/// a graded version of the boolean check that gives the suboptimal
/// filter optimiser a slope to descend.
[[nodiscard]] std::size_t ambiguity_count(const IsiFilter& filter,
                                          const Constellation& constellation,
                                          std::size_t max_delay = 8,
                                          double margin = 1e-9);

/// Smallest noiseless |sample| over all symbol windows — the decision
/// margin the suboptimal design maximises.
[[nodiscard]] double noise_free_margin(const IsiFilter& filter,
                                       const Constellation& constellation);

/// Pre-optimised designs for 4-ASK, M = 5, span 3 at 25 dB (the exact
/// setting of Fig. 5/6), obtained by running the optimisers above with a
/// large budget. Use these for reproducible figures without paying the
/// optimisation cost.
[[nodiscard]] IsiFilter paper_filter_symbolwise();
[[nodiscard]] IsiFilter paper_filter_sequence();
[[nodiscard]] IsiFilter paper_filter_suboptimal();

}  // namespace wi::comm

#pragma once
/// \file isi.hpp
/// \brief Intersymbol-interference filter container (Fig. 5).
///
/// The transmit waveform is s[i] = sum_j x_j h[i - j M] with M samples per
/// symbol. A filter spanning S symbol periods (L = S*M taps) makes the
/// samples of symbol block t depend on the current symbol and the S-1
/// previous ones; the per-symbol "slices" g_k[m] = h[k M + m] are the
/// quantities the information-rate engines consume.
///
/// Filters are normalised to ||h||^2 = M so that unit-energy symbol
/// streams produce unit average sample power, keeping the SNR definition
/// (signal power / noise power per sample) filter-independent.

#include <cstddef>
#include <vector>

namespace wi::comm {

/// FIR pulse/ISI filter at the oversampled rate.
class IsiFilter {
 public:
  /// \param taps               L = span*samples_per_symbol coefficients
  /// \param samples_per_symbol oversampling factor M (>= 1)
  /// \param normalize          rescale to ||h||^2 = M (default true)
  IsiFilter(std::vector<double> taps, std::size_t samples_per_symbol,
            bool normalize = true);

  /// Rectangular pulse (no ISI): M unit taps, span 1. Fig. 5(a).
  [[nodiscard]] static IsiFilter rectangular(std::size_t samples_per_symbol);

  [[nodiscard]] std::size_t samples_per_symbol() const { return m_; }
  [[nodiscard]] std::size_t span_symbols() const {
    return taps_.size() / m_;
  }
  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

  /// Slice value g_k[m] = h[k*M + m]; k in [0, span), m in [0, M).
  [[nodiscard]] double slice(std::size_t k, std::size_t m) const {
    return taps_[k * m_ + m];
  }

  /// Noiseless sample m of the current symbol block given the symbol
  /// window (current symbol first, then increasingly old symbols).
  /// window.size() must equal span_symbols().
  [[nodiscard]] double noiseless_sample(const std::vector<double>& window,
                                        std::size_t m) const;

  /// ||h||^2.
  [[nodiscard]] double energy() const;

 private:
  std::vector<double> taps_;
  std::size_t m_;
};

/// Full transmit waveform for a symbol sequence (length symbols.size()*M;
/// start-up transient uses zero initial symbols).
[[nodiscard]] std::vector<double> modulate_waveform(
    const IsiFilter& filter, const std::vector<double>& symbols);

}  // namespace wi::comm

#pragma once
/// \file modulation.hpp
/// \brief Real-valued amplitude constellations.
///
/// The 1-bit oversampling study (Sec. III) uses regular 4-ASK. The FEC
/// experiments (Sec. V) use BPSK. Constellations are normalised to unit
/// average symbol energy so SNR definitions stay consistent everywhere.

#include <cstddef>
#include <vector>

namespace wi::comm {

/// Real amplitude constellation with equiprobable points.
class Constellation {
 public:
  /// Regular M-ASK with levels {±1, ±3, ...} scaled to unit energy.
  [[nodiscard]] static Constellation ask(std::size_t order);

  /// BPSK = 2-ASK.
  [[nodiscard]] static Constellation bpsk();

  /// Custom levels (normalised to unit average energy unless all zero).
  explicit Constellation(std::vector<double> levels);

  [[nodiscard]] std::size_t order() const { return levels_.size(); }
  [[nodiscard]] double level(std::size_t index) const { return levels_[index]; }
  [[nodiscard]] const std::vector<double>& levels() const { return levels_; }

  /// log2(order); fractional for non-power-of-two orders.
  [[nodiscard]] double bits_per_symbol() const;

  /// Average symbol energy (1.0 after normalisation).
  [[nodiscard]] double average_energy() const;

  /// Index of the nearest constellation point to a value.
  [[nodiscard]] std::size_t nearest(double value) const;

 private:
  std::vector<double> levels_;
};

}  // namespace wi::comm

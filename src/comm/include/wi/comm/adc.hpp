#pragma once
/// \file adc.hpp
/// \brief ADC resolution/energy modelling — the power argument behind
///        Sec. III.
///
/// "When considering Multigigabit/s communication speeds over a short
/// distance, the analog-to-digital conversion requires the main part of
/// the total energy consumption." This module quantifies that: a Walden
/// figure-of-merit ADC energy model, b-bit uniform quantization, and the
/// mutual information of coarsely quantized ASK — so the 1-bit +
/// oversampling operating point can be compared against multi-bit
/// Nyquist-rate receivers in bits per joule.

#include <cstddef>
#include <string>
#include <vector>

#include "wi/comm/modulation.hpp"

namespace wi::comm {

/// Symmetric mid-rise uniform quantizer with 2^bits levels clipped to
/// [-full_scale, full_scale].
class UniformQuantizer {
 public:
  UniformQuantizer(std::size_t bits, double full_scale = 2.0);

  [[nodiscard]] std::size_t bits() const { return bits_; }
  [[nodiscard]] std::size_t level_count() const {
    return std::size_t{1} << bits_;
  }
  [[nodiscard]] double full_scale() const { return full_scale_; }

  /// Quantize to a level index in [0, 2^bits).
  [[nodiscard]] std::size_t index(double x) const;

  /// Reconstruction value of a level index (bin midpoint).
  [[nodiscard]] double value(std::size_t index) const;

  /// Lower edge of a bin (index 0 edge is -infinity conceptually; this
  /// returns the finite threshold used by the MI integration).
  [[nodiscard]] double lower_edge(std::size_t index) const;

 private:
  std::size_t bits_;
  double full_scale_;
  double step_;
};

/// Exact mutual information of an ASK constellation over AWGN observed
/// through a b-bit uniform quantizer at one sample per symbol.
/// (bits = 1 reduces to the 1-bit no-oversampling case up to the
/// full-scale choice.)
[[nodiscard]] double mi_quantized_awgn(const Constellation& constellation,
                                       const UniformQuantizer& quantizer,
                                       double snr_db);

/// Walden figure-of-merit ADC energy model:
/// P = fom_j_per_conv_step * 2^bits * sample_rate.
struct AdcModel {
  double fom_j_per_conv_step = 50e-15;  ///< ~50 fJ/conv-step (mid-2010s)

  /// Power [W] of one converter.
  [[nodiscard]] double power_w(std::size_t bits, double sample_rate_hz) const;

  /// Energy per conversion [J].
  [[nodiscard]] double energy_per_sample_j(std::size_t bits,
                                           double sample_rate_hz) const;
};

/// One receiver front-end option in the energy comparison.
struct ReceiverOption {
  std::string name;
  std::size_t adc_bits = 1;
  std::size_t oversampling = 1;      ///< samples per symbol
  double info_rate_bpcu = 0.0;       ///< achievable rate at the op. SNR
};

/// Energy efficiency of an option at a symbol rate:
/// (ADC power) / (information throughput) [J/bit].
[[nodiscard]] double adc_energy_per_bit_j(const AdcModel& adc,
                                          const ReceiverOption& option,
                                          double symbol_rate_hz);

}  // namespace wi::comm

#include "wi/comm/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wi::comm {

SymbolwiseDetector::SymbolwiseDetector(const OneBitOsChannel& channel) {
  const std::size_t m = channel.samples_per_symbol();
  const std::size_t order = channel.constellation().order();
  const std::size_t patterns = std::size_t{1} << m;
  std::vector<std::vector<double>> p_y_given_a(
      order, std::vector<double>(patterns, 0.0));
  for (const auto& window : channel.all_windows()) {
    const std::vector<double> z = channel.noiseless_block(window);
    std::vector<double> p1(m);
    for (std::size_t s = 0; s < m; ++s) p1[s] = channel.sample_one_prob(z[s]);
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      double prob = 1.0;
      for (std::size_t s = 0; s < m; ++s) {
        prob *= ((pat >> s) & 1u) ? p1[s] : (1.0 - p1[s]);
      }
      p_y_given_a[window[0]][pat] += prob;
    }
  }
  decision_table_.resize(patterns);
  for (std::size_t pat = 0; pat < patterns; ++pat) {
    std::size_t best = 0;
    for (std::size_t a = 1; a < order; ++a) {
      if (p_y_given_a[a][pat] > p_y_given_a[best][pat]) best = a;
    }
    decision_table_[pat] = best;
  }
}

std::size_t SymbolwiseDetector::detect(std::uint32_t pattern) const {
  return decision_table_[pattern];
}

ViterbiDetector::ViterbiDetector(const OneBitOsChannel& channel)
    : order_(channel.constellation().order()),
      states_(channel.state_count()),
      samples_(channel.samples_per_symbol()) {
  const std::size_t span = channel.filter().span_symbols();
  const std::size_t patterns = std::size_t{1} << samples_;
  branch_next_.resize(states_ * order_);
  branch_logp_.assign(states_ * order_, std::vector<double>(patterns));
  std::vector<std::size_t> window(span);
  for (std::size_t state = 0; state < states_; ++state) {
    for (std::size_t input = 0; input < order_; ++input) {
      window[0] = input;
      std::size_t rem = state;
      for (std::size_t k = 1; k < span; ++k) {
        window[k] = rem % order_;
        rem /= order_;
      }
      const std::size_t b = state * order_ + input;
      const std::vector<double> z = channel.noiseless_block(window);
      for (std::size_t pat = 0; pat < patterns; ++pat) {
        double logp = 0.0;
        for (std::size_t s = 0; s < samples_; ++s) {
          const double p1 = channel.sample_one_prob(z[s]);
          const double p = ((pat >> s) & 1u) ? p1 : (1.0 - p1);
          logp += std::log(std::max(p, 1e-300));
        }
        branch_logp_[b][pat] = logp;
      }
      std::size_t next = input;
      std::size_t mult = order_;
      rem = state;
      for (std::size_t k = 1; k + 1 < span; ++k) {
        next += (rem % order_) * mult;
        mult *= order_;
        rem /= order_;
      }
      branch_next_[b] = (span > 1) ? next : 0;
    }
  }
}

std::vector<std::size_t> ViterbiDetector::detect(
    const std::vector<std::uint32_t>& patterns) const {
  const std::size_t n = patterns.size();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> metric(states_, 0.0);
  std::vector<double> next_metric(states_);
  // Survivor bookkeeping: predecessor branch per (time, state).
  std::vector<std::vector<std::size_t>> survivor(
      n, std::vector<std::size_t>(states_, 0));
  for (std::size_t t = 0; t < n; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    for (std::size_t state = 0; state < states_; ++state) {
      if (metric[state] == kNegInf) continue;
      for (std::size_t input = 0; input < order_; ++input) {
        const std::size_t b = state * order_ + input;
        const double candidate =
            metric[state] + branch_logp_[b][patterns[t]];
        const std::size_t next = branch_next_[b];
        if (candidate > next_metric[next]) {
          next_metric[next] = candidate;
          survivor[t][next] = b;
        }
      }
    }
    metric.swap(next_metric);
  }
  // Trace back from the best final state.
  std::vector<std::size_t> decisions(n, 0);
  std::size_t state = static_cast<std::size_t>(
      std::max_element(metric.begin(), metric.end()) - metric.begin());
  for (std::size_t t = n; t-- > 0;) {
    const std::size_t b = survivor[t][state];
    decisions[t] = b % order_;
    state = b / order_;
  }
  return decisions;
}

namespace {

SerResult count_errors(const std::vector<std::size_t>& truth,
                       const std::vector<std::size_t>& decisions,
                       std::size_t skip_edges) {
  SerResult result;
  const std::size_t n = truth.size();
  for (std::size_t t = skip_edges; t + skip_edges < n; ++t) {
    ++result.symbols;
    if (truth[t] != decisions[t]) ++result.errors;
  }
  result.ser = result.symbols == 0
                   ? 0.0
                   : static_cast<double>(result.errors) /
                         static_cast<double>(result.symbols);
  return result;
}

}  // namespace

SerResult simulate_ser_symbolwise(const OneBitOsChannel& channel,
                                  std::size_t n_symbols, std::uint64_t seed) {
  Rng rng(seed);
  const auto sim = channel.simulate(n_symbols, rng);
  const SymbolwiseDetector detector(channel);
  std::vector<std::size_t> decisions(n_symbols);
  for (std::size_t t = 0; t < n_symbols; ++t) {
    decisions[t] = detector.detect(sim.patterns[t]);
  }
  return count_errors(sim.symbols, decisions,
                      channel.filter().span_symbols());
}

SerResult simulate_ser_viterbi(const OneBitOsChannel& channel,
                               std::size_t n_symbols, std::uint64_t seed) {
  Rng rng(seed);
  const auto sim = channel.simulate(n_symbols, rng);
  const ViterbiDetector detector(channel);
  const std::vector<std::size_t> decisions = detector.detect(sim.patterns);
  return count_errors(sim.symbols, decisions,
                      channel.filter().span_symbols());
}

}  // namespace wi::comm

#include "wi/comm/os_channel.hpp"

#include <cmath>
#include <stdexcept>

#include "wi/common/math.hpp"

namespace wi::comm {

double noise_std_for_snr_db(double snr_db) {
  return std::pow(10.0, -snr_db / 20.0);
}

OneBitOsChannel::OneBitOsChannel(IsiFilter filter, Constellation constellation,
                                 double snr_db)
    : filter_(std::move(filter)), constellation_(std::move(constellation)),
      noise_std_(noise_std_for_snr_db(snr_db)) {
  if (filter_.samples_per_symbol() > 31) {
    throw std::invalid_argument("OneBitOsChannel: M must be <= 31");
  }
  state_count_ = 1;
  for (std::size_t k = 1; k < filter_.span_symbols(); ++k) {
    state_count_ *= constellation_.order();
  }
}

double OneBitOsChannel::sample_one_prob(double z) const {
  return normal_cdf(z / noise_std_);
}

std::vector<double> OneBitOsChannel::noiseless_block(
    const std::vector<std::size_t>& window) const {
  const std::size_t m = filter_.samples_per_symbol();
  std::vector<double> amplitudes(window.size());
  for (std::size_t k = 0; k < window.size(); ++k) {
    amplitudes[k] = constellation_.level(window[k]);
  }
  std::vector<double> z(m);
  for (std::size_t sample = 0; sample < m; ++sample) {
    z[sample] = filter_.noiseless_sample(amplitudes, sample);
  }
  return z;
}

double OneBitOsChannel::block_prob(
    std::uint32_t pattern, const std::vector<std::size_t>& window) const {
  const std::vector<double> z = noiseless_block(window);
  double prob = 1.0;
  for (std::size_t m = 0; m < z.size(); ++m) {
    const double p1 = sample_one_prob(z[m]);
    prob *= ((pattern >> m) & 1u) ? p1 : (1.0 - p1);
  }
  return prob;
}

OneBitOsChannel::SimulationResult OneBitOsChannel::simulate(
    std::size_t n_symbols, Rng& rng) const {
  const std::size_t m = filter_.samples_per_symbol();
  const std::size_t span = filter_.span_symbols();
  SimulationResult result;
  result.symbols.resize(n_symbols);
  result.patterns.resize(n_symbols);
  // Symbol history, most recent first; zero-padding start-up handled by
  // treating pre-start symbols as the middle level closest to zero.
  std::vector<double> window(span, 0.0);
  for (std::size_t t = 0; t < n_symbols; ++t) {
    const std::size_t s = rng.uniform_int(constellation_.order());
    result.symbols[t] = s;
    for (std::size_t k = span - 1; k > 0; --k) window[k] = window[k - 1];
    window[0] = constellation_.level(s);
    std::uint32_t pattern = 0;
    for (std::size_t sample = 0; sample < m; ++sample) {
      const double z = filter_.noiseless_sample(window, sample);
      const double y = z + noise_std_ * rng.gaussian();
      if (y > 0.0) pattern |= (1u << sample);
    }
    result.patterns[t] = pattern;
  }
  return result;
}

std::vector<std::vector<std::size_t>> OneBitOsChannel::all_windows() const {
  const std::size_t span = filter_.span_symbols();
  const std::size_t order = constellation_.order();
  std::size_t total = 1;
  for (std::size_t k = 0; k < span; ++k) total *= order;
  std::vector<std::vector<std::size_t>> windows(total,
                                                std::vector<std::size_t>(span));
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::size_t rem = idx;
    for (std::size_t k = 0; k < span; ++k) {
      windows[idx][k] = rem % order;
      rem /= order;
    }
  }
  return windows;
}

}  // namespace wi::comm

#include "wi/comm/modulation.hpp"

#include <cmath>
#include <stdexcept>

namespace wi::comm {

Constellation Constellation::ask(std::size_t order) {
  if (order < 2) throw std::invalid_argument("ask: order must be >= 2");
  std::vector<double> levels(order);
  for (std::size_t i = 0; i < order; ++i) {
    levels[i] = -static_cast<double>(order - 1) + 2.0 * static_cast<double>(i);
  }
  return Constellation(std::move(levels));
}

Constellation Constellation::bpsk() { return ask(2); }

Constellation::Constellation(std::vector<double> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty()) {
    throw std::invalid_argument("Constellation: empty level set");
  }
  double energy = 0.0;
  for (const double v : levels_) energy += v * v;
  energy /= static_cast<double>(levels_.size());
  if (energy > 0.0) {
    const double scale = 1.0 / std::sqrt(energy);
    for (auto& v : levels_) v *= scale;
  }
}

double Constellation::bits_per_symbol() const {
  return std::log2(static_cast<double>(levels_.size()));
}

double Constellation::average_energy() const {
  double energy = 0.0;
  for (const double v : levels_) energy += v * v;
  return energy / static_cast<double>(levels_.size());
}

std::size_t Constellation::nearest(double value) const {
  std::size_t best = 0;
  double best_dist = std::abs(value - levels_[0]);
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    const double dist = std::abs(value - levels_[i]);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

}  // namespace wi::comm

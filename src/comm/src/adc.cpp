#include "wi/comm/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "wi/common/math.hpp"
#include "wi/comm/os_channel.hpp"

namespace wi::comm {

UniformQuantizer::UniformQuantizer(std::size_t bits, double full_scale)
    : bits_(bits), full_scale_(full_scale),
      step_(2.0 * full_scale / static_cast<double>(std::size_t{1} << bits)) {
  if (bits == 0 || bits > 16) {
    throw std::invalid_argument("UniformQuantizer: bits in [1, 16]");
  }
  if (!(full_scale > 0.0)) {
    throw std::invalid_argument("UniformQuantizer: full scale > 0");
  }
}

std::size_t UniformQuantizer::index(double x) const {
  const double clipped = std::clamp(x, -full_scale_, full_scale_);
  const auto idx =
      static_cast<long long>(std::floor((clipped + full_scale_) / step_));
  return static_cast<std::size_t>(
      std::clamp<long long>(idx, 0, static_cast<long long>(level_count()) - 1));
}

double UniformQuantizer::value(std::size_t index) const {
  return -full_scale_ + (static_cast<double>(index) + 0.5) * step_;
}

double UniformQuantizer::lower_edge(std::size_t index) const {
  return -full_scale_ + static_cast<double>(index) * step_;
}

double mi_quantized_awgn(const Constellation& constellation,
                         const UniformQuantizer& quantizer, double snr_db) {
  const double sigma = noise_std_for_snr_db(snr_db);
  const std::size_t order = constellation.order();
  const std::size_t levels = quantizer.level_count();

  // P(q | x): probability mass of the Gaussian in each quantizer bin
  // (outermost bins absorb the tails).
  std::vector<std::vector<double>> p(order, std::vector<double>(levels));
  for (std::size_t i = 0; i < order; ++i) {
    const double x = constellation.level(i);
    for (std::size_t q = 0; q < levels; ++q) {
      const double lo = (q == 0)
                            ? -1e300
                            : (quantizer.lower_edge(q) - x) / sigma;
      const double hi = (q + 1 == levels)
                            ? 1e300
                            : (quantizer.lower_edge(q + 1) - x) / sigma;
      p[i][q] = normal_cdf(hi) - normal_cdf(lo);
    }
  }
  std::vector<double> marginal(levels, 0.0);
  for (std::size_t i = 0; i < order; ++i) {
    for (std::size_t q = 0; q < levels; ++q) {
      marginal[q] += p[i][q] / static_cast<double>(order);
    }
  }
  double mi = 0.0;
  for (std::size_t i = 0; i < order; ++i) {
    for (std::size_t q = 0; q < levels; ++q) {
      if (p[i][q] > 0.0 && marginal[q] > 0.0) {
        mi += p[i][q] / static_cast<double>(order) *
              std::log2(p[i][q] / marginal[q]);
      }
    }
  }
  return std::max(0.0, mi);
}

double AdcModel::power_w(std::size_t bits, double sample_rate_hz) const {
  return fom_j_per_conv_step *
         static_cast<double>(std::size_t{1} << bits) * sample_rate_hz;
}

double AdcModel::energy_per_sample_j(std::size_t bits,
                                     double sample_rate_hz) const {
  if (!(sample_rate_hz > 0.0)) {
    throw std::invalid_argument("energy_per_sample_j: rate > 0");
  }
  return power_w(bits, sample_rate_hz) / sample_rate_hz;
}

double adc_energy_per_bit_j(const AdcModel& adc, const ReceiverOption& option,
                            double symbol_rate_hz) {
  if (!(option.info_rate_bpcu > 0.0)) {
    throw std::invalid_argument("adc_energy_per_bit_j: zero rate option");
  }
  const double sample_rate =
      symbol_rate_hz * static_cast<double>(option.oversampling);
  const double power = adc.power_w(option.adc_bits, sample_rate);
  const double throughput_bps = option.info_rate_bpcu * symbol_rate_hz;
  return power / throughput_bps;
}

}  // namespace wi::comm

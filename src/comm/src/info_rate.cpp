#include "wi/comm/info_rate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "wi/common/math.hpp"
#include "wi/common/quadrature.hpp"

namespace wi::comm {

double mi_unquantized_awgn(const Constellation& constellation, double snr_db,
                           std::size_t nodes) {
  const double sigma = noise_std_for_snr_db(snr_db);
  const std::size_t order = constellation.order();
  const GaussHermiteRule rule = gauss_hermite(nodes);
  const double inv_sqrt_pi = 1.0 / std::sqrt(M_PI);

  // I = log2(M) - (1/M) sum_i E_n[ log2 sum_j exp(-((x_i-x_j)^2
  //      + 2 n (x_i - x_j)) / (2 sigma^2)) ]  with n ~ N(0, sigma^2).
  double penalty = 0.0;
  for (std::size_t i = 0; i < order; ++i) {
    const double xi = constellation.level(i);
    double expectation = 0.0;
    for (std::size_t q = 0; q < nodes; ++q) {
      const double n = sigma * std::sqrt(2.0) * rule.nodes[q];
      double sum = 0.0;
      for (std::size_t j = 0; j < order; ++j) {
        const double d = xi - constellation.level(j);
        sum += std::exp(-(d * d + 2.0 * n * d) / (2.0 * sigma * sigma));
      }
      expectation += rule.weights[q] * std::log2(sum);
    }
    penalty += expectation * inv_sqrt_pi;
  }
  penalty /= static_cast<double>(order);
  return std::log2(static_cast<double>(order)) - penalty;
}

double mi_unquantized_matched_filter(const Constellation& constellation,
                                     double snr_per_sample_db,
                                     std::size_t oversampling,
                                     std::size_t nodes) {
  const double gain_db = 10.0 * std::log10(static_cast<double>(oversampling));
  return mi_unquantized_awgn(constellation, snr_per_sample_db + gain_db,
                             nodes);
}

double mi_one_bit_no_oversampling(const Constellation& constellation,
                                  double snr_db) {
  const double sigma = noise_std_for_snr_db(snr_db);
  const std::size_t order = constellation.order();
  // Binary-output DMC with P(1|x) = Phi(x/sigma).
  double p1_avg = 0.0;
  std::vector<double> p1(order);
  for (std::size_t i = 0; i < order; ++i) {
    p1[i] = normal_cdf(constellation.level(i) / sigma);
    p1_avg += p1[i];
  }
  p1_avg /= static_cast<double>(order);
  double h_cond = 0.0;
  for (std::size_t i = 0; i < order; ++i) h_cond += binary_entropy(p1[i]);
  h_cond /= static_cast<double>(order);
  return binary_entropy(p1_avg) - h_cond;
}

double mi_one_bit_symbolwise(const OneBitOsChannel& channel) {
  const std::size_t m = channel.samples_per_symbol();
  const std::size_t order = channel.constellation().order();
  const std::size_t patterns = std::size_t{1} << m;
  const auto windows = channel.all_windows();
  const double window_weight = 1.0 / static_cast<double>(windows.size());

  // P(y | x_t = a): marginalise the span-1 interfering symbols.
  std::vector<std::vector<double>> p_y_given_a(
      order, std::vector<double>(patterns, 0.0));
  for (const auto& window : windows) {
    const std::vector<double> z = channel.noiseless_block(window);
    std::vector<double> p1(m);
    for (std::size_t s = 0; s < m; ++s) p1[s] = channel.sample_one_prob(z[s]);
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      double prob = 1.0;
      for (std::size_t s = 0; s < m; ++s) {
        prob *= ((pat >> s) & 1u) ? p1[s] : (1.0 - p1[s]);
      }
      // Weight by the probability of the interfering symbols
      // (window_weight * order accounts for conditioning on x_t).
      p_y_given_a[window[0]][pat] +=
          prob * window_weight * static_cast<double>(order);
    }
  }
  std::vector<double> p_y(patterns, 0.0);
  for (std::size_t a = 0; a < order; ++a) {
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      p_y[pat] += p_y_given_a[a][pat] / static_cast<double>(order);
    }
  }
  double mi = 0.0;
  for (std::size_t a = 0; a < order; ++a) {
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      const double p = p_y_given_a[a][pat];
      if (p > 0.0 && p_y[pat] > 0.0) {
        mi += (p / static_cast<double>(order)) * std::log2(p / p_y[pat]);
      }
    }
  }
  return std::max(0.0, mi);
}

double conditional_entropy_rate(const OneBitOsChannel& channel) {
  const auto windows = channel.all_windows();
  const std::size_t m = channel.samples_per_symbol();
  double h = 0.0;
  for (const auto& window : windows) {
    const std::vector<double> z = channel.noiseless_block(window);
    for (std::size_t s = 0; s < m; ++s) {
      h += binary_entropy(channel.sample_one_prob(z[s]));
    }
  }
  return h / static_cast<double>(windows.size());
}

double info_rate_one_bit_sequence(const OneBitOsChannel& channel,
                                  const SequenceRateOptions& options) {
  const std::size_t order = channel.constellation().order();
  const std::size_t span = channel.filter().span_symbols();
  const std::size_t states = channel.state_count();
  const std::size_t m = channel.samples_per_symbol();

  // Pre-compute per-branch sample probabilities: branch = (state, input)
  // with state encoding the span-1 previous symbols (most recent in the
  // lowest digit). The emitted window is [input, state digits...].
  const std::size_t branches = states * order;
  std::vector<std::vector<double>> branch_p1(branches, std::vector<double>(m));
  std::vector<std::size_t> branch_next(branches);
  {
    std::vector<std::size_t> window(span);
    for (std::size_t state = 0; state < states; ++state) {
      for (std::size_t input = 0; input < order; ++input) {
        window[0] = input;
        std::size_t rem = state;
        for (std::size_t k = 1; k < span; ++k) {
          window[k] = rem % order;
          rem /= order;
        }
        const std::vector<double> z = channel.noiseless_block(window);
        const std::size_t b = state * order + input;
        for (std::size_t s = 0; s < m; ++s) {
          branch_p1[b][s] = channel.sample_one_prob(z[s]);
        }
        // Next state: shift input into the most-recent digit.
        std::size_t next = input;
        std::size_t mult = order;
        rem = state;
        for (std::size_t k = 1; k + 1 < span; ++k) {
          next += (rem % order) * mult;
          mult *= order;
          rem /= order;
        }
        branch_next[b] = (span > 1) ? next : 0;
      }
    }
  }

  Rng rng(options.seed);
  const auto sim = channel.simulate(options.symbols, rng);

  // Normalised forward recursion over the hidden state for H(Y).
  std::vector<double> alpha(states, 1.0 / static_cast<double>(states));
  std::vector<double> next_alpha(states);
  double log2_py = 0.0;
  const double input_prob = 1.0 / static_cast<double>(order);
  for (std::size_t t = 0; t < options.symbols; ++t) {
    const std::uint32_t pattern = sim.patterns[t];
    std::fill(next_alpha.begin(), next_alpha.end(), 0.0);
    for (std::size_t state = 0; state < states; ++state) {
      const double a = alpha[state];
      if (a <= 0.0) continue;
      for (std::size_t input = 0; input < order; ++input) {
        const std::size_t b = state * order + input;
        double prob = 1.0;
        const auto& p1 = branch_p1[b];
        for (std::size_t s = 0; s < m; ++s) {
          prob *= ((pattern >> s) & 1u) ? p1[s] : (1.0 - p1[s]);
        }
        next_alpha[branch_next[b]] += a * input_prob * prob;
      }
    }
    double norm = 0.0;
    for (const double v : next_alpha) norm += v;
    if (norm <= 0.0) {
      // Numerically impossible pattern (can only happen at extreme SNR);
      // restart the recursion from the uniform state distribution.
      std::fill(next_alpha.begin(), next_alpha.end(),
                1.0 / static_cast<double>(states));
      norm = 1.0;
    }
    log2_py += std::log2(norm);
    for (std::size_t state = 0; state < states; ++state) {
      alpha[state] = next_alpha[state] / norm;
    }
  }
  const double h_y = -log2_py / static_cast<double>(options.symbols);
  const double h_y_given_x = conditional_entropy_rate(channel);
  const double rate = h_y - h_y_given_x;
  return std::clamp(rate, 0.0,
                    std::log2(static_cast<double>(order)));
}

}  // namespace wi::comm

#include "wi/comm/info_rate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "wi/common/math.hpp"
#include "wi/common/quadrature.hpp"

namespace wi::comm {

namespace {

/// Flat per-branch tables shared by the one-bit information-rate
/// kernels. A branch b = state * order + input is also the index of the
/// symbol window [input, state digits...] (current symbol in the lowest
/// base-`order` digit), so the trellis branches and the exhaustive
/// window enumerations of the exact computations coincide.
struct KernelTables {
  std::size_t m = 0;         ///< samples per symbol
  std::size_t order = 0;     ///< constellation order
  std::size_t span = 0;      ///< filter span [symbols]
  std::size_t states = 0;    ///< order^(span-1)
  std::size_t branches = 0;  ///< states * order = order^span
  std::vector<double> z;     ///< [b*m + s] noiseless samples
  std::vector<double> p1;    ///< [b*m + s] P(y_s = 1 | branch)
  std::vector<std::uint32_t> next;  ///< [b] successor state
};

KernelTables build_kernel_tables(const OneBitOsChannel& channel) {
  KernelTables t;
  t.m = channel.samples_per_symbol();
  t.order = channel.constellation().order();
  t.span = channel.filter().span_symbols();
  t.states = channel.state_count();
  t.branches = t.states * t.order;
  t.z.resize(t.branches * t.m);
  t.p1.resize(t.branches * t.m);
  t.next.resize(t.branches);
  std::vector<std::size_t> window(t.span);
  for (std::size_t state = 0; state < t.states; ++state) {
    for (std::size_t input = 0; input < t.order; ++input) {
      window[0] = input;
      std::size_t rem = state;
      for (std::size_t k = 1; k < t.span; ++k) {
        window[k] = rem % t.order;
        rem /= t.order;
      }
      const std::vector<double> z = channel.noiseless_block(window);
      const std::size_t b = state * t.order + input;
      for (std::size_t s = 0; s < t.m; ++s) {
        t.z[b * t.m + s] = z[s];
        t.p1[b * t.m + s] = channel.sample_one_prob(z[s]);
      }
      // Next state: shift input into the most-recent digit.
      std::size_t next = input;
      std::size_t mult = t.order;
      rem = state;
      for (std::size_t k = 1; k + 1 < t.span; ++k) {
        next += (rem % t.order) * mult;
        mult *= t.order;
        rem /= t.order;
      }
      t.next[b] = static_cast<std::uint32_t>(t.span > 1 ? next : 0);
    }
  }
  return t;
}

/// Expands the m per-sample probabilities of one branch into the 2^m
/// output-pattern probabilities. The doubling order multiplies factors
/// for samples s = 0..m-1 starting from 1.0, which is exactly the
/// multiplication sequence of the per-pattern product loop it replaces,
/// so every table entry is bit-identical to the naive computation.
void expand_emissions(const double* p1_row, std::size_t m, double* out) {
  out[0] = 1.0;
  std::size_t width = 1;
  for (std::size_t s = 0; s < m; ++s) {
    const double p = p1_row[s];
    const double q = 1.0 - p;
    for (std::size_t pat = 0; pat < width; ++pat) {
      out[pat | width] = out[pat] * p;
      out[pat] *= q;
    }
    width <<= 1;
  }
}

/// H(Y|X) from the precomputed per-branch sample probabilities; the
/// accumulation order (windows ascending, samples ascending) matches the
/// direct window enumeration bit for bit.
double conditional_entropy_from_tables(const KernelTables& t) {
  double h = 0.0;
  for (std::size_t b = 0; b < t.branches; ++b) {
    for (std::size_t s = 0; s < t.m; ++s) {
      h += binary_entropy(t.p1[b * t.m + s]);
    }
  }
  return h / static_cast<double>(t.branches);
}

/// Recorded Monte-Carlo randomness of one simulated sequence: the i.u.d.
/// symbol stream and the raw N(0,1) noise draws, in exactly the order
/// OneBitOsChannel::simulate consumes them (one uniform_int per symbol,
/// then m gaussians). The tape depends only on (seed, symbols, order, m)
/// — not on the filter or the SNR — so one recording serves every grid
/// point of a PhyAbstraction SNR curve and every Fig. 6 filter variant,
/// removing the dominant transcendental cost (Box–Muller) from all but
/// the first call while keeping each call's output bit-identical.
struct NoiseTape {
  std::vector<std::size_t> symbols;
  std::vector<double> noise;  ///< [t*m + s] raw standard-normal draws
};

struct NoiseTapeKey {
  std::uint64_t seed = 0;
  std::size_t symbols = 0;
  std::size_t order = 0;
  std::size_t m = 0;
  [[nodiscard]] bool operator==(const NoiseTapeKey&) const = default;
};

std::shared_ptr<const NoiseTape> record_noise_tape(const NoiseTapeKey& key) {
  auto tape = std::make_shared<NoiseTape>();
  tape->symbols.resize(key.symbols);
  tape->noise.resize(key.symbols * key.m);
  Rng rng(key.seed);
  for (std::size_t t = 0; t < key.symbols; ++t) {
    tape->symbols[t] = rng.uniform_int(key.order);
    for (std::size_t s = 0; s < key.m; ++s) {
      tape->noise[t * key.m + s] = rng.gaussian();
    }
  }
  return tape;
}

std::shared_ptr<const NoiseTape> noise_tape(const NoiseTapeKey& key) {
  // Total retained-draw budget across all cached tapes (~64 MB of
  // noise). Oversized requests bypass the cache entirely; smaller ones
  // evict oldest-first until the budget holds, so process-lifetime
  // memory stays bounded by this single number.
  constexpr std::size_t kMaxCachedDraws = std::size_t{8} << 20;
  const std::size_t draws = key.symbols * key.m;
  if (draws > kMaxCachedDraws) return record_noise_tape(key);

  // Single-flight cache: steady-state hits take a shared (reader) lock
  // only, and a miss publishes a pending future *before* recording, so
  // same-key callers wait on that one recording while different-key
  // recordings proceed in parallel. The old design held one global
  // mutex across the whole recording, which serialized the parallel
  // PhyAbstraction grid build the moment two workers touched the cache.
  using TapeFuture = std::shared_future<std::shared_ptr<const NoiseTape>>;
  struct CacheEntry {
    NoiseTapeKey key;
    TapeFuture tape;
  };
  static std::shared_mutex mutex;
  static std::vector<CacheEntry> cache;  // insertion order = eviction order
  static std::size_t cached_draws = 0;

  {
    std::shared_lock<std::shared_mutex> lock(mutex);
    for (const auto& entry : cache) {
      if (entry.key == key) {
        const TapeFuture tape = entry.tape;
        lock.unlock();
        return tape.get();  // ready, or blocks on the in-flight recording
      }
    }
  }

  std::promise<std::shared_ptr<const NoiseTape>> promise;
  const TapeFuture future = promise.get_future().share();
  {
    std::unique_lock<std::shared_mutex> lock(mutex);
    for (const auto& entry : cache) {  // lost the insert race?
      if (entry.key == key) {
        const TapeFuture tape = entry.tape;
        lock.unlock();
        return tape.get();
      }
    }
    // Eviction accounts draws from the key, so pending entries are
    // billed correctly before their tape exists; a shared_future held
    // by a waiter keeps an evicted tape alive until the waiter is done.
    while (!cache.empty() && cached_draws + draws > kMaxCachedDraws) {
      cached_draws -= cache.front().key.symbols * cache.front().key.m;
      cache.erase(cache.begin());
    }
    cached_draws += draws;
    cache.push_back({key, future});
  }
  try {
    promise.set_value(record_noise_tape(key));
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::unique_lock<std::shared_mutex> lock(mutex);
    for (std::size_t i = 0; i < cache.size(); ++i) {
      if (cache[i].key == key) {
        cached_draws -= draws;
        cache.erase(cache.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    throw;
  }
  return future.get();
}

/// Emission tables larger than this many doubles (16 MB) fall back to
/// the on-the-fly per-branch product; only huge oversampling factors
/// (2^m patterns) are affected.
constexpr std::size_t kMaxEmissionTableDoubles = std::size_t{1} << 21;

}  // namespace

double mi_unquantized_awgn(const Constellation& constellation, double snr_db,
                           std::size_t nodes) {
  const double sigma = noise_std_for_snr_db(snr_db);
  const std::size_t order = constellation.order();
  const GaussHermiteRule& rule = gauss_hermite_cached(nodes);
  const double inv_sqrt_pi = 1.0 / std::sqrt(M_PI);

  // I = log2(M) - (1/M) sum_i E_n[ log2 sum_j exp(-((x_i-x_j)^2
  //      + 2 n (x_i - x_j)) / (2 sigma^2)) ]  with n ~ N(0, sigma^2).
  double penalty = 0.0;
  for (std::size_t i = 0; i < order; ++i) {
    const double xi = constellation.level(i);
    double expectation = 0.0;
    for (std::size_t q = 0; q < nodes; ++q) {
      const double n = sigma * std::sqrt(2.0) * rule.nodes[q];
      double sum = 0.0;
      for (std::size_t j = 0; j < order; ++j) {
        const double d = xi - constellation.level(j);
        sum += std::exp(-(d * d + 2.0 * n * d) / (2.0 * sigma * sigma));
      }
      expectation += rule.weights[q] * std::log2(sum);
    }
    penalty += expectation * inv_sqrt_pi;
  }
  penalty /= static_cast<double>(order);
  return std::log2(static_cast<double>(order)) - penalty;
}

double mi_unquantized_matched_filter(const Constellation& constellation,
                                     double snr_per_sample_db,
                                     std::size_t oversampling,
                                     std::size_t nodes) {
  const double gain_db = 10.0 * std::log10(static_cast<double>(oversampling));
  return mi_unquantized_awgn(constellation, snr_per_sample_db + gain_db,
                             nodes);
}

double mi_one_bit_no_oversampling(const Constellation& constellation,
                                  double snr_db) {
  const double sigma = noise_std_for_snr_db(snr_db);
  const std::size_t order = constellation.order();
  // Binary-output DMC with P(1|x) = Phi(x/sigma).
  double p1_avg = 0.0;
  std::vector<double> p1(order);
  for (std::size_t i = 0; i < order; ++i) {
    p1[i] = normal_cdf(constellation.level(i) / sigma);
    p1_avg += p1[i];
  }
  p1_avg /= static_cast<double>(order);
  double h_cond = 0.0;
  for (std::size_t i = 0; i < order; ++i) h_cond += binary_entropy(p1[i]);
  h_cond /= static_cast<double>(order);
  return binary_entropy(p1_avg) - h_cond;
}

double mi_one_bit_symbolwise(const OneBitOsChannel& channel) {
  const KernelTables t = build_kernel_tables(channel);
  const std::size_t patterns = std::size_t{1} << t.m;
  const double order_d = static_cast<double>(t.order);
  const double window_weight = 1.0 / static_cast<double>(t.branches);

  // P(y | x_t = a): marginalise the span-1 interfering symbols. One
  // doubling expansion per window replaces the 2^m * m product loop.
  std::vector<double> emit(patterns);
  std::vector<double> p_y_given_a(t.order * patterns, 0.0);
  for (std::size_t b = 0; b < t.branches; ++b) {
    expand_emissions(&t.p1[b * t.m], t.m, emit.data());
    // Weight by the probability of the interfering symbols
    // (window_weight * order accounts for conditioning on x_t).
    double* dst = &p_y_given_a[(b % t.order) * patterns];
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      dst[pat] += emit[pat] * window_weight * order_d;
    }
  }
  std::vector<double> p_y(patterns, 0.0);
  for (std::size_t a = 0; a < t.order; ++a) {
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      p_y[pat] += p_y_given_a[a * patterns + pat] / order_d;
    }
  }
  double mi = 0.0;
  for (std::size_t a = 0; a < t.order; ++a) {
    for (std::size_t pat = 0; pat < patterns; ++pat) {
      const double p = p_y_given_a[a * patterns + pat];
      if (p > 0.0 && p_y[pat] > 0.0) {
        mi += (p / order_d) * std::log2(p / p_y[pat]);
      }
    }
  }
  return std::max(0.0, mi);
}

double conditional_entropy_rate(const OneBitOsChannel& channel) {
  return conditional_entropy_from_tables(build_kernel_tables(channel));
}

double info_rate_one_bit_sequence(const OneBitOsChannel& channel,
                                  const SequenceRateOptions& options) {
  const KernelTables t = build_kernel_tables(channel);
  const std::size_t m = t.m;
  const std::size_t order = t.order;
  const std::size_t states = t.states;
  const std::size_t branches = t.branches;
  const std::size_t patterns = std::size_t{1} << m;
  const double input_prob = 1.0 / static_cast<double>(order);

  // Replay (or record) the Monte-Carlo randomness; the received pattern
  // for each symbol is rebuilt on the fly for this channel's noise
  // level, y = z + sigma * n, with the same arithmetic
  // OneBitOsChannel::simulate uses, so the pattern stream is
  // bit-identical to a fresh simulation.
  const std::shared_ptr<const NoiseTape> tape =
      noise_tape({options.seed, options.symbols, order, m});
  const double noise_std = channel.noise_std();

  // Group the branches by successor state (ascending branch order, which
  // is exactly the accumulation order of the state-major loop this
  // replaces) and expand the per-branch emission probabilities over all
  // 2^m patterns, so the forward-recursion inner loop is a contiguous
  // fan-in reduction of table lookups.
  const bool use_table = patterns <= kMaxEmissionTableDoubles / branches;
  const std::size_t fan_in = order;  // branches / states
  std::vector<std::uint32_t> contrib_state(branches);
  std::vector<double> emit_table;
  std::vector<double> emit_scratch(use_table ? patterns : 0);
  if (use_table) {
    emit_table.resize(patterns * branches);
    std::vector<std::size_t> fill(states, 0);
    for (std::size_t b = 0; b < branches; ++b) {
      const std::size_t slot = t.next[b] * fan_in + fill[t.next[b]]++;
      contrib_state[slot] = static_cast<std::uint32_t>(b / order);
      expand_emissions(&t.p1[b * m], m, emit_scratch.data());
      for (std::size_t pat = 0; pat < patterns; ++pat) {
        emit_table[pat * branches + slot] = emit_scratch[pat];
      }
    }
  }

  // Normalised forward recursion over the hidden state for H(Y). Only
  // alpha * input_prob is ever consumed, so the scaled vector is carried
  // directly; the division by the per-step norm and the scaling stay
  // separate operations in the original order, keeping every
  // intermediate bit-identical to the unfused recursion.
  const IsiFilter& filter = channel.filter();
  const Constellation& constellation = channel.constellation();
  std::vector<double> startup_window(t.span, 0.0);
  std::vector<double> a_ip(states, (1.0 / static_cast<double>(states)) *
                                       input_prob);
  std::vector<double> next_alpha(states);
  double log2_py = 0.0;
  std::size_t idx = 0;
  for (std::size_t tt = 0; tt < options.symbols; ++tt) {
    // Rebuild this symbol's received 1-bit pattern from the tape.
    const std::size_t sym = tape->symbols[tt];
    idx = sym + order * (idx % states);
    const double* noise = &tape->noise[tt * m];
    std::uint32_t pattern = 0;
    if (tt + 1 < t.span) {
      // Zero-padded start-up (pre-start symbols have amplitude 0, which
      // is not a constellation level): compute directly.
      for (std::size_t k = t.span - 1; k > 0; --k) {
        startup_window[k] = startup_window[k - 1];
      }
      startup_window[0] = constellation.level(sym);
      for (std::size_t s = 0; s < m; ++s) {
        const double y = filter.noiseless_sample(startup_window, s) +
                         noise_std * noise[s];
        if (y > 0.0) pattern |= (1u << s);
      }
    } else {
      const double* zrow = &t.z[idx * m];
      for (std::size_t s = 0; s < m; ++s) {
        const double y = zrow[s] + noise_std * noise[s];
        if (y > 0.0) pattern |= (1u << s);
      }
    }

    double norm = 0.0;
    if (use_table) {
      const double* row = &emit_table[pattern * branches];
      for (std::size_t j = 0; j < states; ++j) {
        const std::size_t base = j * fan_in;
        double acc = 0.0;
        for (std::size_t h = 0; h < fan_in; ++h) {
          acc += a_ip[contrib_state[base + h]] * row[base + h];
        }
        next_alpha[j] = acc;
        norm += acc;
      }
    } else {
      // Large-m fallback: per-branch product, as before the table-ization.
      std::fill(next_alpha.begin(), next_alpha.end(), 0.0);
      for (std::size_t state = 0; state < states; ++state) {
        const double a = a_ip[state];
        if (a <= 0.0) continue;
        for (std::size_t input = 0; input < order; ++input) {
          const std::size_t b = state * order + input;
          double prob = 1.0;
          const double* p1 = &t.p1[b * m];
          for (std::size_t s = 0; s < m; ++s) {
            prob *= ((pattern >> s) & 1u) ? p1[s] : (1.0 - p1[s]);
          }
          next_alpha[t.next[b]] += a * prob;
        }
      }
      for (const double v : next_alpha) norm += v;
    }
    if (norm <= 0.0) {
      // Numerically impossible pattern (can only happen at extreme SNR);
      // restart the recursion from the uniform state distribution.
      std::fill(next_alpha.begin(), next_alpha.end(),
                1.0 / static_cast<double>(states));
      norm = 1.0;
    }
    log2_py += std::log2(norm);
    for (std::size_t state = 0; state < states; ++state) {
      a_ip[state] = (next_alpha[state] / norm) * input_prob;
    }
  }
  const double h_y = -log2_py / static_cast<double>(options.symbols);
  const double h_y_given_x = conditional_entropy_from_tables(t);
  const double rate = h_y - h_y_given_x;
  return std::clamp(rate, 0.0,
                    std::log2(static_cast<double>(order)));
}

}  // namespace wi::comm

#include "wi/comm/isi.hpp"

#include <cmath>
#include <stdexcept>

namespace wi::comm {

IsiFilter::IsiFilter(std::vector<double> taps, std::size_t samples_per_symbol,
                     bool normalize)
    : taps_(std::move(taps)), m_(samples_per_symbol) {
  if (m_ == 0) throw std::invalid_argument("IsiFilter: M must be >= 1");
  if (taps_.empty() || taps_.size() % m_ != 0) {
    throw std::invalid_argument(
        "IsiFilter: tap count must be a positive multiple of M");
  }
  if (normalize) {
    double e = 0.0;
    for (const double t : taps_) e += t * t;
    if (e <= 0.0) throw std::invalid_argument("IsiFilter: zero filter");
    const double scale = std::sqrt(static_cast<double>(m_) / e);
    for (auto& t : taps_) t *= scale;
  }
}

IsiFilter IsiFilter::rectangular(std::size_t samples_per_symbol) {
  return IsiFilter(std::vector<double>(samples_per_symbol, 1.0),
                   samples_per_symbol);
}

double IsiFilter::noiseless_sample(const std::vector<double>& window,
                                   std::size_t m) const {
  if (window.size() != span_symbols()) {
    throw std::invalid_argument("noiseless_sample: window/span mismatch");
  }
  double z = 0.0;
  for (std::size_t k = 0; k < window.size(); ++k) {
    z += window[k] * slice(k, m);
  }
  return z;
}

double IsiFilter::energy() const {
  double e = 0.0;
  for (const double t : taps_) e += t * t;
  return e;
}

std::vector<double> modulate_waveform(const IsiFilter& filter,
                                      const std::vector<double>& symbols) {
  const std::size_t m = filter.samples_per_symbol();
  const std::size_t span = filter.span_symbols();
  std::vector<double> wave(symbols.size() * m, 0.0);
  for (std::size_t t = 0; t < symbols.size(); ++t) {
    for (std::size_t sample = 0; sample < m; ++sample) {
      double z = 0.0;
      for (std::size_t k = 0; k < span && k <= t; ++k) {
        z += symbols[t - k] * filter.slice(k, sample);
      }
      wave[t * m + sample] = z;
    }
  }
  return wave;
}

}  // namespace wi::comm

#include "wi/comm/filter_design.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "wi/common/optimize.hpp"
#include "wi/common/rng.hpp"
#include "wi/comm/info_rate.hpp"

namespace wi::comm {

namespace {

/// Branch table of the noise-free trellis: per branch the signs of the
/// M samples (+1 / -1, 0 when within `margin` of the threshold).
struct NoiseFreeTrellis {
  std::size_t states = 0;
  std::size_t order = 0;
  std::vector<std::size_t> next;          ///< [state*order + input]
  std::vector<std::vector<int>> signs;    ///< [branch][sample]
};

NoiseFreeTrellis build_noise_free_trellis(const IsiFilter& filter,
                                          const Constellation& constellation,
                                          double margin) {
  NoiseFreeTrellis trellis;
  const std::size_t span = filter.span_symbols();
  const std::size_t m = filter.samples_per_symbol();
  trellis.order = constellation.order();
  trellis.states = 1;
  for (std::size_t k = 1; k < span; ++k) trellis.states *= trellis.order;
  trellis.next.resize(trellis.states * trellis.order);
  trellis.signs.assign(trellis.states * trellis.order,
                       std::vector<int>(m, 0));
  std::vector<double> window(span);
  for (std::size_t state = 0; state < trellis.states; ++state) {
    for (std::size_t input = 0; input < trellis.order; ++input) {
      window[0] = constellation.level(input);
      std::size_t rem = state;
      for (std::size_t k = 1; k < span; ++k) {
        window[k] = constellation.level(rem % trellis.order);
        rem /= trellis.order;
      }
      const std::size_t b = state * trellis.order + input;
      for (std::size_t s = 0; s < m; ++s) {
        const double z = filter.noiseless_sample(window, s);
        trellis.signs[b][s] = (z > margin) ? 1 : ((z < -margin) ? -1 : 0);
      }
      std::size_t next = input;
      std::size_t mult = trellis.order;
      rem = state;
      for (std::size_t k = 1; k + 1 < span; ++k) {
        next += (rem % trellis.order) * mult;
        mult *= trellis.order;
        rem /= trellis.order;
      }
      trellis.next[b] = (span > 1) ? next : 0;
    }
  }
  return trellis;
}

bool signs_compatible(const std::vector<int>& a, const std::vector<int>& b) {
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (a[s] != 0 && b[s] != 0 && a[s] != b[s]) return false;
  }
  return true;
}

}  // namespace

std::size_t ambiguity_count(const IsiFilter& filter,
                            const Constellation& constellation,
                            std::size_t max_delay, double margin) {
  const NoiseFreeTrellis trellis =
      build_noise_free_trellis(filter, constellation, margin);

  using Pair = std::pair<std::size_t, std::size_t>;
  auto canonical = [](std::size_t a, std::size_t b) {
    return (a <= b) ? Pair{a, b} : Pair{b, a};
  };

  // Two distinct input sequences are indistinguishable when their output
  // sign patterns stay compatible forever — in particular when the pair
  // of paths *merges* back into one state (identical futures exist) or
  // revisits a pair (a compatible cycle extends the ambiguity forever).
  // Each such event counts once; pairs still alive after max_delay count
  // as one event each.
  std::size_t events = 0;

  // Seed: paths diverging from a common state with compatible outputs.
  std::set<Pair> frontier;
  for (std::size_t state = 0; state < trellis.states; ++state) {
    for (std::size_t u1 = 0; u1 < trellis.order; ++u1) {
      for (std::size_t u2 = u1 + 1; u2 < trellis.order; ++u2) {
        const std::size_t b1 = state * trellis.order + u1;
        const std::size_t b2 = state * trellis.order + u2;
        if (signs_compatible(trellis.signs[b1], trellis.signs[b2])) {
          const Pair p = canonical(trellis.next[b1], trellis.next[b2]);
          if (p.first == p.second) {
            ++events;  // merged immediately: ambiguous
          } else {
            frontier.insert(p);
          }
        }
      }
    }
  }
  std::set<Pair> visited = frontier;
  for (std::size_t depth = 0; depth < max_delay && !frontier.empty();
       ++depth) {
    std::set<Pair> next_frontier;
    for (const auto& [s1, s2] : frontier) {
      for (std::size_t u1 = 0; u1 < trellis.order; ++u1) {
        for (std::size_t u2 = 0; u2 < trellis.order; ++u2) {
          const std::size_t b1 = s1 * trellis.order + u1;
          const std::size_t b2 = s2 * trellis.order + u2;
          if (!signs_compatible(trellis.signs[b1], trellis.signs[b2])) {
            continue;
          }
          const Pair p = canonical(trellis.next[b1], trellis.next[b2]);
          if (p.first == p.second) {
            ++events;  // merged: ambiguous
            continue;
          }
          if (visited.contains(p)) {
            ++events;  // compatible cycle
            continue;
          }
          visited.insert(p);
          next_frontier.insert(p);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  events += frontier.size();  // survivors: unresolved at the horizon
  return events;
}

bool is_uniquely_detectable(const IsiFilter& filter,
                            const Constellation& constellation,
                            std::size_t max_delay, double margin) {
  return ambiguity_count(filter, constellation, max_delay, margin) == 0;
}

double noise_free_margin(const IsiFilter& filter,
                         const Constellation& constellation) {
  const std::size_t span = filter.span_symbols();
  const std::size_t m = filter.samples_per_symbol();
  const std::size_t order = constellation.order();
  std::size_t total = 1;
  for (std::size_t k = 0; k < span; ++k) total *= order;
  double margin = 1e300;
  std::vector<double> window(span);
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::size_t rem = idx;
    for (std::size_t k = 0; k < span; ++k) {
      window[k] = constellation.level(rem % order);
      rem /= order;
    }
    for (std::size_t s = 0; s < m; ++s) {
      margin = std::min(margin, std::abs(filter.noiseless_sample(window, s)));
    }
  }
  return margin;
}

namespace {

using Objective = std::function<double(const IsiFilter&)>;

IsiFilter optimize_taps(const FilterDesignOptions& options,
                        const Objective& objective,
                        const std::vector<double>& initial_taps) {
  const std::size_t m = options.samples_per_symbol;
  const std::size_t length = m * options.span_symbols;
  Rng rng(options.seed);

  auto make_filter = [&](const std::vector<double>& taps) {
    return IsiFilter(taps, m, /*normalize=*/true);
  };
  auto wrapped = [&](const std::vector<double>& taps) {
    double energy = 0.0;
    for (const double t : taps) energy += t * t;
    if (energy < 1e-9) return 1e6;  // reject the degenerate all-zero point
    return objective(make_filter(taps));
  };

  std::vector<double> best_taps = initial_taps;
  best_taps.resize(length, 0.0);
  double best_value = wrapped(best_taps);

  NelderMeadOptions nm;
  nm.max_evals = options.max_evals;
  nm.initial_step = 0.3;
  for (int restart = 0; restart < std::max(1, options.restarts); ++restart) {
    std::vector<double> start(length);
    if (restart == 0) {
      start = best_taps;
    } else {
      for (auto& t : start) t = rng.uniform(-1.0, 1.0);
      // Bias towards a pulse so restarts don't wander into flat regions.
      start[m / 2] += 1.5;
    }
    const MinimizeResult result = nelder_mead(wrapped, start, nm);
    if (result.fx < best_value) {
      best_value = result.fx;
      best_taps = result.x;
    }
  }
  return make_filter(best_taps);
}

}  // namespace

IsiFilter optimize_filter_symbolwise(const Constellation& constellation,
                                     const FilterDesignOptions& options) {
  const Objective objective = [&](const IsiFilter& filter) {
    const OneBitOsChannel channel(filter, constellation,
                                  options.design_snr_db);
    return -mi_one_bit_symbolwise(channel);
  };
  // Start from a slightly dithered rectangular pulse: pure rect is a
  // saddle for symbolwise detection (all samples identical).
  std::vector<double> start(options.samples_per_symbol *
                            options.span_symbols, 0.0);
  for (std::size_t s = 0; s < options.samples_per_symbol; ++s) {
    start[s] = 1.0 + 0.3 * static_cast<double>(s % 2 ? 1 : -1) *
                         (static_cast<double>(s) + 1.0) /
                         static_cast<double>(options.samples_per_symbol);
  }
  return optimize_taps(options, objective, start);
}

IsiFilter optimize_filter_sequence(const Constellation& constellation,
                                   const FilterDesignOptions& options) {
  // Common random numbers: a fixed seed inside the objective keeps the
  // Monte-Carlo noise consistent across evaluations so Nelder–Mead sees
  // a (nearly) deterministic surface.
  SequenceRateOptions mc;
  mc.symbols = options.sequence_mc_symbols;
  mc.seed = options.seed + 101;
  const Objective objective = [&, mc](const IsiFilter& filter) {
    const OneBitOsChannel channel(filter, constellation,
                                  options.design_snr_db);
    return -info_rate_one_bit_sequence(channel, mc);
  };
  std::vector<double> start(options.samples_per_symbol *
                            options.span_symbols, 0.0);
  for (std::size_t s = 0; s < options.samples_per_symbol; ++s) {
    start[s] = 1.0;
  }
  // Let the pulse leak into the next symbol interval as a starting shape.
  for (std::size_t s = 0; s < options.samples_per_symbol; ++s) {
    start[options.samples_per_symbol + s] =
        -0.4 * static_cast<double>(s + 1) /
        static_cast<double>(options.samples_per_symbol);
  }
  return optimize_taps(options, objective, start);
}

IsiFilter design_filter_suboptimal(const Constellation& constellation,
                                   const FilterDesignOptions& options) {
  const Objective objective = [&](const IsiFilter& filter) {
    const double margin = noise_free_margin(filter, constellation);
    // Graded penalty: every unresolved ambiguity event costs more than
    // any achievable margin, so the optimiser buys uniqueness first but
    // still sees a slope while ambiguities remain.
    const double penalty =
        2.0 * static_cast<double>(ambiguity_count(filter, constellation));
    return -margin + penalty;
  };
  // Feasible start: the threshold-spread construction. With g0 = 1 and
  // per-sample echo ratios r_m = g1[m]/g0[m] in {-2, -0.6, 0, 0.6, 2},
  // the noise-free decision thresholds -b r_m cover every separator of
  // the 4-ASK levels for every previous symbol b, so the current symbol
  // is identified within one block — unique detection with exactly five
  // samples (matching the paper's observation that 5-fold oversampling
  // is the smallest rate enabling it). The optimiser then pushes the
  // margin while the ambiguity penalty keeps the property.
  std::vector<double> start(options.samples_per_symbol *
                            options.span_symbols, 0.0);
  const double ratios[] = {-2.0, -0.6, 0.0, 0.6, 2.0};
  for (std::size_t s = 0; s < options.samples_per_symbol; ++s) {
    start[s] = 1.0;
    start[options.samples_per_symbol + s] =
        ratios[s % (sizeof(ratios) / sizeof(ratios[0]))];
  }
  return optimize_taps(options, objective, start);
}

IsiFilter paper_filter_symbolwise() {
  // optimize_filter_symbolwise(ask(4)) with a 6000-eval, 4-restart
  // budget (tools/tune_filters): exact symbolwise MI 1.642 bpcu at
  // 25 dB — the Fig. 6 "Max Information Rate 1Bit-OS (symbolwise)"
  // level. The sample-to-sample dithering within the symbol is what
  // lets the 1-bit receiver resolve the four amplitudes.
  return IsiFilter({1.5540, 0.5724, 0.7823, 0.6121, 0.4293,
                    0.1139, 0.0000, 0.0001, -0.5075, 0.3247,
                    -0.1798, 0.4679, -0.6777, 0.0001, 0.0001},
                   5);
}

IsiFilter paper_filter_sequence() {
  // optimize_filter_sequence(ask(4)), same budget: sequence information
  // rate 1.961 bpcu at 25 dB — the Fig. 6 "Max Information Rate
  // 1Bit-OS" level, approaching the 2 bpcu of unquantized 4-ASK.
  return IsiFilter({0.3053, -0.6212, 0.7303, 0.5674, -0.7215,
                    0.7520, -0.5881, 0.7863, -0.6758, 0.0292,
                    -0.7479, -0.3324, -0.1383, -0.5613, -0.3920},
                   5);
}

IsiFilter paper_filter_suboptimal() {
  // The threshold-spread construction (see design_filter_suboptimal):
  // flat main pulse plus a one-symbol echo whose per-sample ratios
  // {-2, -0.6, 0, 0.6, 2} make the noise-free 1-bit patterns uniquely
  // decodable for 4-ASK — the Fig. 5(d) strategy, needing no knowledge
  // of the noise statistics.
  return IsiFilter({1.0, 1.0, 1.0, 1.0, 1.0,
                    -2.0, -0.6, 0.0, 0.6, 2.0},
                   5);
}

}  // namespace wi::comm

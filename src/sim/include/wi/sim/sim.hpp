#pragma once
/// \file sim.hpp
/// \brief Umbrella header of the declarative scenario API: include this
///        and use ScenarioRegistry::paper() + SimEngine. Pulls in every
///        workload payload header so spec payloads are directly usable.

#include "wi/sim/campaign.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/phy_curve_cache.hpp"
#include "wi/sim/registry.hpp"
#include "wi/sim/result_store.hpp"
#include "wi/sim/scenario.hpp"
#include "wi/sim/scenario_json.hpp"
#include "wi/sim/status.hpp"
#include "wi/sim/workload.hpp"
#include "wi/sim/workloads/adc_energy.hpp"
#include "wi/sim/workloads/coding_plan.hpp"
#include "wi/sim/workloads/flit_sim.hpp"
#include "wi/sim/workloads/hybrid_system.hpp"
#include "wi/sim/workloads/impulse_response.hpp"
#include "wi/sim/workloads/info_rates.hpp"
#include "wi/sim/workloads/isi_filters.hpp"
#include "wi/sim/workloads/ldpc_latency.hpp"
#include "wi/sim/workloads/link_margin_map.hpp"
#include "wi/sim/workloads/nics_stack.hpp"
#include "wi/sim/workloads/noc_saturation.hpp"
#include "wi/sim/workloads/pathloss_campaign.hpp"
#include "wi/sim/workloads/threshold_saturation.hpp"
#include "wi/sim/workloads/tx_power_sweep.hpp"

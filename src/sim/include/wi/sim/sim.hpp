#pragma once
/// \file sim.hpp
/// \brief Umbrella header of the declarative scenario API: include this
///        and use ScenarioRegistry::paper() + SimEngine.

#include "wi/sim/campaign.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/phy_curve_cache.hpp"
#include "wi/sim/registry.hpp"
#include "wi/sim/result_store.hpp"
#include "wi/sim/scenario.hpp"
#include "wi/sim/scenario_json.hpp"
#include "wi/sim/status.hpp"

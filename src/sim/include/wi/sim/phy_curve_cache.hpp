#pragma once
/// \file phy_curve_cache.hpp
/// \brief Memoized PhyAbstraction curves shared across scenario runs.
///
/// Building a 1-bit receiver curve runs a Monte-Carlo information-rate
/// estimate per SNR grid point (~10^5 symbol simulations), so before
/// this cache every bench paid that cost again for the same receiver
/// configuration. The cache is keyed by (receiver, bandwidth,
/// polarizations), thread-safe, and deduplicates concurrent builds of
/// the same key so a parallel sweep builds each curve exactly once.

#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "wi/core/phy_abstraction.hpp"

namespace wi::sim {

/// Cache key: the full identity of one PhyAbstraction curve.
struct PhyCurveKey {
  core::PhyReceiver receiver = core::PhyReceiver::kOneBitSequence;
  double bandwidth_hz = 25e9;
  std::size_t polarizations = 2;
  [[nodiscard]] bool operator==(const PhyCurveKey&) const = default;
};

/// Thread-safe build-once cache of PHY rate curves.
class PhyCurveCache {
 public:
  using CurvePtr = std::shared_ptr<const core::PhyAbstraction>;

  /// Curve for a key; builds on first use, returns the shared instance
  /// afterwards. Blocks (without holding the lock) when another thread
  /// is currently building the same key.
  [[nodiscard]] CurvePtr get(const PhyCurveKey& key);

  [[nodiscard]] CurvePtr get(core::PhyReceiver receiver,
                             double bandwidth_hz = 25e9,
                             std::size_t polarizations = 2) {
    return get(PhyCurveKey{receiver, bandwidth_hz, polarizations});
  }

  /// Lookup statistics (hits = requests served from the cache).
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t size() const;

  /// Worker threads each curve build may spawn (PhyAbstraction's SNR
  /// grid; bit-identical at any value). Defaults to 0 = one per
  /// hardware thread; the engine sets 1 while it is already running
  /// scenarios in parallel, so curve builds do not oversubscribe.
  void set_build_threads(std::size_t threads);

  /// Current build-thread setting (0 = one per hardware thread).
  [[nodiscard]] std::size_t build_threads() const;

 private:
  struct Entry {
    PhyCurveKey key;
    std::shared_future<CurvePtr> curve;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // few receiver configs: linear scan
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t build_threads_ = 0;
};

}  // namespace wi::sim

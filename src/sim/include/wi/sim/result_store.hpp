#pragma once
/// \file result_store.hpp
/// \brief Persistent, content-keyed cache of scenario results.
///
/// Every cache entry is one JSON file keyed by FNV-1a over the
/// scenario's canonical serialized spec, an explicit seed salt and a
/// version string (pass `git describe` so a code change invalidates
/// everything it could have affected). Entries are written atomically
/// (tmp file + rename) as soon as each scenario finishes, so an
/// interrupted sweep resumes per grid point: re-running an unchanged
/// sweep replays stored rows and only executes the points that are
/// missing. Only successful results are cached — failed points are
/// retried on the next run.

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "wi/common/json.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// RunResult <-> JSON ({"scenario", "status": {code, message}, "notes",
/// "table"}); the on-disk payload of the store and of `wi_run --out`.
[[nodiscard]] Json run_result_to_json(const RunResult& result);
[[nodiscard]] RunResult run_result_from_json(const Json& json);

struct ResultStoreOptions {
  std::filesystem::path directory = "results/store";
  /// Code-version component of every key; wire `git describe` through
  /// here (wi_run does) so stale caches cannot survive a code change.
  std::string version = "unversioned";
};

class ResultStore {
 public:
  /// Creates the directory if needed; throws StatusError
  /// (kExecutionError) when it cannot be created.
  explicit ResultStore(ResultStoreOptions options);

  /// Content key of a (spec, seed) pair under this store's version:
  /// 16 hex digits of FNV-1a64 over the canonical spec JSON.
  [[nodiscard]] std::string key(const ScenarioSpec& spec,
                                std::uint64_t seed = 0) const;

  /// Cached result, or nullopt on miss. Corrupt/mismatching entries
  /// (hash collision, truncated write survivor) count as misses.
  [[nodiscard]] std::optional<RunResult> load(const ScenarioSpec& spec,
                                              std::uint64_t seed = 0) const;

  /// Persist a successful result (atomically); failed results are
  /// ignored so they re-run next time.
  void save(const ScenarioSpec& spec, const RunResult& result,
            std::uint64_t seed = 0);

  /// run_all through the cache: stored results are returned without
  /// execution, misses run on the engine's pool and are persisted the
  /// moment each finishes (interruption-safe).
  [[nodiscard]] std::vector<RunResult> run_all(
      SimEngine& engine, const std::vector<ScenarioSpec>& specs,
      std::size_t threads = 0);

  /// Resumable declarative sweep: expand_grid + cached run_all + merge.
  /// Appends a "store: X hits / Y misses" note recording the split.
  [[nodiscard]] RunResult run_sweep(SimEngine& engine,
                                    const ScenarioSpec& base,
                                    const std::vector<SweepAxis>& axes,
                                    std::size_t threads = 0);

  /// Lifetime cache counters of this store instance.
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }

  [[nodiscard]] const ResultStoreOptions& options() const {
    return options_;
  }

  /// Entry path for a key (exists only after a save).
  [[nodiscard]] std::filesystem::path entry_path(
      const std::string& key) const;

 private:
  ResultStoreOptions options_;
  std::mutex io_mutex_;    ///< serializes writes from run_all workers
  std::mutex warn_mutex_;  ///< keeps dropped-entry warnings unsheared
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace wi::sim

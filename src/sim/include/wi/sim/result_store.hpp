#pragma once
/// \file result_store.hpp
/// \brief Persistent, content-keyed cache of scenario results.
///
/// Every cache entry is one JSON file keyed by FNV-1a over the
/// scenario's canonical serialized spec, an explicit seed salt and a
/// version string (pass `git describe` so a code change invalidates
/// everything it could have affected). Entries are written atomically
/// (per-writer-unique tmp file + rename) as soon as each scenario
/// finishes, so an interrupted sweep resumes per grid point:
/// re-running an unchanged sweep replays stored rows and only executes
/// the points that are missing. Only successful results are cached —
/// failed points are retried on the next run.
///
/// The store directory is safe to share between concurrent *processes*
/// (the `wi_run --shard` worker fleet): temp names are unique per
/// writer (pid + counter), so two writers racing on the same key each
/// stage their own file and the final rename is last-writer-wins
/// atomic, and the startup orphan sweep is age-gated so it cannot
/// remove another worker's in-flight write.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "wi/common/json.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// RunResult <-> JSON ({"scenario", "status": {code, message}, "notes",
/// "table"}); the on-disk payload of the store and of `wi_run --out`.
[[nodiscard]] Json run_result_to_json(const RunResult& result);
[[nodiscard]] RunResult run_result_from_json(const Json& json);

struct ResultStoreOptions {
  std::filesystem::path directory = "results/store";
  /// Code-version component of every key; wire `git describe` through
  /// here (wi_run does) so stale caches cannot survive a code change.
  std::string version = "unversioned";
  /// Minimum age before the startup sweep removes a `*.tmp` file. The
  /// store directory may be shared by concurrent worker processes
  /// (`wi_run --shard`), so a fresh temp file is most likely another
  /// worker's in-flight atomic write, not a crash leftover — only
  /// files older than this are swept. Zero sweeps unconditionally
  /// (single-process tools that own the directory outright).
  std::chrono::seconds orphan_ttl{600};
};

/// Content key of a (spec, version, seed) triple: 16 hex digits of
/// FNV-1a64 over the canonical spec JSON chained with the version and
/// seed. This is THE cache identity of a scenario result — the on-disk
/// store and the wi_serve in-memory hot tier key by the same value, so
/// the tiers agree about what "the same request" means.
[[nodiscard]] std::string result_content_key(const ScenarioSpec& spec,
                                             const std::string& version,
                                             std::uint64_t seed = 0);

/// Lifetime counters of one ResultStore instance (all thread-safe):
/// `hits`/`misses` count load() outcomes, `inserts` counts entries
/// actually persisted by save(), `corrupt_entries` counts loads that
/// found an unreadable entry (each also logged once per path),
/// `orphans_removed` counts stale atomic-write temp files swept on
/// open, `orphans_skipped` counts temp files the sweep left alone
/// because they were younger than `orphan_ttl` (presumed in-flight
/// writes of a concurrent worker), and `transient_write_failures`
/// counts saves that failed retryably (ENOSPC, EINTR — surfaced as
/// kUnavailable).
struct ResultStoreStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t inserts = 0;
  std::size_t corrupt_entries = 0;
  std::size_t orphans_removed = 0;
  std::size_t orphans_skipped = 0;
  std::size_t transient_write_failures = 0;
};

class ResultStore {
 public:
  /// Creates the directory if needed; throws StatusError
  /// (kExecutionError) when it cannot be created. Orphaned atomic-write
  /// temp files (*.tmp left by a crash mid-save) are swept here — they
  /// can never become valid entries, only waste space — but only when
  /// older than options.orphan_ttl: a younger temp file is presumed to
  /// be a concurrent worker's in-flight write and is left alone.
  /// Removed and skipped files are counted in stats().orphans_removed
  /// / stats().orphans_skipped.
  explicit ResultStore(ResultStoreOptions options);

  /// Content key of a (spec, seed) pair under this store's version:
  /// 16 hex digits of FNV-1a64 over the canonical spec JSON.
  [[nodiscard]] std::string key(const ScenarioSpec& spec,
                                std::uint64_t seed = 0) const;

  /// Cached result, or nullopt on miss. Corrupt/mismatching entries
  /// (hash collision, truncated write survivor) count as misses — and
  /// an entry that *exists* but cannot be decoded is additionally
  /// diagnosed: a kParseError Status naming the offending file is
  /// logged to stderr once per path (and kept, see corruption_log()),
  /// so operators can find and delete bad store files instead of
  /// paying a silent recompute forever.
  [[nodiscard]] std::optional<RunResult> load(const ScenarioSpec& spec,
                                              std::uint64_t seed = 0) const;

  /// Persist a successful result (atomically); failed results are
  /// ignored so they re-run next time. Transient I/O failures (ENOSPC,
  /// EINTR) throw StatusError(kUnavailable) — retry later, the store
  /// is intact; anything else throws kExecutionError.
  void save(const ScenarioSpec& spec, const RunResult& result,
            std::uint64_t seed = 0);

  /// run_all through the cache: stored results are returned without
  /// execution, misses run on the engine's pool and are persisted the
  /// moment each finishes (interruption-safe).
  [[nodiscard]] std::vector<RunResult> run_all(
      SimEngine& engine, const std::vector<ScenarioSpec>& specs,
      std::size_t threads = 0);

  /// Resumable declarative sweep: expand_grid + cached run_all + merge.
  /// Appends a "store: X hits / Y misses" note recording the split.
  [[nodiscard]] RunResult run_sweep(SimEngine& engine,
                                    const ScenarioSpec& base,
                                    const std::vector<SweepAxis>& axes,
                                    std::size_t threads = 0);

  /// Lifetime cache counters of this store instance. Counting happens
  /// inside load()/save() themselves, so concurrent callers (the
  /// wi_serve worker pool) get accurate numbers without extra locking.
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }
  [[nodiscard]] std::size_t inserts() const { return inserts_; }

  /// One consistent snapshot of all counters.
  [[nodiscard]] ResultStoreStats stats() const;

  /// Corrupt-entry diagnostics collected so far (one Status per
  /// distinct offending path, kParseError with the path in the
  /// message). Also written to stderr when first encountered.
  [[nodiscard]] std::vector<Status> corruption_log() const;

  [[nodiscard]] const ResultStoreOptions& options() const {
    return options_;
  }

  /// Entry path for a key (exists only after a save).
  [[nodiscard]] std::filesystem::path entry_path(
      const std::string& key) const;

 private:
  /// Count + log (once per path) an entry that exists but cannot be
  /// decoded.
  void note_corrupt_entry(const std::filesystem::path& path,
                          const std::string& detail) const;

  ResultStoreOptions options_;
  std::mutex io_mutex_;            ///< serializes writes from run_all workers
  mutable std::mutex warn_mutex_;  ///< guards the corruption log
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> inserts_{0};
  mutable std::atomic<std::size_t> corrupt_entries_{0};
  std::atomic<std::size_t> orphans_removed_{0};
  std::atomic<std::size_t> orphans_skipped_{0};
  std::atomic<std::size_t> transient_write_failures_{0};
  mutable std::vector<Status> corruption_log_;  ///< one per distinct path
};

}  // namespace wi::sim

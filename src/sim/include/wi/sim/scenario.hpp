#pragma once
/// \file scenario.hpp
/// \brief Declarative scenario description spanning every layer of the
///        library: geometry, link budget, beamforming, PHY receiver and
///        NoC topology/traffic — plus a per-workload payload.
///
/// A ScenarioSpec is a plain value: construct one (defaults reproduce
/// the paper's Table I system), override fields, and hand it to
/// SimEngine. The *workload* — what the scenario computes — is an open
/// string key into the process-wide WorkloadRegistry (see
/// wi/sim/workload.hpp): shared system sections (geometry, link, phy,
/// noc) live here, while workload-specific settings live in a
/// dispatched WorkloadPayload owned by the spec and defined next to the
/// workload's runner under src/sim/workloads/. Sweeps are expressed as
/// a base spec plus SweepAxis overrides expanded into a scenario grid —
/// no per-experiment glue code. Named paper figures/ablations are
/// preloaded in ScenarioRegistry.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wi/core/link_planner.hpp"
#include "wi/core/phy_abstraction.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/noc/routing.hpp"
#include "wi/noc/topology.hpp"
#include "wi/noc/traffic.hpp"
#include "wi/rf/link_budget.hpp"
#include "wi/sim/status.hpp"

namespace wi::sim {

/// Base of every per-workload spec payload. Concrete payloads are plain
/// structs declared in wi/sim/workloads/<name>.hpp; derive them from
/// PayloadBase<T> below to inherit the clone boilerplate.
class WorkloadPayload {
 public:
  virtual ~WorkloadPayload() = default;
  [[nodiscard]] virtual std::unique_ptr<WorkloadPayload> clone() const = 0;
};

/// CRTP clone helper: `struct FooSpec : PayloadBase<FooSpec> { ... };`.
template <typename Derived>
class PayloadBase : public WorkloadPayload {
 public:
  [[nodiscard]] std::unique_ptr<WorkloadPayload> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// Multi-board physical geometry (paper: 10 cm boards, 100 mm apart).
struct GeometrySpec {
  std::size_t boards = 2;
  double board_size_mm = 100.0;
  double separation_mm = 100.0;
  std::size_t nodes_per_edge = 4;
};

/// RF link parameters: Table I budget + beamforming + operating point.
struct LinkSpec {
  rf::LinkBudgetParams budget;  ///< defaults reproduce Table I
  core::Beamforming beamforming = core::Beamforming::kButlerMatrix;
  double ptx_dbm = 10.0;        ///< transmit power budget
  double target_snr_db = 15.0;  ///< planning target
};

/// PHY receiver abstraction (Sec. III).
struct PhySpec {
  core::PhyReceiver receiver = core::PhyReceiver::kOneBitSequence;
  double bandwidth_hz = 25e9;
  std::size_t polarizations = 2;
};

/// Declarative NoC topology (built on demand by workload runners).
struct TopologySpec {
  enum class Kind {
    kMesh2d,
    kStarMesh,
    kStarMeshIrl,
    kMesh3d,
    kCiliatedMesh3d,
    kPartialVertical3d,
  };
  Kind kind = Kind::kMesh2d;
  std::size_t kx = 8;
  std::size_t ky = 8;
  std::size_t kz = 1;
  std::size_t concentration = 1;
  std::size_t irl = 1;          ///< inter-router links (star-mesh fix)
  std::size_t tsv_period = 1;   ///< partial vertical connectivity
  double vertical_bandwidth = 1.0;

  /// Materialise the topology (throws StatusError on bad dimensions).
  [[nodiscard]] noc::Topology build() const;

  /// Modules the built topology will attach (for validation).
  [[nodiscard]] std::size_t module_count() const;
};

enum class TrafficKind {
  kUniform,
  kTranspose,
  kBitComplement,
  kHotspot,
  kTornado,  ///< per-dimension half-ring shift on the topology's mesh
};
enum class RoutingKind { kDimensionOrder, kShortestPath };

/// Traffic-pattern representation. kDense materialises the classic
/// modules x modules probability matrix (the path every committed
/// golden was produced through); kImplicit builds the O(1)-state
/// analytic pattern with closed-form destination sampling — required
/// for big meshes where the matrix/CDF alone would be gigabytes (a
/// 32x32x32-router mesh needs ~8.6 GB dense, ~0 implicit).
enum class TrafficMode { kDense, kImplicit };

/// NoC system description shared by the NoC-evaluating workloads
/// (noc_latency, flit_sim, noc_saturation): topology, traffic pattern,
/// routing and the analytic queueing-model parameters.
struct NocSpec {
  TopologySpec topology;
  TrafficKind traffic = TrafficKind::kUniform;
  TrafficMode traffic_mode = TrafficMode::kDense;
  std::size_t hotspot_module = 0;
  double hotspot_fraction = 0.2;
  RoutingKind routing = RoutingKind::kDimensionOrder;
  noc::QueueingModelParams model;
  std::vector<double> injection_rates;  ///< empty = default grid
  /// When > 0: flit-level DES cross-check at this injection rate.
  double des_check_rate = 0.0;
  std::uint64_t des_seed = 1;

  /// Shared sanity checks of the section (topology dimensions, rates,
  /// hotspot settings); messages are prefixed with `scenario_name`.
  [[nodiscard]] Status validate(const std::string& scenario_name) const;

  /// Materialise the traffic pattern for `modules` modules.
  [[nodiscard]] noc::TrafficPattern build_traffic(std::size_t modules) const;

  /// Materialise the routing algorithm.
  [[nodiscard]] std::unique_ptr<noc::Routing> build_routing() const;
};

/// The declarative scenario: shared system sections plus the selected
/// workload's payload.
struct ScenarioSpec {
  std::string name;
  std::string description;
  /// Workload key into WorkloadRegistry::global() ("link_rate",
  /// "info_rates", ...). Open set: plugins register new ones.
  std::string workload = "link_rate";

  GeometrySpec geometry;
  LinkSpec link;
  PhySpec phy;
  NocSpec noc;

  ScenarioSpec() = default;
  ScenarioSpec(const ScenarioSpec& other);
  ScenarioSpec& operator=(const ScenarioSpec& other);
  ScenarioSpec(ScenarioSpec&&) noexcept = default;
  ScenarioSpec& operator=(ScenarioSpec&&) noexcept = default;

  /// Mutable payload access; creates a default-constructed T when the
  /// spec has no payload yet, and *replaces* a payload of a different
  /// type (the caller is re-targeting the spec to another workload).
  template <typename T>
  [[nodiscard]] T& payload() {
    T* typed = payload_ ? dynamic_cast<T*>(payload_.get()) : nullptr;
    if (typed == nullptr) {
      auto fresh = std::make_unique<T>();
      typed = fresh.get();
      payload_ = std::move(fresh);
    }
    return *typed;
  }

  /// Read access; a spec without a payload sees T's defaults. A payload
  /// of a different type is an error (the workload string and the
  /// stored payload disagree) and throws StatusError(kInvalidSpec).
  template <typename T>
  [[nodiscard]] const T& payload() const {
    if (payload_ != nullptr) {
      if (const T* typed = dynamic_cast<const T*>(payload_.get())) {
        return *typed;
      }
      throw StatusError(Status(
          StatusCode::kInvalidSpec,
          name + ": stored payload does not match workload '" + workload +
              "'"));
    }
    static const T kDefaults{};
    return kDefaults;
  }

  [[nodiscard]] bool has_payload() const { return payload_ != nullptr; }
  void set_payload(std::unique_ptr<WorkloadPayload> payload) {
    payload_ = std::move(payload);
  }
  void reset_payload() { payload_.reset(); }

  /// Field-by-field sanity check; kInvalidSpec with a precise message
  /// on the first violated constraint. Shared sections are checked
  /// here, then the workload's registered runner validates its payload
  /// (an unregistered workload name is itself kInvalidSpec).
  [[nodiscard]] Status validate() const;

 private:
  std::unique_ptr<WorkloadPayload> payload_;
};

/// One sweep dimension: a named list of values and how to apply a value
/// to a spec (usually a lambda writing one field).
struct SweepAxis {
  std::string name;
  std::vector<double> values;
  std::function<void(ScenarioSpec&, double)> apply;
};

/// Cartesian grid expansion: every combination of axis values applied
/// to the base spec; names become "base/axis1=v1;axis2=v2". Axis order
/// is significant (first axis varies slowest) and the result order is
/// deterministic — the contract the parallel runner preserves.
[[nodiscard]] std::vector<ScenarioSpec> expand_grid(
    const ScenarioSpec& base, const std::vector<SweepAxis>& axes);

}  // namespace wi::sim

#pragma once
/// \file scenario.hpp
/// \brief Declarative scenario description spanning every layer of the
///        library: geometry, link budget, beamforming, PHY receiver,
///        LDPC coding and NoC topology/traffic.
///
/// A ScenarioSpec is a plain value: construct one (defaults reproduce
/// the paper's Table I system), override fields, and hand it to
/// SimEngine. Sweeps are expressed as a base spec plus SweepAxis
/// overrides expanded into a scenario grid — no per-experiment glue
/// code. Named paper figures/ablations are preloaded in
/// ScenarioRegistry.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wi/core/hybrid_system.hpp"
#include "wi/core/link_planner.hpp"
#include "wi/core/nics_stack.hpp"
#include "wi/core/phy_abstraction.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/noc/topology.hpp"
#include "wi/noc/traffic.hpp"
#include "wi/rf/link_budget.hpp"
#include "wi/sim/status.hpp"

namespace wi::sim {

/// What a scenario computes (each maps to one ResultTable schema).
enum class Workload {
  kLinkBudgetTable,   ///< Table I parameters + derived anchors
  kPathlossCampaign,  ///< Fig. 1: synthetic campaigns + model fits
  kTxPowerSweep,      ///< Fig. 4: required PTX vs target SNR
  kLinkRate,          ///< link SNR -> PHY data rate (quickstart)
  kLinkPlan,          ///< plan all board-to-board links of a geometry
  kNocLatency,        ///< Fig. 8: latency vs injection for one topology
  kNicsStack,         ///< Sec. IV: one 3D chip-stack configuration
  kHybridSystem,      ///< Sec. VI: backplane vs wireless comparison
  kCodingPlan,        ///< Fig. 10: LDPC-CC choice under latency budget
  kImpulseResponse,   ///< Figs. 2/3: impulse response, free space vs copper
  kIsiFilters,        ///< Fig. 5: the four ISI filter designs
  kInfoRates,         ///< Fig. 6: information rates of the 1-bit receiver
  kAdcEnergy,         ///< Sec. III: ADC energy per information bit
  kThresholdSaturation,  ///< BEC threshold saturation behind Fig. 10
  kLdpcLatency,       ///< Fig. 10: required Eb/N0 vs decoding latency
  kFlitSim,           ///< flit-level DES latency/throughput curve
};

[[nodiscard]] const char* workload_name(Workload workload);

/// Multi-board physical geometry (paper: 10 cm boards, 100 mm apart).
struct GeometrySpec {
  std::size_t boards = 2;
  double board_size_mm = 100.0;
  double separation_mm = 100.0;
  std::size_t nodes_per_edge = 4;
};

/// RF link parameters: Table I budget + beamforming + operating point.
struct LinkSpec {
  rf::LinkBudgetParams budget;  ///< defaults reproduce Table I
  core::Beamforming beamforming = core::Beamforming::kButlerMatrix;
  double ptx_dbm = 10.0;        ///< transmit power budget
  double target_snr_db = 15.0;  ///< planning target
};

/// PHY receiver abstraction (Sec. III).
struct PhySpec {
  core::PhyReceiver receiver = core::PhyReceiver::kOneBitSequence;
  double bandwidth_hz = 25e9;
  std::size_t polarizations = 2;
};

/// Fig. 1 measurement-campaign settings (distances: Fig. 1 grid).
struct PathlossSpec {
  std::uint64_t seed = 2013;  ///< synthetic VNA noise seed
};

/// Fig. 4 sweep settings.
struct TxPowerSpec {
  double snr_lo_db = 0.0;
  double snr_hi_db = 35.0;
  double snr_step_db = 5.0;
  double shortest_m = rf::kShortestLink_m;
  double longest_m = rf::kLongestLink_m;
};

/// Declarative NoC topology (built on demand by the engine).
struct TopologySpec {
  enum class Kind {
    kMesh2d,
    kStarMesh,
    kStarMeshIrl,
    kMesh3d,
    kCiliatedMesh3d,
    kPartialVertical3d,
  };
  Kind kind = Kind::kMesh2d;
  std::size_t kx = 8;
  std::size_t ky = 8;
  std::size_t kz = 1;
  std::size_t concentration = 1;
  std::size_t irl = 1;          ///< inter-router links (star-mesh fix)
  std::size_t tsv_period = 1;   ///< partial vertical connectivity
  double vertical_bandwidth = 1.0;

  /// Materialise the topology (throws StatusError on bad dimensions).
  [[nodiscard]] noc::Topology build() const;

  /// Modules the built topology will attach (for validation).
  [[nodiscard]] std::size_t module_count() const;
};

enum class TrafficKind { kUniform, kTranspose, kBitComplement, kHotspot };
enum class RoutingKind { kDimensionOrder, kShortestPath };

/// NoC evaluation settings (Fig. 8 style latency/throughput curves).
struct NocSpec {
  TopologySpec topology;
  TrafficKind traffic = TrafficKind::kUniform;
  std::size_t hotspot_module = 0;
  double hotspot_fraction = 0.2;
  RoutingKind routing = RoutingKind::kDimensionOrder;
  noc::QueueingModelParams model;
  std::vector<double> injection_rates;  ///< empty = default grid
  /// When > 0: flit-level DES cross-check at this injection rate.
  double des_check_rate = 0.0;
  std::uint64_t des_seed = 1;
};

/// Flit-level DES settings (Workload::kFlitSim): the stochastic
/// counterpart of the analytic kNocLatency curve. Topology, traffic and
/// routing come from the scenario's NocSpec; each injection rate is one
/// independent simulation (one table row), so the row grid is fixed
/// across seeds — the shape contract the campaign aggregator relies on.
struct FlitSimSpec {
  std::vector<double> injection_rates;  ///< empty = {0.05, 0.1, 0.15, 0.2}
  std::size_t warmup_cycles = 2000;     ///< excluded from statistics
  std::size_t measure_cycles = 8000;    ///< measurement window
  std::size_t drain_cycles = 20000;     ///< post-window drain limit
  std::size_t buffer_depth = 8;         ///< input queue capacity [flits]
  std::uint64_t seed = 1;               ///< packet injection seed
};

/// Sec. IV chip-stack settings (wraps the core config).
struct NicsSpec {
  core::NicsStackConfig config;
};

/// Sec. VI backplane-vs-wireless settings (wraps the core config).
struct HybridSpec {
  core::HybridSystemConfig config;
};

/// Fig. 10 coding-plan settings.
struct CodingSpec {
  std::vector<double> latency_budgets_bits = {100, 150, 200, 250, 300, 400};
  std::size_t deployed_lifting = 40;  ///< fixed-N replanning example
  double ebn0_db = 3.0;               ///< for the latency-gain headline
};

/// Figs. 2/3 impulse-response settings. One scenario measures the same
/// link in free space and between parallel copper boards with the same
/// synthetic-VNA noise seed, like the testbed campaign.
struct ImpulseSpec {
  double distance_m = 0.05;    ///< antenna distance (Fig. 2: 50 mm)
  double max_delay_ns = 1.5;   ///< figure x-axis range
  std::size_t decimation = 2;  ///< keep every n-th delay sample
  std::uint64_t seed = 22;     ///< VNA noise seed
};

/// Fig. 5 ISI filter-design settings.
struct IsiSpec {
  double design_snr_db = 25.0;      ///< paper optimises/evaluates at 25 dB
  std::size_t mc_symbols = 40000;   ///< sequence-rate Monte-Carlo length
  std::uint64_t mc_seed = 9;
  /// Re-run the Nelder-Mead optimisation instead of using the
  /// pre-optimised paper filters (minutes instead of milliseconds).
  bool reoptimize = false;
};

/// Fig. 6 information-rate sweep settings.
struct InfoRateSpec {
  double snr_lo_db = -5.0;
  double snr_hi_db = 35.0;
  double snr_step_db = 5.0;
  std::size_t mc_symbols = 120000;  ///< sequence-rate Monte-Carlo length
  std::uint64_t mc_seed = 17;
};

/// Sec. III ADC energy-per-bit settings.
struct AdcSpec {
  double walden_fom_fj = 50.0;   ///< fJ per conversion step
  double snr_db = 25.0;          ///< operating SNR
  double symbol_rate_hz = 25e9;  ///< 25 GBd 4-ASK link
  std::size_t mc_symbols = 60000;
  std::uint64_t mc_seed = 29;
};

/// BEC threshold-saturation ablation settings.
struct SaturationSpec {
  std::vector<std::size_t> terminations = {4, 8, 16, 32, 64};
  double threshold_tolerance = 1e-4;  ///< bisection accuracy
};

/// One LDPC-CC curve of Fig. 10: a lifting factor N scanned over
/// decoding-window sizes W.
struct LdpcCurveSpec {
  std::size_t lifting = 25;
  std::size_t window_lo = 3;
  std::size_t window_hi = 8;
};

/// Fig. 10 Monte-Carlo settings. The defaults target BER 1e-4 with
/// capped codeword counts (minutes, trends preserved); the paper's
/// 1e-5 operating point needs min_errors/max_codewords raised.
struct LdpcLatencySpec {
  double target_ber = 1e-4;
  std::size_t min_errors = 80;
  std::size_t max_codewords = 800;
  std::size_t max_bp_iterations = 50;
  std::size_t termination = 24;  ///< L (latency is L-independent)
  std::vector<LdpcCurveSpec> cc_curves = {{25, 3, 8}, {40, 3, 8}, {60, 4, 6}};
  std::vector<std::size_t> bc_liftings = {100, 150, 200, 300, 400};
  double search_lo_db = 1.5;    ///< Eb/N0 bisection bracket
  double search_hi_db = 6.0;
  double search_step_db = 0.25;
};

/// The declarative scenario: one value spanning all layers.
struct ScenarioSpec {
  std::string name;
  std::string description;
  Workload workload = Workload::kLinkRate;

  GeometrySpec geometry;
  LinkSpec link;
  PhySpec phy;
  PathlossSpec pathloss;
  TxPowerSpec tx_power;
  NocSpec noc;
  FlitSimSpec flit;
  NicsSpec nics;
  HybridSpec hybrid;
  CodingSpec coding;
  ImpulseSpec impulse;
  IsiSpec isi;
  InfoRateSpec info_rate;
  AdcSpec adc;
  SaturationSpec saturation;
  LdpcLatencySpec ldpc;

  /// Field-by-field sanity check; kInvalidSpec with a precise message
  /// on the first violated constraint.
  [[nodiscard]] Status validate() const;
};

/// One sweep dimension: a named list of values and how to apply a value
/// to a spec (usually a lambda writing one field).
struct SweepAxis {
  std::string name;
  std::vector<double> values;
  std::function<void(ScenarioSpec&, double)> apply;
};

/// Cartesian grid expansion: every combination of axis values applied
/// to the base spec; names become "base/axis1=v1;axis2=v2". Axis order
/// is significant (first axis varies slowest) and the result order is
/// deterministic — the contract the parallel runner preserves.
[[nodiscard]] std::vector<ScenarioSpec> expand_grid(
    const ScenarioSpec& base, const std::vector<SweepAxis>& axes);

}  // namespace wi::sim

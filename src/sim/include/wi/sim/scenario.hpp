#pragma once
/// \file scenario.hpp
/// \brief Declarative scenario description spanning every layer of the
///        library: geometry, link budget, beamforming, PHY receiver,
///        LDPC coding and NoC topology/traffic.
///
/// A ScenarioSpec is a plain value: construct one (defaults reproduce
/// the paper's Table I system), override fields, and hand it to
/// SimEngine. Sweeps are expressed as a base spec plus SweepAxis
/// overrides expanded into a scenario grid — no per-experiment glue
/// code. Named paper figures/ablations are preloaded in
/// ScenarioRegistry.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wi/core/hybrid_system.hpp"
#include "wi/core/link_planner.hpp"
#include "wi/core/nics_stack.hpp"
#include "wi/core/phy_abstraction.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/noc/topology.hpp"
#include "wi/noc/traffic.hpp"
#include "wi/rf/link_budget.hpp"
#include "wi/sim/status.hpp"

namespace wi::sim {

/// What a scenario computes (each maps to one ResultTable schema).
enum class Workload {
  kLinkBudgetTable,   ///< Table I parameters + derived anchors
  kPathlossCampaign,  ///< Fig. 1: synthetic campaigns + model fits
  kTxPowerSweep,      ///< Fig. 4: required PTX vs target SNR
  kLinkRate,          ///< link SNR -> PHY data rate (quickstart)
  kLinkPlan,          ///< plan all board-to-board links of a geometry
  kNocLatency,        ///< Fig. 8: latency vs injection for one topology
  kNicsStack,         ///< Sec. IV: one 3D chip-stack configuration
  kHybridSystem,      ///< Sec. VI: backplane vs wireless comparison
  kCodingPlan,        ///< Fig. 10: LDPC-CC choice under latency budget
};

[[nodiscard]] const char* workload_name(Workload workload);

/// Multi-board physical geometry (paper: 10 cm boards, 100 mm apart).
struct GeometrySpec {
  std::size_t boards = 2;
  double board_size_mm = 100.0;
  double separation_mm = 100.0;
  std::size_t nodes_per_edge = 4;
};

/// RF link parameters: Table I budget + beamforming + operating point.
struct LinkSpec {
  rf::LinkBudgetParams budget;  ///< defaults reproduce Table I
  core::Beamforming beamforming = core::Beamforming::kButlerMatrix;
  double ptx_dbm = 10.0;        ///< transmit power budget
  double target_snr_db = 15.0;  ///< planning target
};

/// PHY receiver abstraction (Sec. III).
struct PhySpec {
  core::PhyReceiver receiver = core::PhyReceiver::kOneBitSequence;
  double bandwidth_hz = 25e9;
  std::size_t polarizations = 2;
};

/// Fig. 1 measurement-campaign settings (distances: Fig. 1 grid).
struct CampaignSpec {
  std::uint64_t seed = 2013;  ///< synthetic VNA noise seed
};

/// Fig. 4 sweep settings.
struct TxPowerSpec {
  double snr_lo_db = 0.0;
  double snr_hi_db = 35.0;
  double snr_step_db = 5.0;
  double shortest_m = rf::kShortestLink_m;
  double longest_m = rf::kLongestLink_m;
};

/// Declarative NoC topology (built on demand by the engine).
struct TopologySpec {
  enum class Kind {
    kMesh2d,
    kStarMesh,
    kStarMeshIrl,
    kMesh3d,
    kCiliatedMesh3d,
    kPartialVertical3d,
  };
  Kind kind = Kind::kMesh2d;
  std::size_t kx = 8;
  std::size_t ky = 8;
  std::size_t kz = 1;
  std::size_t concentration = 1;
  std::size_t irl = 1;          ///< inter-router links (star-mesh fix)
  std::size_t tsv_period = 1;   ///< partial vertical connectivity
  double vertical_bandwidth = 1.0;

  /// Materialise the topology (throws StatusError on bad dimensions).
  [[nodiscard]] noc::Topology build() const;

  /// Modules the built topology will attach (for validation).
  [[nodiscard]] std::size_t module_count() const;
};

enum class TrafficKind { kUniform, kTranspose, kBitComplement, kHotspot };
enum class RoutingKind { kDimensionOrder, kShortestPath };

/// NoC evaluation settings (Fig. 8 style latency/throughput curves).
struct NocSpec {
  TopologySpec topology;
  TrafficKind traffic = TrafficKind::kUniform;
  std::size_t hotspot_module = 0;
  double hotspot_fraction = 0.2;
  RoutingKind routing = RoutingKind::kDimensionOrder;
  noc::QueueingModelParams model;
  std::vector<double> injection_rates;  ///< empty = default grid
  /// When > 0: flit-level DES cross-check at this injection rate.
  double des_check_rate = 0.0;
  std::uint64_t des_seed = 1;
};

/// Sec. IV chip-stack settings (wraps the core config).
struct NicsSpec {
  core::NicsStackConfig config;
};

/// Sec. VI backplane-vs-wireless settings (wraps the core config).
struct HybridSpec {
  core::HybridSystemConfig config;
};

/// Fig. 10 coding-plan settings.
struct CodingSpec {
  std::vector<double> latency_budgets_bits = {100, 150, 200, 250, 300, 400};
  std::size_t deployed_lifting = 40;  ///< fixed-N replanning example
  double ebn0_db = 3.0;               ///< for the latency-gain headline
};

/// The declarative scenario: one value spanning all layers.
struct ScenarioSpec {
  std::string name;
  std::string description;
  Workload workload = Workload::kLinkRate;

  GeometrySpec geometry;
  LinkSpec link;
  PhySpec phy;
  CampaignSpec campaign;
  TxPowerSpec tx_power;
  NocSpec noc;
  NicsSpec nics;
  HybridSpec hybrid;
  CodingSpec coding;

  /// Field-by-field sanity check; kInvalidSpec with a precise message
  /// on the first violated constraint.
  [[nodiscard]] Status validate() const;
};

/// One sweep dimension: a named list of values and how to apply a value
/// to a spec (usually a lambda writing one field).
struct SweepAxis {
  std::string name;
  std::vector<double> values;
  std::function<void(ScenarioSpec&, double)> apply;
};

/// Cartesian grid expansion: every combination of axis values applied
/// to the base spec; names become "base/axis1=v1;axis2=v2". Axis order
/// is significant (first axis varies slowest) and the result order is
/// deterministic — the contract the parallel runner preserves.
[[nodiscard]] std::vector<ScenarioSpec> expand_grid(
    const ScenarioSpec& base, const std::vector<SweepAxis>& axes);

}  // namespace wi::sim

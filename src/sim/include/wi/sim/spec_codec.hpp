#pragma once
/// \file spec_codec.hpp
/// \brief Shared building blocks of the spec JSON codecs: the strict
///        ObjectReader, enum name tables and list helpers.
///
/// The scenario codec (scenario_json.cpp) and every per-workload
/// payload codec (src/sim/workloads/*.cpp) are built from these, so all
/// spec JSON shares one dialect: snake_case keys, string-named enums,
/// exact-integer counts/seeds (<= 2^53), absent keys = defaults,
/// unknown keys = error.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "wi/common/json.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/sim/scenario.hpp"
#include "wi/sim/status.hpp"

namespace wi::sim {

[[noreturn]] inline void codec_fail(const std::string& message) {
  throw StatusError(Status(StatusCode::kParseError, "scenario: " + message));
}

// ---------------------------------------------------------------------------
// Enum tables. Each enum is encoded by a short stable snake_case name.

template <typename Enum>
struct EnumEntry {
  Enum value;
  const char* name;
};

template <typename Enum, std::size_t N>
[[nodiscard]] const char* enum_name(const EnumEntry<Enum> (&table)[N],
                                    Enum value) {
  for (const auto& entry : table) {
    if (entry.value == value) return entry.name;
  }
  return "unknown";
}

template <typename Enum, std::size_t N>
[[nodiscard]] Enum enum_value(const EnumEntry<Enum> (&table)[N],
                              const std::string& name,
                              const char* enum_label) {
  for (const auto& entry : table) {
    if (name == entry.name) return entry.value;
  }
  std::string known;
  for (const auto& entry : table) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  codec_fail(std::string("unknown ") + enum_label + " '" + name +
             "' (expected one of: " + known + ")");
}

inline constexpr EnumEntry<core::Beamforming> kBeamformings[] = {
    {core::Beamforming::kIdealSteering, "ideal_steering"},
    {core::Beamforming::kButlerMatrix, "butler_matrix"},
};

inline constexpr EnumEntry<core::PhyReceiver> kPhyReceivers[] = {
    {core::PhyReceiver::kOneBitSequence, "one_bit_sequence"},
    {core::PhyReceiver::kOneBitSymbolwise, "one_bit_symbolwise"},
    {core::PhyReceiver::kOneBitRect, "one_bit_rect"},
    {core::PhyReceiver::kUnquantized, "unquantized"},
};

inline constexpr EnumEntry<TopologySpec::Kind> kTopologyKinds[] = {
    {TopologySpec::Kind::kMesh2d, "mesh2d"},
    {TopologySpec::Kind::kStarMesh, "star_mesh"},
    {TopologySpec::Kind::kStarMeshIrl, "star_mesh_irl"},
    {TopologySpec::Kind::kMesh3d, "mesh3d"},
    {TopologySpec::Kind::kCiliatedMesh3d, "ciliated_mesh3d"},
    {TopologySpec::Kind::kPartialVertical3d, "partial_vertical3d"},
};

inline constexpr EnumEntry<TrafficKind> kTrafficKinds[] = {
    {TrafficKind::kUniform, "uniform"},
    {TrafficKind::kTranspose, "transpose"},
    {TrafficKind::kBitComplement, "bit_complement"},
    {TrafficKind::kHotspot, "hotspot"},
    {TrafficKind::kTornado, "tornado"},
};

inline constexpr EnumEntry<TrafficMode> kTrafficModes[] = {
    {TrafficMode::kDense, "dense"},
    {TrafficMode::kImplicit, "implicit"},
};

inline constexpr EnumEntry<RoutingKind> kRoutingKinds[] = {
    {RoutingKind::kDimensionOrder, "dimension_order"},
    {RoutingKind::kShortestPath, "shortest_path"},
};

// ---------------------------------------------------------------------------
// Decoding helpers: visit every member of a JSON object exactly once;
// unhandled keys are reported with their owning section.

/// Largest double that is still an exact integer (2^53): counts and
/// seeds beyond it cannot round-trip through a JSON number, and casting
/// larger doubles to integer types is undefined behavior.
inline constexpr double kMaxExactInteger = 9007199254740992.0;

[[nodiscard]] inline bool is_exact_integer(double n) {
  return n >= 0.0 && n <= kMaxExactInteger && n == std::floor(n);
}

class ObjectReader {
 public:
  ObjectReader(const Json& json, std::string section)
      : json_(json), section_(std::move(section)) {
    if (!json.is_object()) codec_fail(section_ + ": expected an object");
  }

  [[nodiscard]] const std::string& section() const { return section_; }

  /// Calls `decode(value)` when `key` is present.
  template <typename Fn>
  void field(const std::string& key, Fn&& decode) {
    const Json* value = json_.find(key);
    if (value != nullptr) {
      handled_.push_back(key);
      decode(*value);
    }
  }

  void number(const char* key, double& out) {
    field(key, [&](const Json& v) { out = v.as_number(); });
  }

  void size(const char* key, std::size_t& out) {
    field(key, [&](const Json& v) {
      const double n = v.as_number();
      if (!is_exact_integer(n)) {
        codec_fail(section_ + "." + key +
                   ": expected a non-negative integer (<= 2^53)");
      }
      out = static_cast<std::size_t>(n);
    });
  }

  void u64(const char* key, std::uint64_t& out) {
    field(key, [&](const Json& v) {
      const double n = v.as_number();
      if (!is_exact_integer(n)) {
        codec_fail(section_ + "." + key +
                   ": expected a non-negative integer (<= 2^53)");
      }
      out = static_cast<std::uint64_t>(n);
    });
  }

  void boolean(const char* key, bool& out) {
    field(key, [&](const Json& v) { out = v.as_bool(); });
  }

  void string(const char* key, std::string& out) {
    field(key, [&](const Json& v) { out = v.as_string(); });
  }

  template <typename Enum, std::size_t N>
  void enumeration(const char* key, const EnumEntry<Enum> (&table)[N],
                   Enum& out) {
    field(key, [&](const Json& v) {
      out = enum_value(table, v.as_string(), key);
    });
  }

  void number_list(const char* key, std::vector<double>& out) {
    field(key, [&](const Json& v) {
      out.clear();
      for (const auto& item : v.as_array()) out.push_back(item.as_number());
    });
  }

  void size_list(const char* key, std::vector<std::size_t>& out) {
    field(key, [&](const Json& v) {
      out.clear();
      for (const auto& item : v.as_array()) {
        const double n = item.as_number();
        if (!is_exact_integer(n)) {
          codec_fail(section_ + "." + key +
                     ": expected non-negative integers (<= 2^53)");
        }
        out.push_back(static_cast<std::size_t>(n));
      }
    });
  }

  /// Must be called after all field() registrations: rejects document
  /// keys that no field() consumed (typos would otherwise silently
  /// leave a default value in place).
  void finish() const {
    for (const auto& [key, value] : json_.as_object()) {
      bool known = false;
      for (const std::string& h : handled_) {
        if (key == h) {
          known = true;
          break;
        }
      }
      if (!known) codec_fail(section_ + ": unknown key '" + key + "'");
    }
  }

 private:
  const Json& json_;
  std::string section_;
  std::vector<std::string> handled_;
};

[[nodiscard]] inline Json number_list_json(const std::vector<double>& values) {
  Json array = Json::array();
  for (const double v : values) array.push_back(Json(v));
  return array;
}

[[nodiscard]] inline Json size_list_json(
    const std::vector<std::size_t>& values) {
  Json array = Json::array();
  for (const std::size_t v : values) {
    array.push_back(Json(static_cast<double>(v)));
  }
  return array;
}

/// noc::QueueingModelParams <-> JSON (shared by the noc section and the
/// nics/hybrid payload codecs).
[[nodiscard]] inline Json model_to_json(const noc::QueueingModelParams& m) {
  Json json = Json::object();
  json.set("router_delay_cycles", Json(m.router_delay_cycles));
  json.set("link_delay_cycles", Json(m.link_delay_cycles));
  json.set("local_delay_cycles", Json(m.local_delay_cycles));
  json.set("channel_efficiency", Json(m.channel_efficiency));
  json.set("packet_length_flits", Json(m.packet_length_flits));
  return json;
}

inline void model_from_json(const Json& json, const std::string& section,
                            noc::QueueingModelParams& m) {
  ObjectReader reader(json, section);
  reader.number("router_delay_cycles", m.router_delay_cycles);
  reader.number("link_delay_cycles", m.link_delay_cycles);
  reader.number("local_delay_cycles", m.local_delay_cycles);
  reader.number("channel_efficiency", m.channel_efficiency);
  reader.number("packet_length_flits", m.packet_length_flits);
  reader.finish();
}

}  // namespace wi::sim

#pragma once
/// \file fault_codec.hpp
/// \brief wi::fault::FaultSpec <-> JSON in the shared spec dialect
///        (snake_case keys, absent = default, unknown = error).
///
/// Lives in the sim layer (not common) because the codec dialect —
/// ObjectReader, exact-integer seeds — is the sim spec contract; the
/// fault model itself stays dependency-free in src/common.

#include "wi/common/fault.hpp"
#include "wi/sim/spec_codec.hpp"

namespace wi::sim {

[[nodiscard]] inline Json fault_to_json(const fault::FaultSpec& f) {
  Json json = Json::object();
  json.set("link_fail_rate", Json(f.link_fail_rate));
  json.set("router_fail_rate", Json(f.router_fail_rate));
  json.set("window_begin", Json(f.window_begin));
  json.set("window_end", Json(f.window_end));
  json.set("seed", Json(static_cast<double>(f.seed)));
  return json;
}

inline void fault_from_json(const Json& json, const std::string& section,
                            fault::FaultSpec& f) {
  ObjectReader reader(json, section);
  reader.number("link_fail_rate", f.link_fail_rate);
  reader.number("router_fail_rate", f.router_fail_rate);
  reader.number("window_begin", f.window_begin);
  reader.number("window_end", f.window_end);
  reader.u64("seed", f.seed);
  reader.finish();
}

}  // namespace wi::sim

#pragma once
/// \file workload.hpp
/// \brief The open workload-plugin layer: WorkloadRunner interface +
///        process-wide WorkloadRegistry.
///
/// A *workload* is what a scenario computes (one ResultTable schema).
/// Each workload lives in exactly one file under src/sim/workloads/:
/// a WorkloadRunner subclass bundling the name, the table schema, the
/// payload defaults + JSON codec, validation, the campaign reseeding
/// hook and the run() implementation — registered into the global
/// WorkloadRegistry via WI_SIM_REGISTER_WORKLOAD. SimEngine, the
/// scenario JSON codec, ScenarioRegistry and wi_run all dispatch
/// through the registry, so adding a workload is one new file (plus a
/// registry scenario + golden), never an engine edit.
///
/// Linker note: the build generates wi_workload_link.cpp from the
/// directory glob of src/sim/workloads/*.cpp; it references every
/// plugin's registration hook, so static-archive linking can never drop
/// a plugin object silently.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wi/common/json.hpp"
#include "wi/common/table.hpp"
#include "wi/sim/phy_curve_cache.hpp"
#include "wi/sim/scenario.hpp"
#include "wi/sim/status.hpp"

namespace wi::sim {

/// Execution environment a runner sees: the engine's shared PHY curve
/// cache, an engine-level seed salt, and the result hooks (notes that
/// end up on the RunResult next to the table).
class WorkloadEnv {
 public:
  explicit WorkloadEnv(PhyCurveCache& phy_cache, std::uint64_t seed = 0)
      : phy_cache_(phy_cache), seed_(seed) {}

  [[nodiscard]] PhyCurveCache& phy_cache() { return phy_cache_; }

  /// Engine-level seed salt (0 for direct runs; campaigns reseed the
  /// payload via WorkloadRunner::apply_seed instead).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Result hook: appends one line to the RunResult's notes.
  void note(std::string line) { notes_.push_back(std::move(line)); }

  [[nodiscard]] std::vector<std::string>& notes() { return notes_; }

 private:
  PhyCurveCache& phy_cache_;
  std::uint64_t seed_ = 0;
  std::vector<std::string> notes_;
};

/// One pluggable workload: everything the sim layer needs to know about
/// it, behind one interface.
class WorkloadRunner {
 public:
  virtual ~WorkloadRunner() = default;

  /// Stable workload key ("info_rates", ...). This string is what
  /// ScenarioSpec::workload holds and what the JSON codec round-trips —
  /// renaming it invalidates spec files and store keys.
  [[nodiscard]] virtual std::string name() const = 0;

  /// JSON key of the payload section in a serialized spec. Defaults to
  /// name(); override to keep a legacy key (e.g. "info_rate").
  [[nodiscard]] virtual std::string payload_key() const { return name(); }

  /// One-line human description (wi_run --list).
  [[nodiscard]] virtual std::string description() const { return {}; }

  /// ResultTable column schema (stable independent of success/failure,
  /// so merged sweep tables always line up).
  [[nodiscard]] virtual std::vector<std::string> headers() const = 0;

  /// Fresh default payload; nullptr when the workload has none.
  [[nodiscard]] virtual std::unique_ptr<WorkloadPayload> default_payload()
      const {
    return nullptr;
  }

  /// Payload section of the canonical spec JSON; a null Json means "no
  /// payload section" (the default for payload-free workloads).
  [[nodiscard]] virtual Json payload_to_json(const ScenarioSpec&) const {
    return Json();
  }

  /// Decode the payload section into `spec`; throws
  /// StatusError(kParseError) on unknown keys or type mismatches.
  virtual void payload_from_json(const Json&, ScenarioSpec& spec) const;

  /// Workload-specific validation on top of the shared-section checks.
  [[nodiscard]] virtual Status validate(const ScenarioSpec&) const {
    return Status::ok();
  }

  /// Campaign hook: point every stochastic field this workload consumes
  /// at `seed` (multi-seed campaigns derive one seed per replica).
  virtual void apply_seed(ScenarioSpec&, std::uint64_t) const {}

  /// Execute the workload. The returned table must use headers();
  /// derived scalars that do not fit the row schema go through
  /// env.note(). Called only after validate() passed.
  [[nodiscard]] virtual Table run(const ScenarioSpec& spec,
                                  WorkloadEnv& env) const = 0;
};

/// Name-keyed runner collection. Use global() for the process-wide
/// instance every dispatch path consults; separate instances exist only
/// for tests.
class WorkloadRegistry {
 public:
  WorkloadRegistry() = default;
  WorkloadRegistry(const WorkloadRegistry&) = delete;
  WorkloadRegistry& operator=(const WorkloadRegistry&) = delete;

  /// Registers a runner; throws StatusError(kInvalidSpec) on an empty
  /// name or a duplicate name/payload key.
  void register_runner(std::unique_ptr<WorkloadRunner> runner);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const WorkloadRunner* find(const std::string& name) const;

  /// Runner by name; throws StatusError(kInvalidSpec) for unknown names
  /// (the message carries a nearest-match suggestion + the known list).
  [[nodiscard]] const WorkloadRunner& get(const std::string& name) const;

  /// Runner whose payload_key() is `key`, or nullptr.
  [[nodiscard]] const WorkloadRunner* find_by_payload_key(
      const std::string& key) const;

  /// Registered workload names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return runners_.size(); }

  /// The process-wide registry, populated with every workload under
  /// src/sim/workloads/ on first use.
  [[nodiscard]] static WorkloadRegistry& global();

 private:
  std::vector<std::unique_ptr<WorkloadRunner>> runners_;
};

/// Column schema of a workload by name; {"-"} for unregistered names
/// (failed results still need a printable table).
[[nodiscard]] std::vector<std::string> workload_headers(
    const std::string& workload);

/// Nearest candidate by edit distance, or "" when nothing is close
/// enough to be a plausible typo. Shared by the registry error messages
/// and wi_run's unknown-name diagnostics.
[[nodiscard]] std::string closest_name(const std::string& name,
                                       const std::vector<std::string>& known);

/// The shared unknown-name diagnostic: "unknown <kind> '<name>' (did
/// you mean 'X'?); known <kind>s: a, b, ...". Used by both registries
/// and the scenario codec so the wording cannot drift.
[[nodiscard]] std::string unknown_name_message(
    const std::string& kind, const std::string& name,
    const std::vector<std::string>& known);

namespace detail {
/// Defined in the generated wi_workload_link.cpp: registers every
/// plugin under src/sim/workloads/ (deterministic, sorted file order).
void register_builtin_workloads(WorkloadRegistry& registry);
}  // namespace detail

}  // namespace wi::sim

/// Registration hook of one workload plugin file. `stem` must equal the
/// file's basename (src/sim/workloads/<stem>.cpp): the generated
/// wi_workload_link.cpp declares and calls wi::sim::workloads::
/// register_<stem>. Use inside namespace wi::sim.
#define WI_SIM_REGISTER_WORKLOAD(stem, Runner)                         \
  namespace workloads {                                                \
  void register_##stem(::wi::sim::WorkloadRegistry& registry) {        \
    registry.register_runner(std::make_unique<Runner>());              \
  }                                                                    \
  }

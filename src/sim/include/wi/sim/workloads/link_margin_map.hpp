#pragma once
/// \file link_margin_map.hpp
/// \brief Payload of the "link_margin_map" workload: per-link SNR
///        margin over the chip geometry.

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Margin-map settings: every adjacent-board link of the scenario
/// geometry is planned at the spec's transmit power and reported with
/// its SNR margin against the planning target (link.target_snr_db) and
/// against the SNR the PHY receiver needs for min_rate_gbps.
struct LinkMarginSpec : PayloadBase<LinkMarginSpec> {
  double min_rate_gbps = 100.0;  ///< rate the margin is computed for
};

}  // namespace wi::sim

#pragma once
/// \file fault_sweep.hpp
/// \brief Payload of the "fault_sweep" workload (failure rate vs
///        latency/throughput degradation under rerouting).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "wi/common/fault.hpp"
#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Failure-injection sweep over the flit-level DES: each entry of
/// `fail_rates` is one table row — a full simulation with per-link
/// failure probability `rate` and per-router failure probability
/// `rate * router_fail_fraction`, faults deriving from the embedded
/// FaultSpec's seed and activation window. Topology, traffic and
/// routing come from the scenario's NocSpec. The row grid is fixed by
/// `fail_rates`, so the shape is stable across seeds — the contract the
/// campaign aggregator relies on.
struct FaultSweepSpec : PayloadBase<FaultSweepSpec> {
  std::vector<double> fail_rates;      ///< empty = {0, 0.02, 0.05, 0.1, 0.2}
  double router_fail_fraction = 0.25;  ///< router rate / link rate
  double injection_rate = 0.1;         ///< offered load [flits/cycle/module]
  /// Fault stream seed + activation window; the sweep overrides the
  /// per-entity rates row by row.
  fault::FaultSpec fault;
  std::size_t warmup_cycles = 1000;    ///< excluded from statistics
  std::size_t measure_cycles = 4000;   ///< measurement window
  std::size_t drain_cycles = 8000;     ///< post-window drain limit
  std::size_t buffer_depth = 8;        ///< input queue capacity [flits]
  std::uint64_t seed = 1;              ///< traffic seed
};

}  // namespace wi::sim

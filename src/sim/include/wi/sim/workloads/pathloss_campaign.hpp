#pragma once
/// \file pathloss_campaign.hpp
/// \brief Payload of the "pathloss_campaign" workload (Fig. 1).

#include <cstdint>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Fig. 1 measurement-campaign settings (distances: Fig. 1 grid).
struct PathlossSpec : PayloadBase<PathlossSpec> {
  std::uint64_t seed = 2013;  ///< synthetic VNA noise seed
};

}  // namespace wi::sim

#pragma once
/// \file adc_energy.hpp
/// \brief Payload of the "adc_energy" workload (Sec. III).

#include <cstddef>
#include <cstdint>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Sec. III ADC energy-per-bit settings.
struct AdcSpec : PayloadBase<AdcSpec> {
  double walden_fom_fj = 50.0;   ///< fJ per conversion step
  double snr_db = 25.0;          ///< operating SNR
  double symbol_rate_hz = 25e9;  ///< 25 GBd 4-ASK link
  std::size_t mc_symbols = 60000;
  std::uint64_t mc_seed = 29;
};

}  // namespace wi::sim

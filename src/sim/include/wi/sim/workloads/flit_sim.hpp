#pragma once
/// \file flit_sim.hpp
/// \brief Payload of the "flit_sim" workload (flit-level DES curve).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Flit-level DES settings: the stochastic counterpart of the analytic
/// noc_latency curve. Topology, traffic and routing come from the
/// scenario's NocSpec; each injection rate is one independent
/// simulation (one table row), so the row grid is fixed across seeds —
/// the shape contract the campaign aggregator relies on.
struct FlitSimSpec : PayloadBase<FlitSimSpec> {
  std::vector<double> injection_rates;  ///< empty = {0.05, 0.1, 0.15, 0.2}
  std::size_t warmup_cycles = 2000;     ///< excluded from statistics
  std::size_t measure_cycles = 8000;    ///< measurement window
  std::size_t drain_cycles = 20000;     ///< post-window drain limit
  std::size_t buffer_depth = 8;         ///< input queue capacity [flits]
  std::uint64_t seed = 1;               ///< packet injection seed
};

}  // namespace wi::sim

#pragma once
/// \file coding_plan.hpp
/// \brief Payload of the "coding_plan" workload (Fig. 10 planning).

#include <cstddef>
#include <vector>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Fig. 10 coding-plan settings.
struct CodingSpec : PayloadBase<CodingSpec> {
  std::vector<double> latency_budgets_bits = {100, 150, 200, 250, 300, 400};
  std::size_t deployed_lifting = 40;  ///< fixed-N replanning example
  double ebn0_db = 3.0;               ///< for the latency-gain headline
};

}  // namespace wi::sim

#pragma once
/// \file impulse_response.hpp
/// \brief Payload of the "impulse_response" workload (Figs. 2/3).

#include <cstddef>
#include <cstdint>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Figs. 2/3 impulse-response settings. One scenario measures the same
/// link in free space and between parallel copper boards with the same
/// synthetic-VNA noise seed, like the testbed campaign.
struct ImpulseSpec : PayloadBase<ImpulseSpec> {
  double distance_m = 0.05;    ///< antenna distance (Fig. 2: 50 mm)
  double max_delay_ns = 1.5;   ///< figure x-axis range
  std::size_t decimation = 2;  ///< keep every n-th delay sample
  std::uint64_t seed = 22;     ///< VNA noise seed
};

}  // namespace wi::sim

#pragma once
/// \file nics_stack.hpp
/// \brief Payload of the "nics_stack" workload (Sec. IV chip stack).

#include "wi/core/nics_stack.hpp"
#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Sec. IV chip-stack settings (wraps the core config).
struct NicsSpec : PayloadBase<NicsSpec> {
  core::NicsStackConfig config;
};

/// Stable codec name of a vertical-link technology ("tsv", ...).
[[nodiscard]] const char* vertical_tech_name(core::VerticalLinkTech value);

}  // namespace wi::sim

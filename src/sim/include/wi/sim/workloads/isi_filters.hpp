#pragma once
/// \file isi_filters.hpp
/// \brief Payload of the "isi_filters" workload (Fig. 5).

#include <cstddef>
#include <cstdint>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Fig. 5 ISI filter-design settings.
struct IsiSpec : PayloadBase<IsiSpec> {
  double design_snr_db = 25.0;      ///< paper optimises/evaluates at 25 dB
  std::size_t mc_symbols = 40000;   ///< sequence-rate Monte-Carlo length
  std::uint64_t mc_seed = 9;
  /// Re-run the Nelder-Mead optimisation instead of using the
  /// pre-optimised paper filters (minutes instead of milliseconds).
  bool reoptimize = false;
  /// Optimiser budget overrides for reoptimize runs (tools/tune_*);
  /// 0 keeps the library default.
  std::size_t opt_max_evals = 0;
  std::size_t opt_restarts = 0;
  std::size_t opt_mc_symbols = 0;
};

}  // namespace wi::sim

#pragma once
/// \file tx_power_sweep.hpp
/// \brief Payload of the "tx_power_sweep" workload (Fig. 4).

#include "wi/rf/link_budget.hpp"
#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Fig. 4 sweep settings.
struct TxPowerSpec : PayloadBase<TxPowerSpec> {
  double snr_lo_db = 0.0;
  double snr_hi_db = 35.0;
  double snr_step_db = 5.0;
  double shortest_m = rf::kShortestLink_m;
  double longest_m = rf::kLongestLink_m;
};

}  // namespace wi::sim

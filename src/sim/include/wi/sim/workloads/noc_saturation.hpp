#pragma once
/// \file noc_saturation.hpp
/// \brief Payload of the "noc_saturation" workload: injection-rate
///        sweep to saturation (latency-vs-load knee).

#include <cstddef>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Sweep settings: the scenario's NocSpec supplies topology, traffic,
/// routing and the queueing model; the sweep walks injection rates from
/// rate_lo towards the analytic saturation point and reports the
/// latency-vs-load curve plus the knee (first rate whose latency
/// exceeds knee_factor x zero-load latency).
struct NocSaturationSpec : PayloadBase<NocSaturationSpec> {
  double rate_lo = 0.01;       ///< first injection rate [flits/cycle/module]
  std::size_t steps = 24;      ///< sweep resolution up to saturation
  double knee_factor = 2.0;    ///< knee = latency > factor * zero-load
  double margin = 0.999;       ///< stop at margin * saturation_rate
};

}  // namespace wi::sim

#pragma once
/// \file ldpc_latency.hpp
/// \brief Payload of the "ldpc_latency" workload (Fig. 10 BER scan).

#include <cstddef>
#include <vector>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// One LDPC-CC curve of Fig. 10: a lifting factor N scanned over
/// decoding-window sizes W.
struct LdpcCurveSpec {
  std::size_t lifting = 25;
  std::size_t window_lo = 3;
  std::size_t window_hi = 8;
};

/// Fig. 10 Monte-Carlo settings. The defaults target BER 1e-4 with
/// capped codeword counts (minutes, trends preserved); the paper's
/// 1e-5 operating point needs min_errors/max_codewords raised.
struct LdpcLatencySpec : PayloadBase<LdpcLatencySpec> {
  double target_ber = 1e-4;
  std::size_t min_errors = 80;
  std::size_t max_codewords = 800;
  std::size_t max_bp_iterations = 50;
  std::size_t termination = 24;  ///< L (latency is L-independent)
  std::vector<LdpcCurveSpec> cc_curves = {{25, 3, 8}, {40, 3, 8}, {60, 4, 6}};
  std::vector<std::size_t> bc_liftings = {100, 150, 200, 300, 400};
  double search_lo_db = 1.5;    ///< Eb/N0 bisection bracket
  double search_hi_db = 6.0;
  double search_step_db = 0.25;
};

}  // namespace wi::sim

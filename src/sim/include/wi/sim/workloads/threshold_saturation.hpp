#pragma once
/// \file threshold_saturation.hpp
/// \brief Payload of the "threshold_saturation" workload.

#include <cstddef>
#include <vector>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// BEC threshold-saturation ablation settings.
struct SaturationSpec : PayloadBase<SaturationSpec> {
  std::vector<std::size_t> terminations = {4, 8, 16, 32, 64};
  double threshold_tolerance = 1e-4;  ///< bisection accuracy
};

}  // namespace wi::sim

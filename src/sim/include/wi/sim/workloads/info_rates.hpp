#pragma once
/// \file info_rates.hpp
/// \brief Payload of the "info_rates" workload (Fig. 6).

#include <cstddef>
#include <cstdint>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Fig. 6 information-rate sweep settings.
struct InfoRateSpec : PayloadBase<InfoRateSpec> {
  double snr_lo_db = -5.0;
  double snr_hi_db = 35.0;
  double snr_step_db = 5.0;
  std::size_t mc_symbols = 120000;  ///< sequence-rate Monte-Carlo length
  std::uint64_t mc_seed = 17;
};

}  // namespace wi::sim

#pragma once
/// \file hybrid_system.hpp
/// \brief Payload of the "hybrid_system" workload (Sec. VI).

#include "wi/core/hybrid_system.hpp"
#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Sec. VI backplane-vs-wireless settings (wraps the core config).
struct HybridSpec : PayloadBase<HybridSpec> {
  core::HybridSystemConfig config;
};

}  // namespace wi::sim

#pragma once
/// \file scenario_json.hpp
/// \brief JSON codec for ScenarioSpec — the serialized form behind the
///        result store's content keys, `wi_run --spec` files and the
///        golden-result provenance records.
///
/// The shared sections (geometry, link, phy, noc) are encoded field by
/// field with snake_case keys and string-named enums; the per-workload
/// payload is dispatched through the WorkloadRegistry and appears under
/// the runner's payload key ("info_rate", "flit", ...). Decoding starts
/// from a default ScenarioSpec: absent keys keep their Table I defaults
/// (so spec files stay minimal), unknown keys are an error (so typos
/// cannot silently produce a default-valued run) — and a payload key
/// belonging to a *different* workload is diagnosed as such.

#include <string>

#include "wi/common/json.hpp"
#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Serialize every shared field plus the selected workload's payload.
/// The compact dump of this value is the canonical form used for
/// content hashing.
[[nodiscard]] Json scenario_to_json(const ScenarioSpec& spec);

/// Decode a spec; throws StatusError(kParseError) on unknown keys or
/// type mismatches (and on workload names with no registered runner).
/// The result is NOT validated — call validate() (or hand it to
/// SimEngine, which does).
[[nodiscard]] ScenarioSpec scenario_from_json(const Json& json);

/// Canonical compact serialization: scenario_to_json(spec).dump().
[[nodiscard]] std::string scenario_to_string(const ScenarioSpec& spec);

/// scenario_from_json over parsed text.
[[nodiscard]] ScenarioSpec scenario_from_string(const std::string& text);

/// Enum names used by the codec (also handy for CLI flags).
[[nodiscard]] const char* beamforming_name(core::Beamforming value);
[[nodiscard]] const char* phy_receiver_name(core::PhyReceiver value);
[[nodiscard]] const char* topology_kind_name(TopologySpec::Kind value);
[[nodiscard]] const char* traffic_kind_name(TrafficKind value);
[[nodiscard]] const char* traffic_mode_name(TrafficMode value);
[[nodiscard]] const char* routing_kind_name(RoutingKind value);

}  // namespace wi::sim

#pragma once
/// \file status.hpp
/// \brief Error type of the scenario engine.
///
/// The concrete types live in wi/common/status.hpp so deep layers (noc
/// routing, future subsystems) can throw them without depending on
/// wi::sim; this header fixes them as the sim API's error vocabulary.

#include "wi/common/status.hpp"

namespace wi::sim {

using wi::Status;
using wi::StatusCode;
using wi::StatusError;
using wi::status_code_name;

}  // namespace wi::sim

#pragma once
/// \file registry.hpp
/// \brief Named scenario registry: every paper figure and ablation as a
///        ready-to-run ScenarioSpec.
///
/// The registry is the lookup half of the declarative API: benches,
/// tools and tests fetch specs by name ("fig04_tx_power",
/// "ablation_vertical_links", ...) instead of hand-wiring model stacks.
/// Sweeps start from a registered base spec plus SweepAxis overrides
/// (see expand_grid / SimEngine::run_sweep).

#include <string>
#include <vector>

#include "wi/sim/scenario.hpp"

namespace wi::sim {

/// Name-keyed collection of validated scenario specs.
class ScenarioRegistry {
 public:
  /// Adds a spec; throws StatusError(kInvalidSpec) on validation
  /// failure or duplicate name.
  void add(ScenarioSpec spec);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Spec by name; throws StatusError(kInvalidSpec) for unknown names
  /// (the message lists the available scenarios).
  [[nodiscard]] const ScenarioSpec& get(const std::string& name) const;

  /// Registered names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// The preloaded paper registry — every paper artifact: Table I,
  /// Figs. 1-6, 8(a)/8(b) and 10 (BER scan + coding plan), the
  /// quickstart link, the link plan, and the star-mesh / vertical-link
  /// / hybrid-system / ADC-energy / threshold-saturation ablations.
  [[nodiscard]] static const ScenarioRegistry& paper();

 private:
  std::vector<ScenarioSpec> specs_;
};

}  // namespace wi::sim

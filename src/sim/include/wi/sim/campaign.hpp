#pragma once
/// \file campaign.hpp
/// \brief Multi-seed Monte-Carlo campaign layer on top of SimEngine.
///
/// A Campaign runs one ScenarioSpec across N deterministically derived
/// seeds and reduces the per-seed result tables into one statistical
/// aggregate table (count / mean / stddev / min / max / 95% CI per
/// numeric cell). Seeds are derived SplitMix64-style from a base seed,
/// so seed k is the same value at any thread count and campaigns can be
/// extended (seeds 0..N-1 are a prefix of seeds 0..M-1 for M > N).
/// Every seed replica is one task on the engine's work-stealing pool,
/// and when a ResultStore is supplied each replica is persisted the
/// moment it finishes — an interrupted or extended campaign resumes
/// per (seed, grid point) and a repeated campaign is a full cache hit.
///
/// The aggregate table is the unit of *statistical* golden checking:
/// check_campaign_ci() passes while the golden mean stays inside the
/// regenerated confidence interval, so refactors that legitimately
/// reshuffle RNG streams do not invalidate the reference dataset the
/// way bit-exact cell diffs would.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wi/common/json.hpp"
#include "wi/common/table.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/scenario.hpp"
#include "wi/sim/status.hpp"

namespace wi::sim {

class ResultStore;

/// Declarative campaign: a base scenario plus the seed schedule.
struct CampaignSpec {
  std::string name;  ///< empty = use scenario.name
  std::string description;
  std::size_t seeds = 8;       ///< number of independent replicas
  std::uint64_t base_seed = 1; ///< root of the SplitMix64 derivation
  ScenarioSpec scenario;

  /// kInvalidSpec on zero seeds or an invalid base scenario.
  [[nodiscard]] Status validate() const;

  /// name, falling back to the scenario's name.
  [[nodiscard]] const std::string& display_name() const {
    return name.empty() ? scenario.name : name;
  }
};

/// One worker's slice of a campaign's seed schedule: the replica
/// indices congruent to `index` mod `count`. Seed *values* are already
/// shard-invariant (campaign_seed is a pure function of (base_seed,
/// k)), so shards 0..count-1 partition the seed set exactly once —
/// independent processes sharing a ResultStore directory each run
/// their shard and merge_campaign_results() folds the union back into
/// the single-process aggregate bit-for-bit.
struct CampaignShard {
  std::size_t index = 0;  ///< this worker's shard id, in [0, count)
  std::size_t count = 1;  ///< total shard count; 1 = unsharded

  [[nodiscard]] bool active() const { return count > 1; }

  /// Does this shard run replica `seed_index`?
  [[nodiscard]] bool owns(std::size_t seed_index) const {
    return count < 2 || seed_index % count == index;
  }

  /// kInvalidSpec unless count >= 1 and index < count.
  [[nodiscard]] Status validate() const;
};

/// Seed of replica `index`: SplitMix64 finalizer over
/// base_seed + index * golden-gamma, masked to 53 bits (JSON numbers
/// must round-trip the seed exactly). Pure function of (base_seed,
/// index) — independent of thread count and of how many replicas the
/// campaign runs, which is what makes campaigns resumable/extensible.
[[nodiscard]] std::uint64_t campaign_seed(std::uint64_t base_seed,
                                          std::size_t index);

/// The per-replica scenario: every stochastic seed field (pathloss,
/// impulse, isi, info_rate, adc, flit, noc DES cross-check) set to
/// `seed`, and the name suffixed "@seed=<seed>" so replicas get
/// distinct ResultStore keys and sweep rows.
[[nodiscard]] ScenarioSpec scenario_for_seed(const ScenarioSpec& scenario,
                                             std::uint64_t seed);

/// Column schema of the aggregate table. One row per (table row,
/// numeric column) of the replica tables:
///   row, key, column, seeds, mean, stddev, min, max, ci95_half
/// `key` is the first cell of the source row when it is identical
/// across replicas (the natural row label: SNR, injection rate, ...).
[[nodiscard]] std::vector<std::string> campaign_headers();

/// Reduce replica tables (identical shape required) into the aggregate
/// schema above. Cells that parse as finite numbers in *every* replica
/// are aggregated; all other cells are skipped. Throws
/// StatusError(kExecutionError) on shape mismatches.
[[nodiscard]] Table aggregate_tables(const std::vector<Table>& tables);

/// Result of one campaign run.
struct CampaignResult {
  std::string campaign;
  Status status;
  std::size_t seeds = 0;
  std::uint64_t base_seed = 0;
  Table aggregate;                 ///< campaign_headers() schema
  std::vector<RunResult> per_seed; ///< replica results, in seed order
                                   ///< (owned seeds only when sharded;
                                   ///< empty for merged results)
  /// Replica indices that could not be folded: absent from the store,
  /// corrupt, or shape-mismatched. Filled by merge_campaign_results()
  /// — a partial merge is still ok(), the caller decides whether
  /// partial is acceptable. Always empty for Campaign::run results.
  std::vector<std::size_t> missing_seeds;
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
  [[nodiscard]] bool complete() const { return missing_seeds.empty(); }
};

/// Runs a CampaignSpec through a SimEngine (optionally via a
/// ResultStore for per-seed persistence).
class Campaign {
 public:
  /// Throws StatusError on an invalid spec.
  explicit Campaign(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }

  /// Expand the seed schedule, run all replicas on the engine's
  /// work-stealing pool (through `store` when given, persisting each
  /// replica as it finishes) and aggregate. Failed replicas or
  /// shape-mismatched tables mark the campaign status failed; the
  /// replica results always survive for diagnosis. The aggregate is
  /// bit-identical at every thread count.
  ///
  /// An active `shard` restricts the run to the replica indices the
  /// shard owns (index mod count) — the worker half of a distributed
  /// campaign. Shard workers should share one ResultStore directory;
  /// the aggregate then only covers the shard's own seeds (the full
  /// aggregate comes from merge_campaign_results over the shared
  /// store). Throws StatusError on an invalid shard.
  [[nodiscard]] CampaignResult run(SimEngine& engine,
                                   ResultStore* store = nullptr,
                                   std::size_t threads = 0,
                                   const CampaignShard& shard = {}) const;

 private:
  CampaignSpec spec_;
};

/// The aggregator half of a distributed campaign: loads whatever seed
/// replicas of `spec` exist in `store` (written by any number of shard
/// workers, possibly still running) and folds them cell-wise — one
/// single-sample RunningStats per (cell, seed), merged in seed-index
/// order, which is bit-identical to the sequential single-process
/// accumulation. Seeds that are absent, corrupt (ResultStore::load
/// degrades those to misses) or shape-mismatched are listed in
/// missing_seeds and reported in the notes, never fatal: a partial
/// merge reports partial CI95 over the seeds present so far. The
/// result's status is only failed on an invalid spec.
[[nodiscard]] CampaignResult merge_campaign_results(
    const CampaignSpec& spec, const ResultStore& store);

/// Statistical golden check: `golden` and `actual` must be aggregate
/// tables over the same (row, key, column) grid. A cell passes when
/// |golden mean - actual mean| <=
///   max(slack * hypot(actual ci95_half, golden ci95_half), abs_tol).
/// Both means are sample estimates, so the band is the CI of their
/// difference (quadrature sum); the abs_tol floor covers deterministic
/// cells whose CI half-width is exactly zero. The default slack of 2
/// buys family-wise headroom: goldens hold on the order of 100 cells,
/// and a per-cell 95% band would flag a few cells on every legitimate
/// RNG-stream reshuffle.
struct CiCheckOptions {
  double slack = 2.0;     ///< difference-CI multiplier
  double abs_tol = 1e-9;  ///< floor for zero-variance cells
  std::size_t max_failures = 20;  ///< reporting cap in the message
};

/// Ok when every golden mean lies inside the regenerated CI;
/// kExecutionError with per-cell diagnostics otherwise (grid
/// mismatches — missing/extra/reordered aggregate rows — also fail).
[[nodiscard]] Status check_campaign_ci(const Table& actual,
                                       const Table& golden,
                                       const CiCheckOptions& options = {});

/// CampaignSpec <-> JSON, mirroring the scenario codec: absent keys
/// keep their defaults, unknown keys are errors. The embedded scenario
/// uses the scenario codec unchanged.
[[nodiscard]] Json campaign_to_json(const CampaignSpec& spec);
[[nodiscard]] CampaignSpec campaign_from_json(const Json& json);
[[nodiscard]] std::string campaign_to_string(const CampaignSpec& spec);
[[nodiscard]] CampaignSpec campaign_from_string(const std::string& text);

/// CampaignResult -> JSON ({"campaign", "status", "seeds", "base_seed",
/// "notes", "aggregate", "per_seed": [RunResult...]}) — the payload of
/// `wi_run --campaign-out`.
[[nodiscard]] Json campaign_result_to_json(const CampaignResult& result);

/// Print a campaign result (header line, notes, aggregate table).
void print_campaign(std::ostream& os, const CampaignResult& result);

}  // namespace wi::sim

#pragma once
/// \file campaign.hpp
/// \brief Multi-seed Monte-Carlo campaign layer on top of SimEngine.
///
/// A Campaign runs one ScenarioSpec across N deterministically derived
/// seeds and reduces the per-seed result tables into one statistical
/// aggregate table (count / mean / stddev / min / max / 95% CI per
/// numeric cell). Seeds are derived SplitMix64-style from a base seed,
/// so seed k is the same value at any thread count and campaigns can be
/// extended (seeds 0..N-1 are a prefix of seeds 0..M-1 for M > N).
/// Every seed replica is one task on the engine's work-stealing pool,
/// and when a ResultStore is supplied each replica is persisted the
/// moment it finishes — an interrupted or extended campaign resumes
/// per (seed, grid point) and a repeated campaign is a full cache hit.
///
/// The aggregate table is the unit of *statistical* golden checking:
/// check_campaign_ci() passes while the golden mean stays inside the
/// regenerated confidence interval, so refactors that legitimately
/// reshuffle RNG streams do not invalidate the reference dataset the
/// way bit-exact cell diffs would.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wi/common/json.hpp"
#include "wi/common/table.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/scenario.hpp"
#include "wi/sim/status.hpp"

namespace wi::sim {

class ResultStore;

/// Declarative campaign: a base scenario plus the seed schedule.
struct CampaignSpec {
  std::string name;  ///< empty = use scenario.name
  std::string description;
  std::size_t seeds = 8;       ///< number of independent replicas
  std::uint64_t base_seed = 1; ///< root of the SplitMix64 derivation
  ScenarioSpec scenario;

  /// kInvalidSpec on zero seeds or an invalid base scenario.
  [[nodiscard]] Status validate() const;

  /// name, falling back to the scenario's name.
  [[nodiscard]] const std::string& display_name() const {
    return name.empty() ? scenario.name : name;
  }
};

/// Seed of replica `index`: SplitMix64 finalizer over
/// base_seed + index * golden-gamma, masked to 53 bits (JSON numbers
/// must round-trip the seed exactly). Pure function of (base_seed,
/// index) — independent of thread count and of how many replicas the
/// campaign runs, which is what makes campaigns resumable/extensible.
[[nodiscard]] std::uint64_t campaign_seed(std::uint64_t base_seed,
                                          std::size_t index);

/// The per-replica scenario: every stochastic seed field (pathloss,
/// impulse, isi, info_rate, adc, flit, noc DES cross-check) set to
/// `seed`, and the name suffixed "@seed=<seed>" so replicas get
/// distinct ResultStore keys and sweep rows.
[[nodiscard]] ScenarioSpec scenario_for_seed(const ScenarioSpec& scenario,
                                             std::uint64_t seed);

/// Column schema of the aggregate table. One row per (table row,
/// numeric column) of the replica tables:
///   row, key, column, seeds, mean, stddev, min, max, ci95_half
/// `key` is the first cell of the source row when it is identical
/// across replicas (the natural row label: SNR, injection rate, ...).
[[nodiscard]] std::vector<std::string> campaign_headers();

/// Reduce replica tables (identical shape required) into the aggregate
/// schema above. Cells that parse as finite numbers in *every* replica
/// are aggregated; all other cells are skipped. Throws
/// StatusError(kExecutionError) on shape mismatches.
[[nodiscard]] Table aggregate_tables(const std::vector<Table>& tables);

/// Result of one campaign run.
struct CampaignResult {
  std::string campaign;
  Status status;
  std::size_t seeds = 0;
  std::uint64_t base_seed = 0;
  Table aggregate;                 ///< campaign_headers() schema
  std::vector<RunResult> per_seed; ///< replica results, in seed order
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// Runs a CampaignSpec through a SimEngine (optionally via a
/// ResultStore for per-seed persistence).
class Campaign {
 public:
  /// Throws StatusError on an invalid spec.
  explicit Campaign(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }

  /// Expand the seed schedule, run all replicas on the engine's
  /// work-stealing pool (through `store` when given, persisting each
  /// replica as it finishes) and aggregate. Failed replicas or
  /// shape-mismatched tables mark the campaign status failed; the
  /// replica results always survive for diagnosis. The aggregate is
  /// bit-identical at every thread count.
  [[nodiscard]] CampaignResult run(SimEngine& engine,
                                   ResultStore* store = nullptr,
                                   std::size_t threads = 0) const;

 private:
  CampaignSpec spec_;
};

/// Statistical golden check: `golden` and `actual` must be aggregate
/// tables over the same (row, key, column) grid. A cell passes when
/// |golden mean - actual mean| <=
///   max(slack * hypot(actual ci95_half, golden ci95_half), abs_tol).
/// Both means are sample estimates, so the band is the CI of their
/// difference (quadrature sum); the abs_tol floor covers deterministic
/// cells whose CI half-width is exactly zero. The default slack of 2
/// buys family-wise headroom: goldens hold on the order of 100 cells,
/// and a per-cell 95% band would flag a few cells on every legitimate
/// RNG-stream reshuffle.
struct CiCheckOptions {
  double slack = 2.0;     ///< difference-CI multiplier
  double abs_tol = 1e-9;  ///< floor for zero-variance cells
  std::size_t max_failures = 20;  ///< reporting cap in the message
};

/// Ok when every golden mean lies inside the regenerated CI;
/// kExecutionError with per-cell diagnostics otherwise (grid
/// mismatches — missing/extra/reordered aggregate rows — also fail).
[[nodiscard]] Status check_campaign_ci(const Table& actual,
                                       const Table& golden,
                                       const CiCheckOptions& options = {});

/// CampaignSpec <-> JSON, mirroring the scenario codec: absent keys
/// keep their defaults, unknown keys are errors. The embedded scenario
/// uses the scenario codec unchanged.
[[nodiscard]] Json campaign_to_json(const CampaignSpec& spec);
[[nodiscard]] CampaignSpec campaign_from_json(const Json& json);
[[nodiscard]] std::string campaign_to_string(const CampaignSpec& spec);
[[nodiscard]] CampaignSpec campaign_from_string(const std::string& text);

/// CampaignResult -> JSON ({"campaign", "status", "seeds", "base_seed",
/// "notes", "aggregate", "per_seed": [RunResult...]}) — the payload of
/// `wi_run --campaign-out`.
[[nodiscard]] Json campaign_result_to_json(const CampaignResult& result);

/// Print a campaign result (header line, notes, aggregate table).
void print_campaign(std::ostream& os, const CampaignResult& result);

}  // namespace wi::sim

#pragma once
/// \file engine.hpp
/// \brief Scenario execution facade: one entry point from link budget
///        to NoC evaluation.
///
/// SimEngine turns a declarative ScenarioSpec into a structured
/// ResultTable by dispatching to the workload's registered runner (see
/// wi/sim/workload.hpp) — the engine itself is pure orchestration:
/// grid expansion, the work-stealing pool, the shared PhyCurveCache
/// and result plumbing, with no knowledge of any concrete workload.
/// Per-scenario failures (invalid specs, unreachable routes, ...) are
/// captured as a Status in the result — one bad grid point never aborts
/// a sweep — and results are deterministic: the same spec list produces
/// cell-identical tables at any thread count.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "wi/common/table.hpp"
#include "wi/sim/phy_curve_cache.hpp"
#include "wi/sim/scenario.hpp"
#include "wi/sim/status.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {

/// Result of one scenario run. `table` uses the workload's schema (see
/// workload_headers); `notes` carry derived scalars (fits, anchors,
/// cross-checks) that do not fit the row schema.
struct RunResult {
  std::string scenario;
  Status status;
  Table table;
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// Engine options.
struct EngineOptions {
  /// Worker threads for run_all/run_sweep; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Reuse hook for engines embedded in an external worker pool (the
  /// wi_serve daemon): pin PHY curve builds to one thread, because the
  /// *callers* are already running run() concurrently and a nested
  /// curve-build pool per cache miss would oversubscribe the machine.
  /// run_all() honors the pin too (it restores whatever build-thread
  /// setting it found rather than resetting to "parallel").
  bool serial_phy_builds = false;
};

/// Executes scenarios; owns the PHY curve cache shared across runs.
class SimEngine {
 public:
  explicit SimEngine(EngineOptions options = {});

  /// Run one scenario. Never throws for per-scenario failures: the
  /// returned status records them and the table stays empty.
  [[nodiscard]] RunResult run(const ScenarioSpec& spec);

  /// Completion hook for run_all: called once per scenario with its
  /// input index, as soon as that result exists. With multiple worker
  /// threads the callback runs concurrently from the workers — it must
  /// be thread-safe (the ResultStore uses it to persist each grid point
  /// immediately, which is what makes interrupted sweeps resumable).
  using ResultCallback =
      std::function<void(std::size_t index, const RunResult& result)>;

  /// Run many scenarios on a work-stealing thread pool. Results are in
  /// input order and cell-identical for every thread count.
  /// \param threads  0 = engine option (0 there = hardware concurrency)
  [[nodiscard]] std::vector<RunResult> run_all(
      const std::vector<ScenarioSpec>& specs, std::size_t threads = 0,
      const ResultCallback& on_result = {});

  /// Expand a sweep grid, run it in parallel, and merge everything into
  /// one long-format table: scenario + status columns, then the
  /// workload's row schema. Failed points contribute one row with '-'
  /// data cells and their status message; the sweep always completes,
  /// but any failed point marks the merged result's status failed so
  /// exit-code checks notice.
  [[nodiscard]] RunResult run_sweep(const ScenarioSpec& base,
                                    const std::vector<SweepAxis>& axes,
                                    std::size_t threads = 0);

  [[nodiscard]] PhyCurveCache& phy_cache() { return phy_cache_; }
  [[nodiscard]] const PhyCurveCache& phy_cache() const { return phy_cache_; }

  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  [[nodiscard]] std::size_t resolve_threads(std::size_t requested) const;

  EngineOptions options_;
  PhyCurveCache phy_cache_;
};

/// Merge per-point sweep results into one long-format table (scenario +
/// status columns before the workload's row schema). Failed points
/// contribute one '-' row and mark the merged status failed. Shared by
/// SimEngine::run_sweep and the ResultStore's resumable sweep.
[[nodiscard]] RunResult merge_sweep_results(const std::string& sweep_name,
                                            const std::string& workload,
                                            const std::vector<RunResult>& runs);

/// Print a run result (notes, then the table) — the shared output path
/// of the ported benches.
void print_result(std::ostream& os, const RunResult& result);

}  // namespace wi::sim

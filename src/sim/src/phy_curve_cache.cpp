#include "wi/sim/phy_curve_cache.hpp"

namespace wi::sim {

PhyCurveCache::CurvePtr PhyCurveCache::get(const PhyCurveKey& key) {
  std::promise<CurvePtr> promise;
  std::shared_future<CurvePtr> future;
  bool builder = false;
  std::size_t build_threads = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& entry : entries_) {
      if (entry.key == key) {
        ++hits_;
        future = entry.curve;
        break;
      }
    }
    if (!future.valid()) {
      ++misses_;
      future = promise.get_future().share();
      entries_.push_back({key, future});
      builder = true;
      build_threads = build_threads_;
    }
  }
  if (builder) {
    // Build outside the lock: curve construction is the slow part and
    // must not serialise builds of other keys.
    try {
      promise.set_value(std::make_shared<const core::PhyAbstraction>(
          key.receiver, key.bandwidth_hz, key.polarizations,
          build_threads));
    } catch (...) {
      // Evict before publishing the failure: current waiters see the
      // exception, but later requests rebuild instead of rethrowing a
      // stale (possibly transient) error forever.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < entries_.size(); ++i) {
          if (entries_[i].key == key) {
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t PhyCurveCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t PhyCurveCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t PhyCurveCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void PhyCurveCache::set_build_threads(std::size_t threads) {
  const std::lock_guard<std::mutex> lock(mutex_);
  build_threads_ = threads;
}

std::size_t PhyCurveCache::build_threads() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return build_threads_;
}

}  // namespace wi::sim

#include "wi/sim/phy_curve_cache.hpp"

namespace wi::sim {

PhyCurveCache::CurvePtr PhyCurveCache::get(const PhyCurveKey& key) {
  std::promise<CurvePtr> promise;
  std::shared_future<CurvePtr> future;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& entry : entries_) {
      if (entry.key == key) {
        ++hits_;
        future = entry.curve;
        break;
      }
    }
    if (!future.valid()) {
      ++misses_;
      future = promise.get_future().share();
      entries_.push_back({key, future});
      builder = true;
    }
  }
  if (builder) {
    // Build outside the lock: curve construction is the slow part and
    // must not serialise builds of other keys.
    try {
      promise.set_value(std::make_shared<const core::PhyAbstraction>(
          key.receiver, key.bandwidth_hz, key.polarizations));
    } catch (...) {
      // Evict before publishing the failure: current waiters see the
      // exception, but later requests rebuild instead of rethrowing a
      // stale (possibly transient) error forever.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < entries_.size(); ++i) {
          if (entries_[i].key == key) {
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t PhyCurveCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t PhyCurveCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t PhyCurveCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace wi::sim

#include "wi/sim/registry.hpp"

#include "wi/common/math.hpp"
#include "wi/sim/workload.hpp"
#include "wi/sim/workloads/adc_energy.hpp"
#include "wi/sim/workloads/fault_sweep.hpp"
#include "wi/sim/workloads/flit_sim.hpp"
#include "wi/sim/workloads/impulse_response.hpp"
#include "wi/sim/workloads/info_rates.hpp"

namespace wi::sim {

void ScenarioRegistry::add(ScenarioSpec spec) {
  const Status status = spec.validate();
  if (!status.is_ok()) throw StatusError(status);
  if (contains(spec.name)) {
    throw StatusError(Status(StatusCode::kInvalidSpec,
                             "duplicate scenario name '" + spec.name + "'"));
  }
  specs_.push_back(std::move(spec));
}

bool ScenarioRegistry::contains(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return true;
  }
  return false;
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return spec;
  }
  throw StatusError(Status(StatusCode::kInvalidSpec,
                           unknown_name_message("scenario", name, names())));
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.name);
  return out;
}

namespace {

[[nodiscard]] ScenarioSpec noc_scenario(std::string name,
                                        std::string description,
                                        TopologySpec topology) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.workload = "noc_latency";
  spec.noc.topology = topology;
  return spec;
}

[[nodiscard]] ScenarioRegistry build_paper_registry() {
  ScenarioRegistry registry;

  {
    ScenarioSpec spec;
    spec.name = "table1_link_budget";
    spec.description = "Table I link budget parameters + derived anchors";
    spec.workload = "link_budget_table";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fig01_pathloss";
    spec.description =
        "Fig. 1: pathloss vs distance, free space and copper boards";
    spec.workload = "pathloss_campaign";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fig04_tx_power";
    spec.description = "Fig. 4: required PTX vs target SNR, extreme links";
    spec.workload = "tx_power_sweep";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "quickstart_link_rate";
    spec.description =
        "Size the extreme board-to-board links and their PHY data rate";
    spec.workload = "link_rate";
    // Default receiver: the paper's 1-bit sequence detector (the
    // Monte-Carlo curve the PhyCurveCache exists for).
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "board_links_plan";
    spec.description =
        "Plan every adjacent-board link of a two-board 2x2-node system";
    spec.workload = "link_plan";
    spec.geometry.nodes_per_edge = 2;
    spec.phy.receiver = core::PhyReceiver::kOneBitSymbolwise;
    registry.add(spec);
  }

  // Fig. 8(a): 64 modules, three topologies.
  {
    TopologySpec mesh2d;
    mesh2d.kind = TopologySpec::Kind::kMesh2d;
    mesh2d.kx = 8;
    mesh2d.ky = 8;
    ScenarioSpec spec = noc_scenario(
        "fig08a_mesh2d_8x8", "Fig. 8(a): 8x8 2D mesh, uniform traffic",
        mesh2d);
    spec.noc.des_check_rate = 0.0;
    registry.add(spec);
  }
  {
    TopologySpec star;
    star.kind = TopologySpec::Kind::kStarMesh;
    star.kx = 4;
    star.ky = 4;
    star.concentration = 4;
    registry.add(noc_scenario("fig08a_star_mesh_4x4c4",
                              "Fig. 8(a): 4x4 star-mesh, concentration 4",
                              star));
  }
  {
    TopologySpec mesh3d;
    mesh3d.kind = TopologySpec::Kind::kMesh3d;
    mesh3d.kx = 4;
    mesh3d.ky = 4;
    mesh3d.kz = 4;
    ScenarioSpec spec = noc_scenario(
        "fig08a_mesh3d_4x4x4", "Fig. 8(a): 4x4x4 3D mesh, uniform traffic",
        mesh3d);
    spec.noc.des_check_rate = 0.3;  // flit-level cross-check as in bench
    registry.add(spec);
  }

  // Fig. 8(b): 512 modules.
  {
    TopologySpec mesh2d;
    mesh2d.kind = TopologySpec::Kind::kMesh2d;
    mesh2d.kx = 32;
    mesh2d.ky = 16;
    ScenarioSpec spec = noc_scenario("fig08b_mesh2d_32x16",
                                     "Fig. 8(b): 32x16 2D mesh (512 modules)",
                                     mesh2d);
    spec.noc.injection_rates = linspace(0.01, 0.7, 18);
    registry.add(spec);
  }
  {
    TopologySpec mesh3d;
    mesh3d.kind = TopologySpec::Kind::kMesh3d;
    mesh3d.kx = 8;
    mesh3d.ky = 8;
    mesh3d.kz = 8;
    ScenarioSpec spec = noc_scenario("fig08b_mesh3d_8x8x8",
                                     "Fig. 8(b): 8x8x8 3D mesh (512 modules)",
                                     mesh3d);
    spec.noc.injection_rates = linspace(0.01, 0.7, 18);
    registry.add(spec);
  }
  {
    TopologySpec star_irl;
    star_irl.kind = TopologySpec::Kind::kStarMeshIrl;
    star_irl.kx = 4;
    star_irl.ky = 4;
    star_irl.concentration = 4;
    star_irl.irl = 2;
    registry.add(noc_scenario(
        "ablation_star_mesh_irl",
        "Sec. IV: star-mesh with parallel inter-router links (sweep irl)",
        star_irl));
  }

  {
    ScenarioSpec spec;
    spec.name = "ablation_vertical_links";
    spec.description =
        "Sec. IV: 4-layer NiCS vertical-link density/technology base";
    spec.workload = "nics_stack";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "ablation_hybrid_system";
    spec.description =
        "Sec. VI: backplane bus vs direct wireless board-to-board links";
    spec.workload = "hybrid_system";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fig10_coding_plan";
    spec.description =
        "Fig. 10: LDPC-CC operating points under a latency budget";
    spec.workload = "coding_plan";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fig02_impulse_50mm";
    spec.description =
        "Fig. 2: impulse response at 50 mm, free space vs copper boards";
    spec.workload = "impulse_response";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fig03_impulse_150mm";
    spec.description =
        "Fig. 3: impulse response at 150 mm (diagonal link, rotated boards)";
    spec.workload = "impulse_response";
    auto& impulse = spec.payload<ImpulseSpec>();
    impulse.distance_m = 0.15;
    impulse.max_delay_ns = 2.0;
    impulse.seed = 23;
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fig05_isi_filters";
    spec.description =
        "Fig. 5: the four ISI filter designs for the 1-bit 5x-OS receiver";
    spec.workload = "isi_filters";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fig06_info_rates";
    spec.description =
        "Fig. 6: information rates of 4-ASK with 1-bit quantization";
    spec.workload = "info_rates";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "ablation_adc_energy";
    spec.description =
        "Sec. III: ADC energy per information bit across front-ends";
    spec.workload = "adc_energy";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "ablation_threshold_saturation";
    spec.description =
        "BEC threshold saturation of the (4,8) ensemble behind Fig. 10";
    spec.workload = "threshold_saturation";
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fig10_ldpc_latency";
    spec.description =
        "Fig. 10: required Eb/N0 vs decoding latency (Monte-Carlo BER)";
    spec.workload = "ldpc_latency";
    registry.add(spec);
  }

  // Campaign-sized stochastic scenarios: deliberately small Monte-Carlo
  // budgets so an 8-seed campaign stays in CI-friendly time. Their
  // statistical goldens live in results/golden/campaign/ and are
  // checked with `wi_run --seeds 8 --check-ci` (the campaign-check CI
  // job); the two families are the paper's stochastic quantities —
  // information rates from simulated bit sequences and flit-level DES
  // latency under random traffic.
  {
    ScenarioSpec spec;
    spec.name = "campaign_info_rates";
    spec.description =
        "Campaign family: Fig. 6 information rates, reduced Monte-Carlo "
        "budget for multi-seed statistics";
    spec.workload = "info_rates";
    auto& info_rate = spec.payload<InfoRateSpec>();
    info_rate.snr_lo_db = 0.0;
    info_rate.snr_hi_db = 30.0;
    info_rate.snr_step_db = 10.0;
    info_rate.mc_symbols = 6000;
    registry.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "campaign_adc_energy";
    spec.description =
        "Campaign family: Sec. III ADC energy per bit, reduced "
        "Monte-Carlo budget for multi-seed statistics";
    spec.workload = "adc_energy";
    spec.payload<AdcSpec>().mc_symbols = 6000;
    registry.add(spec);
  }
  {
    TopologySpec mesh2d;
    mesh2d.kind = TopologySpec::Kind::kMesh2d;
    mesh2d.kx = 8;
    mesh2d.ky = 8;
    ScenarioSpec spec = noc_scenario(
        "campaign_flit_mesh2d_8x8",
        "Campaign family: flit-level DES on the 8x8 2D mesh, uniform "
        "traffic (stochastic Fig. 8(a) counterpart)",
        mesh2d);
    spec.workload = "flit_sim";
    auto& flit = spec.payload<FlitSimSpec>();
    flit.warmup_cycles = 1000;
    flit.measure_cycles = 4000;
    registry.add(spec);
  }
  {
    TopologySpec star;
    star.kind = TopologySpec::Kind::kStarMesh;
    star.kx = 4;
    star.ky = 4;
    star.concentration = 4;
    ScenarioSpec spec = noc_scenario(
        "campaign_flit_star_mesh_4x4c4",
        "Campaign family: flit-level DES on the 4x4 star-mesh, "
        "concentration 4 (stochastic Fig. 8(a) counterpart)",
        star);
    spec.workload = "flit_sim";
    auto& flit = spec.payload<FlitSimSpec>();
    flit.warmup_cycles = 1000;
    flit.measure_cycles = 4000;
    registry.add(spec);
  }

  // Large-mesh DES: 4096 modules, intractable under the cycle-stepped
  // loop (every router every cycle) but minutes-to-seconds on the
  // event-wheel core, which only turns routers with pending work. The
  // golden pins the event core's behaviour at scale; rates stay below
  // the 16-ary mesh's bisection knee so the run drains and the numbers
  // are latency-meaningful.
  {
    TopologySpec mesh3d;
    mesh3d.kind = TopologySpec::Kind::kMesh3d;
    mesh3d.kx = 16;
    mesh3d.ky = 16;
    mesh3d.kz = 16;
    ScenarioSpec spec = noc_scenario(
        "flit_mesh3d_16x16x16",
        "Large-mesh DES: 16x16x16 3D mesh (4096 modules), uniform "
        "traffic on the event-wheel core",
        mesh3d);
    spec.workload = "flit_sim";
    auto& flit = spec.payload<FlitSimSpec>();
    flit.injection_rates = {0.01, 0.02, 0.04};
    flit.warmup_cycles = 500;
    flit.measure_cycles = 2000;
    flit.drain_cycles = 4000;
    registry.add(spec);
  }

  // Huge-mesh DES: 32768 routers. A dense traffic matrix/CDF alone
  // would be 32768^2 doubles (~8.6 GB) and the dense routing table
  // another gigabyte — this scenario only exists because the implicit
  // traffic mode samples destinations in closed form and the event core
  // computes dimension-ordered next-hops from mesh coordinates, keeping
  // setup memory O(routers). The golden doubles as the memory-scaling
  // regression anchor (CI runs it under a hard RSS ceiling).
  {
    TopologySpec mesh3d;
    mesh3d.kind = TopologySpec::Kind::kMesh3d;
    mesh3d.kx = 32;
    mesh3d.ky = 32;
    mesh3d.kz = 32;
    ScenarioSpec spec = noc_scenario(
        "flit_mesh3d_32x32x32",
        "Huge-mesh DES: 32x32x32 3D mesh (32768 modules), implicit "
        "uniform traffic and computed mesh routing (O(routers) memory)",
        mesh3d);
    spec.workload = "flit_sim";
    spec.noc.traffic_mode = TrafficMode::kImplicit;
    auto& flit = spec.payload<FlitSimSpec>();
    flit.injection_rates = {0.005, 0.01};
    flit.warmup_cycles = 500;
    flit.measure_cycles = 2000;
    flit.drain_cycles = 4000;
    registry.add(spec);
  }

  // Analytic-pattern DES scenarios: hotspot and transpose on a 16x16
  // mesh, sampled through the implicit pattern layer (no dense matrix).
  {
    TopologySpec mesh2d;
    mesh2d.kind = TopologySpec::Kind::kMesh2d;
    mesh2d.kx = 16;
    mesh2d.ky = 16;
    ScenarioSpec spec = noc_scenario(
        "flit_hotspot_mesh2d_16x16",
        "Flit-level DES on the 16x16 2D mesh, implicit hotspot traffic "
        "(10% of load directed at the central module)",
        mesh2d);
    spec.workload = "flit_sim";
    spec.noc.traffic = TrafficKind::kHotspot;
    spec.noc.traffic_mode = TrafficMode::kImplicit;
    spec.noc.hotspot_module = 136;  // router (8, 8): mesh centre
    spec.noc.hotspot_fraction = 0.1;
    auto& flit = spec.payload<FlitSimSpec>();
    flit.injection_rates = {0.01, 0.02};
    flit.warmup_cycles = 1000;
    flit.measure_cycles = 4000;
    registry.add(spec);
  }
  {
    TopologySpec mesh2d;
    mesh2d.kind = TopologySpec::Kind::kMesh2d;
    mesh2d.kx = 16;
    mesh2d.ky = 16;
    ScenarioSpec spec = noc_scenario(
        "flit_transpose_mesh2d_16x16",
        "Flit-level DES on the 16x16 2D mesh, implicit transpose "
        "permutation traffic (module i -> i + 128 mod 256)",
        mesh2d);
    spec.workload = "flit_sim";
    spec.noc.traffic = TrafficKind::kTranspose;
    spec.noc.traffic_mode = TrafficMode::kImplicit;
    auto& flit = spec.payload<FlitSimSpec>();
    flit.injection_rates = {0.02, 0.05};
    flit.warmup_cycles = 1000;
    flit.measure_cycles = 4000;
    registry.add(spec);
  }

  // Plugin-only workloads (registered purely through the workload
  // layer; the engine and the codec never name them).
  {
    TopologySpec mesh2d;
    mesh2d.kind = TopologySpec::Kind::kMesh2d;
    mesh2d.kx = 8;
    mesh2d.ky = 8;
    ScenarioSpec spec = noc_scenario(
        "noc_saturation_mesh2d_8x8",
        "Saturation sweep of the 8x8 2D mesh: latency-vs-load knee",
        mesh2d);
    spec.workload = "noc_saturation";
    registry.add(spec);
  }
  {
    TopologySpec star;
    star.kind = TopologySpec::Kind::kStarMesh;
    star.kx = 4;
    star.ky = 4;
    star.concentration = 4;
    ScenarioSpec spec = noc_scenario(
        "noc_saturation_star_mesh_4x4c4",
        "Saturation sweep of the 4x4 star-mesh (concentration 4): "
        "latency-vs-load knee",
        star);
    spec.workload = "noc_saturation";
    registry.add(spec);
  }
  // Failure-injection sweeps: the Fig. 8(a) topologies under scheduled
  // link/router deaths with reroute (ROADMAP scenario-diversity item).
  {
    TopologySpec mesh2d;
    mesh2d.kind = TopologySpec::Kind::kMesh2d;
    mesh2d.kx = 8;
    mesh2d.ky = 8;
    ScenarioSpec spec = noc_scenario(
        "fault_sweep_mesh2d_8x8",
        "Failure sweep of the 8x8 2D mesh: latency/throughput degradation "
        "vs link/router failure rate under rerouting",
        mesh2d);
    spec.workload = "fault_sweep";
    registry.add(spec);
  }
  {
    TopologySpec star;
    star.kind = TopologySpec::Kind::kStarMesh;
    star.kx = 4;
    star.ky = 4;
    star.concentration = 4;
    ScenarioSpec spec = noc_scenario(
        "fault_sweep_star_mesh_4x4c4",
        "Failure sweep of the 4x4 star-mesh (concentration 4): central "
        "routers are high-value targets, so degradation is steeper",
        star);
    spec.workload = "fault_sweep";
    registry.add(spec);
  }
  {
    TopologySpec mesh2d;
    mesh2d.kind = TopologySpec::Kind::kMesh2d;
    mesh2d.kx = 8;
    mesh2d.ky = 8;
    ScenarioSpec spec = noc_scenario(
        "campaign_fault_mesh2d_8x8",
        "Campaign family: failure sweep of the 8x8 2D mesh across "
        "failure seeds (statistical degradation envelope)",
        mesh2d);
    spec.workload = "fault_sweep";
    auto& sweep = spec.payload<FaultSweepSpec>();
    sweep.fail_rates = {0.0, 0.05, 0.15};
    sweep.measure_cycles = 3000;
    sweep.drain_cycles = 6000;
    registry.add(spec);
  }

  {
    ScenarioSpec spec;
    spec.name = "link_margin_map";
    spec.description =
        "Per-link SNR margin of the two-board 2x2-node geometry vs the "
        "planning target and the 100 Gbit/s receiver requirement";
    spec.workload = "link_margin_map";
    spec.geometry.nodes_per_edge = 2;
    spec.phy.receiver = core::PhyReceiver::kOneBitSymbolwise;
    registry.add(spec);
  }

  return registry;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::paper() {
  static const ScenarioRegistry registry = build_paper_registry();
  return registry;
}

}  // namespace wi::sim

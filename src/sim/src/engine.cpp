#include "wi/sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <ostream>
#include <thread>
#include <utility>

#include "wi/comm/adc.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/common/math.hpp"
#include "wi/core/coding_planner.hpp"
#include "wi/fec/ber.hpp"
#include "wi/fec/density_evolution.hpp"
#include "wi/core/geometry.hpp"
#include "wi/core/hybrid_system.hpp"
#include "wi/core/link_planner.hpp"
#include "wi/core/nics_stack.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/noc/metrics.hpp"
#include "wi/noc/queueing_model.hpp"
#include "wi/rf/antenna.hpp"
#include "wi/rf/campaign.hpp"
#include "wi/rf/channel.hpp"
#include "wi/rf/pathloss.hpp"
#include "wi/rf/vna.hpp"

namespace wi::sim {

namespace {

using core::BoardGeometry;

[[nodiscard]] noc::TrafficPattern build_traffic(const NocSpec& spec,
                                                std::size_t modules) {
  switch (spec.traffic) {
    case TrafficKind::kUniform:
      return noc::TrafficPattern::uniform(modules);
    case TrafficKind::kTranspose:
      return noc::TrafficPattern::transpose(modules);
    case TrafficKind::kBitComplement:
      return noc::TrafficPattern::bit_complement(modules);
    case TrafficKind::kHotspot:
      return noc::TrafficPattern::hotspot(modules, spec.hotspot_module,
                                          spec.hotspot_fraction);
  }
  throw StatusError(
      Status(StatusCode::kUnsupported, "unknown traffic kind"));
}

[[nodiscard]] std::unique_ptr<noc::Routing> build_routing(RoutingKind kind) {
  if (kind == RoutingKind::kShortestPath) {
    return std::make_unique<noc::ShortestPathRouting>();
  }
  return std::make_unique<noc::DimensionOrderRouting>();
}

void run_link_budget_table(const ScenarioSpec& spec, RunResult& result) {
  const rf::LinkBudget budget(spec.link.budget);
  const auto& p = budget.params();
  auto row = [&](const char* name, const char* unit, double value,
                 int decimals, const char* paper) {
    result.table.add_row({name, unit, Table::num(value, decimals), paper});
  };
  row("RX noise figure", "dB", p.rx_noise_figure_db, 1, "10");
  row("Path loss exponent", "-", p.path_loss_exponent, 1, "2");
  row("Path loss shortest link 0.1m", "dB",
      budget.path_loss_db(rf::kShortestLink_m), 1, "59.8");
  row("Path loss largest link 0.3m", "dB",
      budget.path_loss_db(rf::kLongestLink_m), 1, "69.3");
  row("Array gain", "dB", p.array_gain_db, 1, "12");
  row("Butler matrix inaccuracy", "dB", p.butler_inaccuracy_db, 1, "5");
  row("Polarization mismatch", "dB", p.polarization_mismatch_db, 1, "3");
  row("Implementation loss", "dB", p.implementation_loss_db, 1, "5");
  row("RX temperature", "K", p.rx_temperature_k, 0, "323");
  result.notes.push_back("noise power over " +
                         Table::num(p.bandwidth_hz / 1e9, 1) + " GHz: " +
                         Table::num(budget.noise_power_dbm(), 2) + " dBm");
  const rf::PlanarArray array(4, 4);
  result.notes.push_back("4x4 array broadside gain: " +
                         Table::num(array.broadside_gain_dbi(), 2) +
                         " dBi (paper: 12)");
  const rf::ButlerMatrixBeamformer butler(array, 4);
  result.notes.push_back("Butler worst-case mismatch: " +
                         Table::num(butler.worst_case_mismatch_db(), 2) +
                         " dB (paper budget: 5)");
}

void run_pathloss_campaign(const ScenarioSpec& spec, RunResult& result) {
  rf::CampaignConfig freespace;
  freespace.distances_m = rf::default_distance_grid_m();
  freespace.copper_boards = false;
  freespace.vna.seed = spec.pathloss.seed;
  const auto points_free = rf::run_campaign(freespace);
  const auto fit_free = rf::fit_path_loss(points_free, 0.05);

  rf::CampaignConfig copper = freespace;
  copper.copper_boards = true;
  const auto points_copper = rf::run_campaign(copper);
  const auto fit_copper = rf::fit_path_loss(points_copper, 0.05);

  const rf::PathLossModel model_free =
      rf::PathLossModel::free_space(spec.link.budget.carrier_freq_hz);
  const rf::PathLossModel model_copper(fit_copper.reference_loss_db,
                                       fit_copper.exponent, 0.05);
  for (std::size_t i = 0; i < points_free.size(); ++i) {
    const double d = points_free[i].distance_m;
    const double pl_free = model_free.loss_db(d);
    result.table.add_row({Table::num(d * 1e3, 0), Table::num(pl_free, 2),
                          Table::num(points_free[i].pathloss_db, 2),
                          Table::num(model_copper.loss_db(d), 2),
                          Table::num(points_copper[i].pathloss_db, 2),
                          // Fig. 1 reference lines: free-space PL minus
                          // 2x9.5 dB horn gain / 2x12 dB array gain.
                          Table::num(pl_free - 19.0, 2),
                          Table::num(pl_free - 24.0, 2)});
  }
  result.notes.push_back("fitted exponent free space: n = " +
                         Table::num(fit_free.exponent, 4) +
                         " (paper: 2.000)");
  result.notes.push_back("fitted exponent copper boards: n = " +
                         Table::num(fit_copper.exponent, 4) +
                         " (paper: 2.0454)");
}

void run_tx_power_sweep(const ScenarioSpec& spec, RunResult& result) {
  const rf::LinkBudget budget(spec.link.budget);
  const TxPowerSpec& tx = spec.tx_power;
  for (double snr = tx.snr_lo_db; snr <= tx.snr_hi_db + 1e-9;
       snr += tx.snr_step_db) {
    result.table.add_row(
        {Table::num(snr, 1),
         Table::num(budget.required_tx_power_dbm(snr, tx.shortest_m, false),
                    2),
         Table::num(budget.required_tx_power_dbm(snr, tx.longest_m, false),
                    2),
         Table::num(budget.required_tx_power_dbm(snr, tx.longest_m, true),
                    2)});
  }
  result.notes.push_back(
      "100 Gbit/s at ~2 bit/s/Hz needs SNR ~4.77 dB -> PTX " +
      Table::num(budget.required_tx_power_dbm(4.77, tx.longest_m, true), 2) +
      " dBm on the worst link");
}

void run_link_rate(const ScenarioSpec& spec, PhyCurveCache& cache,
                   RunResult& result) {
  const rf::LinkBudget budget(spec.link.budget);
  const auto curve = cache.get(spec.phy.receiver, spec.phy.bandwidth_hz,
                               spec.phy.polarizations);
  const BoardGeometry geometry(spec.geometry.boards,
                               spec.geometry.board_size_mm,
                               spec.geometry.separation_mm,
                               spec.geometry.nodes_per_edge);
  const bool butler =
      spec.link.beamforming == core::Beamforming::kButlerMatrix;
  const bool dual_pol = spec.phy.polarizations >= 2;
  struct Case {
    const char* name;
    double distance_m;
    bool mismatch;
  };
  const Case cases[] = {
      {"ahead", geometry.shortest_link_mm() / 1e3, false},
      {"diagonal", geometry.longest_link_mm() / 1e3, butler},
      // Table I's 300 mm worst-case link (larger rack scenario).
      {"table1_worst", rf::kLongestLink_m, butler},
  };
  for (const Case& c : cases) {
    const double snr = budget.snr_db(spec.link.ptx_dbm, c.distance_m,
                                     c.mismatch);
    result.table.add_row(
        {c.name, Table::num(c.distance_m, 3),
         Table::num(spec.link.ptx_dbm, 1), Table::num(snr, 2),
         Table::num(curve->link_rate_gbps(snr), 2),
         Table::num(budget.shannon_rate_bps(snr, dual_pol) / 1e9, 2)});
  }
  result.notes.push_back(
      "PTX for " + Table::num(spec.link.target_snr_db, 1) +
      " dB SNR on the 300 mm worst-case link: " +
      Table::num(budget.required_tx_power_dbm(spec.link.target_snr_db,
                                              rf::kLongestLink_m, butler),
                 2) +
      " dBm");
  const double snr_100g = curve->required_snr_db(100.0);
  result.notes.push_back(
      std::isinf(snr_100g)
          ? std::string("100 Gbit/s unreachable with this receiver")
          : "SNR for 100 Gbit/s: " + Table::num(snr_100g, 2) + " dB");
}

void run_link_plan(const ScenarioSpec& spec, PhyCurveCache& cache,
                   RunResult& result) {
  const core::WirelessLinkPlanner planner(spec.link.budget,
                                          spec.link.beamforming);
  const auto curve = cache.get(spec.phy.receiver, spec.phy.bandwidth_hz,
                               spec.phy.polarizations);
  const BoardGeometry geometry(spec.geometry.boards,
                               spec.geometry.board_size_mm,
                               spec.geometry.separation_mm,
                               spec.geometry.nodes_per_edge);
  const auto links = planner.plan(geometry, spec.link.ptx_dbm,
                                  spec.link.target_snr_db);
  double min_rate = std::numeric_limits<double>::infinity();
  double max_rate = 0.0;
  for (const auto& link : links) {
    const double phy_rate = curve->link_rate_gbps(link.snr_db);
    min_rate = std::min(min_rate, phy_rate);
    max_rate = std::max(max_rate, phy_rate);
    result.table.add_row(
        {Table::num(static_cast<long long>(link.src_node)),
         Table::num(static_cast<long long>(link.dst_node)),
         Table::num(link.distance_mm, 1),
         Table::num(link.steering_angle_deg, 1),
         Table::num(link.required_ptx_dbm, 2), Table::num(link.snr_db, 2),
         Table::num(phy_rate, 2)});
  }
  result.notes.push_back(
      links.empty()
          ? std::string("no adjacent-board links in this geometry")
          : Table::num(static_cast<long long>(links.size())) +
                " adjacent-board links planned; PHY rate " +
                Table::num(min_rate, 1) + " - " + Table::num(max_rate, 1) +
                " Gbit/s");
}

void run_noc_latency(const ScenarioSpec& spec, RunResult& result) {
  const noc::Topology topology = spec.noc.topology.build();
  const auto routing = build_routing(spec.noc.routing);
  const noc::TrafficPattern traffic =
      build_traffic(spec.noc, topology.module_count());
  const noc::QueueingModel model(topology, *routing, traffic,
                                 spec.noc.model);
  std::vector<double> rates = spec.noc.injection_rates;
  if (rates.empty()) rates = linspace(0.01, 0.8, 21);
  for (const double rate : rates) {
    const auto perf = model.evaluate(rate);
    result.table.add_row(
        {Table::num(rate, 3),
         perf.saturated ? std::string("sat")
                        : Table::num(perf.mean_latency_cycles, 2),
         Table::num(perf.max_channel_load, 3),
         perf.saturated ? "yes" : "no"});
  }
  result.notes.push_back("topology: " + topology.name());
  result.notes.push_back(
      "zero-load latency: " + Table::num(model.zero_load_latency_cycles(), 2) +
      " cycles; saturation: " + Table::num(model.saturation_rate(), 3) +
      " flits/cycle/module");
  const double area = noc::total_router_crossbar_area(topology);
  result.notes.push_back(
      "crossbar area proxy: " + Table::num(area, 0) + " (" +
      Table::num(area / static_cast<double>(topology.router_count()), 1) +
      " per router)");
  if (spec.noc.des_check_rate > 0.0) {
    noc::FlitSimConfig sim;
    sim.warmup_cycles = 2000;
    sim.measure_cycles = 8000;
    sim.seed = spec.noc.des_seed;
    const auto des = simulate_network(topology, *routing, traffic,
                                      spec.noc.des_check_rate, sim);
    result.notes.push_back(
        "DES cross-check @ " + Table::num(spec.noc.des_check_rate, 2) + ": " +
        Table::num(des.mean_latency_cycles, 2) + " cycles vs analytic " +
        Table::num(model.evaluate(spec.noc.des_check_rate)
                       .mean_latency_cycles,
                   2));
  }
}

void run_flit_sim(const ScenarioSpec& spec, RunResult& result) {
  const noc::Topology topology = spec.noc.topology.build();
  const auto routing = build_routing(spec.noc.routing);
  const noc::TrafficPattern traffic =
      build_traffic(spec.noc, topology.module_count());
  noc::FlitSimConfig config;
  config.warmup_cycles = spec.flit.warmup_cycles;
  config.measure_cycles = spec.flit.measure_cycles;
  config.drain_cycles = spec.flit.drain_cycles;
  config.buffer_depth = spec.flit.buffer_depth;
  config.seed = spec.flit.seed;
  std::vector<double> rates = spec.flit.injection_rates;
  if (rates.empty()) rates = {0.05, 0.1, 0.15, 0.2};
  for (const double rate : rates) {
    const auto des =
        simulate_network(topology, *routing, traffic, rate, config);
    result.table.add_row(
        {Table::num(rate, 3), Table::num(des.mean_latency_cycles, 4),
         Table::num(des.delivered_per_cycle, 5),
         Table::num(static_cast<long long>(des.delivered)),
         Table::num(static_cast<long long>(des.injected)),
         des.stable ? "yes" : "no"});
  }
  result.notes.push_back("topology: " + topology.name());
  result.notes.push_back(
      "DES window: " + Table::num(static_cast<long long>(
                           spec.flit.measure_cycles)) +
      " cycles after " +
      Table::num(static_cast<long long>(spec.flit.warmup_cycles)) +
      " warmup, seed " + Table::num(static_cast<long long>(spec.flit.seed)));
}

void run_nics_stack(const ScenarioSpec& spec, RunResult& result) {
  const core::NicsStackModel model(spec.nics.config);
  const auto eval = model.evaluate();
  const auto params = core::vertical_link_params(spec.nics.config.tech);
  result.table.add_row(
      {params.name,
       Table::num(static_cast<long long>(spec.nics.config.vertical_period)),
       Table::num(eval.vertical_link_count, 0),
       Table::num(eval.area_cost, 0),
       Table::num(eval.zero_load_latency_cycles, 2),
       Table::num(eval.saturation_rate, 3)});
}

void run_hybrid_system(const ScenarioSpec& spec, RunResult& result) {
  const core::HybridSystemModel model(spec.hybrid.config);
  const auto cmp = model.compare();
  const auto& c = spec.hybrid.config;
  result.table.add_row({Table::num(c.inter_board_fraction, 2),
                        Table::num(c.wireless_node_fraction, 2),
                        Table::num(cmp.backplane.saturation_rate, 3),
                        Table::num(cmp.wireless.saturation_rate, 3),
                        Table::num(cmp.capacity_gain, 2),
                        Table::num(cmp.backplane.zero_load_latency_cycles, 2),
                        Table::num(cmp.wireless.zero_load_latency_cycles, 2),
                        Table::num(cmp.latency_gain, 2)});
}

void run_coding_plan(const ScenarioSpec& spec, RunResult& result) {
  const core::CodingPlanner planner = core::CodingPlanner::paper_table();
  for (const double budget : spec.coding.latency_budgets_bits) {
    const core::CodingPoint* best = planner.best_within_latency(budget);
    if (best == nullptr) {
      result.table.add_row(
          {Table::num(budget, 0), "none", "-", "-", "-", "-"});
      continue;
    }
    result.table.add_row(
        {Table::num(budget, 0), best->block_code ? "LDPC-BC" : "LDPC-CC",
         Table::num(static_cast<long long>(best->lifting)),
         best->block_code
             ? std::string("-")
             : Table::num(static_cast<long long>(best->window)),
         Table::num(best->latency_info_bits, 0),
         Table::num(best->required_ebn0_db, 2)});
  }
  result.notes.push_back(
      "latency gain vs best block code at " +
      Table::num(spec.coding.ebn0_db, 1) + " dB: " +
      Table::num(planner.latency_gain_vs_block_bits(spec.coding.ebn0_db), 0) +
      " info bits");
  const double replan_budget = spec.coding.latency_budgets_bits.back();
  const core::CodingPoint* replanned = planner.best_window_for_lifting(
      spec.coding.deployed_lifting, replan_budget);
  if (replanned != nullptr) {
    result.notes.push_back(
        "deployed N=" +
        Table::num(static_cast<long long>(spec.coding.deployed_lifting)) +
        " replanned within " + Table::num(replan_budget, 0) + " bits: W=" +
        Table::num(static_cast<long long>(replanned->window)) + " at " +
        Table::num(replanned->required_ebn0_db, 2) + " dB");
  }
}

void run_impulse_response(const ScenarioSpec& spec, RunResult& result) {
  const ImpulseSpec& imp = spec.impulse;
  rf::VnaConfig vna_config;
  vna_config.seed = imp.seed;
  const auto measure = [&](bool copper_boards) {
    rf::BoardToBoardScenario scenario;
    scenario.distance_m = imp.distance_m;
    scenario.copper_boards = copper_boards;
    const rf::MultipathChannel channel =
        rf::board_to_board_channel(scenario);
    // A fresh instrument per environment: both measurements see the
    // same noise realisation, like re-seeding the testbed campaign.
    rf::SyntheticVna vna(vna_config);
    const rf::ImpulseResponse ir = rf::to_impulse_response(vna.measure(channel));
    const char* label = copper_boards ? "copper" : "freespace";
    for (const auto& tap : channel.taps()) {
      result.notes.push_back(
          std::string(label) + " tap '" + tap.label + "': delay " +
          Table::num(tap.delay_s * 1e9, 3) + " ns, rel LoS " +
          Table::num(tap.gain_db - channel.strongest_tap_db(), 1) + " dB");
    }
    result.notes.push_back(
        std::string(label) + " worst reflection: " +
        Table::num(rf::worst_reflection_rel_db(ir, 6), 1) +
        " dB rel LoS (paper: <= -15 dB)");
    return ir;
  };
  const rf::ImpulseResponse free_space = measure(false);
  const rf::ImpulseResponse copper = measure(true);
  for (std::size_t i = 0; i < free_space.delay_s.size();
       i += imp.decimation) {
    if (free_space.delay_s[i] > imp.max_delay_ns * 1e-9) break;
    result.table.add_row({Table::num(free_space.delay_s[i] * 1e9, 3),
                          Table::num(free_space.magnitude_db[i], 1),
                          Table::num(copper.magnitude_db[i], 1)});
  }
}

void run_isi_filters(const ScenarioSpec& spec, RunResult& result) {
  using comm::IsiFilter;
  const IsiSpec& isi = spec.isi;
  const comm::Constellation c4 = comm::Constellation::ask(4);
  comm::FilterDesignOptions options;
  options.design_snr_db = isi.design_snr_db;
  struct Design {
    const char* name;
    IsiFilter filter;
  };
  const std::vector<Design> designs = {
      {"rectangular", IsiFilter::rectangular(5)},
      {"optimal_symbolwise",
       isi.reoptimize ? comm::optimize_filter_symbolwise(c4, options)
                      : comm::paper_filter_symbolwise()},
      {"optimal_sequence",
       isi.reoptimize ? comm::optimize_filter_sequence(c4, options)
                      : comm::paper_filter_sequence()},
      {"suboptimal",
       isi.reoptimize ? comm::design_filter_suboptimal(c4, options)
                      : comm::paper_filter_suboptimal()},
  };
  for (const Design& design : designs) {
    const auto& taps = design.filter.taps();
    const double m =
        static_cast<double>(design.filter.samples_per_symbol());
    for (std::size_t i = 0; i < taps.size(); ++i) {
      result.table.add_row({design.name,
                            Table::num(static_cast<double>(i) / m, 2),
                            Table::num(taps[i], 4)});
    }
    const comm::OneBitOsChannel channel(design.filter, c4,
                                        isi.design_snr_db);
    result.notes.push_back(
        std::string(design.name) + ": symbolwise MI @" +
        Table::num(isi.design_snr_db, 0) + " dB " +
        Table::num(comm::mi_one_bit_symbolwise(channel), 3) +
        " bpcu; sequence IR " +
        Table::num(comm::info_rate_one_bit_sequence(
                       channel, {isi.mc_symbols, isi.mc_seed}),
                   3) +
        " bpcu; unique detection: " +
        (comm::is_uniquely_detectable(design.filter, c4) ? "yes" : "no"));
  }
}

void run_info_rates(const ScenarioSpec& spec, RunResult& result) {
  using namespace wi::comm;
  const InfoRateSpec& ir = spec.info_rate;
  const Constellation c4 = Constellation::ask(4);
  const IsiFilter rect = IsiFilter::rectangular(5);
  const IsiFilter f_seq = paper_filter_sequence();
  const IsiFilter f_sym = paper_filter_symbolwise();
  const IsiFilter f_sub = paper_filter_suboptimal();
  const SequenceRateOptions mc{ir.mc_symbols, ir.mc_seed};
  for (double snr = ir.snr_lo_db; snr <= ir.snr_hi_db + 1e-9;
       snr += ir.snr_step_db) {
    const OneBitOsChannel ch_seq(f_seq, c4, snr);
    const OneBitOsChannel ch_sym(f_sym, c4, snr);
    const OneBitOsChannel ch_rect(rect, c4, snr);
    const OneBitOsChannel ch_sub(f_sub, c4, snr);
    result.table.add_row(
        {Table::num(snr, 1),
         Table::num(info_rate_one_bit_sequence(ch_seq, mc), 3),
         Table::num(mi_one_bit_symbolwise(ch_sym), 3),
         Table::num(info_rate_one_bit_sequence(ch_rect, mc), 3),
         Table::num(mi_one_bit_no_oversampling(c4, snr), 3),
         Table::num(mi_unquantized_matched_filter(c4, snr, 5), 3),
         Table::num(info_rate_one_bit_sequence(ch_sub, mc), 3)});
  }
  result.notes.push_back(
      "expected: no-quantization -> 2 bpcu; 1bit no-OS -> 1 bpcu; "
      "optimised ISI + sequence detection recovers most of the gap");
}

void run_adc_energy(const ScenarioSpec& spec, RunResult& result) {
  using namespace wi::comm;
  const AdcSpec& a = spec.adc;
  const Constellation c4 = Constellation::ask(4);
  const AdcModel adc{a.walden_fom_fj * 1e-15};
  const OneBitOsChannel seq(paper_filter_sequence(), c4, a.snr_db);
  const double rate_1bit_os =
      info_rate_one_bit_sequence(seq, {a.mc_symbols, a.mc_seed});
  const std::vector<ReceiverOption> options = {
      {"1-bit, 5x OS, seq. detection", 1, 5, rate_1bit_os},
      {"1-bit, Nyquist", 1, 1, mi_one_bit_no_oversampling(c4, a.snr_db)},
      {"2-bit, Nyquist", 2, 1,
       mi_quantized_awgn(c4, UniformQuantizer(2), a.snr_db)},
      {"3-bit, Nyquist", 3, 1,
       mi_quantized_awgn(c4, UniformQuantizer(3), a.snr_db)},
      {"4-bit, Nyquist", 4, 1,
       mi_quantized_awgn(c4, UniformQuantizer(4), a.snr_db)},
      {"8-bit, Nyquist", 8, 1, mi_unquantized_awgn(c4, a.snr_db)},
  };
  for (const auto& option : options) {
    const double sample_rate =
        a.symbol_rate_hz * static_cast<double>(option.oversampling);
    const double throughput =
        option.info_rate_bpcu * a.symbol_rate_hz / 1e9;
    result.table.add_row(
        {option.name, Table::num(sample_rate / 1e9, 0),
         Table::num(option.info_rate_bpcu, 3), Table::num(throughput, 1),
         Table::num(adc.power_w(option.adc_bits, sample_rate) * 1e3, 3),
         Table::num(
             adc_energy_per_bit_j(adc, option, a.symbol_rate_hz) * 1e12,
             4)});
  }
  result.notes.push_back(
      "the 1-bit 5x-OS receiver delivers near-ideal throughput at a "
      "fraction of the 8-bit converter's ADC energy per bit (Sec. III)");
}

void run_threshold_saturation(const ScenarioSpec& spec, RunResult& result) {
  using namespace wi::fec;
  const SaturationSpec& sat = spec.saturation;
  const BaseMatrix block({{4, 4}});
  const EdgeSpreading spreading = EdgeSpreading::paper_example();
  const double block_threshold =
      bec_threshold(block, sat.threshold_tolerance);
  for (const std::size_t termination : sat.terminations) {
    const double threshold =
        coupled_bec_threshold(spreading, termination, sat.threshold_tolerance);
    const double rate = 1.0 - static_cast<double>(termination + 2) /
                                  (2.0 * static_cast<double>(termination));
    result.table.add_row({Table::num(static_cast<long long>(termination)),
                          Table::num(threshold, 4),
                          Table::num(threshold - block_threshold, 4),
                          Table::num(rate, 4), Table::num(0.5 - rate, 4)});
  }
  result.notes.push_back("block ensemble B=[4,4] BP threshold: " +
                         Table::num(block_threshold, 4) +
                         " (literature: 0.3834; MAP: ~0.4977)");
}

void run_ldpc_latency(const ScenarioSpec& spec, RunResult& result) {
  using namespace wi::fec;
  const LdpcLatencySpec& l = spec.ldpc;
  BpOptions bp;
  bp.max_iterations = l.max_bp_iterations;
  for (const LdpcCurveSpec& curve : l.cc_curves) {
    const std::size_t n = curve.lifting;
    const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), n,
                                     l.termination, /*seed=*/n);
    for (std::size_t w = curve.window_lo; w <= curve.window_hi; ++w) {
      const auto simulate = [&](double ebn0) {
        BerConfig config;
        config.ebn0_db = ebn0;
        config.min_errors = l.min_errors;
        config.max_codewords = l.max_codewords;
        config.seed = 1000 + n + w;
        config.bp = bp;
        return simulate_ber_window(code, w, config);
      };
      const double ebn0 =
          required_ebn0_db(simulate, l.target_ber, l.search_lo_db,
                           l.search_hi_db, l.search_step_db);
      result.table.add_row(
          {"LDPC-CC", Table::num(static_cast<long long>(n)),
           Table::num(static_cast<long long>(w)),
           Table::num(window_decoder_latency_bits(w, n, code.nv(),
                                                  code.rate_asymptotic()),
                      0),
           Table::num(ebn0, 2)});
    }
  }
  for (const std::size_t n : l.bc_liftings) {
    const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), n, /*seed=*/n);
    const auto simulate = [&](double ebn0) {
      BerConfig config;
      config.ebn0_db = ebn0;
      config.min_errors = l.min_errors;
      config.max_codewords = l.max_codewords;
      config.seed = 2000 + n;
      config.bp = bp;
      return simulate_ber_block(code, config);
    };
    const double ebn0 =
        required_ebn0_db(simulate, l.target_ber, l.search_lo_db,
                         l.search_hi_db, l.search_step_db);
    result.table.add_row({"LDPC-BC", Table::num(static_cast<long long>(n)),
                          "-", Table::num(block_code_latency_bits(n, 2, 0.5), 0),
                          Table::num(ebn0, 2)});
  }
  result.notes.push_back(
      "target BER " + Table::num(l.target_ber, 6) + ", min_errors " +
      Table::num(static_cast<long long>(l.min_errors)) +
      ", max_codewords " +
      Table::num(static_cast<long long>(l.max_codewords)) +
      "; required Eb/N0 falls with W and N, and at equal latency the "
      "LDPC-CC needs less Eb/N0 than the LDPC-BC it is derived from");
}

void execute(const ScenarioSpec& spec, PhyCurveCache& cache,
             RunResult& result) {
  switch (spec.workload) {
    case Workload::kLinkBudgetTable:
      return run_link_budget_table(spec, result);
    case Workload::kPathlossCampaign:
      return run_pathloss_campaign(spec, result);
    case Workload::kTxPowerSweep:
      return run_tx_power_sweep(spec, result);
    case Workload::kLinkRate:
      return run_link_rate(spec, cache, result);
    case Workload::kLinkPlan:
      return run_link_plan(spec, cache, result);
    case Workload::kNocLatency:
      return run_noc_latency(spec, result);
    case Workload::kNicsStack:
      return run_nics_stack(spec, result);
    case Workload::kHybridSystem:
      return run_hybrid_system(spec, result);
    case Workload::kCodingPlan:
      return run_coding_plan(spec, result);
    case Workload::kImpulseResponse:
      return run_impulse_response(spec, result);
    case Workload::kIsiFilters:
      return run_isi_filters(spec, result);
    case Workload::kInfoRates:
      return run_info_rates(spec, result);
    case Workload::kAdcEnergy:
      return run_adc_energy(spec, result);
    case Workload::kThresholdSaturation:
      return run_threshold_saturation(spec, result);
    case Workload::kLdpcLatency:
      return run_ldpc_latency(spec, result);
    case Workload::kFlitSim:
      return run_flit_sim(spec, result);
  }
  throw StatusError(Status(StatusCode::kUnsupported, "unknown workload"));
}

}  // namespace

std::vector<std::string> workload_headers(Workload workload) {
  switch (workload) {
    case Workload::kLinkBudgetTable:
      return {"parameter", "unit", "value", "paper"};
    case Workload::kPathlossCampaign:
      return {"dist_mm", "model_free_dB", "meas_free_dB", "model_copper_dB",
              "meas_copper_dB", "free+2x9.5dB", "free+2x12dB"};
    case Workload::kTxPowerSweep:
      return {"SNR_dB", "shortest_dBm", "longest_dBm", "longest_butler_dBm"};
    case Workload::kLinkRate:
      return {"link", "distance_m", "ptx_dbm", "snr_db", "phy_rate_gbps",
              "shannon_gbps"};
    case Workload::kLinkPlan:
      return {"src", "dst", "distance_mm", "angle_deg", "reqd_ptx_dbm",
              "snr_db", "phy_rate_gbps"};
    case Workload::kNocLatency:
      return {"inj_rate", "latency_cycles", "max_channel_load", "saturated"};
    case Workload::kNicsStack:
      return {"tech", "period", "vertical_links", "area_cost", "lat0_cycles",
              "saturation"};
    case Workload::kHybridSystem:
      return {"inter_frac", "equipped_frac", "backplane_sat", "wireless_sat",
              "capacity_gain", "backplane_lat0", "wireless_lat0",
              "latency_gain"};
    case Workload::kCodingPlan:
      return {"latency_budget_bits", "family", "N", "W", "latency_bits",
              "reqd_EbN0_dB"};
    case Workload::kImpulseResponse:
      return {"tau_ns", "free_h_dB", "copper_h_dB"};
    case Workload::kIsiFilters:
      return {"design", "tau_over_T", "h"};
    case Workload::kInfoRates:
      return {"SNR_dB", "MaxIR_seq", "MaxIR_symbolwise", "Rect_1bit_OS",
              "1bit_no_OS", "no_quantization", "suboptimal_seq"};
    case Workload::kAdcEnergy:
      return {"receiver", "sample_rate_GSs", "rate_bpcu", "throughput_Gbps",
              "ADC_power_mW", "pJ_per_bit"};
    case Workload::kThresholdSaturation:
      return {"L", "coupled_threshold", "gain_vs_block", "rate_terminated",
              "rate_loss"};
    case Workload::kLdpcLatency:
      return {"family", "N", "W", "latency_bits", "reqd_EbN0_dB"};
    case Workload::kFlitSim:
      return {"inj_rate", "latency_cycles", "throughput", "delivered",
              "injected", "stable"};
  }
  return {"-"};
}

SimEngine::SimEngine(EngineOptions options) : options_(options) {}

std::size_t SimEngine::resolve_threads(std::size_t requested) const {
  std::size_t threads = requested != 0 ? requested : options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  return threads;
}

RunResult SimEngine::run(const ScenarioSpec& spec) {
  RunResult result;
  result.scenario = spec.name;
  try {
    result.table = Table(workload_headers(spec.workload));
    result.status = spec.validate();
    if (result.status.is_ok()) execute(spec, phy_cache_, result);
  } catch (const StatusError& e) {
    result.status = e.status();
  } catch (const std::exception& e) {
    result.status = Status(StatusCode::kExecutionError, e.what());
  } catch (...) {
    // Catch-all barrier: a stray exception must fail this scenario,
    // never terminate a parallel worker thread.
    result.status =
        Status(StatusCode::kExecutionError, "unknown exception");
  }
  if (!result.status.is_ok()) {
    // Failed runs report an empty table under the workload's schema.
    result.table = Table(workload_headers(spec.workload));
  }
  return result;
}

std::vector<RunResult> SimEngine::run_all(
    const std::vector<ScenarioSpec>& specs, std::size_t threads,
    const ResultCallback& on_result) {
  std::vector<RunResult> results(specs.size());
  if (specs.empty()) return results;
  const std::size_t workers =
      std::min(resolve_threads(threads), specs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      results[i] = run(specs[i]);
      if (on_result) on_result(i, results[i]);
    }
    return results;
  }
  // Scenario-level parallelism is already saturating the machine:
  // curve builds triggered inside workers must stay serial or each
  // cache miss would spawn a nested PhyAbstraction thread pool.
  phy_cache_.set_build_threads(1);
  // Work stealing via a shared atomic cursor: idle workers pull the
  // next pending scenario, so long scenarios never leave threads idle.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size()) break;
      results[i] = run(specs[i]);
      if (on_result) on_result(i, results[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  // Later single-scenario runs may parallelize curve builds again.
  phy_cache_.set_build_threads(0);
  return results;
}

RunResult SimEngine::run_sweep(const ScenarioSpec& base,
                               const std::vector<SweepAxis>& axes,
                               std::size_t threads) {
  const std::vector<ScenarioSpec> specs = expand_grid(base, axes);
  const std::size_t hits_before = phy_cache_.hits();
  const std::size_t misses_before = phy_cache_.misses();
  const std::vector<RunResult> runs = run_all(specs, threads);

  RunResult merged = merge_sweep_results(base.name, base.workload, runs);
  // Deltas, not lifetime counters: a bench may run several sweeps on
  // one engine and each note must describe its own sweep.
  merged.notes.push_back(
      Table::num(static_cast<long long>(runs.size())) + " grid points; " +
      "phy curve cache: " +
      Table::num(static_cast<long long>(phy_cache_.hits() - hits_before)) +
      " hits / " +
      Table::num(
          static_cast<long long>(phy_cache_.misses() - misses_before)) +
      " misses");
  return merged;
}

RunResult merge_sweep_results(const std::string& sweep_name,
                              Workload workload,
                              const std::vector<RunResult>& runs) {
  RunResult merged;
  merged.scenario = sweep_name;
  std::size_t failed = 0;
  std::vector<std::string> headers = {"scenario", "status"};
  const std::vector<std::string> schema = workload_headers(workload);
  headers.insert(headers.end(), schema.begin(), schema.end());
  merged.table = Table(headers);
  for (const RunResult& r : runs) {
    if (r.ok()) {
      for (std::size_t i = 0; i < r.table.rows(); ++i) {
        std::vector<std::string> cells = {r.scenario, "ok"};
        const auto& row = r.table.row(i);
        cells.insert(cells.end(), row.begin(), row.end());
        merged.table.add_row(std::move(cells));
      }
    } else {
      // Surface the failure as a row so the sweep itself survives.
      ++failed;
      std::vector<std::string> cells = {r.scenario, r.status.to_string()};
      cells.insert(cells.end(), schema.size(), "-");
      merged.table.add_row(std::move(cells));
    }
    for (const auto& note : r.notes) {
      merged.notes.push_back(r.scenario + ": " + note);
    }
  }
  if (failed > 0) {
    // Aggregate failure so callers' exit-code checks see it; the
    // per-point rows above carry the individual diagnoses.
    merged.status = Status(
        StatusCode::kExecutionError,
        std::to_string(failed) + " of " + std::to_string(runs.size()) +
            " grid points failed (see status column)");
  }
  return merged;
}

void print_result(std::ostream& os, const RunResult& result) {
  os << "# scenario: " << result.scenario << "\n";
  if (!result.ok()) os << "# status: " << result.status.to_string() << "\n";
  for (const auto& note : result.notes) os << "# " << note << "\n";
  result.table.print(os);
}

}  // namespace wi::sim

#include "wi/sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <thread>
#include <utility>

#include "wi/sim/workload.hpp"

namespace wi::sim {

SimEngine::SimEngine(EngineOptions options) : options_(options) {
  if (options_.serial_phy_builds) phy_cache_.set_build_threads(1);
}

std::size_t SimEngine::resolve_threads(std::size_t requested) const {
  std::size_t threads = requested != 0 ? requested : options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  return threads;
}

RunResult SimEngine::run(const ScenarioSpec& spec) {
  RunResult result;
  result.scenario = spec.name;
  try {
    result.table = Table(workload_headers(spec.workload));
    result.status = spec.validate();
    if (result.status.is_ok()) {
      const WorkloadRunner& runner =
          WorkloadRegistry::global().get(spec.workload);
      WorkloadEnv env(phy_cache_);
      result.table = runner.run(spec, env);
      result.notes = std::move(env.notes());
    }
  } catch (const StatusError& e) {
    result.status = e.status();
  } catch (const std::exception& e) {
    result.status = Status(StatusCode::kExecutionError, e.what());
  } catch (...) {
    // Catch-all barrier: a stray exception must fail this scenario,
    // never terminate a parallel worker thread.
    result.status =
        Status(StatusCode::kExecutionError, "unknown exception");
  }
  if (!result.status.is_ok()) {
    // Failed runs report an empty table under the workload's schema.
    result.table = Table(workload_headers(spec.workload));
  }
  return result;
}

std::vector<RunResult> SimEngine::run_all(
    const std::vector<ScenarioSpec>& specs, std::size_t threads,
    const ResultCallback& on_result) {
  std::vector<RunResult> results(specs.size());
  if (specs.empty()) return results;
  const std::size_t workers =
      std::min(resolve_threads(threads), specs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      results[i] = run(specs[i]);
      if (on_result) on_result(i, results[i]);
    }
    return results;
  }
  // Scenario-level parallelism is already saturating the machine:
  // curve builds triggered inside workers must stay serial or each
  // cache miss would spawn a nested PhyAbstraction thread pool.
  const std::size_t build_threads_before = phy_cache_.build_threads();
  phy_cache_.set_build_threads(1);
  // Work stealing via a shared atomic cursor: idle workers pull the
  // next pending scenario, so long scenarios never leave threads idle.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size()) break;
      results[i] = run(specs[i]);
      if (on_result) on_result(i, results[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
  // Restore the caller's setting (a serial_phy_builds engine stays
  // pinned; otherwise later single-scenario runs parallelize again).
  phy_cache_.set_build_threads(build_threads_before);
  return results;
}

RunResult SimEngine::run_sweep(const ScenarioSpec& base,
                               const std::vector<SweepAxis>& axes,
                               std::size_t threads) {
  const std::vector<ScenarioSpec> specs = expand_grid(base, axes);
  const std::size_t hits_before = phy_cache_.hits();
  const std::size_t misses_before = phy_cache_.misses();
  const std::vector<RunResult> runs = run_all(specs, threads);

  RunResult merged = merge_sweep_results(base.name, base.workload, runs);
  // Deltas, not lifetime counters: a bench may run several sweeps on
  // one engine and each note must describe its own sweep.
  merged.notes.push_back(
      Table::num(static_cast<long long>(runs.size())) + " grid points; " +
      "phy curve cache: " +
      Table::num(static_cast<long long>(phy_cache_.hits() - hits_before)) +
      " hits / " +
      Table::num(
          static_cast<long long>(phy_cache_.misses() - misses_before)) +
      " misses");
  return merged;
}

RunResult merge_sweep_results(const std::string& sweep_name,
                              const std::string& workload,
                              const std::vector<RunResult>& runs) {
  RunResult merged;
  merged.scenario = sweep_name;
  std::size_t failed = 0;
  std::vector<std::string> headers = {"scenario", "status"};
  const std::vector<std::string> schema = workload_headers(workload);
  headers.insert(headers.end(), schema.begin(), schema.end());
  merged.table = Table(headers);
  for (const RunResult& r : runs) {
    if (r.ok()) {
      for (std::size_t i = 0; i < r.table.rows(); ++i) {
        std::vector<std::string> cells = {r.scenario, "ok"};
        const auto& row = r.table.row(i);
        cells.insert(cells.end(), row.begin(), row.end());
        merged.table.add_row(std::move(cells));
      }
    } else {
      // Surface the failure as a row so the sweep itself survives.
      ++failed;
      std::vector<std::string> cells = {r.scenario, r.status.to_string()};
      cells.insert(cells.end(), schema.size(), "-");
      merged.table.add_row(std::move(cells));
    }
    for (const auto& note : r.notes) {
      merged.notes.push_back(r.scenario + ": " + note);
    }
  }
  if (failed > 0) {
    // Aggregate failure so callers' exit-code checks see it; the
    // per-point rows above carry the individual diagnoses.
    merged.status = Status(
        StatusCode::kExecutionError,
        std::to_string(failed) + " of " + std::to_string(runs.size()) +
            " grid points failed (see status column)");
  }
  return merged;
}

void print_result(std::ostream& os, const RunResult& result) {
  os << "# scenario: " << result.scenario << "\n";
  if (!result.ok()) os << "# status: " << result.status.to_string() << "\n";
  for (const auto& note : result.notes) os << "# " << note << "\n";
  result.table.print(os);
}

}  // namespace wi::sim

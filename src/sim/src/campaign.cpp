#include "wi/sim/campaign.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <utility>

#include "wi/common/stats.hpp"
#include "wi/common/table_io.hpp"
#include "wi/sim/result_store.hpp"
#include "wi/sim/scenario_json.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {

namespace {

[[noreturn]] void fail(StatusCode code, const std::string& message) {
  throw StatusError(Status(code, "campaign: " + message));
}

/// Shortest round-trip formatting: aggregates must be bit-identical
/// across runs and parse back to the exact double, so fixed-decimal
/// rendering (which rounds) is not an option here.
[[nodiscard]] std::string format_stat(double value) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "nan";
  return {buffer, end};
}

/// SplitMix64 output function (Steele/Lea/Flood): one multiply-xorshift
/// avalanche, so consecutive indices yield statistically independent
/// xoshiro seed material.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

[[nodiscard]] bool is_exact_integer(double n) {
  return n >= 0.0 && n <= kMaxExactInteger && n == std::floor(n);
}

/// Incremental cell-wise reduction of replica tables into the
/// campaign aggregate schema. Tables are folded one at a time (the
/// distributed aggregator streams them out of the store as seeds
/// arrive); each sample enters its cell as a single-sample
/// RunningStats folded with RunningStats::merge, which is exact for
/// single samples — so the fold is bit-identical to the sequential
/// add() accumulation regardless of whether the tables came from one
/// process or from N shard workers, as long as the fold order is seed
/// order. Both aggregate_tables() and merge_campaign_results() reduce
/// through this one class, which is what makes a shard-merged
/// aggregate bit-identical to the single-process run.
class AggregateAccumulator {
 public:
  /// Fold one replica table; kExecutionError on a shape mismatch with
  /// the first folded table (the caller decides whether that is fatal
  /// — Campaign::run — or degrades the replica — the merge path).
  [[nodiscard]] Status add_table(const Table& table) {
    if (!has_first_) {
      has_first_ = true;
      headers_ = table.headers();
      rows_ = table.rows();
      labels_.reserve(rows_);
      for (std::size_t r = 0; r < rows_; ++r) {
        labels_.push_back(table.cell(r, 0));
      }
      label_shared_.assign(rows_, true);
      cells_.assign(rows_ * headers_.size(), Cell{});
    } else {
      if (table.headers() != headers_) {
        return {StatusCode::kExecutionError,
                "campaign: replica table headers differ between seeds"};
      }
      if (table.rows() != rows_) {
        return {StatusCode::kExecutionError,
                "campaign: replica table row counts differ between "
                "seeds (" +
                    std::to_string(table.rows()) + " vs " +
                    std::to_string(rows_) + ")"};
      }
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (table.cell(r, 0) != labels_[r]) label_shared_[r] = false;
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        Cell& cell = cells_[r * headers_.size() + c];
        if (!cell.numeric) continue;
        double value = 0.0;
        if (!parse_cell_number(table.cell(r, c), value) ||
            !std::isfinite(value)) {
          cell.numeric = false;
          continue;
        }
        RunningStats sample;
        sample.add(value);
        cell.stats.merge(sample);  // exact single-sample fold
      }
    }
    ++tables_;
    return Status::ok();
  }

  [[nodiscard]] std::size_t tables() const { return tables_; }

  /// The aggregate over everything folded so far: one row per (row,
  /// column) cell that parsed as a finite number in *every* folded
  /// table. Partial folds yield partial statistics (seeds column =
  /// tables folded), the streaming-aggregator contract.
  [[nodiscard]] Table aggregate() const {
    Table aggregate(campaign_headers());
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::string key = label_shared_[r] ? labels_[r] : "-";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const Cell& cell = cells_[r * headers_.size() + c];
        if (!cell.numeric) continue;
        aggregate.add_row(
            {Table::num(static_cast<long long>(r)), key, headers_[c],
             Table::num(static_cast<long long>(cell.stats.count())),
             format_stat(cell.stats.mean()),
             format_stat(cell.stats.stddev()),
             format_stat(cell.stats.min()), format_stat(cell.stats.max()),
             format_stat(cell.stats.ci95_halfwidth())});
      }
    }
    return aggregate;
  }

 private:
  struct Cell {
    RunningStats stats;
    bool numeric = true;  ///< finite number in every table so far
  };

  bool has_first_ = false;
  std::size_t tables_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::string> headers_;
  std::vector<std::string> labels_;  ///< first table's row labels
  std::vector<bool> label_shared_;   ///< label identical so far?
  std::vector<Cell> cells_;          ///< row-major [row][column]
};

/// "3 indices: 1, 4, 7" — bounded rendering of a seed-index list.
[[nodiscard]] std::string format_seed_indices(
    const std::vector<std::size_t>& indices, std::size_t limit = 20) {
  std::string text;
  for (std::size_t i = 0; i < indices.size() && i < limit; ++i) {
    if (i > 0) text += ", ";
    text += std::to_string(indices[i]);
  }
  if (indices.size() > limit) {
    text += ", ... (" + std::to_string(indices.size() - limit) + " more)";
  }
  return text;
}

}  // namespace

Status CampaignShard::validate() const {
  if (count < 1) {
    return {StatusCode::kInvalidSpec, "shard: count must be >= 1"};
  }
  if (index >= count) {
    return {StatusCode::kInvalidSpec,
            "shard: index " + std::to_string(index) +
                " out of range for " + std::to_string(count) + " shards"};
  }
  return Status::ok();
}

std::uint64_t campaign_seed(std::uint64_t base_seed, std::size_t index) {
  // The SplitMix64 stream seeded at base_seed, read at position index.
  // Masked to 53 bits so a derived seed survives the JSON codec's
  // exact-integer constraint (replica specs are serialized into the
  // result store's content keys).
  return splitmix64(base_seed +
                    static_cast<std::uint64_t>(index + 1) *
                        0x9E3779B97F4A7C15ULL) &
         ((1ULL << 53) - 1);
}

ScenarioSpec scenario_for_seed(const ScenarioSpec& scenario,
                               std::uint64_t seed) {
  ScenarioSpec spec = scenario;
  // The workload's runner knows which fields are stochastic; an
  // unregistered workload gets only the name suffix (it will fail
  // validation anyway when run).
  if (const WorkloadRunner* runner =
          WorkloadRegistry::global().find(spec.workload)) {
    runner->apply_seed(spec, seed);
  }
  spec.name += "@seed=" + std::to_string(seed);
  return spec;
}

Status CampaignSpec::validate() const {
  if (seeds < 1) {
    return {StatusCode::kInvalidSpec,
            display_name() + ": a campaign needs seeds >= 1"};
  }
  return scenario.validate();
}

std::vector<std::string> campaign_headers() {
  return {"row",  "key", "column", "seeds", "mean",
          "stddev", "min", "max",    "ci95_half"};
}

Table aggregate_tables(const std::vector<Table>& tables) {
  AggregateAccumulator accumulator;
  for (const Table& table : tables) {
    const Status status = accumulator.add_table(table);
    if (!status.is_ok()) throw StatusError(status);
  }
  return accumulator.aggregate();
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  const Status status = spec_.validate();
  if (!status.is_ok()) throw StatusError(status);
}

CampaignResult Campaign::run(SimEngine& engine, ResultStore* store,
                             std::size_t threads,
                             const CampaignShard& shard) const {
  const Status shard_status = shard.validate();
  if (!shard_status.is_ok()) throw StatusError(shard_status);
  CampaignResult result;
  result.campaign = spec_.display_name();
  result.seeds = spec_.seeds;
  result.base_seed = spec_.base_seed;
  result.aggregate = Table(campaign_headers());

  std::vector<ScenarioSpec> replicas;
  replicas.reserve(spec_.seeds / std::max<std::size_t>(shard.count, 1) + 1);
  std::size_t owned = 0;
  for (std::size_t k = 0; k < spec_.seeds; ++k) {
    if (!shard.owns(k)) continue;
    ++owned;
    replicas.push_back(scenario_for_seed(
        spec_.scenario, campaign_seed(spec_.base_seed, k)));
  }
  const std::size_t hits_before = store != nullptr ? store->hits() : 0;
  const std::size_t misses_before = store != nullptr ? store->misses() : 0;
  result.per_seed = store != nullptr
                        ? store->run_all(engine, replicas, threads)
                        : engine.run_all(replicas, threads);

  std::size_t failed = 0;
  std::string first_failure;
  std::vector<Table> tables;
  tables.reserve(result.per_seed.size());
  for (const RunResult& replica : result.per_seed) {
    if (replica.ok()) {
      tables.push_back(replica.table);
    } else {
      ++failed;
      if (first_failure.empty()) {
        first_failure =
            replica.scenario + ": " + replica.status.to_string();
      }
    }
  }
  if (failed > 0) {
    result.status = Status(
        StatusCode::kExecutionError,
        std::to_string(failed) + " of " +
            std::to_string(result.per_seed.size()) +
            " seed replicas failed (first: " + first_failure + ")");
    return result;
  }
  try {
    result.aggregate = aggregate_tables(tables);
  } catch (const StatusError& e) {
    result.status = e.status();
    return result;
  }
  result.notes.push_back(
      Table::num(static_cast<long long>(spec_.seeds)) +
      " seeds derived from base_seed " +
      std::to_string(spec_.base_seed) + " (splitmix64)");
  if (shard.active()) {
    result.notes.push_back(
        "shard " + std::to_string(shard.index) + "/" +
        std::to_string(shard.count) + ": ran " +
        Table::num(static_cast<long long>(owned)) + " of " +
        Table::num(static_cast<long long>(spec_.seeds)) +
        " seed replicas (indices congruent to " +
        std::to_string(shard.index) + " mod " +
        std::to_string(shard.count) + ")");
  }
  if (store != nullptr) {
    result.notes.push_back(
        "store: " +
        Table::num(static_cast<long long>(store->hits() - hits_before)) +
        " hits / " +
        Table::num(
            static_cast<long long>(store->misses() - misses_before)) +
        " misses");
  }
  return result;
}

CampaignResult merge_campaign_results(const CampaignSpec& spec,
                                      const ResultStore& store) {
  CampaignResult result;
  result.campaign = spec.display_name();
  result.seeds = spec.seeds;
  result.base_seed = spec.base_seed;
  result.aggregate = Table(campaign_headers());
  const Status valid = spec.validate();
  if (!valid.is_ok()) {
    result.status = valid;
    return result;
  }

  // Fold in seed-index order: the order, together with the exact
  // single-sample merge, is what makes the merged aggregate
  // bit-identical to the single-process run. Anything unusable —
  // absent (the worker has not finished that seed yet), corrupt
  // (ResultStore::load already degrades those to misses and logs
  // them), or shape-mismatched — goes on the missing list instead of
  // aborting: the aggregator must keep working while workers are
  // still streaming seeds in or after one of them crashed mid-write.
  const std::size_t corrupt_before = store.stats().corrupt_entries;
  AggregateAccumulator accumulator;
  std::vector<std::string> degraded;
  for (std::size_t k = 0; k < spec.seeds; ++k) {
    const ScenarioSpec replica = scenario_for_seed(
        spec.scenario, campaign_seed(spec.base_seed, k));
    const std::optional<RunResult> entry = store.load(replica);
    if (!entry || !entry->ok()) {
      result.missing_seeds.push_back(k);
      continue;
    }
    const Status folded = accumulator.add_table(entry->table);
    if (!folded.is_ok()) {
      result.missing_seeds.push_back(k);
      degraded.push_back("seed index " + std::to_string(k) +
                         " unusable: " + folded.message());
      continue;
    }
  }
  result.aggregate = accumulator.aggregate();

  result.notes.push_back(
      "merged " +
      Table::num(static_cast<long long>(accumulator.tables())) + " of " +
      Table::num(static_cast<long long>(spec.seeds)) +
      " seed replicas from store '" +
      store.options().directory.string() + "' (base_seed " +
      std::to_string(spec.base_seed) + ", splitmix64)");
  if (!result.missing_seeds.empty()) {
    result.notes.push_back(
        "partial aggregate: " +
        Table::num(static_cast<long long>(result.missing_seeds.size())) +
        " seed indices missing: " +
        format_seed_indices(result.missing_seeds));
  }
  const std::size_t corrupt =
      store.stats().corrupt_entries - corrupt_before;
  if (corrupt > 0) {
    result.notes.push_back(
        Table::num(static_cast<long long>(corrupt)) +
        " corrupt store entries skipped (see the store corruption log)");
  }
  for (std::string& note : degraded) {
    result.notes.push_back(std::move(note));
  }
  return result;
}

Status check_campaign_ci(const Table& actual, const Table& golden,
                         const CiCheckOptions& options) {
  const auto schema = campaign_headers();
  if (actual.headers() != schema || golden.headers() != schema) {
    return {StatusCode::kExecutionError,
            "check_campaign_ci: both tables must use the campaign "
            "aggregate schema"};
  }
  if (actual.rows() != golden.rows()) {
    return {StatusCode::kExecutionError,
            "check_campaign_ci: aggregate grids differ: " +
                std::to_string(actual.rows()) + " rows vs golden " +
                std::to_string(golden.rows())};
  }
  // Column indices in campaign_headers() order.
  constexpr std::size_t kRow = 0, kKey = 1, kColumn = 2, kMean = 4,
                        kCi = 8;
  std::size_t failures = 0;
  std::string detail;
  auto report = [&](const std::string& line) {
    ++failures;
    if (failures <= options.max_failures) detail += "\n  " + line;
  };
  for (std::size_t r = 0; r < actual.rows(); ++r) {
    const std::string cell_id = "row " + golden.cell(r, kRow) + " (" +
                                golden.cell(r, kKey) + ") column '" +
                                golden.cell(r, kColumn) + "'";
    if (actual.cell(r, kRow) != golden.cell(r, kRow) ||
        actual.cell(r, kKey) != golden.cell(r, kKey) ||
        actual.cell(r, kColumn) != golden.cell(r, kColumn)) {
      report(cell_id + ": grid mismatch (regenerated has row " +
             actual.cell(r, kRow) + " (" + actual.cell(r, kKey) +
             ") column '" + actual.cell(r, kColumn) + "')");
      continue;
    }
    double golden_mean = 0.0;
    double mean = 0.0;
    double ci = 0.0;
    double golden_ci = 0.0;
    if (!parse_cell_number(golden.cell(r, kMean), golden_mean) ||
        !parse_cell_number(actual.cell(r, kMean), mean) ||
        !parse_cell_number(actual.cell(r, kCi), ci) ||
        !parse_cell_number(golden.cell(r, kCi), golden_ci)) {
      report(cell_id + ": non-numeric mean/ci95_half cell");
      continue;
    }
    // Both means are sample estimates, so the acceptance band is the
    // CI of their *difference* — the quadrature sum of both CI
    // half-widths. Using only the regenerated CI would under-cover by
    // sqrt(2) and fail ~17% of cells on a legitimate RNG-stream
    // reshuffle, defeating the gate's purpose.
    const double band = std::max(
        options.slack * std::hypot(ci, golden_ci), options.abs_tol);
    if (!(std::fabs(golden_mean - mean) <= band)) {
      report(cell_id + ": golden mean " + golden.cell(r, kMean) +
             " outside CI " + actual.cell(r, kMean) + " +/- " +
             format_stat(band));
    }
  }
  if (failures == 0) return Status::ok();
  if (failures > options.max_failures) {
    detail += "\n  ... and " +
              std::to_string(failures - options.max_failures) + " more";
  }
  return {StatusCode::kExecutionError,
          "check_campaign_ci: " + std::to_string(failures) + " of " +
              std::to_string(actual.rows()) +
              " aggregate cells failed:" + detail};
}

Json campaign_to_json(const CampaignSpec& spec) {
  Json json = Json::object();
  json.set("name", Json(spec.name));
  json.set("description", Json(spec.description));
  json.set("seeds", Json(static_cast<double>(spec.seeds)));
  json.set("base_seed", Json(static_cast<double>(spec.base_seed)));
  json.set("scenario", scenario_to_json(spec.scenario));
  return json;
}

CampaignSpec campaign_from_json(const Json& json) {
  if (!json.is_object()) {
    fail(StatusCode::kParseError, "expected an object");
  }
  CampaignSpec spec;
  for (const auto& [key, value] : json.as_object()) {
    if (key == "name") {
      spec.name = value.as_string();
    } else if (key == "description") {
      spec.description = value.as_string();
    } else if (key == "seeds" || key == "base_seed") {
      const double n = value.as_number();
      if (!is_exact_integer(n)) {
        fail(StatusCode::kParseError,
             key + ": expected a non-negative integer (<= 2^53)");
      }
      if (key == "seeds") {
        spec.seeds = static_cast<std::size_t>(n);
      } else {
        spec.base_seed = static_cast<std::uint64_t>(n);
      }
    } else if (key == "scenario") {
      spec.scenario = scenario_from_json(value);
    } else {
      fail(StatusCode::kParseError, "unknown key '" + key + "'");
    }
  }
  return spec;
}

std::string campaign_to_string(const CampaignSpec& spec) {
  return campaign_to_json(spec).dump();
}

CampaignSpec campaign_from_string(const std::string& text) {
  return campaign_from_json(Json::parse(text));
}

Json campaign_result_to_json(const CampaignResult& result) {
  Json json = Json::object();
  json.set("campaign", Json(result.campaign));
  Json status = Json::object();
  status.set("code", Json(status_code_name(result.status.code())));
  status.set("message", Json(result.status.message()));
  json.set("status", std::move(status));
  json.set("seeds", Json(static_cast<double>(result.seeds)));
  json.set("base_seed", Json(static_cast<double>(result.base_seed)));
  if (!result.missing_seeds.empty()) {
    // Partial merges only: the replica indices the aggregator could
    // not fold (absent / corrupt / shape-mismatched store entries).
    Json missing = Json::array();
    for (const std::size_t k : result.missing_seeds) {
      missing.push_back(Json(static_cast<double>(k)));
    }
    json.set("missing_seeds", std::move(missing));
  }
  Json notes = Json::array();
  for (const auto& note : result.notes) notes.push_back(Json(note));
  json.set("notes", std::move(notes));
  json.set("aggregate", table_to_json(result.aggregate));
  Json per_seed = Json::array();
  for (const RunResult& replica : result.per_seed) {
    per_seed.push_back(run_result_to_json(replica));
  }
  json.set("per_seed", std::move(per_seed));
  return json;
}

void print_campaign(std::ostream& os, const CampaignResult& result) {
  os << "# campaign: " << result.campaign << " ("
     << result.seeds << " seeds, base_seed " << result.base_seed << ")\n";
  if (!result.ok()) os << "# status: " << result.status.to_string() << "\n";
  for (const auto& note : result.notes) os << "# " << note << "\n";
  result.aggregate.print(os);
}

}  // namespace wi::sim

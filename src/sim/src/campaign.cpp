#include "wi/sim/campaign.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <utility>

#include "wi/common/stats.hpp"
#include "wi/common/table_io.hpp"
#include "wi/sim/result_store.hpp"
#include "wi/sim/scenario_json.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {

namespace {

[[noreturn]] void fail(StatusCode code, const std::string& message) {
  throw StatusError(Status(code, "campaign: " + message));
}

/// Shortest round-trip formatting: aggregates must be bit-identical
/// across runs and parse back to the exact double, so fixed-decimal
/// rendering (which rounds) is not an option here.
[[nodiscard]] std::string format_stat(double value) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "nan";
  return {buffer, end};
}

/// SplitMix64 output function (Steele/Lea/Flood): one multiply-xorshift
/// avalanche, so consecutive indices yield statistically independent
/// xoshiro seed material.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

[[nodiscard]] bool is_exact_integer(double n) {
  return n >= 0.0 && n <= kMaxExactInteger && n == std::floor(n);
}

}  // namespace

std::uint64_t campaign_seed(std::uint64_t base_seed, std::size_t index) {
  // The SplitMix64 stream seeded at base_seed, read at position index.
  // Masked to 53 bits so a derived seed survives the JSON codec's
  // exact-integer constraint (replica specs are serialized into the
  // result store's content keys).
  return splitmix64(base_seed +
                    static_cast<std::uint64_t>(index + 1) *
                        0x9E3779B97F4A7C15ULL) &
         ((1ULL << 53) - 1);
}

ScenarioSpec scenario_for_seed(const ScenarioSpec& scenario,
                               std::uint64_t seed) {
  ScenarioSpec spec = scenario;
  // The workload's runner knows which fields are stochastic; an
  // unregistered workload gets only the name suffix (it will fail
  // validation anyway when run).
  if (const WorkloadRunner* runner =
          WorkloadRegistry::global().find(spec.workload)) {
    runner->apply_seed(spec, seed);
  }
  spec.name += "@seed=" + std::to_string(seed);
  return spec;
}

Status CampaignSpec::validate() const {
  if (seeds < 1) {
    return {StatusCode::kInvalidSpec,
            display_name() + ": a campaign needs seeds >= 1"};
  }
  return scenario.validate();
}

std::vector<std::string> campaign_headers() {
  return {"row",  "key", "column", "seeds", "mean",
          "stddev", "min", "max",    "ci95_half"};
}

Table aggregate_tables(const std::vector<Table>& tables) {
  Table aggregate(campaign_headers());
  if (tables.empty()) return aggregate;
  const Table& first = tables[0];
  for (std::size_t t = 1; t < tables.size(); ++t) {
    if (tables[t].headers() != first.headers()) {
      fail(StatusCode::kExecutionError,
           "replica table headers differ between seeds");
    }
    if (tables[t].rows() != first.rows()) {
      fail(StatusCode::kExecutionError,
           "replica table row counts differ between seeds (" +
               std::to_string(tables[t].rows()) + " vs " +
               std::to_string(first.rows()) + ")");
    }
  }
  for (std::size_t r = 0; r < first.rows(); ++r) {
    // The row label: first column when it agrees across all replicas.
    bool shared_label = true;
    for (const Table& table : tables) {
      if (table.cell(r, 0) != first.cell(r, 0)) {
        shared_label = false;
        break;
      }
    }
    const std::string key = shared_label ? first.cell(r, 0) : "-";
    for (std::size_t c = 0; c < first.columns(); ++c) {
      RunningStats stats;
      bool numeric = true;
      for (const Table& table : tables) {
        double value = 0.0;
        if (!parse_cell_number(table.cell(r, c), value) ||
            !std::isfinite(value)) {
          numeric = false;
          break;
        }
        stats.add(value);  // seed order: deterministic accumulation
      }
      if (!numeric) continue;
      aggregate.add_row({Table::num(static_cast<long long>(r)), key,
                         first.headers()[c],
                         Table::num(static_cast<long long>(stats.count())),
                         format_stat(stats.mean()),
                         format_stat(stats.stddev()),
                         format_stat(stats.min()), format_stat(stats.max()),
                         format_stat(stats.ci95_halfwidth())});
    }
  }
  return aggregate;
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  const Status status = spec_.validate();
  if (!status.is_ok()) throw StatusError(status);
}

CampaignResult Campaign::run(SimEngine& engine, ResultStore* store,
                             std::size_t threads) const {
  CampaignResult result;
  result.campaign = spec_.display_name();
  result.seeds = spec_.seeds;
  result.base_seed = spec_.base_seed;
  result.aggregate = Table(campaign_headers());

  std::vector<ScenarioSpec> replicas;
  replicas.reserve(spec_.seeds);
  for (std::size_t k = 0; k < spec_.seeds; ++k) {
    replicas.push_back(scenario_for_seed(
        spec_.scenario, campaign_seed(spec_.base_seed, k)));
  }
  const std::size_t hits_before = store != nullptr ? store->hits() : 0;
  const std::size_t misses_before = store != nullptr ? store->misses() : 0;
  result.per_seed = store != nullptr
                        ? store->run_all(engine, replicas, threads)
                        : engine.run_all(replicas, threads);

  std::size_t failed = 0;
  std::string first_failure;
  std::vector<Table> tables;
  tables.reserve(result.per_seed.size());
  for (const RunResult& replica : result.per_seed) {
    if (replica.ok()) {
      tables.push_back(replica.table);
    } else {
      ++failed;
      if (first_failure.empty()) {
        first_failure =
            replica.scenario + ": " + replica.status.to_string();
      }
    }
  }
  if (failed > 0) {
    result.status = Status(
        StatusCode::kExecutionError,
        std::to_string(failed) + " of " +
            std::to_string(result.per_seed.size()) +
            " seed replicas failed (first: " + first_failure + ")");
    return result;
  }
  try {
    result.aggregate = aggregate_tables(tables);
  } catch (const StatusError& e) {
    result.status = e.status();
    return result;
  }
  result.notes.push_back(
      Table::num(static_cast<long long>(spec_.seeds)) +
      " seeds derived from base_seed " +
      std::to_string(spec_.base_seed) + " (splitmix64)");
  if (store != nullptr) {
    result.notes.push_back(
        "store: " +
        Table::num(static_cast<long long>(store->hits() - hits_before)) +
        " hits / " +
        Table::num(
            static_cast<long long>(store->misses() - misses_before)) +
        " misses");
  }
  return result;
}

Status check_campaign_ci(const Table& actual, const Table& golden,
                         const CiCheckOptions& options) {
  const auto schema = campaign_headers();
  if (actual.headers() != schema || golden.headers() != schema) {
    return {StatusCode::kExecutionError,
            "check_campaign_ci: both tables must use the campaign "
            "aggregate schema"};
  }
  if (actual.rows() != golden.rows()) {
    return {StatusCode::kExecutionError,
            "check_campaign_ci: aggregate grids differ: " +
                std::to_string(actual.rows()) + " rows vs golden " +
                std::to_string(golden.rows())};
  }
  // Column indices in campaign_headers() order.
  constexpr std::size_t kRow = 0, kKey = 1, kColumn = 2, kMean = 4,
                        kCi = 8;
  std::size_t failures = 0;
  std::string detail;
  auto report = [&](const std::string& line) {
    ++failures;
    if (failures <= options.max_failures) detail += "\n  " + line;
  };
  for (std::size_t r = 0; r < actual.rows(); ++r) {
    const std::string cell_id = "row " + golden.cell(r, kRow) + " (" +
                                golden.cell(r, kKey) + ") column '" +
                                golden.cell(r, kColumn) + "'";
    if (actual.cell(r, kRow) != golden.cell(r, kRow) ||
        actual.cell(r, kKey) != golden.cell(r, kKey) ||
        actual.cell(r, kColumn) != golden.cell(r, kColumn)) {
      report(cell_id + ": grid mismatch (regenerated has row " +
             actual.cell(r, kRow) + " (" + actual.cell(r, kKey) +
             ") column '" + actual.cell(r, kColumn) + "')");
      continue;
    }
    double golden_mean = 0.0;
    double mean = 0.0;
    double ci = 0.0;
    double golden_ci = 0.0;
    if (!parse_cell_number(golden.cell(r, kMean), golden_mean) ||
        !parse_cell_number(actual.cell(r, kMean), mean) ||
        !parse_cell_number(actual.cell(r, kCi), ci) ||
        !parse_cell_number(golden.cell(r, kCi), golden_ci)) {
      report(cell_id + ": non-numeric mean/ci95_half cell");
      continue;
    }
    // Both means are sample estimates, so the acceptance band is the
    // CI of their *difference* — the quadrature sum of both CI
    // half-widths. Using only the regenerated CI would under-cover by
    // sqrt(2) and fail ~17% of cells on a legitimate RNG-stream
    // reshuffle, defeating the gate's purpose.
    const double band = std::max(
        options.slack * std::hypot(ci, golden_ci), options.abs_tol);
    if (!(std::fabs(golden_mean - mean) <= band)) {
      report(cell_id + ": golden mean " + golden.cell(r, kMean) +
             " outside CI " + actual.cell(r, kMean) + " +/- " +
             format_stat(band));
    }
  }
  if (failures == 0) return Status::ok();
  if (failures > options.max_failures) {
    detail += "\n  ... and " +
              std::to_string(failures - options.max_failures) + " more";
  }
  return {StatusCode::kExecutionError,
          "check_campaign_ci: " + std::to_string(failures) + " of " +
              std::to_string(actual.rows()) +
              " aggregate cells failed:" + detail};
}

Json campaign_to_json(const CampaignSpec& spec) {
  Json json = Json::object();
  json.set("name", Json(spec.name));
  json.set("description", Json(spec.description));
  json.set("seeds", Json(static_cast<double>(spec.seeds)));
  json.set("base_seed", Json(static_cast<double>(spec.base_seed)));
  json.set("scenario", scenario_to_json(spec.scenario));
  return json;
}

CampaignSpec campaign_from_json(const Json& json) {
  if (!json.is_object()) {
    fail(StatusCode::kParseError, "expected an object");
  }
  CampaignSpec spec;
  for (const auto& [key, value] : json.as_object()) {
    if (key == "name") {
      spec.name = value.as_string();
    } else if (key == "description") {
      spec.description = value.as_string();
    } else if (key == "seeds" || key == "base_seed") {
      const double n = value.as_number();
      if (!is_exact_integer(n)) {
        fail(StatusCode::kParseError,
             key + ": expected a non-negative integer (<= 2^53)");
      }
      if (key == "seeds") {
        spec.seeds = static_cast<std::size_t>(n);
      } else {
        spec.base_seed = static_cast<std::uint64_t>(n);
      }
    } else if (key == "scenario") {
      spec.scenario = scenario_from_json(value);
    } else {
      fail(StatusCode::kParseError, "unknown key '" + key + "'");
    }
  }
  return spec;
}

std::string campaign_to_string(const CampaignSpec& spec) {
  return campaign_to_json(spec).dump();
}

CampaignSpec campaign_from_string(const std::string& text) {
  return campaign_from_json(Json::parse(text));
}

Json campaign_result_to_json(const CampaignResult& result) {
  Json json = Json::object();
  json.set("campaign", Json(result.campaign));
  Json status = Json::object();
  status.set("code", Json(status_code_name(result.status.code())));
  status.set("message", Json(result.status.message()));
  json.set("status", std::move(status));
  json.set("seeds", Json(static_cast<double>(result.seeds)));
  json.set("base_seed", Json(static_cast<double>(result.base_seed)));
  Json notes = Json::array();
  for (const auto& note : result.notes) notes.push_back(Json(note));
  json.set("notes", std::move(notes));
  json.set("aggregate", table_to_json(result.aggregate));
  Json per_seed = Json::array();
  for (const RunResult& replica : result.per_seed) {
    per_seed.push_back(run_result_to_json(replica));
  }
  json.set("per_seed", std::move(per_seed));
  return json;
}

void print_campaign(std::ostream& os, const CampaignResult& result) {
  os << "# campaign: " << result.campaign << " ("
     << result.seeds << " seeds, base_seed " << result.base_seed << ")\n";
  if (!result.ok()) os << "# status: " << result.status.to_string() << "\n";
  for (const auto& note : result.notes) os << "# " << note << "\n";
  result.aggregate.print(os);
}

}  // namespace wi::sim

#include "wi/sim/result_store.hpp"

#include <charconv>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>
#include <utility>

#include "wi/common/table_io.hpp"
#include "wi/sim/scenario_json.hpp"

namespace wi::sim {

namespace {

constexpr const char* kFormat = "wi-result-v1";

[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t hash = 0xcbf29ce484222325ULL) {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

[[nodiscard]] std::string to_hex16(std::uint64_t value) {
  char buffer[17] = {};
  for (int i = 15; i >= 0; --i) {
    buffer[i] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  }
  return buffer;
}

[[nodiscard]] StatusCode status_code_from_name(const std::string& name) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidSpec,
        StatusCode::kUnreachableRoute, StatusCode::kUnsupported,
        StatusCode::kExecutionError, StatusCode::kParseError,
        StatusCode::kNotFound}) {
    if (name == status_code_name(code)) return code;
  }
  throw StatusError(Status(StatusCode::kParseError,
                           "unknown status code '" + name + "'"));
}

}  // namespace

Json run_result_to_json(const RunResult& result) {
  Json json = Json::object();
  json.set("scenario", Json(result.scenario));
  Json status = Json::object();
  status.set("code", Json(status_code_name(result.status.code())));
  status.set("message", Json(result.status.message()));
  json.set("status", std::move(status));
  Json notes = Json::array();
  for (const auto& note : result.notes) notes.push_back(Json(note));
  json.set("notes", std::move(notes));
  json.set("table", table_to_json(result.table));
  return json;
}

RunResult run_result_from_json(const Json& json) {
  RunResult result;
  result.scenario = json.at("scenario").as_string();
  const Json& status = json.at("status");
  result.status = Status(status_code_from_name(status.at("code").as_string()),
                         status.at("message").as_string());
  for (const auto& note : json.at("notes").as_array()) {
    result.notes.push_back(note.as_string());
  }
  result.table = table_from_json(json.at("table"));
  return result;
}

ResultStore::ResultStore(ResultStoreOptions options)
    : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    throw StatusError(Status(
        StatusCode::kExecutionError,
        "result store: cannot create '" + options_.directory.string() +
            "': " + ec.message()));
  }
}

std::string ResultStore::key(const ScenarioSpec& spec,
                             std::uint64_t seed) const {
  // Chain spec, version and seed through one FNV stream; '\x1f'
  // separators keep field boundaries unambiguous.
  std::uint64_t hash = fnv1a64(scenario_to_string(spec));
  hash = fnv1a64("\x1f", hash);
  hash = fnv1a64(options_.version, hash);
  hash = fnv1a64("\x1f", hash);
  hash = fnv1a64(std::to_string(seed), hash);
  return to_hex16(hash);
}

std::filesystem::path ResultStore::entry_path(const std::string& key) const {
  return options_.directory / (key + ".json");
}

std::optional<RunResult> ResultStore::load(const ScenarioSpec& spec,
                                           std::uint64_t seed) const {
  const std::filesystem::path path = entry_path(key(spec, seed));
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const Json json = Json::parse(buffer.str());
    if (json.at("format").as_string() != kFormat) return std::nullopt;
    if (json.at("version").as_string() != options_.version) {
      return std::nullopt;
    }
    // Collision/corruption guard: the stored spec must be *identical*,
    // not merely hash-equal.
    if (json.at("spec").dump() != scenario_to_json(spec).dump()) {
      return std::nullopt;
    }
    return run_result_from_json(json.at("result"));
  } catch (const std::exception&) {
    // A truncated or hand-edited entry is a miss, not a fatal error.
    // Catching std::exception (not just StatusError) matters: a corrupt
    // entry whose table rows are ragged surfaces from Table::add_row as
    // std::invalid_argument, and that must recompute, not crash.
    return std::nullopt;
  }
}

void ResultStore::save(const ScenarioSpec& spec, const RunResult& result,
                       std::uint64_t seed) {
  if (!result.ok()) return;  // failures re-run next time
  const std::string entry_key = key(spec, seed);
  Json json = Json::object();
  json.set("format", Json(kFormat));
  json.set("key", Json(entry_key));
  json.set("version", Json(options_.version));
  json.set("seed", Json(static_cast<double>(seed)));
  json.set("spec", scenario_to_json(spec));
  json.set("result", run_result_to_json(result));
  const std::string payload = json.dump(2) + "\n";

  const std::filesystem::path path = entry_path(entry_key);
  const std::filesystem::path tmp =
      path.string() + ".tmp";  // same directory => rename is atomic
  std::lock_guard<std::mutex> lock(io_mutex_);
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << payload;
    if (!out) {
      throw StatusError(Status(StatusCode::kExecutionError,
                               "result store: write failed for '" +
                                   tmp.string() + "'"));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw StatusError(Status(StatusCode::kExecutionError,
                             "result store: rename failed for '" +
                                 path.string() + "': " + ec.message()));
  }
}

std::vector<RunResult> ResultStore::run_all(
    SimEngine& engine, const std::vector<ScenarioSpec>& specs,
    std::size_t threads) {
  std::vector<RunResult> results(specs.size());
  std::vector<std::size_t> miss_indices;
  std::vector<ScenarioSpec> miss_specs;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (auto cached = load(specs[i])) {
      results[i] = std::move(*cached);
      ++hits_;
    } else {
      miss_indices.push_back(i);
      miss_specs.push_back(specs[i]);
      ++misses_;
    }
  }
  if (miss_specs.empty()) return results;
  // Persist every miss the moment it completes (the callback runs on
  // the worker threads; save() serializes the file I/O), so an
  // interrupted run leaves all finished points behind. A failing save
  // (disk full, directory removed) must not take down the run — the
  // result still exists in memory; it just won't be cached. An
  // exception escaping a worker thread would call std::terminate.
  const std::vector<RunResult> fresh = engine.run_all(
      miss_specs, threads,
      [&](std::size_t miss_index, const RunResult& result) {
        try {
          save(miss_specs[miss_index], result);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(warn_mutex_);
          std::cerr << "result store: dropping cache entry for '"
                    << result.scenario << "': " << e.what() << "\n";
        }
      });
  for (std::size_t m = 0; m < miss_indices.size(); ++m) {
    results[miss_indices[m]] = fresh[m];
  }
  return results;
}

RunResult ResultStore::run_sweep(SimEngine& engine, const ScenarioSpec& base,
                                 const std::vector<SweepAxis>& axes,
                                 std::size_t threads) {
  const std::vector<ScenarioSpec> specs = expand_grid(base, axes);
  const std::size_t hits_before = hits_;
  const std::size_t misses_before = misses_;
  const std::vector<RunResult> runs = run_all(engine, specs, threads);
  RunResult merged = merge_sweep_results(base.name, base.workload, runs);
  merged.notes.push_back(
      Table::num(static_cast<long long>(runs.size())) +
      " grid points; store: " +
      Table::num(static_cast<long long>(hits_ - hits_before)) + " hits / " +
      Table::num(static_cast<long long>(misses_ - misses_before)) +
      " misses");
  return merged;
}

}  // namespace wi::sim

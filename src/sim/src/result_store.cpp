#include "wi/sim/result_store.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>
#include <utility>

#include "wi/common/table_io.hpp"
#include "wi/sim/scenario_json.hpp"

namespace wi::sim {

namespace {

constexpr const char* kFormat = "wi-result-v1";

[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t hash = 0xcbf29ce484222325ULL) {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

[[nodiscard]] std::string to_hex16(std::uint64_t value) {
  char buffer[17] = {};
  for (int i = 15; i >= 0; --i) {
    buffer[i] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  }
  return buffer;
}

[[nodiscard]] StatusCode parse_status_code(const std::string& name) {
  if (const auto code = status_code_from_name(name)) return *code;
  throw StatusError(Status(StatusCode::kParseError,
                           "unknown status code '" + name + "'"));
}

}  // namespace

std::string result_content_key(const ScenarioSpec& spec,
                               const std::string& version,
                               std::uint64_t seed) {
  // Chain spec, version and seed through one FNV stream; '\x1f'
  // separators keep field boundaries unambiguous.
  std::uint64_t hash = fnv1a64(scenario_to_string(spec));
  hash = fnv1a64("\x1f", hash);
  hash = fnv1a64(version, hash);
  hash = fnv1a64("\x1f", hash);
  hash = fnv1a64(std::to_string(seed), hash);
  return to_hex16(hash);
}

Json run_result_to_json(const RunResult& result) {
  Json json = Json::object();
  json.set("scenario", Json(result.scenario));
  Json status = Json::object();
  status.set("code", Json(status_code_name(result.status.code())));
  status.set("message", Json(result.status.message()));
  json.set("status", std::move(status));
  Json notes = Json::array();
  for (const auto& note : result.notes) notes.push_back(Json(note));
  json.set("notes", std::move(notes));
  json.set("table", table_to_json(result.table));
  return json;
}

RunResult run_result_from_json(const Json& json) {
  RunResult result;
  result.scenario = json.at("scenario").as_string();
  const Json& status = json.at("status");
  result.status = Status(parse_status_code(status.at("code").as_string()),
                         status.at("message").as_string());
  for (const auto& note : json.at("notes").as_array()) {
    result.notes.push_back(note.as_string());
  }
  result.table = table_from_json(json.at("table"));
  return result;
}

ResultStore::ResultStore(ResultStoreOptions options)
    : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    throw StatusError(Status(
        StatusCode::kExecutionError,
        "result store: cannot create '" + options_.directory.string() +
            "': " + ec.message()));
  }
  // Sweep orphaned atomic-write temp files: a crash between the tmp
  // write and the rename leaves "<key>.json.<writer>.tmp" behind,
  // which can never become a valid entry. The sweep is age-gated:
  // with the directory shared by concurrent worker processes, a young
  // temp file is almost certainly another worker's *in-flight* write,
  // and deleting it would drop that worker's result mid-save — only
  // files older than orphan_ttl (crash leftovers) are removed.
  // Removal/stat failures are ignored (another process may be
  // sweeping, or the writer may have just renamed the file away).
  const auto now = std::filesystem::file_time_type::clock::now();
  for (std::filesystem::directory_iterator it(options_.directory, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::filesystem::path& path = it->path();
    if (path.extension() != ".tmp") continue;
    if (options_.orphan_ttl.count() > 0) {
      std::error_code stat_ec;
      const auto mtime = std::filesystem::last_write_time(path, stat_ec);
      if (stat_ec) continue;  // vanished mid-sweep: a writer finished
      if (now - mtime < options_.orphan_ttl) {
        ++orphans_skipped_;
        continue;
      }
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(path, remove_ec) && !remove_ec) {
      ++orphans_removed_;
      std::cerr << "result store: removed orphaned temp file '"
                << path.string() << "'\n";
    }
  }
}

std::string ResultStore::key(const ScenarioSpec& spec,
                             std::uint64_t seed) const {
  return result_content_key(spec, options_.version, seed);
}

std::filesystem::path ResultStore::entry_path(const std::string& key) const {
  return options_.directory / (key + ".json");
}

std::optional<RunResult> ResultStore::load(const ScenarioSpec& spec,
                                           std::uint64_t seed) const {
  const std::filesystem::path path = entry_path(key(spec, seed));
  std::ifstream in(path);
  if (!in) {
    ++misses_;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const Json json = Json::parse(buffer.str());
    if (json.at("format").as_string() != kFormat) {
      ++misses_;
      return std::nullopt;
    }
    if (json.at("version").as_string() != options_.version) {
      ++misses_;
      return std::nullopt;
    }
    // Collision/corruption guard: the stored spec must be *identical*,
    // not merely hash-equal.
    if (json.at("spec").dump() != scenario_to_json(spec).dump()) {
      ++misses_;
      return std::nullopt;
    }
    RunResult result = run_result_from_json(json.at("result"));
    ++hits_;
    return result;
  } catch (const std::exception& e) {
    // A truncated or hand-edited entry is a miss, not a fatal error.
    // Catching std::exception (not just StatusError) matters: a corrupt
    // entry whose table rows are ragged surfaces from Table::add_row as
    // std::invalid_argument, and that must recompute, not crash. But
    // the operator still needs to hear about it — once per path, as a
    // structured Status naming the offending file.
    note_corrupt_entry(path, e.what());
    ++misses_;
    return std::nullopt;
  }
}

void ResultStore::note_corrupt_entry(const std::filesystem::path& path,
                                     const std::string& detail) const {
  ++corrupt_entries_;
  std::string quoted_path = "'";
  quoted_path += path.string();
  quoted_path += "'";
  std::string message = "result store: corrupt entry ";
  message += quoted_path;
  message += " treated as a miss (delete or regenerate it): ";
  message += detail;
  const Status status(StatusCode::kParseError, std::move(message));
  std::lock_guard<std::mutex> lock(warn_mutex_);
  for (const Status& seen : corruption_log_) {
    // Warn once per path; a hot spec would otherwise spam every load.
    if (seen.message().find(quoted_path) != std::string::npos) {
      return;
    }
  }
  corruption_log_.push_back(status);
  std::cerr << status.to_string() << "\n";
}

ResultStoreStats ResultStore::stats() const {
  ResultStoreStats stats;
  stats.hits = hits_.load();
  stats.misses = misses_.load();
  stats.inserts = inserts_.load();
  stats.corrupt_entries = corrupt_entries_.load();
  stats.orphans_removed = orphans_removed_.load();
  stats.orphans_skipped = orphans_skipped_.load();
  stats.transient_write_failures = transient_write_failures_.load();
  return stats;
}

std::vector<Status> ResultStore::corruption_log() const {
  std::lock_guard<std::mutex> lock(warn_mutex_);
  return corruption_log_;
}

void ResultStore::save(const ScenarioSpec& spec, const RunResult& result,
                       std::uint64_t seed) {
  if (!result.ok()) return;  // failures re-run next time
  const std::string entry_key = key(spec, seed);
  Json json = Json::object();
  json.set("format", Json(kFormat));
  json.set("key", Json(entry_key));
  json.set("version", Json(options_.version));
  json.set("seed", Json(static_cast<double>(seed)));
  json.set("spec", scenario_to_json(spec));
  json.set("result", run_result_to_json(result));
  const std::string payload = json.dump(2) + "\n";

  // The temp name must be unique per writer: with a shared store
  // directory, two processes computing the same (key, seed) would
  // otherwise stage into the *same* "<key>.json.tmp" — writer B
  // truncates A's half-written file, A renames B's torso into place,
  // and a corrupt entry lands under the final name. A pid + per-process
  // counter suffix gives every in-flight write its own staging file;
  // the final rename stays last-writer-wins atomic (same directory),
  // and since content keys are deterministic both writers rename
  // identical bytes anyway.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::filesystem::path path = entry_path(entry_key);
  const std::filesystem::path tmp =
      path.string() + "." + std::to_string(::getpid()) + "-" +
      std::to_string(tmp_counter.fetch_add(1)) + ".tmp";
  std::lock_guard<std::mutex> lock(io_mutex_);
  {
    errno = 0;
    std::ofstream out(tmp, std::ios::trunc);
    out << payload;
    out.flush();
    if (!out) {
      const int err = errno;
      // A half-written temp file must not linger as an orphan.
      std::error_code cleanup_ec;
      std::filesystem::remove(tmp, cleanup_ec);
      if (err == ENOSPC || err == EINTR || err == EAGAIN ||
          err == EDQUOT) {
        ++transient_write_failures_;
        throw StatusError(Status(
            StatusCode::kUnavailable,
            "result store: transient write failure for '" + tmp.string() +
                "' (" + std::strerror(err) + ") — retry later"));
      }
      throw StatusError(Status(StatusCode::kExecutionError,
                               "result store: write failed for '" +
                                   tmp.string() + "'"));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp, cleanup_ec);
    if (ec == std::errc::no_space_on_device ||
        ec == std::errc::interrupted ||
        ec == std::errc::resource_unavailable_try_again) {
      ++transient_write_failures_;
      throw StatusError(Status(
          StatusCode::kUnavailable,
          "result store: transient rename failure for '" + path.string() +
              "' (" + ec.message() + ") — retry later"));
    }
    throw StatusError(Status(StatusCode::kExecutionError,
                             "result store: rename failed for '" +
                                 path.string() + "': " + ec.message()));
  }
  ++inserts_;
}

std::vector<RunResult> ResultStore::run_all(
    SimEngine& engine, const std::vector<ScenarioSpec>& specs,
    std::size_t threads) {
  std::vector<RunResult> results(specs.size());
  std::vector<std::size_t> miss_indices;
  std::vector<ScenarioSpec> miss_specs;
  // load() itself counts the hit/miss split.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (auto cached = load(specs[i])) {
      results[i] = std::move(*cached);
    } else {
      miss_indices.push_back(i);
      miss_specs.push_back(specs[i]);
    }
  }
  if (miss_specs.empty()) return results;
  // Persist every miss the moment it completes (the callback runs on
  // the worker threads; save() serializes the file I/O), so an
  // interrupted run leaves all finished points behind. A failing save
  // (disk full, directory removed) must not take down the run — the
  // result still exists in memory; it just won't be cached. An
  // exception escaping a worker thread would call std::terminate.
  const std::vector<RunResult> fresh = engine.run_all(
      miss_specs, threads,
      [&](std::size_t miss_index, const RunResult& result) {
        try {
          save(miss_specs[miss_index], result);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(warn_mutex_);
          std::cerr << "result store: dropping cache entry for '"
                    << result.scenario << "': " << e.what() << "\n";
        }
      });
  for (std::size_t m = 0; m < miss_indices.size(); ++m) {
    results[miss_indices[m]] = fresh[m];
  }
  return results;
}

RunResult ResultStore::run_sweep(SimEngine& engine, const ScenarioSpec& base,
                                 const std::vector<SweepAxis>& axes,
                                 std::size_t threads) {
  const std::vector<ScenarioSpec> specs = expand_grid(base, axes);
  const std::size_t hits_before = hits_;
  const std::size_t misses_before = misses_;
  const std::vector<RunResult> runs = run_all(engine, specs, threads);
  RunResult merged = merge_sweep_results(base.name, base.workload, runs);
  merged.notes.push_back(
      Table::num(static_cast<long long>(runs.size())) +
      " grid points; store: " +
      Table::num(static_cast<long long>(hits_ - hits_before)) + " hits / " +
      Table::num(static_cast<long long>(misses_ - misses_before)) +
      " misses");
  return merged;
}

}  // namespace wi::sim

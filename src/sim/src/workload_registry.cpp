#include "wi/sim/workload.hpp"

#include <algorithm>
#include <utility>

namespace wi::sim {

void WorkloadRunner::payload_from_json(const Json&,
                                       ScenarioSpec& spec) const {
  // Payload-free workloads have no payload section; reaching this means
  // the document carried one anyway.
  throw StatusError(Status(
      StatusCode::kParseError,
      "scenario: workload '" + spec.workload + "' takes no payload"));
}

namespace {

/// Top-level keys of the scenario JSON document that can never name a
/// payload section.
[[nodiscard]] bool is_reserved_spec_key(const std::string& key) {
  for (const char* reserved :
       {"name", "description", "workload", "geometry", "link", "phy",
        "noc"}) {
    if (key == reserved) return true;
  }
  return false;
}

}  // namespace

void WorkloadRegistry::register_runner(
    std::unique_ptr<WorkloadRunner> runner) {
  if (runner == nullptr || runner->name().empty()) {
    throw StatusError(Status(StatusCode::kInvalidSpec,
                             "workload registration needs a named runner"));
  }
  const std::string name = runner->name();
  const std::string key = runner->payload_key();
  if (is_reserved_spec_key(name) || is_reserved_spec_key(key)) {
    // A payload section named like a shared spec section would make
    // every scenario document ambiguous to decode.
    throw StatusError(Status(
        StatusCode::kInvalidSpec,
        "workload '" + name + "' (payload key '" + key +
            "') collides with a reserved scenario JSON section"));
  }
  for (const auto& existing : runners_) {
    if (existing->name() == name) {
      throw StatusError(
          Status(StatusCode::kInvalidSpec,
                 "duplicate workload registration '" + name + "'"));
    }
    if (existing->payload_key() == key) {
      throw StatusError(Status(
          StatusCode::kInvalidSpec,
          "workload '" + name + "' reuses payload key '" + key +
              "' of workload '" + existing->name() + "'"));
    }
  }
  runners_.push_back(std::move(runner));
}

bool WorkloadRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const WorkloadRunner* WorkloadRegistry::find(const std::string& name) const {
  for (const auto& runner : runners_) {
    if (runner->name() == name) return runner.get();
  }
  return nullptr;
}

const WorkloadRunner& WorkloadRegistry::get(const std::string& name) const {
  if (const WorkloadRunner* runner = find(name)) return *runner;
  throw StatusError(Status(StatusCode::kInvalidSpec,
                           unknown_name_message("workload", name, names())));
}

const WorkloadRunner* WorkloadRegistry::find_by_payload_key(
    const std::string& key) const {
  for (const auto& runner : runners_) {
    if (runner->payload_key() == key) return runner.get();
  }
  return nullptr;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(runners_.size());
  for (const auto& runner : runners_) out.push_back(runner->name());
  std::sort(out.begin(), out.end());
  return out;
}

WorkloadRegistry& WorkloadRegistry::global() {
  // Built on first use (never during static initialization) from the
  // generated plugin list; leaked deliberately so lookups stay valid in
  // other static destructors.
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry;
    detail::register_builtin_workloads(*r);
    return r;
  }();
  return *registry;
}

std::vector<std::string> workload_headers(const std::string& workload) {
  if (const WorkloadRunner* runner =
          WorkloadRegistry::global().find(workload)) {
    return runner->headers();
  }
  return {"-"};
}

namespace {

[[nodiscard]] std::size_t edit_distance(const std::string& a,
                                        const std::string& b) {
  // Classic two-row Levenshtein; the candidate lists are tiny.
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, substitute});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::string unknown_name_message(const std::string& kind,
                                 const std::string& name,
                                 const std::vector<std::string>& known) {
  std::string message = "unknown " + kind + " '" + name + "'";
  const std::string suggestion = closest_name(name, known);
  if (!suggestion.empty()) {
    message += " (did you mean '" + suggestion + "'?)";
  }
  message += "; known " + kind + "s:";
  for (const auto& candidate : known) message += " " + candidate;
  return message;
}

std::string closest_name(const std::string& name,
                         const std::vector<std::string>& known) {
  std::string best;
  std::size_t best_distance = 0;
  for (const auto& candidate : known) {
    const std::size_t distance = edit_distance(name, candidate);
    if (best.empty() || distance < best_distance) {
      best = candidate;
      best_distance = distance;
    }
  }
  // Only suggest plausible typos: within a third of the name's length
  // (at least 2 edits, so short names still get suggestions).
  const std::size_t cutoff = std::max<std::size_t>(2, name.size() / 3);
  if (best.empty() || best_distance > cutoff) return {};
  return best;
}

}  // namespace wi::sim

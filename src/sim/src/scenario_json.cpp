#include "wi/sim/scenario_json.hpp"

#include <cmath>
#include <utility>

namespace wi::sim {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw StatusError(Status(StatusCode::kParseError, "scenario: " + message));
}

// ---------------------------------------------------------------------------
// Enum tables. Each enum is encoded by a short stable snake_case name.

template <typename Enum>
struct EnumEntry {
  Enum value;
  const char* name;
};

template <typename Enum, std::size_t N>
[[nodiscard]] const char* enum_name(const EnumEntry<Enum> (&table)[N],
                                    Enum value) {
  for (const auto& entry : table) {
    if (entry.value == value) return entry.name;
  }
  return "unknown";
}

template <typename Enum, std::size_t N>
[[nodiscard]] Enum enum_value(const EnumEntry<Enum> (&table)[N],
                              const std::string& name,
                              const char* enum_label) {
  for (const auto& entry : table) {
    if (name == entry.name) return entry.value;
  }
  std::string known;
  for (const auto& entry : table) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  fail(std::string("unknown ") + enum_label + " '" + name +
       "' (expected one of: " + known + ")");
}

constexpr EnumEntry<Workload> kWorkloads[] = {
    {Workload::kLinkBudgetTable, "link_budget_table"},
    {Workload::kPathlossCampaign, "pathloss_campaign"},
    {Workload::kTxPowerSweep, "tx_power_sweep"},
    {Workload::kLinkRate, "link_rate"},
    {Workload::kLinkPlan, "link_plan"},
    {Workload::kNocLatency, "noc_latency"},
    {Workload::kNicsStack, "nics_stack"},
    {Workload::kHybridSystem, "hybrid_system"},
    {Workload::kCodingPlan, "coding_plan"},
    {Workload::kImpulseResponse, "impulse_response"},
    {Workload::kIsiFilters, "isi_filters"},
    {Workload::kInfoRates, "info_rates"},
    {Workload::kAdcEnergy, "adc_energy"},
    {Workload::kThresholdSaturation, "threshold_saturation"},
    {Workload::kLdpcLatency, "ldpc_latency"},
    {Workload::kFlitSim, "flit_sim"},
};

constexpr EnumEntry<core::Beamforming> kBeamformings[] = {
    {core::Beamforming::kIdealSteering, "ideal_steering"},
    {core::Beamforming::kButlerMatrix, "butler_matrix"},
};

constexpr EnumEntry<core::PhyReceiver> kPhyReceivers[] = {
    {core::PhyReceiver::kOneBitSequence, "one_bit_sequence"},
    {core::PhyReceiver::kOneBitSymbolwise, "one_bit_symbolwise"},
    {core::PhyReceiver::kOneBitRect, "one_bit_rect"},
    {core::PhyReceiver::kUnquantized, "unquantized"},
};

constexpr EnumEntry<TopologySpec::Kind> kTopologyKinds[] = {
    {TopologySpec::Kind::kMesh2d, "mesh2d"},
    {TopologySpec::Kind::kStarMesh, "star_mesh"},
    {TopologySpec::Kind::kStarMeshIrl, "star_mesh_irl"},
    {TopologySpec::Kind::kMesh3d, "mesh3d"},
    {TopologySpec::Kind::kCiliatedMesh3d, "ciliated_mesh3d"},
    {TopologySpec::Kind::kPartialVertical3d, "partial_vertical3d"},
};

constexpr EnumEntry<TrafficKind> kTrafficKinds[] = {
    {TrafficKind::kUniform, "uniform"},
    {TrafficKind::kTranspose, "transpose"},
    {TrafficKind::kBitComplement, "bit_complement"},
    {TrafficKind::kHotspot, "hotspot"},
};

constexpr EnumEntry<RoutingKind> kRoutingKinds[] = {
    {RoutingKind::kDimensionOrder, "dimension_order"},
    {RoutingKind::kShortestPath, "shortest_path"},
};

constexpr EnumEntry<core::VerticalLinkTech> kVerticalTechs[] = {
    {core::VerticalLinkTech::kTsv, "tsv"},
    {core::VerticalLinkTech::kInductive, "inductive"},
    {core::VerticalLinkTech::kCapacitive, "capacitive"},
};

// ---------------------------------------------------------------------------
// Decoding helpers: visit every member of a JSON object exactly once;
// unhandled keys are reported with their owning section.

/// Largest double that is still an exact integer (2^53): counts and
/// seeds beyond it cannot round-trip through a JSON number, and casting
/// larger doubles to integer types is undefined behavior.
constexpr double kMaxExactInteger = 9007199254740992.0;

[[nodiscard]] bool is_exact_integer(double n) {
  return n >= 0.0 && n <= kMaxExactInteger && n == std::floor(n);
}

class ObjectReader {
 public:
  ObjectReader(const Json& json, std::string section)
      : json_(json), section_(std::move(section)) {
    if (!json.is_object()) fail(section_ + ": expected an object");
  }

  /// Calls `decode(value)` when `key` is present.
  template <typename Fn>
  void field(const char* key, Fn&& decode) {
    const Json* value = json_.find(key);
    if (value != nullptr) {
      handled_.push_back(key);
      decode(*value);
    }
  }

  void number(const char* key, double& out) {
    field(key, [&](const Json& v) { out = v.as_number(); });
  }

  void size(const char* key, std::size_t& out) {
    field(key, [&](const Json& v) {
      const double n = v.as_number();
      if (!is_exact_integer(n)) {
        fail(section_ + "." + key +
             ": expected a non-negative integer (<= 2^53)");
      }
      out = static_cast<std::size_t>(n);
    });
  }

  void u64(const char* key, std::uint64_t& out) {
    field(key, [&](const Json& v) {
      const double n = v.as_number();
      if (!is_exact_integer(n)) {
        fail(section_ + "." + key +
             ": expected a non-negative integer (<= 2^53)");
      }
      out = static_cast<std::uint64_t>(n);
    });
  }

  void boolean(const char* key, bool& out) {
    field(key, [&](const Json& v) { out = v.as_bool(); });
  }

  void string(const char* key, std::string& out) {
    field(key, [&](const Json& v) { out = v.as_string(); });
  }

  template <typename Enum, std::size_t N>
  void enumeration(const char* key, const EnumEntry<Enum> (&table)[N],
                   Enum& out) {
    field(key, [&](const Json& v) {
      out = enum_value(table, v.as_string(), key);
    });
  }

  void number_list(const char* key, std::vector<double>& out) {
    field(key, [&](const Json& v) {
      out.clear();
      for (const auto& item : v.as_array()) out.push_back(item.as_number());
    });
  }

  void size_list(const char* key, std::vector<std::size_t>& out) {
    field(key, [&](const Json& v) {
      out.clear();
      for (const auto& item : v.as_array()) {
        const double n = item.as_number();
        if (!is_exact_integer(n)) {
          fail(section_ + "." + key +
               ": expected non-negative integers (<= 2^53)");
        }
        out.push_back(static_cast<std::size_t>(n));
      }
    });
  }

  /// Must be called after all field() registrations: rejects document
  /// keys that no field() consumed (typos would otherwise silently
  /// leave a default value in place).
  void finish() const {
    for (const auto& [key, value] : json_.as_object()) {
      bool known = false;
      for (const char* h : handled_) {
        if (key == h) {
          known = true;
          break;
        }
      }
      if (!known) fail(section_ + ": unknown key '" + key + "'");
    }
  }

 private:
  const Json& json_;
  std::string section_;
  std::vector<const char*> handled_;
};

[[nodiscard]] Json number_list_json(const std::vector<double>& values) {
  Json array = Json::array();
  for (const double v : values) array.push_back(Json(v));
  return array;
}

[[nodiscard]] Json size_list_json(const std::vector<std::size_t>& values) {
  Json array = Json::array();
  for (const std::size_t v : values) {
    array.push_back(Json(static_cast<double>(v)));
  }
  return array;
}

// ---------------------------------------------------------------------------
// Per-struct encoders/decoders.

[[nodiscard]] Json model_to_json(const noc::QueueingModelParams& m) {
  Json json = Json::object();
  json.set("router_delay_cycles", Json(m.router_delay_cycles));
  json.set("link_delay_cycles", Json(m.link_delay_cycles));
  json.set("local_delay_cycles", Json(m.local_delay_cycles));
  json.set("channel_efficiency", Json(m.channel_efficiency));
  json.set("packet_length_flits", Json(m.packet_length_flits));
  return json;
}

void model_from_json(const Json& json, const std::string& section,
                     noc::QueueingModelParams& m) {
  ObjectReader reader(json, section);
  reader.number("router_delay_cycles", m.router_delay_cycles);
  reader.number("link_delay_cycles", m.link_delay_cycles);
  reader.number("local_delay_cycles", m.local_delay_cycles);
  reader.number("channel_efficiency", m.channel_efficiency);
  reader.number("packet_length_flits", m.packet_length_flits);
  reader.finish();
}

}  // namespace

const char* beamforming_name(core::Beamforming value) {
  return enum_name(kBeamformings, value);
}
const char* phy_receiver_name(core::PhyReceiver value) {
  return enum_name(kPhyReceivers, value);
}
const char* topology_kind_name(TopologySpec::Kind value) {
  return enum_name(kTopologyKinds, value);
}
const char* traffic_kind_name(TrafficKind value) {
  return enum_name(kTrafficKinds, value);
}
const char* routing_kind_name(RoutingKind value) {
  return enum_name(kRoutingKinds, value);
}
const char* vertical_tech_name(core::VerticalLinkTech value) {
  return enum_name(kVerticalTechs, value);
}

Json scenario_to_json(const ScenarioSpec& spec) {
  Json json = Json::object();
  json.set("name", Json(spec.name));
  json.set("description", Json(spec.description));
  json.set("workload", Json(enum_name(kWorkloads, spec.workload)));

  {
    Json g = Json::object();
    g.set("boards", Json(static_cast<double>(spec.geometry.boards)));
    g.set("board_size_mm", Json(spec.geometry.board_size_mm));
    g.set("separation_mm", Json(spec.geometry.separation_mm));
    g.set("nodes_per_edge",
          Json(static_cast<double>(spec.geometry.nodes_per_edge)));
    json.set("geometry", std::move(g));
  }
  {
    Json budget = Json::object();
    const auto& b = spec.link.budget;
    budget.set("carrier_freq_hz", Json(b.carrier_freq_hz));
    budget.set("bandwidth_hz", Json(b.bandwidth_hz));
    budget.set("rx_noise_figure_db", Json(b.rx_noise_figure_db));
    budget.set("path_loss_exponent", Json(b.path_loss_exponent));
    budget.set("array_gain_db", Json(b.array_gain_db));
    budget.set("butler_inaccuracy_db", Json(b.butler_inaccuracy_db));
    budget.set("polarization_mismatch_db", Json(b.polarization_mismatch_db));
    budget.set("implementation_loss_db", Json(b.implementation_loss_db));
    budget.set("rx_temperature_k", Json(b.rx_temperature_k));
    Json link = Json::object();
    link.set("budget", std::move(budget));
    link.set("beamforming", Json(beamforming_name(spec.link.beamforming)));
    link.set("ptx_dbm", Json(spec.link.ptx_dbm));
    link.set("target_snr_db", Json(spec.link.target_snr_db));
    json.set("link", std::move(link));
  }
  {
    Json phy = Json::object();
    phy.set("receiver", Json(phy_receiver_name(spec.phy.receiver)));
    phy.set("bandwidth_hz", Json(spec.phy.bandwidth_hz));
    phy.set("polarizations",
            Json(static_cast<double>(spec.phy.polarizations)));
    json.set("phy", std::move(phy));
  }
  {
    Json pathloss = Json::object();
    pathloss.set("seed", Json(static_cast<double>(spec.pathloss.seed)));
    json.set("pathloss", std::move(pathloss));
  }
  {
    Json tx = Json::object();
    tx.set("snr_lo_db", Json(spec.tx_power.snr_lo_db));
    tx.set("snr_hi_db", Json(spec.tx_power.snr_hi_db));
    tx.set("snr_step_db", Json(spec.tx_power.snr_step_db));
    tx.set("shortest_m", Json(spec.tx_power.shortest_m));
    tx.set("longest_m", Json(spec.tx_power.longest_m));
    json.set("tx_power", std::move(tx));
  }
  {
    const auto& t = spec.noc.topology;
    Json topology = Json::object();
    topology.set("kind", Json(topology_kind_name(t.kind)));
    topology.set("kx", Json(static_cast<double>(t.kx)));
    topology.set("ky", Json(static_cast<double>(t.ky)));
    topology.set("kz", Json(static_cast<double>(t.kz)));
    topology.set("concentration", Json(static_cast<double>(t.concentration)));
    topology.set("irl", Json(static_cast<double>(t.irl)));
    topology.set("tsv_period", Json(static_cast<double>(t.tsv_period)));
    topology.set("vertical_bandwidth", Json(t.vertical_bandwidth));
    Json noc = Json::object();
    noc.set("topology", std::move(topology));
    noc.set("traffic", Json(traffic_kind_name(spec.noc.traffic)));
    noc.set("hotspot_module",
            Json(static_cast<double>(spec.noc.hotspot_module)));
    noc.set("hotspot_fraction", Json(spec.noc.hotspot_fraction));
    noc.set("routing", Json(routing_kind_name(spec.noc.routing)));
    noc.set("model", model_to_json(spec.noc.model));
    noc.set("injection_rates", number_list_json(spec.noc.injection_rates));
    noc.set("des_check_rate", Json(spec.noc.des_check_rate));
    noc.set("des_seed", Json(static_cast<double>(spec.noc.des_seed)));
    json.set("noc", std::move(noc));
  }
  {
    const auto& f = spec.flit;
    Json flit = Json::object();
    flit.set("injection_rates", number_list_json(f.injection_rates));
    flit.set("warmup_cycles", Json(static_cast<double>(f.warmup_cycles)));
    flit.set("measure_cycles", Json(static_cast<double>(f.measure_cycles)));
    flit.set("drain_cycles", Json(static_cast<double>(f.drain_cycles)));
    flit.set("buffer_depth", Json(static_cast<double>(f.buffer_depth)));
    flit.set("seed", Json(static_cast<double>(f.seed)));
    json.set("flit", std::move(flit));
  }
  {
    const auto& c = spec.nics.config;
    Json nics = Json::object();
    nics.set("layers", Json(static_cast<double>(c.layers)));
    nics.set("mesh_k", Json(static_cast<double>(c.mesh_k)));
    nics.set("tech", Json(vertical_tech_name(c.tech)));
    nics.set("vertical_period",
             Json(static_cast<double>(c.vertical_period)));
    nics.set("vertical_traffic_fraction", Json(c.vertical_traffic_fraction));
    nics.set("model", model_to_json(c.model));
    json.set("nics", std::move(nics));
  }
  {
    const auto& c = spec.hybrid.config;
    Json hybrid = Json::object();
    hybrid.set("boards", Json(static_cast<double>(c.boards)));
    hybrid.set("mesh_k", Json(static_cast<double>(c.mesh_k)));
    hybrid.set("inter_board_fraction", Json(c.inter_board_fraction));
    hybrid.set("wireless_bandwidth", Json(c.wireless_bandwidth));
    hybrid.set("backplane_bandwidth", Json(c.backplane_bandwidth));
    hybrid.set("wireless_node_fraction", Json(c.wireless_node_fraction));
    hybrid.set("model", model_to_json(c.model));
    json.set("hybrid", std::move(hybrid));
  }
  {
    Json coding = Json::object();
    coding.set("latency_budgets_bits",
               number_list_json(spec.coding.latency_budgets_bits));
    coding.set("deployed_lifting",
               Json(static_cast<double>(spec.coding.deployed_lifting)));
    coding.set("ebn0_db", Json(spec.coding.ebn0_db));
    json.set("coding", std::move(coding));
  }
  {
    Json impulse = Json::object();
    impulse.set("distance_m", Json(spec.impulse.distance_m));
    impulse.set("max_delay_ns", Json(spec.impulse.max_delay_ns));
    impulse.set("decimation",
                Json(static_cast<double>(spec.impulse.decimation)));
    impulse.set("seed", Json(static_cast<double>(spec.impulse.seed)));
    json.set("impulse", std::move(impulse));
  }
  {
    Json isi = Json::object();
    isi.set("design_snr_db", Json(spec.isi.design_snr_db));
    isi.set("mc_symbols", Json(static_cast<double>(spec.isi.mc_symbols)));
    isi.set("mc_seed", Json(static_cast<double>(spec.isi.mc_seed)));
    isi.set("reoptimize", Json(spec.isi.reoptimize));
    json.set("isi", std::move(isi));
  }
  {
    Json info = Json::object();
    info.set("snr_lo_db", Json(spec.info_rate.snr_lo_db));
    info.set("snr_hi_db", Json(spec.info_rate.snr_hi_db));
    info.set("snr_step_db", Json(spec.info_rate.snr_step_db));
    info.set("mc_symbols",
             Json(static_cast<double>(spec.info_rate.mc_symbols)));
    info.set("mc_seed", Json(static_cast<double>(spec.info_rate.mc_seed)));
    json.set("info_rate", std::move(info));
  }
  {
    Json adc = Json::object();
    adc.set("walden_fom_fj", Json(spec.adc.walden_fom_fj));
    adc.set("snr_db", Json(spec.adc.snr_db));
    adc.set("symbol_rate_hz", Json(spec.adc.symbol_rate_hz));
    adc.set("mc_symbols", Json(static_cast<double>(spec.adc.mc_symbols)));
    adc.set("mc_seed", Json(static_cast<double>(spec.adc.mc_seed)));
    json.set("adc", std::move(adc));
  }
  {
    Json saturation = Json::object();
    saturation.set("terminations",
                   size_list_json(spec.saturation.terminations));
    saturation.set("threshold_tolerance",
                   Json(spec.saturation.threshold_tolerance));
    json.set("saturation", std::move(saturation));
  }
  {
    const auto& l = spec.ldpc;
    Json ldpc = Json::object();
    ldpc.set("target_ber", Json(l.target_ber));
    ldpc.set("min_errors", Json(static_cast<double>(l.min_errors)));
    ldpc.set("max_codewords", Json(static_cast<double>(l.max_codewords)));
    ldpc.set("max_bp_iterations",
             Json(static_cast<double>(l.max_bp_iterations)));
    ldpc.set("termination", Json(static_cast<double>(l.termination)));
    Json curves = Json::array();
    for (const auto& curve : l.cc_curves) {
      Json c = Json::object();
      c.set("lifting", Json(static_cast<double>(curve.lifting)));
      c.set("window_lo", Json(static_cast<double>(curve.window_lo)));
      c.set("window_hi", Json(static_cast<double>(curve.window_hi)));
      curves.push_back(std::move(c));
    }
    ldpc.set("cc_curves", std::move(curves));
    ldpc.set("bc_liftings", size_list_json(l.bc_liftings));
    ldpc.set("search_lo_db", Json(l.search_lo_db));
    ldpc.set("search_hi_db", Json(l.search_hi_db));
    ldpc.set("search_step_db", Json(l.search_step_db));
    json.set("ldpc", std::move(ldpc));
  }
  return json;
}

ScenarioSpec scenario_from_json(const Json& json) {
  ScenarioSpec spec;
  ObjectReader reader(json, "scenario");
  reader.string("name", spec.name);
  reader.string("description", spec.description);
  reader.enumeration("workload", kWorkloads, spec.workload);

  reader.field("geometry", [&](const Json& v) {
    ObjectReader r(v, "geometry");
    r.size("boards", spec.geometry.boards);
    r.number("board_size_mm", spec.geometry.board_size_mm);
    r.number("separation_mm", spec.geometry.separation_mm);
    r.size("nodes_per_edge", spec.geometry.nodes_per_edge);
    r.finish();
  });
  reader.field("link", [&](const Json& v) {
    ObjectReader r(v, "link");
    r.field("budget", [&](const Json& b) {
      ObjectReader br(b, "link.budget");
      auto& budget = spec.link.budget;
      br.number("carrier_freq_hz", budget.carrier_freq_hz);
      br.number("bandwidth_hz", budget.bandwidth_hz);
      br.number("rx_noise_figure_db", budget.rx_noise_figure_db);
      br.number("path_loss_exponent", budget.path_loss_exponent);
      br.number("array_gain_db", budget.array_gain_db);
      br.number("butler_inaccuracy_db", budget.butler_inaccuracy_db);
      br.number("polarization_mismatch_db", budget.polarization_mismatch_db);
      br.number("implementation_loss_db", budget.implementation_loss_db);
      br.number("rx_temperature_k", budget.rx_temperature_k);
      br.finish();
    });
    r.enumeration("beamforming", kBeamformings, spec.link.beamforming);
    r.number("ptx_dbm", spec.link.ptx_dbm);
    r.number("target_snr_db", spec.link.target_snr_db);
    r.finish();
  });
  reader.field("phy", [&](const Json& v) {
    ObjectReader r(v, "phy");
    r.enumeration("receiver", kPhyReceivers, spec.phy.receiver);
    r.number("bandwidth_hz", spec.phy.bandwidth_hz);
    r.size("polarizations", spec.phy.polarizations);
    r.finish();
  });
  reader.field("pathloss", [&](const Json& v) {
    ObjectReader r(v, "pathloss");
    r.u64("seed", spec.pathloss.seed);
    r.finish();
  });
  reader.field("tx_power", [&](const Json& v) {
    ObjectReader r(v, "tx_power");
    r.number("snr_lo_db", spec.tx_power.snr_lo_db);
    r.number("snr_hi_db", spec.tx_power.snr_hi_db);
    r.number("snr_step_db", spec.tx_power.snr_step_db);
    r.number("shortest_m", spec.tx_power.shortest_m);
    r.number("longest_m", spec.tx_power.longest_m);
    r.finish();
  });
  reader.field("noc", [&](const Json& v) {
    ObjectReader r(v, "noc");
    r.field("topology", [&](const Json& t) {
      ObjectReader tr(t, "noc.topology");
      auto& topology = spec.noc.topology;
      tr.enumeration("kind", kTopologyKinds, topology.kind);
      tr.size("kx", topology.kx);
      tr.size("ky", topology.ky);
      tr.size("kz", topology.kz);
      tr.size("concentration", topology.concentration);
      tr.size("irl", topology.irl);
      tr.size("tsv_period", topology.tsv_period);
      tr.number("vertical_bandwidth", topology.vertical_bandwidth);
      tr.finish();
    });
    r.enumeration("traffic", kTrafficKinds, spec.noc.traffic);
    r.size("hotspot_module", spec.noc.hotspot_module);
    r.number("hotspot_fraction", spec.noc.hotspot_fraction);
    r.enumeration("routing", kRoutingKinds, spec.noc.routing);
    r.field("model", [&](const Json& m) {
      model_from_json(m, "noc.model", spec.noc.model);
    });
    r.number_list("injection_rates", spec.noc.injection_rates);
    r.number("des_check_rate", spec.noc.des_check_rate);
    r.u64("des_seed", spec.noc.des_seed);
    r.finish();
  });
  reader.field("flit", [&](const Json& v) {
    ObjectReader r(v, "flit");
    auto& f = spec.flit;
    r.number_list("injection_rates", f.injection_rates);
    r.size("warmup_cycles", f.warmup_cycles);
    r.size("measure_cycles", f.measure_cycles);
    r.size("drain_cycles", f.drain_cycles);
    r.size("buffer_depth", f.buffer_depth);
    r.u64("seed", f.seed);
    r.finish();
  });
  reader.field("nics", [&](const Json& v) {
    ObjectReader r(v, "nics");
    auto& config = spec.nics.config;
    r.size("layers", config.layers);
    r.size("mesh_k", config.mesh_k);
    r.enumeration("tech", kVerticalTechs, config.tech);
    r.size("vertical_period", config.vertical_period);
    r.number("vertical_traffic_fraction", config.vertical_traffic_fraction);
    r.field("model", [&](const Json& m) {
      model_from_json(m, "nics.model", config.model);
    });
    r.finish();
  });
  reader.field("hybrid", [&](const Json& v) {
    ObjectReader r(v, "hybrid");
    auto& config = spec.hybrid.config;
    r.size("boards", config.boards);
    r.size("mesh_k", config.mesh_k);
    r.number("inter_board_fraction", config.inter_board_fraction);
    r.number("wireless_bandwidth", config.wireless_bandwidth);
    r.number("backplane_bandwidth", config.backplane_bandwidth);
    r.number("wireless_node_fraction", config.wireless_node_fraction);
    r.field("model", [&](const Json& m) {
      model_from_json(m, "hybrid.model", config.model);
    });
    r.finish();
  });
  reader.field("coding", [&](const Json& v) {
    ObjectReader r(v, "coding");
    r.number_list("latency_budgets_bits", spec.coding.latency_budgets_bits);
    r.size("deployed_lifting", spec.coding.deployed_lifting);
    r.number("ebn0_db", spec.coding.ebn0_db);
    r.finish();
  });
  reader.field("impulse", [&](const Json& v) {
    ObjectReader r(v, "impulse");
    r.number("distance_m", spec.impulse.distance_m);
    r.number("max_delay_ns", spec.impulse.max_delay_ns);
    r.size("decimation", spec.impulse.decimation);
    r.u64("seed", spec.impulse.seed);
    r.finish();
  });
  reader.field("isi", [&](const Json& v) {
    ObjectReader r(v, "isi");
    r.number("design_snr_db", spec.isi.design_snr_db);
    r.size("mc_symbols", spec.isi.mc_symbols);
    r.u64("mc_seed", spec.isi.mc_seed);
    r.boolean("reoptimize", spec.isi.reoptimize);
    r.finish();
  });
  reader.field("info_rate", [&](const Json& v) {
    ObjectReader r(v, "info_rate");
    r.number("snr_lo_db", spec.info_rate.snr_lo_db);
    r.number("snr_hi_db", spec.info_rate.snr_hi_db);
    r.number("snr_step_db", spec.info_rate.snr_step_db);
    r.size("mc_symbols", spec.info_rate.mc_symbols);
    r.u64("mc_seed", spec.info_rate.mc_seed);
    r.finish();
  });
  reader.field("adc", [&](const Json& v) {
    ObjectReader r(v, "adc");
    r.number("walden_fom_fj", spec.adc.walden_fom_fj);
    r.number("snr_db", spec.adc.snr_db);
    r.number("symbol_rate_hz", spec.adc.symbol_rate_hz);
    r.size("mc_symbols", spec.adc.mc_symbols);
    r.u64("mc_seed", spec.adc.mc_seed);
    r.finish();
  });
  reader.field("saturation", [&](const Json& v) {
    ObjectReader r(v, "saturation");
    r.size_list("terminations", spec.saturation.terminations);
    r.number("threshold_tolerance", spec.saturation.threshold_tolerance);
    r.finish();
  });
  reader.field("ldpc", [&](const Json& v) {
    ObjectReader r(v, "ldpc");
    auto& l = spec.ldpc;
    r.number("target_ber", l.target_ber);
    r.size("min_errors", l.min_errors);
    r.size("max_codewords", l.max_codewords);
    r.size("max_bp_iterations", l.max_bp_iterations);
    r.size("termination", l.termination);
    r.field("cc_curves", [&](const Json& curves) {
      l.cc_curves.clear();
      for (const auto& item : curves.as_array()) {
        LdpcCurveSpec curve;
        ObjectReader cr(item, "ldpc.cc_curves[]");
        cr.size("lifting", curve.lifting);
        cr.size("window_lo", curve.window_lo);
        cr.size("window_hi", curve.window_hi);
        cr.finish();
        l.cc_curves.push_back(curve);
      }
    });
    r.size_list("bc_liftings", l.bc_liftings);
    r.number("search_lo_db", l.search_lo_db);
    r.number("search_hi_db", l.search_hi_db);
    r.number("search_step_db", l.search_step_db);
    r.finish();
  });
  reader.finish();
  return spec;
}

std::string scenario_to_string(const ScenarioSpec& spec) {
  return scenario_to_json(spec).dump();
}

ScenarioSpec scenario_from_string(const std::string& text) {
  return scenario_from_json(Json::parse(text));
}

}  // namespace wi::sim

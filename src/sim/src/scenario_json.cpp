#include "wi/sim/scenario_json.hpp"

#include <utility>

#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {

const char* beamforming_name(core::Beamforming value) {
  return enum_name(kBeamformings, value);
}
const char* phy_receiver_name(core::PhyReceiver value) {
  return enum_name(kPhyReceivers, value);
}
const char* topology_kind_name(TopologySpec::Kind value) {
  return enum_name(kTopologyKinds, value);
}
const char* traffic_kind_name(TrafficKind value) {
  return enum_name(kTrafficKinds, value);
}
const char* traffic_mode_name(TrafficMode value) {
  return enum_name(kTrafficModes, value);
}
const char* routing_kind_name(RoutingKind value) {
  return enum_name(kRoutingKinds, value);
}

Json scenario_to_json(const ScenarioSpec& spec) {
  Json json = Json::object();
  json.set("name", Json(spec.name));
  json.set("description", Json(spec.description));
  json.set("workload", Json(spec.workload));

  {
    Json g = Json::object();
    g.set("boards", Json(static_cast<double>(spec.geometry.boards)));
    g.set("board_size_mm", Json(spec.geometry.board_size_mm));
    g.set("separation_mm", Json(spec.geometry.separation_mm));
    g.set("nodes_per_edge",
          Json(static_cast<double>(spec.geometry.nodes_per_edge)));
    json.set("geometry", std::move(g));
  }
  {
    Json budget = Json::object();
    const auto& b = spec.link.budget;
    budget.set("carrier_freq_hz", Json(b.carrier_freq_hz));
    budget.set("bandwidth_hz", Json(b.bandwidth_hz));
    budget.set("rx_noise_figure_db", Json(b.rx_noise_figure_db));
    budget.set("path_loss_exponent", Json(b.path_loss_exponent));
    budget.set("array_gain_db", Json(b.array_gain_db));
    budget.set("butler_inaccuracy_db", Json(b.butler_inaccuracy_db));
    budget.set("polarization_mismatch_db", Json(b.polarization_mismatch_db));
    budget.set("implementation_loss_db", Json(b.implementation_loss_db));
    budget.set("rx_temperature_k", Json(b.rx_temperature_k));
    Json link = Json::object();
    link.set("budget", std::move(budget));
    link.set("beamforming", Json(beamforming_name(spec.link.beamforming)));
    link.set("ptx_dbm", Json(spec.link.ptx_dbm));
    link.set("target_snr_db", Json(spec.link.target_snr_db));
    json.set("link", std::move(link));
  }
  {
    Json phy = Json::object();
    phy.set("receiver", Json(phy_receiver_name(spec.phy.receiver)));
    phy.set("bandwidth_hz", Json(spec.phy.bandwidth_hz));
    phy.set("polarizations",
            Json(static_cast<double>(spec.phy.polarizations)));
    json.set("phy", std::move(phy));
  }
  {
    const auto& t = spec.noc.topology;
    Json topology = Json::object();
    topology.set("kind", Json(topology_kind_name(t.kind)));
    topology.set("kx", Json(static_cast<double>(t.kx)));
    topology.set("ky", Json(static_cast<double>(t.ky)));
    topology.set("kz", Json(static_cast<double>(t.kz)));
    topology.set("concentration", Json(static_cast<double>(t.concentration)));
    topology.set("irl", Json(static_cast<double>(t.irl)));
    topology.set("tsv_period", Json(static_cast<double>(t.tsv_period)));
    topology.set("vertical_bandwidth", Json(t.vertical_bandwidth));
    Json noc = Json::object();
    noc.set("topology", std::move(topology));
    noc.set("traffic", Json(traffic_kind_name(spec.noc.traffic)));
    noc.set("traffic_mode", Json(traffic_mode_name(spec.noc.traffic_mode)));
    noc.set("hotspot_module",
            Json(static_cast<double>(spec.noc.hotspot_module)));
    noc.set("hotspot_fraction", Json(spec.noc.hotspot_fraction));
    noc.set("routing", Json(routing_kind_name(spec.noc.routing)));
    noc.set("model", model_to_json(spec.noc.model));
    noc.set("injection_rates", number_list_json(spec.noc.injection_rates));
    noc.set("des_check_rate", Json(spec.noc.des_check_rate));
    noc.set("des_seed", Json(static_cast<double>(spec.noc.des_seed)));
    json.set("noc", std::move(noc));
  }
  // Per-workload payload, dispatched through the registry. Unregistered
  // workload names still serialize (without a payload section) so
  // diagnostics can show the spec; decoding rejects them.
  if (const WorkloadRunner* runner =
          WorkloadRegistry::global().find(spec.workload)) {
    Json payload = runner->payload_to_json(spec);
    if (!payload.is_null()) {
      json.set(runner->payload_key(), std::move(payload));
    }
  }
  return json;
}

ScenarioSpec scenario_from_json(const Json& json) {
  ScenarioSpec spec;
  ObjectReader reader(json, "scenario");
  reader.string("name", spec.name);
  reader.string("description", spec.description);
  reader.string("workload", spec.workload);

  const WorkloadRegistry& registry = WorkloadRegistry::global();
  const WorkloadRunner* runner = registry.find(spec.workload);
  if (runner == nullptr) {
    codec_fail(
        unknown_name_message("workload", spec.workload, registry.names()));
  }

  reader.field("geometry", [&](const Json& v) {
    ObjectReader r(v, "geometry");
    r.size("boards", spec.geometry.boards);
    r.number("board_size_mm", spec.geometry.board_size_mm);
    r.number("separation_mm", spec.geometry.separation_mm);
    r.size("nodes_per_edge", spec.geometry.nodes_per_edge);
    r.finish();
  });
  reader.field("link", [&](const Json& v) {
    ObjectReader r(v, "link");
    r.field("budget", [&](const Json& b) {
      ObjectReader br(b, "link.budget");
      auto& budget = spec.link.budget;
      br.number("carrier_freq_hz", budget.carrier_freq_hz);
      br.number("bandwidth_hz", budget.bandwidth_hz);
      br.number("rx_noise_figure_db", budget.rx_noise_figure_db);
      br.number("path_loss_exponent", budget.path_loss_exponent);
      br.number("array_gain_db", budget.array_gain_db);
      br.number("butler_inaccuracy_db", budget.butler_inaccuracy_db);
      br.number("polarization_mismatch_db", budget.polarization_mismatch_db);
      br.number("implementation_loss_db", budget.implementation_loss_db);
      br.number("rx_temperature_k", budget.rx_temperature_k);
      br.finish();
    });
    r.enumeration("beamforming", kBeamformings, spec.link.beamforming);
    r.number("ptx_dbm", spec.link.ptx_dbm);
    r.number("target_snr_db", spec.link.target_snr_db);
    r.finish();
  });
  reader.field("phy", [&](const Json& v) {
    ObjectReader r(v, "phy");
    r.enumeration("receiver", kPhyReceivers, spec.phy.receiver);
    r.number("bandwidth_hz", spec.phy.bandwidth_hz);
    r.size("polarizations", spec.phy.polarizations);
    r.finish();
  });
  reader.field("noc", [&](const Json& v) {
    ObjectReader r(v, "noc");
    r.field("topology", [&](const Json& t) {
      ObjectReader tr(t, "noc.topology");
      auto& topology = spec.noc.topology;
      tr.enumeration("kind", kTopologyKinds, topology.kind);
      tr.size("kx", topology.kx);
      tr.size("ky", topology.ky);
      tr.size("kz", topology.kz);
      tr.size("concentration", topology.concentration);
      tr.size("irl", topology.irl);
      tr.size("tsv_period", topology.tsv_period);
      tr.number("vertical_bandwidth", topology.vertical_bandwidth);
      tr.finish();
    });
    r.enumeration("traffic", kTrafficKinds, spec.noc.traffic);
    r.enumeration("traffic_mode", kTrafficModes, spec.noc.traffic_mode);
    r.size("hotspot_module", spec.noc.hotspot_module);
    r.number("hotspot_fraction", spec.noc.hotspot_fraction);
    r.enumeration("routing", kRoutingKinds, spec.noc.routing);
    r.field("model", [&](const Json& m) {
      model_from_json(m, "noc.model", spec.noc.model);
    });
    r.number_list("injection_rates", spec.noc.injection_rates);
    r.number("des_check_rate", spec.noc.des_check_rate);
    r.u64("des_seed", spec.noc.des_seed);
    r.finish();
  });
  // The selected workload's payload section.
  reader.field(runner->payload_key(), [&](const Json& v) {
    runner->payload_from_json(v, spec);
  });
  // A payload key of a *different* workload is a likely copy/paste or
  // workload-selection mistake; say so instead of a bare unknown-key.
  for (const auto& [key, value] : json.as_object()) {
    if (key == runner->payload_key()) continue;
    if (const WorkloadRunner* owner = registry.find_by_payload_key(key)) {
      codec_fail("payload key '" + key + "' belongs to workload '" +
                 owner->name() + "', not '" + spec.workload + "'");
    }
  }
  reader.finish();
  return spec;
}

std::string scenario_to_string(const ScenarioSpec& spec) {
  return scenario_to_json(spec).dump();
}

ScenarioSpec scenario_from_string(const std::string& text) {
  return scenario_from_json(Json::parse(text));
}

}  // namespace wi::sim

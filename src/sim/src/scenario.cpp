#include "wi/sim/scenario.hpp"

#include <charconv>
#include <cmath>

namespace wi::sim {

namespace {

[[nodiscard]] std::string format_value(double value) {
  // Shortest round-trip representation: distinct axis values always get
  // distinct grid-point names.
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "nan";
  return {buffer, end};
}

[[nodiscard]] Status invalid(const std::string& message) {
  return {StatusCode::kInvalidSpec, message};
}

}  // namespace

const char* workload_name(Workload workload) {
  switch (workload) {
    case Workload::kLinkBudgetTable: return "link_budget_table";
    case Workload::kPathlossCampaign: return "pathloss_campaign";
    case Workload::kTxPowerSweep: return "tx_power_sweep";
    case Workload::kLinkRate: return "link_rate";
    case Workload::kLinkPlan: return "link_plan";
    case Workload::kNocLatency: return "noc_latency";
    case Workload::kNicsStack: return "nics_stack";
    case Workload::kHybridSystem: return "hybrid_system";
    case Workload::kCodingPlan: return "coding_plan";
    case Workload::kImpulseResponse: return "impulse_response";
    case Workload::kIsiFilters: return "isi_filters";
    case Workload::kInfoRates: return "info_rates";
    case Workload::kAdcEnergy: return "adc_energy";
    case Workload::kThresholdSaturation: return "threshold_saturation";
    case Workload::kLdpcLatency: return "ldpc_latency";
    case Workload::kFlitSim: return "flit_sim";
  }
  return "unknown";
}

noc::Topology TopologySpec::build() const {
  try {
    switch (kind) {
      case Kind::kMesh2d:
        return noc::Topology::mesh_2d(kx, ky);
      case Kind::kStarMesh:
        return noc::Topology::star_mesh(kx, ky, concentration);
      case Kind::kStarMeshIrl:
        return noc::Topology::star_mesh_irl(kx, ky, concentration, irl);
      case Kind::kMesh3d:
        return noc::Topology::mesh_3d(kx, ky, kz);
      case Kind::kCiliatedMesh3d:
        return noc::Topology::ciliated_mesh_3d(kx, ky, kz, concentration);
      case Kind::kPartialVertical3d:
        return noc::Topology::partial_vertical_mesh_3d(kx, ky, kz, tsv_period,
                                                       vertical_bandwidth);
    }
  } catch (const std::invalid_argument& e) {
    throw StatusError(invalid(std::string("TopologySpec: ") + e.what()));
  }
  throw StatusError(invalid("TopologySpec: unknown topology kind"));
}

std::size_t TopologySpec::module_count() const {
  switch (kind) {
    case Kind::kMesh2d:
      return kx * ky;
    case Kind::kStarMesh:
    case Kind::kStarMeshIrl:
      return kx * ky * concentration;
    case Kind::kMesh3d:
    case Kind::kPartialVertical3d:
      return kx * ky * kz;
    case Kind::kCiliatedMesh3d:
      return kx * ky * kz * concentration;
  }
  return 0;
}

Status ScenarioSpec::validate() const {
  if (name.empty()) return invalid("scenario name must not be empty");
  if (geometry.boards < 1) return invalid(name + ": boards must be >= 1");
  if (geometry.board_size_mm <= 0.0) {
    return invalid(name + ": board_size_mm must be > 0");
  }
  if (geometry.separation_mm <= 0.0) {
    return invalid(name + ": separation_mm must be > 0");
  }
  if (geometry.nodes_per_edge < 1) {
    return invalid(name + ": nodes_per_edge must be >= 1");
  }
  if ((workload == Workload::kLinkRate || workload == Workload::kLinkPlan) &&
      geometry.boards < 2) {
    // Board-to-board links need at least two boards.
    return invalid(name + ": link workloads need >= 2 boards");
  }
  if (link.budget.bandwidth_hz <= 0.0) {
    return invalid(name + ": link bandwidth must be > 0");
  }
  if (phy.bandwidth_hz <= 0.0) {
    return invalid(name + ": phy bandwidth must be > 0");
  }
  if (phy.polarizations < 1) {
    return invalid(name + ": polarizations must be >= 1");
  }
  if (workload == Workload::kPathlossCampaign &&
      link.budget.carrier_freq_hz != rf::LinkBudgetParams{}.carrier_freq_hz) {
    // The synthetic VNA campaign measures at the paper's fixed carrier;
    // a model at a different carrier would silently stop tracking the
    // measurement columns.
    return invalid(name +
                   ": the pathloss campaign runs at the fixed 232.5 GHz "
                   "carrier; carrier_freq_hz cannot be overridden");
  }
  if (workload == Workload::kTxPowerSweep) {
    if (tx_power.snr_step_db <= 0.0) {
      return invalid(name + ": snr_step_db must be > 0");
    }
    if (tx_power.snr_hi_db < tx_power.snr_lo_db) {
      return invalid(name + ": snr_hi_db must be >= snr_lo_db");
    }
    if (tx_power.shortest_m <= 0.0 || tx_power.longest_m <= 0.0) {
      return invalid(name + ": link distances must be > 0");
    }
  }
  if (workload == Workload::kNocLatency || workload == Workload::kFlitSim) {
    const auto& t = noc.topology;
    if (t.kx < 1 || t.ky < 1 || t.kz < 1) {
      return invalid(name + ": topology dimensions must be >= 1");
    }
    if (t.concentration < 1) {
      return invalid(name + ": concentration must be >= 1");
    }
    if (t.irl < 1) return invalid(name + ": irl must be >= 1");
    if (t.tsv_period < 1) return invalid(name + ": tsv_period must be >= 1");
    for (const double rate : noc.injection_rates) {
      if (rate < 0.0) {
        return invalid(name + ": injection rates must be >= 0");
      }
    }
    if (noc.traffic == TrafficKind::kHotspot) {
      if (noc.hotspot_fraction < 0.0 || noc.hotspot_fraction > 1.0) {
        return invalid(name + ": hotspot_fraction must be in [0, 1]");
      }
      if (noc.hotspot_module >= t.module_count()) {
        return invalid(name + ": hotspot_module out of range for " +
                       std::to_string(t.module_count()) + " modules");
      }
    }
  }
  if (workload == Workload::kFlitSim) {
    if (flit.measure_cycles < 1) {
      return invalid(name + ": flit measure_cycles must be >= 1");
    }
    if (flit.buffer_depth < 1) {
      return invalid(name + ": flit buffer_depth must be >= 1");
    }
    for (const double rate : flit.injection_rates) {
      if (rate < 0.0) {
        return invalid(name + ": flit injection rates must be >= 0");
      }
    }
  }
  if (workload == Workload::kNicsStack) {
    const auto& c = nics.config;
    if (c.layers < 1 || c.mesh_k < 1) {
      return invalid(name + ": stack layers and mesh_k must be >= 1");
    }
    if (c.vertical_period < 1) {
      return invalid(name + ": vertical_period must be >= 1");
    }
    if (c.vertical_traffic_fraction < 0.0 ||
        c.vertical_traffic_fraction > 1.0) {
      return invalid(name + ": vertical_traffic_fraction must be in [0, 1]");
    }
  }
  if (workload == Workload::kHybridSystem) {
    const auto& c = hybrid.config;
    if (c.boards < 2) return invalid(name + ": hybrid system needs >= 2 boards");
    if (c.mesh_k < 1) return invalid(name + ": mesh_k must be >= 1");
    if (c.inter_board_fraction < 0.0 || c.inter_board_fraction > 1.0) {
      return invalid(name + ": inter_board_fraction must be in [0, 1]");
    }
    if (c.wireless_node_fraction < 0.0 || c.wireless_node_fraction > 1.0) {
      return invalid(name + ": wireless_node_fraction must be in [0, 1]");
    }
    if (c.wireless_bandwidth <= 0.0 || c.backplane_bandwidth <= 0.0) {
      return invalid(name + ": link bandwidths must be > 0");
    }
  }
  if (workload == Workload::kCodingPlan) {
    if (coding.latency_budgets_bits.empty()) {
      return invalid(name + ": latency_budgets_bits must not be empty");
    }
    for (const double budget : coding.latency_budgets_bits) {
      if (!(budget > 0.0)) {
        return invalid(name + ": latency budgets must be > 0");
      }
    }
  }
  if (workload == Workload::kImpulseResponse) {
    if (impulse.distance_m <= 0.0) {
      return invalid(name + ": impulse distance_m must be > 0");
    }
    if (impulse.max_delay_ns <= 0.0) {
      return invalid(name + ": max_delay_ns must be > 0");
    }
    if (impulse.decimation < 1) {
      return invalid(name + ": decimation must be >= 1");
    }
  }
  if (workload == Workload::kIsiFilters && isi.mc_symbols < 1) {
    return invalid(name + ": isi mc_symbols must be >= 1");
  }
  if (workload == Workload::kInfoRates) {
    if (info_rate.snr_step_db <= 0.0) {
      return invalid(name + ": info_rate snr_step_db must be > 0");
    }
    if (info_rate.snr_hi_db < info_rate.snr_lo_db) {
      return invalid(name + ": info_rate snr_hi_db must be >= snr_lo_db");
    }
    if (info_rate.mc_symbols < 1) {
      return invalid(name + ": info_rate mc_symbols must be >= 1");
    }
  }
  if (workload == Workload::kAdcEnergy) {
    if (adc.walden_fom_fj <= 0.0) {
      return invalid(name + ": walden_fom_fj must be > 0");
    }
    if (adc.symbol_rate_hz <= 0.0) {
      return invalid(name + ": adc symbol_rate_hz must be > 0");
    }
    if (adc.mc_symbols < 1) {
      return invalid(name + ": adc mc_symbols must be >= 1");
    }
  }
  if (workload == Workload::kThresholdSaturation) {
    if (saturation.terminations.empty()) {
      return invalid(name + ": saturation terminations must not be empty");
    }
    for (const std::size_t termination : saturation.terminations) {
      if (termination < 1) {
        return invalid(name + ": saturation terminations must be >= 1");
      }
    }
    if (saturation.threshold_tolerance <= 0.0) {
      return invalid(name + ": threshold_tolerance must be > 0");
    }
  }
  if (workload == Workload::kLdpcLatency) {
    const auto& l = ldpc;
    if (!(l.target_ber > 0.0 && l.target_ber < 1.0)) {
      return invalid(name + ": target_ber must be in (0, 1)");
    }
    if (l.min_errors < 1 || l.max_codewords < 1 ||
        l.max_bp_iterations < 1 || l.termination < 1) {
      return invalid(name + ": ldpc Monte-Carlo settings must be >= 1");
    }
    if (l.cc_curves.empty() && l.bc_liftings.empty()) {
      return invalid(name + ": ldpc needs at least one CC curve or BC point");
    }
    for (const auto& curve : l.cc_curves) {
      if (curve.lifting < 1 || curve.window_lo < 1 ||
          curve.window_hi < curve.window_lo) {
        return invalid(name + ": ldpc cc_curves need lifting/window_lo >= 1 "
                              "and window_hi >= window_lo");
      }
    }
    for (const std::size_t lifting : l.bc_liftings) {
      if (lifting < 1) return invalid(name + ": bc_liftings must be >= 1");
    }
    if (l.search_step_db <= 0.0 || l.search_hi_db < l.search_lo_db) {
      return invalid(name + ": ldpc Eb/N0 search bracket is inverted");
    }
  }
  return Status::ok();
}

std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const std::vector<SweepAxis>& axes) {
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw StatusError(invalid("sweep axis '" + axis.name + "' is empty"));
    }
    if (!axis.apply) {
      throw StatusError(
          invalid("sweep axis '" + axis.name + "' has no apply function"));
    }
  }
  std::vector<ScenarioSpec> out;
  std::size_t total = 1;
  for (const auto& axis : axes) total *= axis.values.size();
  out.reserve(total);
  // Mixed-radix counter over the axes; first axis varies slowest.
  std::vector<std::size_t> index(axes.size(), 0);
  for (std::size_t point = 0; point < total; ++point) {
    ScenarioSpec spec = base;
    std::string suffix;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const double value = axes[a].values[index[a]];
      axes[a].apply(spec, value);
      suffix += (a == 0 ? "/" : ";") + axes[a].name + "=" +
                format_value(value);
    }
    spec.name += suffix;
    out.push_back(std::move(spec));
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++index[a] < axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return out;
}

}  // namespace wi::sim

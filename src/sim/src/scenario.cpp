#include "wi/sim/scenario.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "wi/sim/workload.hpp"

namespace wi::sim {

namespace {

[[nodiscard]] std::string format_value(double value) {
  // Shortest round-trip representation: distinct axis values always get
  // distinct grid-point names.
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "nan";
  return {buffer, end};
}

[[nodiscard]] Status invalid(const std::string& message) {
  return {StatusCode::kInvalidSpec, message};
}

}  // namespace

ScenarioSpec::ScenarioSpec(const ScenarioSpec& other)
    : name(other.name),
      description(other.description),
      workload(other.workload),
      geometry(other.geometry),
      link(other.link),
      phy(other.phy),
      noc(other.noc),
      payload_(other.payload_ ? other.payload_->clone() : nullptr) {}

ScenarioSpec& ScenarioSpec::operator=(const ScenarioSpec& other) {
  if (this != &other) {
    name = other.name;
    description = other.description;
    workload = other.workload;
    geometry = other.geometry;
    link = other.link;
    phy = other.phy;
    noc = other.noc;
    payload_ = other.payload_ ? other.payload_->clone() : nullptr;
  }
  return *this;
}

noc::Topology TopologySpec::build() const {
  try {
    switch (kind) {
      case Kind::kMesh2d:
        return noc::Topology::mesh_2d(kx, ky);
      case Kind::kStarMesh:
        return noc::Topology::star_mesh(kx, ky, concentration);
      case Kind::kStarMeshIrl:
        return noc::Topology::star_mesh_irl(kx, ky, concentration, irl);
      case Kind::kMesh3d:
        return noc::Topology::mesh_3d(kx, ky, kz);
      case Kind::kCiliatedMesh3d:
        return noc::Topology::ciliated_mesh_3d(kx, ky, kz, concentration);
      case Kind::kPartialVertical3d:
        return noc::Topology::partial_vertical_mesh_3d(kx, ky, kz, tsv_period,
                                                       vertical_bandwidth);
    }
  } catch (const std::invalid_argument& e) {
    throw StatusError(invalid(std::string("TopologySpec: ") + e.what()));
  }
  throw StatusError(invalid("TopologySpec: unknown topology kind"));
}

std::size_t TopologySpec::module_count() const {
  switch (kind) {
    case Kind::kMesh2d:
      return kx * ky;
    case Kind::kStarMesh:
    case Kind::kStarMeshIrl:
      return kx * ky * concentration;
    case Kind::kMesh3d:
    case Kind::kPartialVertical3d:
      return kx * ky * kz;
    case Kind::kCiliatedMesh3d:
      return kx * ky * kz * concentration;
  }
  return 0;
}

Status NocSpec::validate(const std::string& scenario_name) const {
  const auto& t = topology;
  if (t.kx < 1 || t.ky < 1 || t.kz < 1) {
    return invalid(scenario_name + ": topology dimensions must be >= 1");
  }
  if (t.concentration < 1) {
    return invalid(scenario_name + ": concentration must be >= 1");
  }
  if (t.irl < 1) return invalid(scenario_name + ": irl must be >= 1");
  if (t.tsv_period < 1) {
    return invalid(scenario_name + ": tsv_period must be >= 1");
  }
  for (const double rate : injection_rates) {
    if (rate < 0.0) {
      return invalid(scenario_name + ": injection rates must be >= 0");
    }
  }
  if (traffic == TrafficKind::kHotspot) {
    if (hotspot_fraction < 0.0 || hotspot_fraction > 1.0) {
      return invalid(scenario_name + ": hotspot_fraction must be in [0, 1]");
    }
    if (hotspot_module >= t.module_count()) {
      return invalid(scenario_name + ": hotspot_module out of range for " +
                     std::to_string(t.module_count()) + " modules");
    }
  }
  if (traffic == TrafficKind::kTornado) {
    if (t.module_count() != t.kx * t.ky * t.kz) {
      return invalid(scenario_name +
                     ": tornado traffic requires one module per router");
    }
    if (t.kx < 3 && t.ky < 3 && t.kz < 3) {
      return invalid(scenario_name +
                     ": tornado traffic needs a mesh extent >= 3 (every "
                     "half-ring shift is zero below that)");
    }
  }
  return Status::ok();
}

noc::TrafficPattern NocSpec::build_traffic(std::size_t modules) const {
  const bool implicit = traffic_mode == TrafficMode::kImplicit;
  switch (traffic) {
    case TrafficKind::kUniform:
      return implicit ? noc::TrafficPattern::implicit_uniform(modules)
                      : noc::TrafficPattern::uniform(modules);
    case TrafficKind::kTranspose:
      return implicit ? noc::TrafficPattern::implicit_transpose(modules)
                      : noc::TrafficPattern::transpose(modules);
    case TrafficKind::kBitComplement:
      return implicit ? noc::TrafficPattern::implicit_bit_complement(modules)
                      : noc::TrafficPattern::bit_complement(modules);
    case TrafficKind::kHotspot:
      return implicit ? noc::TrafficPattern::implicit_hotspot(
                            modules, hotspot_module, hotspot_fraction)
                      : noc::TrafficPattern::hotspot(modules, hotspot_module,
                                                     hotspot_fraction);
    case TrafficKind::kTornado:
      return implicit
                 ? noc::TrafficPattern::implicit_tornado(
                       modules, topology.kx, topology.ky, topology.kz)
                 : noc::TrafficPattern::tornado(modules, topology.kx,
                                                topology.ky, topology.kz);
  }
  throw StatusError(
      Status(StatusCode::kUnsupported, "unknown traffic kind"));
}

std::unique_ptr<noc::Routing> NocSpec::build_routing() const {
  if (routing == RoutingKind::kShortestPath) {
    return std::make_unique<noc::ShortestPathRouting>();
  }
  return std::make_unique<noc::DimensionOrderRouting>();
}

Status ScenarioSpec::validate() const {
  if (name.empty()) return invalid("scenario name must not be empty");
  if (geometry.boards < 1) return invalid(name + ": boards must be >= 1");
  if (geometry.board_size_mm <= 0.0) {
    return invalid(name + ": board_size_mm must be > 0");
  }
  if (geometry.separation_mm <= 0.0) {
    return invalid(name + ": separation_mm must be > 0");
  }
  if (geometry.nodes_per_edge < 1) {
    return invalid(name + ": nodes_per_edge must be >= 1");
  }
  if (link.budget.bandwidth_hz <= 0.0) {
    return invalid(name + ": link bandwidth must be > 0");
  }
  if (phy.bandwidth_hz <= 0.0) {
    return invalid(name + ": phy bandwidth must be > 0");
  }
  if (phy.polarizations < 1) {
    return invalid(name + ": polarizations must be >= 1");
  }
  // Workload-specific checks live with the workload's runner; an
  // unregistered workload name (or a payload of the wrong type) is
  // itself an invalid spec.
  try {
    return WorkloadRegistry::global().get(workload).validate(*this);
  } catch (const StatusError& e) {
    return e.status();
  }
}

std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& base,
                                      const std::vector<SweepAxis>& axes) {
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw StatusError(invalid("sweep axis '" + axis.name + "' is empty"));
    }
    if (!axis.apply) {
      throw StatusError(
          invalid("sweep axis '" + axis.name + "' has no apply function"));
    }
  }
  std::vector<ScenarioSpec> out;
  std::size_t total = 1;
  for (const auto& axis : axes) total *= axis.values.size();
  out.reserve(total);
  // Mixed-radix counter over the axes; first axis varies slowest.
  std::vector<std::size_t> index(axes.size(), 0);
  for (std::size_t point = 0; point < total; ++point) {
    ScenarioSpec spec = base;
    std::string suffix;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const double value = axes[a].values[index[a]];
      axes[a].apply(spec, value);
      suffix += (a == 0 ? "/" : ";") + axes[a].name + "=" +
                format_value(value);
    }
    spec.name += suffix;
    out.push_back(std::move(spec));
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++index[a] < axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return out;
}

}  // namespace wi::sim

/// \file nics_stack.cpp
/// \brief "nics_stack" workload plugin: Sec. IV 3D chip-stack
///        configuration (vertical-link density/technology).

#include "wi/sim/workloads/nics_stack.hpp"

#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

constexpr EnumEntry<core::VerticalLinkTech> kVerticalTechs[] = {
    {core::VerticalLinkTech::kTsv, "tsv"},
    {core::VerticalLinkTech::kInductive, "inductive"},
    {core::VerticalLinkTech::kCapacitive, "capacitive"},
};

class NicsStackRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "nics_stack"; }
  std::string payload_key() const override { return "nics"; }
  std::string description() const override {
    return "Sec. IV: one 3D chip-stack configuration";
  }
  std::vector<std::string> headers() const override {
    return {"tech", "period", "vertical_links", "area_cost", "lat0_cycles",
            "saturation"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<NicsSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& c = spec.payload<NicsSpec>().config;
    Json json = Json::object();
    json.set("layers", Json(static_cast<double>(c.layers)));
    json.set("mesh_k", Json(static_cast<double>(c.mesh_k)));
    json.set("tech", Json(vertical_tech_name(c.tech)));
    json.set("vertical_period",
             Json(static_cast<double>(c.vertical_period)));
    json.set("vertical_traffic_fraction", Json(c.vertical_traffic_fraction));
    json.set("model", model_to_json(c.model));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& config = spec.payload<NicsSpec>().config;
    ObjectReader reader(json, "nics");
    reader.size("layers", config.layers);
    reader.size("mesh_k", config.mesh_k);
    reader.enumeration("tech", kVerticalTechs, config.tech);
    reader.size("vertical_period", config.vertical_period);
    reader.number("vertical_traffic_fraction",
                  config.vertical_traffic_fraction);
    reader.field("model", [&](const Json& m) {
      model_from_json(m, "nics.model", config.model);
    });
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& c = spec.payload<NicsSpec>().config;
    if (c.layers < 1 || c.mesh_k < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": stack layers and mesh_k must be >= 1"};
    }
    if (c.vertical_period < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": vertical_period must be >= 1"};
    }
    if (c.vertical_traffic_fraction < 0.0 ||
        c.vertical_traffic_fraction > 1.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": vertical_traffic_fraction must be in [0, 1]"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv&) const override {
    Table table(headers());
    const auto& config = spec.payload<NicsSpec>().config;
    const core::NicsStackModel model(config);
    const auto eval = model.evaluate();
    const auto params = core::vertical_link_params(config.tech);
    table.add_row(
        {params.name,
         Table::num(static_cast<long long>(config.vertical_period)),
         Table::num(eval.vertical_link_count, 0),
         Table::num(eval.area_cost, 0),
         Table::num(eval.zero_load_latency_cycles, 2),
         Table::num(eval.saturation_rate, 3)});
    return table;
  }
};

}  // namespace

const char* vertical_tech_name(core::VerticalLinkTech value) {
  return enum_name(kVerticalTechs, value);
}

WI_SIM_REGISTER_WORKLOAD(nics_stack, NicsStackRunner)

}  // namespace wi::sim

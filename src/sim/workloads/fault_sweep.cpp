/// \file fault_sweep.cpp
/// \brief "fault_sweep" workload plugin: link/router failure-rate sweep
///        over the flit-level DES with fault-tolerant rerouting —
///        latency and throughput degradation vs failure probability.
///
/// Each row reruns the same traffic (identical seed and RNG draw
/// sequence) under a heavier FaultSchedule, so the degradation columns
/// isolate the effect of the failures. Unreachable destinations arrive
/// as wi::Status values in the result, never as throws: one bad row
/// cannot abort the sweep.

#include "wi/sim/workloads/fault_sweep.hpp"

#include "wi/noc/flit_sim.hpp"
#include "wi/sim/fault_codec.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class FaultSweepRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "fault_sweep"; }
  std::string description() const override {
    return "link/router failure sweep: DES degradation under rerouting";
  }
  std::vector<std::string> headers() const override {
    return {"fail_rate",   "dead_links", "dead_routers", "latency_cycles",
            "throughput",  "delivered",  "dropped",      "unreachable",
            "thr_degraded", "status"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<FaultSweepSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& s = spec.payload<FaultSweepSpec>();
    Json json = Json::object();
    json.set("fail_rates", number_list_json(s.fail_rates));
    json.set("router_fail_fraction", Json(s.router_fail_fraction));
    json.set("injection_rate", Json(s.injection_rate));
    json.set("fault", fault_to_json(s.fault));
    json.set("warmup_cycles", Json(static_cast<double>(s.warmup_cycles)));
    json.set("measure_cycles", Json(static_cast<double>(s.measure_cycles)));
    json.set("drain_cycles", Json(static_cast<double>(s.drain_cycles)));
    json.set("buffer_depth", Json(static_cast<double>(s.buffer_depth)));
    json.set("seed", Json(static_cast<double>(s.seed)));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& s = spec.payload<FaultSweepSpec>();
    ObjectReader reader(json, "fault_sweep");
    reader.number_list("fail_rates", s.fail_rates);
    reader.number("router_fail_fraction", s.router_fail_fraction);
    reader.number("injection_rate", s.injection_rate);
    reader.field("fault", [&](const Json& v) {
      fault_from_json(v, "fault_sweep.fault", s.fault);
    });
    reader.size("warmup_cycles", s.warmup_cycles);
    reader.size("measure_cycles", s.measure_cycles);
    reader.size("drain_cycles", s.drain_cycles);
    reader.size("buffer_depth", s.buffer_depth);
    reader.u64("seed", s.seed);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const Status noc = spec.noc.validate(spec.name);
    if (!noc.is_ok()) return noc;
    const auto& s = spec.payload<FaultSweepSpec>();
    for (const double rate : s.fail_rates) {
      if (rate < 0.0 || rate > 1.0) {
        return {StatusCode::kInvalidSpec,
                spec.name + ": fault_sweep fail_rates must be in [0, 1]"};
      }
    }
    if (s.router_fail_fraction < 0.0 || s.router_fail_fraction > 1.0) {
      return {StatusCode::kInvalidSpec,
              spec.name +
                  ": fault_sweep router_fail_fraction must be in [0, 1]"};
    }
    if (s.injection_rate < 0.0 || s.injection_rate >= 1.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": fault_sweep injection_rate must be in [0, 1)"};
    }
    if (s.measure_cycles < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": fault_sweep measure_cycles must be >= 1"};
    }
    if (s.buffer_depth < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": fault_sweep buffer_depth must be >= 1"};
    }
    return s.fault.validate(spec.name);
  }

  void apply_seed(ScenarioSpec& spec, std::uint64_t seed) const override {
    // Campaigns vary the failure pattern and the traffic together: both
    // streams derive from the replica seed (the fault layer separates
    // them by Stream, the traffic RNG by its own generator).
    auto& s = spec.payload<FaultSweepSpec>();
    s.seed = seed;
    s.fault.seed = seed;
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const FaultSweepSpec& s = spec.payload<FaultSweepSpec>();
    const noc::Topology topology = spec.noc.topology.build();
    const auto routing = spec.noc.build_routing();
    const noc::TrafficPattern traffic =
        spec.noc.build_traffic(topology.module_count());
    noc::FlitSimConfig config;
    config.warmup_cycles = s.warmup_cycles;
    config.measure_cycles = s.measure_cycles;
    config.drain_cycles = s.drain_cycles;
    config.buffer_depth = s.buffer_depth;
    config.seed = s.seed;
    // Faults strike while traffic flows; the drain tail only empties
    // queues, so the activation horizon is warmup + measure.
    const std::uint64_t horizon =
        static_cast<std::uint64_t>(s.warmup_cycles + s.measure_cycles);

    const auto baseline = simulate_network(topology, *routing, traffic,
                                           s.injection_rate, config);
    std::vector<double> rates = s.fail_rates;
    if (rates.empty()) rates = {0.0, 0.02, 0.05, 0.1, 0.2};
    std::size_t noted_failures = 0;
    for (const double rate : rates) {
      fault::FaultSpec row_fault = s.fault;
      row_fault.link_fail_rate = rate;
      row_fault.router_fail_rate = rate * s.router_fail_fraction;
      const auto schedule = fault::FaultSchedule::derive(
          row_fault, topology.link_count(), topology.router_count(), horizon);
      const auto des = simulate_network(topology, *routing, traffic,
                                        s.injection_rate, config, schedule);
      const double degraded =
          baseline.delivered_per_cycle > 0.0
              ? 1.0 - des.delivered_per_cycle / baseline.delivered_per_cycle
              : 0.0;
      table.add_row(
          {Table::num(rate, 3),
           Table::num(static_cast<long long>(des.dead_links)),
           Table::num(static_cast<long long>(des.dead_routers)),
           Table::num(des.mean_latency_cycles, 4),
           Table::num(des.delivered_per_cycle, 5),
           Table::num(static_cast<long long>(des.delivered)),
           Table::num(static_cast<long long>(des.dropped)),
           Table::num(static_cast<long long>(des.unreachable)),
           Table::num(degraded, 4),
           des.route_failures.empty()
               ? std::string("ok")
               : std::string(status_code_name(
                     des.route_failures.front().code()))});
      for (const Status& failure : des.route_failures) {
        if (noted_failures >= 4) break;
        ++noted_failures;
        env.note("fail_rate " + Table::num(rate, 3) + ": " +
                 failure.to_string());
      }
    }
    env.note("topology: " + topology.name());
    env.note("baseline (no faults): latency " +
             Table::num(baseline.mean_latency_cycles, 2) + " cycles, " +
             Table::num(baseline.delivered_per_cycle, 4) +
             " flits/cycle/module at load " +
             Table::num(s.injection_rate, 3));
    env.note("fault window: [" + Table::num(s.fault.window_begin, 2) + ", " +
             Table::num(s.fault.window_end, 2) + "] of " +
             Table::num(static_cast<long long>(horizon)) +
             " cycles, fault seed " +
             Table::num(static_cast<long long>(s.fault.seed)));
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(fault_sweep, FaultSweepRunner)

}  // namespace wi::sim

/// \file link_plan.cpp
/// \brief "link_plan" workload plugin: plan all board-to-board links of
///        a geometry (no payload).

#include "wi/sim/workload.hpp"

#include <algorithm>
#include <limits>

#include "wi/core/geometry.hpp"
#include "wi/core/link_planner.hpp"

namespace wi::sim {
namespace {

class LinkPlanRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "link_plan"; }
  std::string description() const override {
    return "plan all board-to-board links of a geometry";
  }
  std::vector<std::string> headers() const override {
    return {"src", "dst", "distance_mm", "angle_deg", "reqd_ptx_dbm",
            "snr_db", "phy_rate_gbps"};
  }

  Status validate(const ScenarioSpec& spec) const override {
    if (spec.geometry.boards < 2) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": link workloads need >= 2 boards"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const core::WirelessLinkPlanner planner(spec.link.budget,
                                            spec.link.beamforming);
    const auto curve = env.phy_cache().get(
        spec.phy.receiver, spec.phy.bandwidth_hz, spec.phy.polarizations);
    const core::BoardGeometry geometry(
        spec.geometry.boards, spec.geometry.board_size_mm,
        spec.geometry.separation_mm, spec.geometry.nodes_per_edge);
    const auto links = planner.plan(geometry, spec.link.ptx_dbm,
                                    spec.link.target_snr_db);
    double min_rate = std::numeric_limits<double>::infinity();
    double max_rate = 0.0;
    for (const auto& link : links) {
      const double phy_rate = curve->link_rate_gbps(link.snr_db);
      min_rate = std::min(min_rate, phy_rate);
      max_rate = std::max(max_rate, phy_rate);
      table.add_row({Table::num(static_cast<long long>(link.src_node)),
                     Table::num(static_cast<long long>(link.dst_node)),
                     Table::num(link.distance_mm, 1),
                     Table::num(link.steering_angle_deg, 1),
                     Table::num(link.required_ptx_dbm, 2),
                     Table::num(link.snr_db, 2), Table::num(phy_rate, 2)});
    }
    env.note(links.empty()
                 ? std::string("no adjacent-board links in this geometry")
                 : Table::num(static_cast<long long>(links.size())) +
                       " adjacent-board links planned; PHY rate " +
                       Table::num(min_rate, 1) + " - " +
                       Table::num(max_rate, 1) + " Gbit/s");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(link_plan, LinkPlanRunner)

}  // namespace wi::sim

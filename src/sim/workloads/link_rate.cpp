/// \file link_rate.cpp
/// \brief "link_rate" workload plugin: link SNR -> PHY data rate for
///        the extreme board-to-board links (quickstart; no payload).

#include "wi/sim/workload.hpp"

#include <cmath>

#include "wi/core/geometry.hpp"
#include "wi/rf/link_budget.hpp"

namespace wi::sim {
namespace {

class LinkRateRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "link_rate"; }
  std::string description() const override {
    return "link SNR -> PHY data rate on the extreme links (quickstart)";
  }
  std::vector<std::string> headers() const override {
    return {"link", "distance_m", "ptx_dbm", "snr_db", "phy_rate_gbps",
            "shannon_gbps"};
  }

  Status validate(const ScenarioSpec& spec) const override {
    if (spec.geometry.boards < 2) {
      // Board-to-board links need at least two boards.
      return {StatusCode::kInvalidSpec,
              spec.name + ": link workloads need >= 2 boards"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const rf::LinkBudget budget(spec.link.budget);
    const auto curve = env.phy_cache().get(
        spec.phy.receiver, spec.phy.bandwidth_hz, spec.phy.polarizations);
    const core::BoardGeometry geometry(
        spec.geometry.boards, spec.geometry.board_size_mm,
        spec.geometry.separation_mm, spec.geometry.nodes_per_edge);
    const bool butler =
        spec.link.beamforming == core::Beamforming::kButlerMatrix;
    const bool dual_pol = spec.phy.polarizations >= 2;
    struct Case {
      const char* name;
      double distance_m;
      bool mismatch;
    };
    const Case cases[] = {
        {"ahead", geometry.shortest_link_mm() / 1e3, false},
        {"diagonal", geometry.longest_link_mm() / 1e3, butler},
        // Table I's 300 mm worst-case link (larger rack scenario).
        {"table1_worst", rf::kLongestLink_m, butler},
    };
    for (const Case& c : cases) {
      const double snr =
          budget.snr_db(spec.link.ptx_dbm, c.distance_m, c.mismatch);
      table.add_row(
          {c.name, Table::num(c.distance_m, 3),
           Table::num(spec.link.ptx_dbm, 1), Table::num(snr, 2),
           Table::num(curve->link_rate_gbps(snr), 2),
           Table::num(budget.shannon_rate_bps(snr, dual_pol) / 1e9, 2)});
    }
    env.note("PTX for " + Table::num(spec.link.target_snr_db, 1) +
             " dB SNR on the 300 mm worst-case link: " +
             Table::num(budget.required_tx_power_dbm(spec.link.target_snr_db,
                                                     rf::kLongestLink_m,
                                                     butler),
                        2) +
             " dBm");
    const double snr_100g = curve->required_snr_db(100.0);
    env.note(std::isinf(snr_100g)
                 ? std::string("100 Gbit/s unreachable with this receiver")
                 : "SNR for 100 Gbit/s: " + Table::num(snr_100g, 2) + " dB");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(link_rate, LinkRateRunner)

}  // namespace wi::sim

/// \file isi_filters.cpp
/// \brief "isi_filters" workload plugin: the four Fig. 5 ISI filter
///        designs for the 1-bit 5x-oversampling receiver.

#include "wi/sim/workloads/isi_filters.hpp"

#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class IsiFiltersRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "isi_filters"; }
  std::string payload_key() const override { return "isi"; }
  std::string description() const override {
    return "Fig. 5: the four ISI filter designs";
  }
  std::vector<std::string> headers() const override {
    return {"design", "tau_over_T", "h"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<IsiSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& isi = spec.payload<IsiSpec>();
    Json json = Json::object();
    json.set("design_snr_db", Json(isi.design_snr_db));
    json.set("mc_symbols", Json(static_cast<double>(isi.mc_symbols)));
    json.set("mc_seed", Json(static_cast<double>(isi.mc_seed)));
    json.set("reoptimize", Json(isi.reoptimize));
    json.set("opt_max_evals", Json(static_cast<double>(isi.opt_max_evals)));
    json.set("opt_restarts", Json(static_cast<double>(isi.opt_restarts)));
    json.set("opt_mc_symbols",
             Json(static_cast<double>(isi.opt_mc_symbols)));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& isi = spec.payload<IsiSpec>();
    ObjectReader reader(json, "isi");
    reader.number("design_snr_db", isi.design_snr_db);
    reader.size("mc_symbols", isi.mc_symbols);
    reader.u64("mc_seed", isi.mc_seed);
    reader.boolean("reoptimize", isi.reoptimize);
    reader.size("opt_max_evals", isi.opt_max_evals);
    reader.size("opt_restarts", isi.opt_restarts);
    reader.size("opt_mc_symbols", isi.opt_mc_symbols);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    if (spec.payload<IsiSpec>().mc_symbols < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": isi mc_symbols must be >= 1"};
    }
    return Status::ok();
  }

  void apply_seed(ScenarioSpec& spec, std::uint64_t seed) const override {
    spec.payload<IsiSpec>().mc_seed = seed;
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    using comm::IsiFilter;
    Table table(headers());
    const IsiSpec& isi = spec.payload<IsiSpec>();
    const comm::Constellation c4 = comm::Constellation::ask(4);
    comm::FilterDesignOptions options;
    options.design_snr_db = isi.design_snr_db;
    if (isi.opt_max_evals > 0) {
      options.max_evals = static_cast<int>(isi.opt_max_evals);
    }
    if (isi.opt_restarts > 0) {
      options.restarts = static_cast<int>(isi.opt_restarts);
    }
    if (isi.opt_mc_symbols > 0) {
      options.sequence_mc_symbols = isi.opt_mc_symbols;
    }
    struct Design {
      const char* name;
      IsiFilter filter;
    };
    const std::vector<Design> designs = {
        {"rectangular", IsiFilter::rectangular(5)},
        {"optimal_symbolwise",
         isi.reoptimize ? comm::optimize_filter_symbolwise(c4, options)
                        : comm::paper_filter_symbolwise()},
        {"optimal_sequence",
         isi.reoptimize ? comm::optimize_filter_sequence(c4, options)
                        : comm::paper_filter_sequence()},
        {"suboptimal",
         isi.reoptimize ? comm::design_filter_suboptimal(c4, options)
                        : comm::paper_filter_suboptimal()},
    };
    for (const Design& design : designs) {
      const auto& taps = design.filter.taps();
      const double m =
          static_cast<double>(design.filter.samples_per_symbol());
      for (std::size_t i = 0; i < taps.size(); ++i) {
        table.add_row({design.name,
                       Table::num(static_cast<double>(i) / m, 2),
                       Table::num(taps[i], 4)});
      }
      const comm::OneBitOsChannel channel(design.filter, c4,
                                          isi.design_snr_db);
      env.note(std::string(design.name) + ": symbolwise MI @" +
               Table::num(isi.design_snr_db, 0) + " dB " +
               Table::num(comm::mi_one_bit_symbolwise(channel), 3) +
               " bpcu; sequence IR " +
               Table::num(comm::info_rate_one_bit_sequence(
                              channel, {isi.mc_symbols, isi.mc_seed}),
                          3) +
               " bpcu; unique detection: " +
               (comm::is_uniquely_detectable(design.filter, c4) ? "yes"
                                                                : "no"));
    }
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(isi_filters, IsiFiltersRunner)

}  // namespace wi::sim

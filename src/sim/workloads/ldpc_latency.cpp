/// \file ldpc_latency.cpp
/// \brief "ldpc_latency" workload plugin: Fig. 10 required Eb/N0 vs
///        decoding latency via Monte-Carlo BER simulation.

#include "wi/sim/workloads/ldpc_latency.hpp"

#include "wi/fec/ber.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class LdpcLatencyRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "ldpc_latency"; }
  std::string payload_key() const override { return "ldpc"; }
  std::string description() const override {
    return "Fig. 10: required Eb/N0 vs decoding latency";
  }
  std::vector<std::string> headers() const override {
    return {"family", "N", "W", "latency_bits", "reqd_EbN0_dB"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<LdpcLatencySpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& l = spec.payload<LdpcLatencySpec>();
    Json json = Json::object();
    json.set("target_ber", Json(l.target_ber));
    json.set("min_errors", Json(static_cast<double>(l.min_errors)));
    json.set("max_codewords", Json(static_cast<double>(l.max_codewords)));
    json.set("max_bp_iterations",
             Json(static_cast<double>(l.max_bp_iterations)));
    json.set("termination", Json(static_cast<double>(l.termination)));
    Json curves = Json::array();
    for (const auto& curve : l.cc_curves) {
      Json c = Json::object();
      c.set("lifting", Json(static_cast<double>(curve.lifting)));
      c.set("window_lo", Json(static_cast<double>(curve.window_lo)));
      c.set("window_hi", Json(static_cast<double>(curve.window_hi)));
      curves.push_back(std::move(c));
    }
    json.set("cc_curves", std::move(curves));
    json.set("bc_liftings", size_list_json(l.bc_liftings));
    json.set("search_lo_db", Json(l.search_lo_db));
    json.set("search_hi_db", Json(l.search_hi_db));
    json.set("search_step_db", Json(l.search_step_db));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& l = spec.payload<LdpcLatencySpec>();
    ObjectReader reader(json, "ldpc");
    reader.number("target_ber", l.target_ber);
    reader.size("min_errors", l.min_errors);
    reader.size("max_codewords", l.max_codewords);
    reader.size("max_bp_iterations", l.max_bp_iterations);
    reader.size("termination", l.termination);
    reader.field("cc_curves", [&](const Json& curves) {
      l.cc_curves.clear();
      for (const auto& item : curves.as_array()) {
        LdpcCurveSpec curve;
        ObjectReader cr(item, "ldpc.cc_curves[]");
        cr.size("lifting", curve.lifting);
        cr.size("window_lo", curve.window_lo);
        cr.size("window_hi", curve.window_hi);
        cr.finish();
        l.cc_curves.push_back(curve);
      }
    });
    reader.size_list("bc_liftings", l.bc_liftings);
    reader.number("search_lo_db", l.search_lo_db);
    reader.number("search_hi_db", l.search_hi_db);
    reader.number("search_step_db", l.search_step_db);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& l = spec.payload<LdpcLatencySpec>();
    if (!(l.target_ber > 0.0 && l.target_ber < 1.0)) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": target_ber must be in (0, 1)"};
    }
    if (l.min_errors < 1 || l.max_codewords < 1 ||
        l.max_bp_iterations < 1 || l.termination < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": ldpc Monte-Carlo settings must be >= 1"};
    }
    if (l.cc_curves.empty() && l.bc_liftings.empty()) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": ldpc needs at least one CC curve or BC point"};
    }
    for (const auto& curve : l.cc_curves) {
      if (curve.lifting < 1 || curve.window_lo < 1 ||
          curve.window_hi < curve.window_lo) {
        return {StatusCode::kInvalidSpec,
                spec.name + ": ldpc cc_curves need lifting/window_lo >= 1 "
                            "and window_hi >= window_lo"};
      }
    }
    for (const std::size_t lifting : l.bc_liftings) {
      if (lifting < 1) {
        return {StatusCode::kInvalidSpec,
                spec.name + ": bc_liftings must be >= 1"};
      }
    }
    if (l.search_step_db <= 0.0 || l.search_hi_db < l.search_lo_db) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": ldpc Eb/N0 search bracket is inverted"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    using namespace wi::fec;
    Table table(headers());
    const LdpcLatencySpec& l = spec.payload<LdpcLatencySpec>();
    BpOptions bp;
    bp.max_iterations = l.max_bp_iterations;
    for (const LdpcCurveSpec& curve : l.cc_curves) {
      const std::size_t n = curve.lifting;
      const LdpcConvolutionalCode code(EdgeSpreading::paper_example(), n,
                                       l.termination, /*seed=*/n);
      for (std::size_t w = curve.window_lo; w <= curve.window_hi; ++w) {
        const auto simulate = [&](double ebn0) {
          BerConfig config;
          config.ebn0_db = ebn0;
          config.min_errors = l.min_errors;
          config.max_codewords = l.max_codewords;
          config.seed = 1000 + n + w;
          config.bp = bp;
          return simulate_ber_window(code, w, config);
        };
        const double ebn0 =
            required_ebn0_db(simulate, l.target_ber, l.search_lo_db,
                             l.search_hi_db, l.search_step_db);
        table.add_row(
            {"LDPC-CC", Table::num(static_cast<long long>(n)),
             Table::num(static_cast<long long>(w)),
             Table::num(window_decoder_latency_bits(w, n, code.nv(),
                                                    code.rate_asymptotic()),
                        0),
             Table::num(ebn0, 2)});
      }
    }
    for (const std::size_t n : l.bc_liftings) {
      const QcLdpcBlockCode code(BaseMatrix({{4, 4}}), n, /*seed=*/n);
      const auto simulate = [&](double ebn0) {
        BerConfig config;
        config.ebn0_db = ebn0;
        config.min_errors = l.min_errors;
        config.max_codewords = l.max_codewords;
        config.seed = 2000 + n;
        config.bp = bp;
        return simulate_ber_block(code, config);
      };
      const double ebn0 =
          required_ebn0_db(simulate, l.target_ber, l.search_lo_db,
                           l.search_hi_db, l.search_step_db);
      table.add_row({"LDPC-BC", Table::num(static_cast<long long>(n)), "-",
                     Table::num(block_code_latency_bits(n, 2, 0.5), 0),
                     Table::num(ebn0, 2)});
    }
    env.note("target BER " + Table::num(l.target_ber, 6) + ", min_errors " +
             Table::num(static_cast<long long>(l.min_errors)) +
             ", max_codewords " +
             Table::num(static_cast<long long>(l.max_codewords)) +
             "; required Eb/N0 falls with W and N, and at equal latency the "
             "LDPC-CC needs less Eb/N0 than the LDPC-BC it is derived from");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(ldpc_latency, LdpcLatencyRunner)

}  // namespace wi::sim

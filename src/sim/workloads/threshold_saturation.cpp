/// \file threshold_saturation.cpp
/// \brief "threshold_saturation" workload plugin: BEC threshold
///        saturation of the coupled ensemble behind Fig. 10.

#include "wi/sim/workloads/threshold_saturation.hpp"

#include "wi/fec/base_matrix.hpp"
#include "wi/fec/density_evolution.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class ThresholdSaturationRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "threshold_saturation"; }
  std::string payload_key() const override { return "saturation"; }
  std::string description() const override {
    return "BEC threshold saturation behind Fig. 10";
  }
  std::vector<std::string> headers() const override {
    return {"L", "coupled_threshold", "gain_vs_block", "rate_terminated",
            "rate_loss"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<SaturationSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& sat = spec.payload<SaturationSpec>();
    Json json = Json::object();
    json.set("terminations", size_list_json(sat.terminations));
    json.set("threshold_tolerance", Json(sat.threshold_tolerance));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& sat = spec.payload<SaturationSpec>();
    ObjectReader reader(json, "saturation");
    reader.size_list("terminations", sat.terminations);
    reader.number("threshold_tolerance", sat.threshold_tolerance);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& sat = spec.payload<SaturationSpec>();
    if (sat.terminations.empty()) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": saturation terminations must not be empty"};
    }
    for (const std::size_t termination : sat.terminations) {
      if (termination < 1) {
        return {StatusCode::kInvalidSpec,
                spec.name + ": saturation terminations must be >= 1"};
      }
    }
    if (sat.threshold_tolerance <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": threshold_tolerance must be > 0"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    using namespace wi::fec;
    Table table(headers());
    const SaturationSpec& sat = spec.payload<SaturationSpec>();
    const BaseMatrix block({{4, 4}});
    const EdgeSpreading spreading = EdgeSpreading::paper_example();
    const double block_threshold =
        bec_threshold(block, sat.threshold_tolerance);
    for (const std::size_t termination : sat.terminations) {
      const double threshold = coupled_bec_threshold(
          spreading, termination, sat.threshold_tolerance);
      const double rate = 1.0 - static_cast<double>(termination + 2) /
                                    (2.0 * static_cast<double>(termination));
      table.add_row({Table::num(static_cast<long long>(termination)),
                     Table::num(threshold, 4),
                     Table::num(threshold - block_threshold, 4),
                     Table::num(rate, 4), Table::num(0.5 - rate, 4)});
    }
    env.note("block ensemble B=[4,4] BP threshold: " +
             Table::num(block_threshold, 4) +
             " (literature: 0.3834; MAP: ~0.4977)");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(threshold_saturation, ThresholdSaturationRunner)

}  // namespace wi::sim

/// \file impulse_response.cpp
/// \brief "impulse_response" workload plugin: Figs. 2/3 impulse
///        response, free space vs parallel copper boards.

#include "wi/sim/workloads/impulse_response.hpp"

#include "wi/rf/channel.hpp"
#include "wi/rf/vna.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class ImpulseResponseRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "impulse_response"; }
  std::string payload_key() const override { return "impulse"; }
  std::string description() const override {
    return "Figs. 2/3: impulse response, free space vs copper";
  }
  std::vector<std::string> headers() const override {
    return {"tau_ns", "free_h_dB", "copper_h_dB"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<ImpulseSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& imp = spec.payload<ImpulseSpec>();
    Json json = Json::object();
    json.set("distance_m", Json(imp.distance_m));
    json.set("max_delay_ns", Json(imp.max_delay_ns));
    json.set("decimation", Json(static_cast<double>(imp.decimation)));
    json.set("seed", Json(static_cast<double>(imp.seed)));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& imp = spec.payload<ImpulseSpec>();
    ObjectReader reader(json, "impulse");
    reader.number("distance_m", imp.distance_m);
    reader.number("max_delay_ns", imp.max_delay_ns);
    reader.size("decimation", imp.decimation);
    reader.u64("seed", imp.seed);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& imp = spec.payload<ImpulseSpec>();
    if (imp.distance_m <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": impulse distance_m must be > 0"};
    }
    if (imp.max_delay_ns <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": max_delay_ns must be > 0"};
    }
    if (imp.decimation < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": decimation must be >= 1"};
    }
    return Status::ok();
  }

  void apply_seed(ScenarioSpec& spec, std::uint64_t seed) const override {
    spec.payload<ImpulseSpec>().seed = seed;
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const ImpulseSpec& imp = spec.payload<ImpulseSpec>();
    rf::VnaConfig vna_config;
    vna_config.seed = imp.seed;
    const auto measure = [&](bool copper_boards) {
      rf::BoardToBoardScenario scenario;
      scenario.distance_m = imp.distance_m;
      scenario.copper_boards = copper_boards;
      const rf::MultipathChannel channel =
          rf::board_to_board_channel(scenario);
      // A fresh instrument per environment: both measurements see the
      // same noise realisation, like re-seeding the testbed campaign.
      rf::SyntheticVna vna(vna_config);
      const rf::ImpulseResponse ir =
          rf::to_impulse_response(vna.measure(channel));
      const char* label = copper_boards ? "copper" : "freespace";
      for (const auto& tap : channel.taps()) {
        env.note(std::string(label) + " tap '" + tap.label + "': delay " +
                 Table::num(tap.delay_s * 1e9, 3) + " ns, rel LoS " +
                 Table::num(tap.gain_db - channel.strongest_tap_db(), 1) +
                 " dB");
      }
      env.note(std::string(label) + " worst reflection: " +
               Table::num(rf::worst_reflection_rel_db(ir, 6), 1) +
               " dB rel LoS (paper: <= -15 dB)");
      return ir;
    };
    const rf::ImpulseResponse free_space = measure(false);
    const rf::ImpulseResponse copper = measure(true);
    for (std::size_t i = 0; i < free_space.delay_s.size();
         i += imp.decimation) {
      if (free_space.delay_s[i] > imp.max_delay_ns * 1e-9) break;
      table.add_row({Table::num(free_space.delay_s[i] * 1e9, 3),
                     Table::num(free_space.magnitude_db[i], 1),
                     Table::num(copper.magnitude_db[i], 1)});
    }
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(impulse_response, ImpulseResponseRunner)

}  // namespace wi::sim

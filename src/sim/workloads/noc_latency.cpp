/// \file noc_latency.cpp
/// \brief "noc_latency" workload plugin: Fig. 8 analytic latency vs
///        injection rate for one topology (payload-free: everything
///        lives in the shared noc section).

#include "wi/sim/workload.hpp"

#include "wi/common/math.hpp"
#include "wi/noc/flit_sim.hpp"
#include "wi/noc/metrics.hpp"
#include "wi/noc/queueing_model.hpp"

namespace wi::sim {
namespace {

class NocLatencyRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "noc_latency"; }
  std::string description() const override {
    return "Fig. 8: analytic latency vs injection for one topology";
  }
  std::vector<std::string> headers() const override {
    return {"inj_rate", "latency_cycles", "max_channel_load", "saturated"};
  }

  Status validate(const ScenarioSpec& spec) const override {
    return spec.noc.validate(spec.name);
  }

  void apply_seed(ScenarioSpec& spec, std::uint64_t seed) const override {
    spec.noc.des_seed = seed;
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const noc::Topology topology = spec.noc.topology.build();
    const auto routing = spec.noc.build_routing();
    const noc::TrafficPattern traffic =
        spec.noc.build_traffic(topology.module_count());
    const noc::QueueingModel model(topology, *routing, traffic,
                                   spec.noc.model);
    std::vector<double> rates = spec.noc.injection_rates;
    if (rates.empty()) rates = linspace(0.01, 0.8, 21);
    for (const double rate : rates) {
      const auto perf = model.evaluate(rate);
      table.add_row({Table::num(rate, 3),
                     perf.saturated
                         ? std::string("sat")
                         : Table::num(perf.mean_latency_cycles, 2),
                     Table::num(perf.max_channel_load, 3),
                     perf.saturated ? "yes" : "no"});
    }
    env.note("topology: " + topology.name());
    env.note("zero-load latency: " +
             Table::num(model.zero_load_latency_cycles(), 2) +
             " cycles; saturation: " + Table::num(model.saturation_rate(), 3) +
             " flits/cycle/module");
    const double area = noc::total_router_crossbar_area(topology);
    env.note("crossbar area proxy: " + Table::num(area, 0) + " (" +
             Table::num(area / static_cast<double>(topology.router_count()),
                        1) +
             " per router)");
    if (spec.noc.des_check_rate > 0.0) {
      noc::FlitSimConfig sim;
      sim.warmup_cycles = 2000;
      sim.measure_cycles = 8000;
      sim.seed = spec.noc.des_seed;
      const auto des = simulate_network(topology, *routing, traffic,
                                        spec.noc.des_check_rate, sim);
      env.note("DES cross-check @ " + Table::num(spec.noc.des_check_rate, 2) +
               ": " + Table::num(des.mean_latency_cycles, 2) +
               " cycles vs analytic " +
               Table::num(model.evaluate(spec.noc.des_check_rate)
                              .mean_latency_cycles,
                          2));
    }
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(noc_latency, NocLatencyRunner)

}  // namespace wi::sim

/// \file tx_power_sweep.cpp
/// \brief "tx_power_sweep" workload plugin: Fig. 4 required PTX vs
///        target SNR on the extreme links.

#include "wi/sim/workloads/tx_power_sweep.hpp"

#include "wi/rf/link_budget.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class TxPowerSweepRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "tx_power_sweep"; }
  std::string payload_key() const override { return "tx_power"; }
  std::string description() const override {
    return "Fig. 4: required PTX vs target SNR, extreme links";
  }
  std::vector<std::string> headers() const override {
    return {"SNR_dB", "shortest_dBm", "longest_dBm", "longest_butler_dBm"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<TxPowerSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& tx = spec.payload<TxPowerSpec>();
    Json json = Json::object();
    json.set("snr_lo_db", Json(tx.snr_lo_db));
    json.set("snr_hi_db", Json(tx.snr_hi_db));
    json.set("snr_step_db", Json(tx.snr_step_db));
    json.set("shortest_m", Json(tx.shortest_m));
    json.set("longest_m", Json(tx.longest_m));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& tx = spec.payload<TxPowerSpec>();
    ObjectReader reader(json, "tx_power");
    reader.number("snr_lo_db", tx.snr_lo_db);
    reader.number("snr_hi_db", tx.snr_hi_db);
    reader.number("snr_step_db", tx.snr_step_db);
    reader.number("shortest_m", tx.shortest_m);
    reader.number("longest_m", tx.longest_m);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& tx = spec.payload<TxPowerSpec>();
    if (tx.snr_step_db <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": snr_step_db must be > 0"};
    }
    if (tx.snr_hi_db < tx.snr_lo_db) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": snr_hi_db must be >= snr_lo_db"};
    }
    if (tx.shortest_m <= 0.0 || tx.longest_m <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": link distances must be > 0"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const rf::LinkBudget budget(spec.link.budget);
    const TxPowerSpec& tx = spec.payload<TxPowerSpec>();
    for (double snr = tx.snr_lo_db; snr <= tx.snr_hi_db + 1e-9;
         snr += tx.snr_step_db) {
      table.add_row(
          {Table::num(snr, 1),
           Table::num(budget.required_tx_power_dbm(snr, tx.shortest_m, false),
                      2),
           Table::num(budget.required_tx_power_dbm(snr, tx.longest_m, false),
                      2),
           Table::num(budget.required_tx_power_dbm(snr, tx.longest_m, true),
                      2)});
    }
    env.note("100 Gbit/s at ~2 bit/s/Hz needs SNR ~4.77 dB -> PTX " +
             Table::num(budget.required_tx_power_dbm(4.77, tx.longest_m, true),
                        2) +
             " dBm on the worst link");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(tx_power_sweep, TxPowerSweepRunner)

}  // namespace wi::sim

/// \file pathloss_campaign.cpp
/// \brief "pathloss_campaign" workload plugin: Fig. 1 synthetic
///        measurement campaigns + path-loss model fits.

#include "wi/sim/workloads/pathloss_campaign.hpp"

#include "wi/rf/campaign.hpp"
#include "wi/rf/pathloss.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class PathlossCampaignRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "pathloss_campaign"; }
  std::string payload_key() const override { return "pathloss"; }
  std::string description() const override {
    return "Fig. 1: synthetic campaigns + path-loss model fits";
  }
  std::vector<std::string> headers() const override {
    return {"dist_mm", "model_free_dB", "meas_free_dB", "model_copper_dB",
            "meas_copper_dB", "free+2x9.5dB", "free+2x12dB"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<PathlossSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& p = spec.payload<PathlossSpec>();
    Json json = Json::object();
    json.set("seed", Json(static_cast<double>(p.seed)));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& p = spec.payload<PathlossSpec>();
    ObjectReader reader(json, "pathloss");
    reader.u64("seed", p.seed);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    if (spec.link.budget.carrier_freq_hz !=
        rf::LinkBudgetParams{}.carrier_freq_hz) {
      // The synthetic VNA campaign measures at the paper's fixed
      // carrier; a model at a different carrier would silently stop
      // tracking the measurement columns.
      return {StatusCode::kInvalidSpec,
              spec.name +
                  ": the pathloss campaign runs at the fixed 232.5 GHz "
                  "carrier; carrier_freq_hz cannot be overridden"};
    }
    return Status::ok();
  }

  void apply_seed(ScenarioSpec& spec, std::uint64_t seed) const override {
    spec.payload<PathlossSpec>().seed = seed;
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    rf::CampaignConfig freespace;
    freespace.distances_m = rf::default_distance_grid_m();
    freespace.copper_boards = false;
    freespace.vna.seed = spec.payload<PathlossSpec>().seed;
    const auto points_free = rf::run_campaign(freespace);
    const auto fit_free = rf::fit_path_loss(points_free, 0.05);

    rf::CampaignConfig copper = freespace;
    copper.copper_boards = true;
    const auto points_copper = rf::run_campaign(copper);
    const auto fit_copper = rf::fit_path_loss(points_copper, 0.05);

    const rf::PathLossModel model_free =
        rf::PathLossModel::free_space(spec.link.budget.carrier_freq_hz);
    const rf::PathLossModel model_copper(fit_copper.reference_loss_db,
                                         fit_copper.exponent, 0.05);
    for (std::size_t i = 0; i < points_free.size(); ++i) {
      const double d = points_free[i].distance_m;
      const double pl_free = model_free.loss_db(d);
      table.add_row({Table::num(d * 1e3, 0), Table::num(pl_free, 2),
                     Table::num(points_free[i].pathloss_db, 2),
                     Table::num(model_copper.loss_db(d), 2),
                     Table::num(points_copper[i].pathloss_db, 2),
                     // Fig. 1 reference lines: free-space PL minus
                     // 2x9.5 dB horn gain / 2x12 dB array gain.
                     Table::num(pl_free - 19.0, 2),
                     Table::num(pl_free - 24.0, 2)});
    }
    env.note("fitted exponent free space: n = " +
             Table::num(fit_free.exponent, 4) + " (paper: 2.000)");
    env.note("fitted exponent copper boards: n = " +
             Table::num(fit_copper.exponent, 4) + " (paper: 2.0454)");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(pathloss_campaign, PathlossCampaignRunner)

}  // namespace wi::sim

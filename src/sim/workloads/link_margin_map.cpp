/// \file link_margin_map.cpp
/// \brief "link_margin_map" workload plugin: SNR-margin table over
///        every adjacent-board link of the chip geometry.
///
/// Added purely through the plugin layer — no SimEngine or scenario
/// codec edits — as the open-path proof for the workload registry.

#include "wi/sim/workloads/link_margin_map.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "wi/core/geometry.hpp"
#include "wi/core/link_planner.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class LinkMarginMapRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "link_margin_map"; }
  std::string description() const override {
    return "per-link SNR-margin table over the chip geometry";
  }
  std::vector<std::string> headers() const override {
    return {"src", "dst", "distance_mm", "snr_db", "target_margin_db",
            "rate_margin_db", "meets_target"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<LinkMarginSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& m = spec.payload<LinkMarginSpec>();
    Json json = Json::object();
    json.set("min_rate_gbps", Json(m.min_rate_gbps));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& m = spec.payload<LinkMarginSpec>();
    ObjectReader reader(json, "link_margin_map");
    reader.number("min_rate_gbps", m.min_rate_gbps);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    if (spec.geometry.boards < 2) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": link workloads need >= 2 boards"};
    }
    if (spec.payload<LinkMarginSpec>().min_rate_gbps <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": min_rate_gbps must be > 0"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const LinkMarginSpec& m = spec.payload<LinkMarginSpec>();
    const core::WirelessLinkPlanner planner(spec.link.budget,
                                            spec.link.beamforming);
    const auto curve = env.phy_cache().get(
        spec.phy.receiver, spec.phy.bandwidth_hz, spec.phy.polarizations);
    const core::BoardGeometry geometry(
        spec.geometry.boards, spec.geometry.board_size_mm,
        spec.geometry.separation_mm, spec.geometry.nodes_per_edge);
    const auto links = planner.plan(geometry, spec.link.ptx_dbm,
                                    spec.link.target_snr_db);
    // SNR the PHY receiver needs for the requested rate; +inf when the
    // receiver cannot reach it at any SNR (rate margin becomes -inf).
    const double snr_for_rate = curve->required_snr_db(m.min_rate_gbps);
    double worst_margin = std::numeric_limits<double>::infinity();
    std::size_t failing = 0;
    for (const auto& link : links) {
      const double target_margin = link.snr_db - spec.link.target_snr_db;
      const double rate_margin = link.snr_db - snr_for_rate;
      worst_margin = std::min(worst_margin, target_margin);
      const bool ok = target_margin >= 0.0;
      if (!ok) ++failing;
      table.add_row({Table::num(static_cast<long long>(link.src_node)),
                     Table::num(static_cast<long long>(link.dst_node)),
                     Table::num(link.distance_mm, 1),
                     Table::num(link.snr_db, 2),
                     Table::num(target_margin, 2),
                     std::isfinite(rate_margin) ? Table::num(rate_margin, 2)
                                                : std::string("-inf"),
                     ok ? "yes" : "no"});
    }
    env.note(links.empty()
                 ? std::string("no adjacent-board links in this geometry")
                 : Table::num(static_cast<long long>(links.size())) +
                       " links at PTX " + Table::num(spec.link.ptx_dbm, 1) +
                       " dBm; worst margin vs " +
                       Table::num(spec.link.target_snr_db, 1) +
                       " dB target: " + Table::num(worst_margin, 2) +
                       " dB (" +
                       Table::num(static_cast<long long>(failing)) +
                       " below target)");
    env.note(std::isfinite(snr_for_rate)
                 ? "SNR needed for " + Table::num(m.min_rate_gbps, 1) +
                       " Gbit/s: " + Table::num(snr_for_rate, 2) + " dB"
                 : Table::num(m.min_rate_gbps, 1) +
                       " Gbit/s unreachable with this receiver");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(link_margin_map, LinkMarginMapRunner)

}  // namespace wi::sim

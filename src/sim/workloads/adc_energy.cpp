/// \file adc_energy.cpp
/// \brief "adc_energy" workload plugin: Sec. III ADC energy per
///        information bit across receiver front-ends.

#include "wi/sim/workloads/adc_energy.hpp"

#include "wi/comm/adc.hpp"
#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class AdcEnergyRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "adc_energy"; }
  std::string payload_key() const override { return "adc"; }
  std::string description() const override {
    return "Sec. III: ADC energy per information bit";
  }
  std::vector<std::string> headers() const override {
    return {"receiver", "sample_rate_GSs", "rate_bpcu", "throughput_Gbps",
            "ADC_power_mW", "pJ_per_bit"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<AdcSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& a = spec.payload<AdcSpec>();
    Json json = Json::object();
    json.set("walden_fom_fj", Json(a.walden_fom_fj));
    json.set("snr_db", Json(a.snr_db));
    json.set("symbol_rate_hz", Json(a.symbol_rate_hz));
    json.set("mc_symbols", Json(static_cast<double>(a.mc_symbols)));
    json.set("mc_seed", Json(static_cast<double>(a.mc_seed)));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& a = spec.payload<AdcSpec>();
    ObjectReader reader(json, "adc");
    reader.number("walden_fom_fj", a.walden_fom_fj);
    reader.number("snr_db", a.snr_db);
    reader.number("symbol_rate_hz", a.symbol_rate_hz);
    reader.size("mc_symbols", a.mc_symbols);
    reader.u64("mc_seed", a.mc_seed);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& a = spec.payload<AdcSpec>();
    if (a.walden_fom_fj <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": walden_fom_fj must be > 0"};
    }
    if (a.symbol_rate_hz <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": adc symbol_rate_hz must be > 0"};
    }
    if (a.mc_symbols < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": adc mc_symbols must be >= 1"};
    }
    return Status::ok();
  }

  void apply_seed(ScenarioSpec& spec, std::uint64_t seed) const override {
    spec.payload<AdcSpec>().mc_seed = seed;
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    using namespace wi::comm;
    Table table(headers());
    const AdcSpec& a = spec.payload<AdcSpec>();
    const Constellation c4 = Constellation::ask(4);
    const AdcModel adc{a.walden_fom_fj * 1e-15};
    const OneBitOsChannel seq(paper_filter_sequence(), c4, a.snr_db);
    const double rate_1bit_os =
        info_rate_one_bit_sequence(seq, {a.mc_symbols, a.mc_seed});
    const std::vector<ReceiverOption> options = {
        {"1-bit, 5x OS, seq. detection", 1, 5, rate_1bit_os},
        {"1-bit, Nyquist", 1, 1, mi_one_bit_no_oversampling(c4, a.snr_db)},
        {"2-bit, Nyquist", 2, 1,
         mi_quantized_awgn(c4, UniformQuantizer(2), a.snr_db)},
        {"3-bit, Nyquist", 3, 1,
         mi_quantized_awgn(c4, UniformQuantizer(3), a.snr_db)},
        {"4-bit, Nyquist", 4, 1,
         mi_quantized_awgn(c4, UniformQuantizer(4), a.snr_db)},
        {"8-bit, Nyquist", 8, 1, mi_unquantized_awgn(c4, a.snr_db)},
    };
    for (const auto& option : options) {
      const double sample_rate =
          a.symbol_rate_hz * static_cast<double>(option.oversampling);
      const double throughput =
          option.info_rate_bpcu * a.symbol_rate_hz / 1e9;
      table.add_row(
          {option.name, Table::num(sample_rate / 1e9, 0),
           Table::num(option.info_rate_bpcu, 3), Table::num(throughput, 1),
           Table::num(adc.power_w(option.adc_bits, sample_rate) * 1e3, 3),
           Table::num(
               adc_energy_per_bit_j(adc, option, a.symbol_rate_hz) * 1e12,
               4)});
    }
    env.note(
        "the 1-bit 5x-OS receiver delivers near-ideal throughput at a "
        "fraction of the 8-bit converter's ADC energy per bit (Sec. III)");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(adc_energy, AdcEnergyRunner)

}  // namespace wi::sim

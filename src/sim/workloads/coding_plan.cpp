/// \file coding_plan.cpp
/// \brief "coding_plan" workload plugin: Fig. 10 LDPC-CC operating
///        point under a latency budget (table-driven planning).

#include "wi/sim/workloads/coding_plan.hpp"

#include "wi/core/coding_planner.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class CodingPlanRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "coding_plan"; }
  std::string payload_key() const override { return "coding"; }
  std::string description() const override {
    return "Fig. 10: LDPC-CC choice under latency budget";
  }
  std::vector<std::string> headers() const override {
    return {"latency_budget_bits", "family", "N", "W", "latency_bits",
            "reqd_EbN0_dB"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<CodingSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& coding = spec.payload<CodingSpec>();
    Json json = Json::object();
    json.set("latency_budgets_bits",
             number_list_json(coding.latency_budgets_bits));
    json.set("deployed_lifting",
             Json(static_cast<double>(coding.deployed_lifting)));
    json.set("ebn0_db", Json(coding.ebn0_db));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& coding = spec.payload<CodingSpec>();
    ObjectReader reader(json, "coding");
    reader.number_list("latency_budgets_bits", coding.latency_budgets_bits);
    reader.size("deployed_lifting", coding.deployed_lifting);
    reader.number("ebn0_db", coding.ebn0_db);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& coding = spec.payload<CodingSpec>();
    if (coding.latency_budgets_bits.empty()) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": latency_budgets_bits must not be empty"};
    }
    for (const double budget : coding.latency_budgets_bits) {
      if (!(budget > 0.0)) {
        return {StatusCode::kInvalidSpec,
                spec.name + ": latency budgets must be > 0"};
      }
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const CodingSpec& coding = spec.payload<CodingSpec>();
    const core::CodingPlanner planner = core::CodingPlanner::paper_table();
    for (const double budget : coding.latency_budgets_bits) {
      const core::CodingPoint* best = planner.best_within_latency(budget);
      if (best == nullptr) {
        table.add_row({Table::num(budget, 0), "none", "-", "-", "-", "-"});
        continue;
      }
      table.add_row(
          {Table::num(budget, 0), best->block_code ? "LDPC-BC" : "LDPC-CC",
           Table::num(static_cast<long long>(best->lifting)),
           best->block_code
               ? std::string("-")
               : Table::num(static_cast<long long>(best->window)),
           Table::num(best->latency_info_bits, 0),
           Table::num(best->required_ebn0_db, 2)});
    }
    env.note(
        "latency gain vs best block code at " +
        Table::num(coding.ebn0_db, 1) + " dB: " +
        Table::num(planner.latency_gain_vs_block_bits(coding.ebn0_db), 0) +
        " info bits");
    const double replan_budget = coding.latency_budgets_bits.back();
    const core::CodingPoint* replanned = planner.best_window_for_lifting(
        coding.deployed_lifting, replan_budget);
    if (replanned != nullptr) {
      env.note("deployed N=" +
               Table::num(static_cast<long long>(coding.deployed_lifting)) +
               " replanned within " + Table::num(replan_budget, 0) +
               " bits: W=" +
               Table::num(static_cast<long long>(replanned->window)) +
               " at " + Table::num(replanned->required_ebn0_db, 2) + " dB");
    }
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(coding_plan, CodingPlanRunner)

}  // namespace wi::sim

/// \file info_rates.cpp
/// \brief "info_rates" workload plugin: Fig. 6 information rates of the
///        1-bit receiver across SNR.

#include "wi/sim/workloads/info_rates.hpp"

#include "wi/comm/filter_design.hpp"
#include "wi/comm/info_rate.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class InfoRatesRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "info_rates"; }
  std::string payload_key() const override { return "info_rate"; }
  std::string description() const override {
    return "Fig. 6: information rates of the 1-bit receiver";
  }
  std::vector<std::string> headers() const override {
    return {"SNR_dB", "MaxIR_seq", "MaxIR_symbolwise", "Rect_1bit_OS",
            "1bit_no_OS", "no_quantization", "suboptimal_seq"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<InfoRateSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& ir = spec.payload<InfoRateSpec>();
    Json json = Json::object();
    json.set("snr_lo_db", Json(ir.snr_lo_db));
    json.set("snr_hi_db", Json(ir.snr_hi_db));
    json.set("snr_step_db", Json(ir.snr_step_db));
    json.set("mc_symbols", Json(static_cast<double>(ir.mc_symbols)));
    json.set("mc_seed", Json(static_cast<double>(ir.mc_seed)));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& ir = spec.payload<InfoRateSpec>();
    ObjectReader reader(json, "info_rate");
    reader.number("snr_lo_db", ir.snr_lo_db);
    reader.number("snr_hi_db", ir.snr_hi_db);
    reader.number("snr_step_db", ir.snr_step_db);
    reader.size("mc_symbols", ir.mc_symbols);
    reader.u64("mc_seed", ir.mc_seed);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& ir = spec.payload<InfoRateSpec>();
    if (ir.snr_step_db <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": info_rate snr_step_db must be > 0"};
    }
    if (ir.snr_hi_db < ir.snr_lo_db) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": info_rate snr_hi_db must be >= snr_lo_db"};
    }
    if (ir.mc_symbols < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": info_rate mc_symbols must be >= 1"};
    }
    return Status::ok();
  }

  void apply_seed(ScenarioSpec& spec, std::uint64_t seed) const override {
    spec.payload<InfoRateSpec>().mc_seed = seed;
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    using namespace wi::comm;
    Table table(headers());
    const InfoRateSpec& ir = spec.payload<InfoRateSpec>();
    const Constellation c4 = Constellation::ask(4);
    const IsiFilter rect = IsiFilter::rectangular(5);
    const IsiFilter f_seq = paper_filter_sequence();
    const IsiFilter f_sym = paper_filter_symbolwise();
    const IsiFilter f_sub = paper_filter_suboptimal();
    const SequenceRateOptions mc{ir.mc_symbols, ir.mc_seed};
    for (double snr = ir.snr_lo_db; snr <= ir.snr_hi_db + 1e-9;
         snr += ir.snr_step_db) {
      const OneBitOsChannel ch_seq(f_seq, c4, snr);
      const OneBitOsChannel ch_sym(f_sym, c4, snr);
      const OneBitOsChannel ch_rect(rect, c4, snr);
      const OneBitOsChannel ch_sub(f_sub, c4, snr);
      table.add_row(
          {Table::num(snr, 1),
           Table::num(info_rate_one_bit_sequence(ch_seq, mc), 3),
           Table::num(mi_one_bit_symbolwise(ch_sym), 3),
           Table::num(info_rate_one_bit_sequence(ch_rect, mc), 3),
           Table::num(mi_one_bit_no_oversampling(c4, snr), 3),
           Table::num(mi_unquantized_matched_filter(c4, snr, 5), 3),
           Table::num(info_rate_one_bit_sequence(ch_sub, mc), 3)});
    }
    env.note(
        "expected: no-quantization -> 2 bpcu; 1bit no-OS -> 1 bpcu; "
        "optimised ISI + sequence detection recovers most of the gap");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(info_rates, InfoRatesRunner)

}  // namespace wi::sim

/// \file hybrid_system.cpp
/// \brief "hybrid_system" workload plugin: Sec. VI backplane bus vs
///        direct wireless board-to-board links.

#include "wi/sim/workloads/hybrid_system.hpp"

#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class HybridSystemRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "hybrid_system"; }
  std::string payload_key() const override { return "hybrid"; }
  std::string description() const override {
    return "Sec. VI: backplane vs wireless comparison";
  }
  std::vector<std::string> headers() const override {
    return {"inter_frac", "equipped_frac", "backplane_sat", "wireless_sat",
            "capacity_gain", "backplane_lat0", "wireless_lat0",
            "latency_gain"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<HybridSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& c = spec.payload<HybridSpec>().config;
    Json json = Json::object();
    json.set("boards", Json(static_cast<double>(c.boards)));
    json.set("mesh_k", Json(static_cast<double>(c.mesh_k)));
    json.set("inter_board_fraction", Json(c.inter_board_fraction));
    json.set("wireless_bandwidth", Json(c.wireless_bandwidth));
    json.set("backplane_bandwidth", Json(c.backplane_bandwidth));
    json.set("wireless_node_fraction", Json(c.wireless_node_fraction));
    json.set("model", model_to_json(c.model));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& config = spec.payload<HybridSpec>().config;
    ObjectReader reader(json, "hybrid");
    reader.size("boards", config.boards);
    reader.size("mesh_k", config.mesh_k);
    reader.number("inter_board_fraction", config.inter_board_fraction);
    reader.number("wireless_bandwidth", config.wireless_bandwidth);
    reader.number("backplane_bandwidth", config.backplane_bandwidth);
    reader.number("wireless_node_fraction", config.wireless_node_fraction);
    reader.field("model", [&](const Json& m) {
      model_from_json(m, "hybrid.model", config.model);
    });
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const auto& c = spec.payload<HybridSpec>().config;
    if (c.boards < 2) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": hybrid system needs >= 2 boards"};
    }
    if (c.mesh_k < 1) {
      return {StatusCode::kInvalidSpec, spec.name + ": mesh_k must be >= 1"};
    }
    if (c.inter_board_fraction < 0.0 || c.inter_board_fraction > 1.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": inter_board_fraction must be in [0, 1]"};
    }
    if (c.wireless_node_fraction < 0.0 || c.wireless_node_fraction > 1.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": wireless_node_fraction must be in [0, 1]"};
    }
    if (c.wireless_bandwidth <= 0.0 || c.backplane_bandwidth <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": link bandwidths must be > 0"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv&) const override {
    Table table(headers());
    const auto& c = spec.payload<HybridSpec>().config;
    const core::HybridSystemModel model(c);
    const auto cmp = model.compare();
    table.add_row({Table::num(c.inter_board_fraction, 2),
                   Table::num(c.wireless_node_fraction, 2),
                   Table::num(cmp.backplane.saturation_rate, 3),
                   Table::num(cmp.wireless.saturation_rate, 3),
                   Table::num(cmp.capacity_gain, 2),
                   Table::num(cmp.backplane.zero_load_latency_cycles, 2),
                   Table::num(cmp.wireless.zero_load_latency_cycles, 2),
                   Table::num(cmp.latency_gain, 2)});
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(hybrid_system, HybridSystemRunner)

}  // namespace wi::sim

/// \file flit_sim.cpp
/// \brief "flit_sim" workload plugin: flit-level DES latency/throughput
///        curve (the stochastic counterpart of noc_latency).

#include "wi/sim/workloads/flit_sim.hpp"

#include "wi/noc/flit_sim.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class FlitSimRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "flit_sim"; }
  std::string payload_key() const override { return "flit"; }
  std::string description() const override {
    return "flit-level DES latency/throughput curve";
  }
  std::vector<std::string> headers() const override {
    return {"inj_rate", "latency_cycles", "throughput", "delivered",
            "injected", "stable"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<FlitSimSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& f = spec.payload<FlitSimSpec>();
    Json json = Json::object();
    json.set("injection_rates", number_list_json(f.injection_rates));
    json.set("warmup_cycles", Json(static_cast<double>(f.warmup_cycles)));
    json.set("measure_cycles", Json(static_cast<double>(f.measure_cycles)));
    json.set("drain_cycles", Json(static_cast<double>(f.drain_cycles)));
    json.set("buffer_depth", Json(static_cast<double>(f.buffer_depth)));
    json.set("seed", Json(static_cast<double>(f.seed)));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& f = spec.payload<FlitSimSpec>();
    ObjectReader reader(json, "flit");
    reader.number_list("injection_rates", f.injection_rates);
    reader.size("warmup_cycles", f.warmup_cycles);
    reader.size("measure_cycles", f.measure_cycles);
    reader.size("drain_cycles", f.drain_cycles);
    reader.size("buffer_depth", f.buffer_depth);
    reader.u64("seed", f.seed);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const Status noc = spec.noc.validate(spec.name);
    if (!noc.is_ok()) return noc;
    const auto& flit = spec.payload<FlitSimSpec>();
    if (flit.measure_cycles < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": flit measure_cycles must be >= 1"};
    }
    if (flit.buffer_depth < 1) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": flit buffer_depth must be >= 1"};
    }
    for (const double rate : flit.injection_rates) {
      if (rate < 0.0) {
        return {StatusCode::kInvalidSpec,
                spec.name + ": flit injection rates must be >= 0"};
      }
    }
    return Status::ok();
  }

  void apply_seed(ScenarioSpec& spec, std::uint64_t seed) const override {
    spec.payload<FlitSimSpec>().seed = seed;
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const FlitSimSpec& flit = spec.payload<FlitSimSpec>();
    const noc::Topology topology = spec.noc.topology.build();
    const auto routing = spec.noc.build_routing();
    const noc::TrafficPattern traffic =
        spec.noc.build_traffic(topology.module_count());
    noc::FlitSimConfig config;
    config.warmup_cycles = flit.warmup_cycles;
    config.measure_cycles = flit.measure_cycles;
    config.drain_cycles = flit.drain_cycles;
    config.buffer_depth = flit.buffer_depth;
    config.seed = flit.seed;
    std::vector<double> rates = flit.injection_rates;
    if (rates.empty()) rates = {0.05, 0.1, 0.15, 0.2};
    for (const double rate : rates) {
      const auto des =
          simulate_network(topology, *routing, traffic, rate, config);
      table.add_row(
          {Table::num(rate, 3), Table::num(des.mean_latency_cycles, 4),
           Table::num(des.delivered_per_cycle, 5),
           Table::num(static_cast<long long>(des.delivered)),
           Table::num(static_cast<long long>(des.injected)),
           des.stable ? "yes" : "no"});
    }
    env.note("topology: " + topology.name());
    env.note("DES window: " +
             Table::num(static_cast<long long>(flit.measure_cycles)) +
             " cycles after " +
             Table::num(static_cast<long long>(flit.warmup_cycles)) +
             " warmup, seed " + Table::num(static_cast<long long>(flit.seed)));
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(flit_sim, FlitSimRunner)

}  // namespace wi::sim

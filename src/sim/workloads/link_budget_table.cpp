/// \file link_budget_table.cpp
/// \brief "link_budget_table" workload plugin: Table I parameters plus
///        derived anchors (no payload; everything comes from the shared
///        link section).

#include "wi/sim/workload.hpp"

#include "wi/rf/antenna.hpp"
#include "wi/rf/link_budget.hpp"

namespace wi::sim {
namespace {

class LinkBudgetTableRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "link_budget_table"; }
  std::string description() const override {
    return "Table I parameters + derived anchors";
  }
  std::vector<std::string> headers() const override {
    return {"parameter", "unit", "value", "paper"};
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const rf::LinkBudget budget(spec.link.budget);
    const auto& p = budget.params();
    auto row = [&](const char* name, const char* unit, double value,
                   int decimals, const char* paper) {
      table.add_row({name, unit, Table::num(value, decimals), paper});
    };
    row("RX noise figure", "dB", p.rx_noise_figure_db, 1, "10");
    row("Path loss exponent", "-", p.path_loss_exponent, 1, "2");
    row("Path loss shortest link 0.1m", "dB",
        budget.path_loss_db(rf::kShortestLink_m), 1, "59.8");
    row("Path loss largest link 0.3m", "dB",
        budget.path_loss_db(rf::kLongestLink_m), 1, "69.3");
    row("Array gain", "dB", p.array_gain_db, 1, "12");
    row("Butler matrix inaccuracy", "dB", p.butler_inaccuracy_db, 1, "5");
    row("Polarization mismatch", "dB", p.polarization_mismatch_db, 1, "3");
    row("Implementation loss", "dB", p.implementation_loss_db, 1, "5");
    row("RX temperature", "K", p.rx_temperature_k, 0, "323");
    env.note("noise power over " + Table::num(p.bandwidth_hz / 1e9, 1) +
             " GHz: " + Table::num(budget.noise_power_dbm(), 2) + " dBm");
    const rf::PlanarArray array(4, 4);
    env.note("4x4 array broadside gain: " +
             Table::num(array.broadside_gain_dbi(), 2) + " dBi (paper: 12)");
    const rf::ButlerMatrixBeamformer butler(array, 4);
    env.note("Butler worst-case mismatch: " +
             Table::num(butler.worst_case_mismatch_db(), 2) +
             " dB (paper budget: 5)");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(link_budget_table, LinkBudgetTableRunner)

}  // namespace wi::sim

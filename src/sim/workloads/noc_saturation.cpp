/// \file noc_saturation.cpp
/// \brief "noc_saturation" workload plugin: injection-rate sweep up to
///        the analytic saturation point with a latency-vs-load knee.
///
/// Added purely through the plugin layer — no SimEngine or scenario
/// codec edits — as the open-path proof for the workload registry.

#include "wi/sim/workloads/noc_saturation.hpp"

#include "wi/noc/queueing_model.hpp"
#include "wi/sim/spec_codec.hpp"
#include "wi/sim/workload.hpp"

namespace wi::sim {
namespace {

class NocSaturationRunner final : public WorkloadRunner {
 public:
  std::string name() const override { return "noc_saturation"; }
  std::string description() const override {
    return "injection-rate sweep to saturation (latency-vs-load knee)";
  }
  std::vector<std::string> headers() const override {
    return {"inj_rate", "load_fraction", "latency_cycles",
            "latency_over_lat0", "knee"};
  }

  std::unique_ptr<WorkloadPayload> default_payload() const override {
    return std::make_unique<NocSaturationSpec>();
  }

  Json payload_to_json(const ScenarioSpec& spec) const override {
    const auto& s = spec.payload<NocSaturationSpec>();
    Json json = Json::object();
    json.set("rate_lo", Json(s.rate_lo));
    json.set("steps", Json(static_cast<double>(s.steps)));
    json.set("knee_factor", Json(s.knee_factor));
    json.set("margin", Json(s.margin));
    return json;
  }

  void payload_from_json(const Json& json,
                         ScenarioSpec& spec) const override {
    auto& s = spec.payload<NocSaturationSpec>();
    ObjectReader reader(json, "noc_saturation");
    reader.number("rate_lo", s.rate_lo);
    reader.size("steps", s.steps);
    reader.number("knee_factor", s.knee_factor);
    reader.number("margin", s.margin);
    reader.finish();
  }

  Status validate(const ScenarioSpec& spec) const override {
    const Status noc = spec.noc.validate(spec.name);
    if (!noc.is_ok()) return noc;
    const auto& s = spec.payload<NocSaturationSpec>();
    if (s.rate_lo <= 0.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": noc_saturation rate_lo must be > 0"};
    }
    if (s.steps < 2) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": noc_saturation steps must be >= 2"};
    }
    if (s.knee_factor <= 1.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": noc_saturation knee_factor must be > 1"};
    }
    if (s.margin <= 0.0 || s.margin >= 1.0) {
      return {StatusCode::kInvalidSpec,
              spec.name + ": noc_saturation margin must be in (0, 1)"};
    }
    return Status::ok();
  }

  Table run(const ScenarioSpec& spec, WorkloadEnv& env) const override {
    Table table(headers());
    const NocSaturationSpec& s = spec.payload<NocSaturationSpec>();
    const noc::Topology topology = spec.noc.topology.build();
    const auto routing = spec.noc.build_routing();
    const noc::TrafficPattern traffic =
        spec.noc.build_traffic(topology.module_count());
    const noc::QueueingModel model(topology, *routing, traffic,
                                   spec.noc.model);
    const double lat0 = model.zero_load_latency_cycles();
    const double saturation = model.saturation_rate();
    const double rate_hi = s.margin * saturation;
    double knee_rate = 0.0;
    if (!(rate_hi > s.rate_lo)) {
      // An empty sweep must fail loudly, not return an ok zero-row
      // table that a golden check would then happily accept.
      throw StatusError(Status(
          StatusCode::kInvalidSpec,
          spec.name + ": sweep start rate_lo " + Table::num(s.rate_lo, 4) +
              " is not below " + Table::num(s.margin, 3) +
              " x saturation (" + Table::num(saturation, 4) +
              ") for this topology"));
    }
    {
      const double step =
          (rate_hi - s.rate_lo) / static_cast<double>(s.steps - 1);
      for (std::size_t i = 0; i < s.steps; ++i) {
        const double rate = s.rate_lo + step * static_cast<double>(i);
        const auto perf = model.evaluate(rate);
        const double relative = perf.mean_latency_cycles / lat0;
        const bool knee =
            !perf.saturated && knee_rate == 0.0 && relative > s.knee_factor;
        if (knee) knee_rate = rate;
        table.add_row({Table::num(rate, 4),
                       Table::num(rate / saturation, 3),
                       perf.saturated
                           ? std::string("sat")
                           : Table::num(perf.mean_latency_cycles, 2),
                       perf.saturated ? std::string("sat")
                                      : Table::num(relative, 3),
                       knee ? "knee" : "-"});
      }
    }
    env.note("topology: " + topology.name());
    env.note("zero-load latency: " + Table::num(lat0, 2) +
             " cycles; analytic saturation: " + Table::num(saturation, 3) +
             " flits/cycle/module");
    env.note(knee_rate > 0.0
                 ? "latency knee (> " + Table::num(s.knee_factor, 1) +
                       "x zero-load) at " + Table::num(knee_rate, 4) +
                       " flits/cycle/module (" +
                       Table::num(knee_rate / saturation, 3) +
                       " of saturation)"
                 : "no latency knee below " + Table::num(s.margin, 3) +
                       " x saturation");
    return table;
  }
};

}  // namespace

WI_SIM_REGISTER_WORKLOAD(noc_saturation, NocSaturationRunner)

}  // namespace wi::sim

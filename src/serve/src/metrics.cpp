#include "wi/serve/metrics.hpp"

#include <cmath>
#include <functional>
#include <mutex>
#include <thread>

#include "wi/common/status.hpp"

namespace wi::serve {

namespace {

// log10(us) over [0, 7): 1 us .. 10 s at 20 bins per decade.
constexpr double kLatLo = 0.0;
constexpr double kLatHi = 7.0;
constexpr std::size_t kLatBins = 140;

}  // namespace

const char* counter_name(Counter counter) {
  switch (counter) {
    case Counter::kRequests: return "requests_total";
    case Counter::kRunScenario: return "requests_run_scenario";
    case Counter::kRunCampaign: return "requests_run_campaign";
    case Counter::kStats: return "requests_stats";
    case Counter::kHealth: return "requests_health";
    case Counter::kShutdown: return "requests_shutdown";
    case Counter::kHotHits: return "hot_hits";
    case Counter::kInflightJoins: return "inflight_joins";
    case Counter::kColdHits: return "cold_hits";
    case Counter::kEngineRuns: return "engine_runs";
    case Counter::kFailedRuns: return "failed_runs";
    case Counter::kBackpressure: return "backpressure_rejects";
    case Counter::kParseErrors: return "parse_errors";
    case Counter::kOversizedFrames: return "oversized_frames";
    case Counter::kRowsStreamed: return "rows_streamed";
    case Counter::kLoadShed: return "load_shed_rejects";
    case Counter::kDeadlineExpired: return "deadline_expired_jobs";
    case Counter::kInjectedFaults: return "injected_faults";
    case Counter::kDroppedConnections: return "dropped_connections";
    case Counter::kCount: break;
  }
  return "unknown";
}

MetricsSnapshot::MetricsSnapshot()
    : latency(ServerMetrics::make_latency_histogram()) {}

double MetricsSnapshot::latency_percentile_us(double q) const {
  return ServerMetrics::latency_quantile_us(latency, q);
}

struct ServerMetrics::Shard {
  mutable std::mutex mutex;
  std::uint64_t counters[static_cast<std::size_t>(Counter::kCount)] = {};
  RunningStats queue_wait_us;
  RunningStats run_us;
  RunningStats total_us;
  Histogram latency = ServerMetrics::make_latency_histogram();
};

struct ServerMetrics::ShardBlock {
  Shard shards[kShards];
};

ServerMetrics::ServerMetrics() : shards_(std::make_unique<ShardBlock>()) {}

ServerMetrics::~ServerMetrics() = default;

ServerMetrics::Shard& ServerMetrics::local_shard() {
  const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shards_->shards[index];
}

void ServerMetrics::count(Counter counter, std::uint64_t n) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counters[static_cast<std::size_t>(counter)] += n;
}

void ServerMetrics::observe_request(double queue_us, double run_us,
                                    double total_us, bool engine_ran) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.queue_wait_us.add(queue_us);
  if (engine_ran) shard.run_us.add(run_us);
  shard.total_us.add(total_us);
  add_latency(shard.latency, total_us);
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot merged;
  for (std::size_t s = 0; s < kShards; ++s) {
    const Shard& shard = shards_->shards[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(Counter::kCount); ++c) {
      merged.counters[c] += shard.counters[c];
    }
    merged.queue_wait_us.merge(shard.queue_wait_us);
    merged.run_us.merge(shard.run_us);
    merged.total_us.merge(shard.total_us);
    merged.latency.merge(shard.latency);
  }
  return merged;
}

Histogram ServerMetrics::make_latency_histogram() {
  return Histogram(kLatLo, kLatHi, kLatBins);
}

void ServerMetrics::add_latency(Histogram& histogram, double us) {
  histogram.add(std::log10(us < 1.0 ? 1.0 : us));
}

double ServerMetrics::latency_quantile_us(const Histogram& histogram,
                                          double q) {
  if (histogram.total() == 0) return 0.0;
  return std::pow(10.0, histogram.quantile(q));
}

Table metrics_to_table(const MetricsSnapshot& snapshot,
                       const MetricsGauges& gauges) {
  Table table({"metric", "value"});
  const auto add_count = [&](const std::string& name, std::uint64_t v) {
    table.add_row({name, Table::num(static_cast<long long>(v))});
  };
  const auto add_num = [&](const std::string& name, double v) {
    table.add_row({name, Table::num(v)});
  };
  for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount);
       ++c) {
    add_count(counter_name(static_cast<Counter>(c)),
              snapshot.counters[c]);
  }
  // Per-tier hit rates over *completed* run requests (backpressure
  // rejections asked for work but got none, so they are excluded).
  const std::uint64_t run_requests =
      snapshot.counter(Counter::kRunScenario) +
      snapshot.counter(Counter::kRunCampaign);
  const std::uint64_t rejected =
      snapshot.counter(Counter::kBackpressure);
  const std::uint64_t completed =
      run_requests > rejected ? run_requests - rejected : 0;
  const auto rate = [&](std::uint64_t part) {
    return completed == 0
               ? 0.0
               : static_cast<double>(part) /
                     static_cast<double>(completed);
  };
  const std::uint64_t hot = snapshot.counter(Counter::kHotHits);
  const std::uint64_t joined =
      snapshot.counter(Counter::kInflightJoins);
  const std::uint64_t cold = snapshot.counter(Counter::kColdHits);
  add_num("hit_rate_hot", rate(hot));
  add_num("hit_rate_inflight", rate(joined));
  add_num("hit_rate_cold", rate(cold));
  add_num("hit_rate", rate(hot + joined + cold));
  add_count("queue_depth", gauges.queue_depth);
  add_count("queue_peak_depth", gauges.queue_peak);
  add_num("queue_wait_us_mean", snapshot.queue_wait_us.mean());
  add_num("queue_wait_us_max", snapshot.queue_wait_us.count() > 0
                                   ? snapshot.queue_wait_us.max()
                                   : 0.0);
  add_num("run_us_mean", snapshot.run_us.mean());
  add_num("latency_us_mean", snapshot.total_us.mean());
  add_num("latency_us_p50", snapshot.latency_percentile_us(0.50));
  add_num("latency_us_p99", snapshot.latency_percentile_us(0.99));
  add_count("hot_tier_size", gauges.hot_size);
  add_count("hot_tier_capacity", gauges.hot_capacity);
  add_count("hot_tier_evictions", gauges.hot_evictions);
  add_count("workers", gauges.workers);
  add_count("store_enabled", gauges.has_store ? 1 : 0);
  add_count("store_hits", gauges.store_hits);
  add_count("store_misses", gauges.store_misses);
  add_count("store_inserts", gauges.store_inserts);
  add_count("store_corrupt_entries", gauges.store_corrupt);
  add_count("store_orphans_removed", gauges.store_orphans_removed);
  add_count("store_orphans_skipped", gauges.store_orphans_skipped);
  add_count("store_transient_failures", gauges.store_transient_failures);
  return table;
}

double metrics_table_value(const Table& table,
                           const std::string& metric) {
  for (std::size_t row = 0; row < table.rows(); ++row) {
    if (table.cell(row, 0) == metric) {
      return std::stod(table.cell(row, 1));
    }
  }
  throw StatusError(Status(StatusCode::kNotFound,
                           "metrics table has no row '" + metric + "'"));
}

}  // namespace wi::serve

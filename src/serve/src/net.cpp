#include "wi/serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace wi::serve {

namespace {

[[nodiscard]] Status errno_status(const std::string& what) {
  return Status(StatusCode::kExecutionError,
                what + ": " + std::strerror(errno));
}

[[nodiscard]] bool parse_address(const std::string& host,
                                 std::uint16_t port, sockaddr_in& addr) {
  addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  return inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status tcp_listen(const std::string& host, std::uint16_t& port,
                  Socket& out, int backlog) {
  sockaddr_in addr{};
  if (!parse_address(host, port, addr)) {
    return Status(StatusCode::kInvalidSpec,
                  "not an IPv4 address: '" + host + "'");
  }
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return errno_status("socket");
  const int one = 1;
  (void)setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one));
  if (bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return errno_status("bind " + host + ":" + std::to_string(port));
  }
  if (listen(socket.fd(), backlog) != 0) return errno_status("listen");
  // Report the port the kernel picked when the caller asked for 0.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound),
                  &len) != 0) {
    return errno_status("getsockname");
  }
  port = ntohs(bound.sin_port);
  out = std::move(socket);
  return Status::ok();
}

Status tcp_connect(const std::string& host, std::uint16_t port,
                   Socket& out) {
  sockaddr_in addr{};
  if (!parse_address(host, port, addr)) {
    return Status(StatusCode::kInvalidSpec,
                  "not an IPv4 address: '" + host + "'");
  }
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return errno_status("socket");
  if (connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    return Status(StatusCode::kUnavailable,
                  "connect " + host + ":" + std::to_string(port) + ": " +
                      std::strerror(errno));
  }
  // Request/response lines are small; latency beats batching.
  const int one = 1;
  (void)setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one));
  out = std::move(socket);
  return Status::ok();
}

Status set_receive_timeout(const Socket& socket, double timeout_ms) {
  if (!socket.valid()) {
    return Status(StatusCode::kUnavailable, "socket is not open");
  }
  if (!(timeout_ms >= 0.0)) {
    return Status(StatusCode::kInvalidSpec,
                  "receive timeout must be >= 0 ms");
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  // A zero timeval means "never time out" to the kernel; a caller who
  // asked for a tiny-but-positive bound gets the smallest enforceable
  // one instead of accidental infinity.
  if (timeout_ms > 0.0 && tv.tv_sec == 0 && tv.tv_usec == 0) {
    tv.tv_usec = 1;
  }
  if (setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                 sizeof(tv)) != 0) {
    return errno_status("setsockopt(SO_RCVTIMEO)");
  }
  return Status::ok();
}

Status write_all(const Socket& socket, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kUnavailable,
                    std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

LineReader::ReadResult LineReader::read_line(std::string& line) {
  bool discarding = false;
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (discarding || newline > max_bytes_) {
        // The oversized frame ends here; drop it and resynchronize.
        buffer_.erase(0, newline + 1);
        return ReadResult::kOversized;
      }
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return ReadResult::kLine;
    }
    if (buffer_.size() > max_bytes_) {
      // Frame already too large and still no newline: stop buffering,
      // keep consuming until the terminator so the stream recovers.
      discarding = true;
      buffer_.clear();
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kEof;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadResult::kTimeout;
      }
      return ReadResult::kError;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    if (discarding) {
      const std::size_t end = buffer_.find('\n');
      if (end != std::string::npos) {
        buffer_.erase(0, end + 1);
        return ReadResult::kOversized;
      }
      buffer_.clear();
    }
  }
}

}  // namespace wi::serve

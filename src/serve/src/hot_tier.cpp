#include "wi/serve/hot_tier.hpp"

#include <utility>

namespace wi::serve {

HotTier::HotTier(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

HotTier::Ticket::Ticket(Ticket&& other) noexcept
    : tier(other.tier),
      cached(std::move(other.cached)),
      future(std::move(other.future)),
      owner_(other.owner_),
      key_(std::move(other.key_)),
      flight_(std::move(other.flight_)) {
  other.owner_ = nullptr;
}

HotTier::Ticket& HotTier::Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    if (owner_ != nullptr) owner_->abandon(key_, flight_);
    tier = other.tier;
    cached = std::move(other.cached);
    future = std::move(other.future);
    owner_ = other.owner_;
    key_ = std::move(other.key_);
    flight_ = std::move(other.flight_);
    other.owner_ = nullptr;
  }
  return *this;
}

HotTier::Ticket::~Ticket() {
  if (owner_ != nullptr) owner_->abandon(key_, flight_);
}

HotTier::Ticket HotTier::acquire(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // LRU bump: splice the entry to the front (iterators stay valid).
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    Ticket ticket;
    ticket.tier = Tier::kHot;
    ticket.cached = it->second->result;
    return ticket;
  }
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    ++coalesced_;
    Ticket ticket;
    ticket.tier = Tier::kInflight;
    ticket.future = it->second.future;
    return ticket;
  }
  ++leads_;
  Flight flight;
  flight.promise = std::make_shared<std::promise<ResultPtr>>();
  flight.future = flight.promise->get_future().share();
  Ticket ticket;
  ticket.tier = Tier::kLead;
  ticket.owner_ = this;
  ticket.key_ = key;
  ticket.flight_ = flight.promise;
  inflight_.emplace(key, std::move(flight));
  return ticket;
}

void HotTier::fulfill(const std::string& key, ResultPtr result) {
  std::shared_ptr<std::promise<ResultPtr>> promise;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      promise = std::move(it->second.promise);
      inflight_.erase(it);
    }
    if (result != nullptr && result->ok()) {
      insert_locked(key, result);
    }
  }
  // Resolve outside the lock: waiters wake straight into a free mutex.
  if (promise != nullptr) promise->set_value(std::move(result));
}

void HotTier::abandon(
    const std::string& key,
    const std::shared_ptr<std::promise<ResultPtr>>& flight) {
  std::shared_ptr<std::promise<ResultPtr>> promise;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end() || it->second.promise != flight) {
      return;  // fulfilled (or a newer flight took the key): no-op
    }
    promise = std::move(it->second.promise);
    inflight_.erase(it);
    ++abandoned_;
  }
  // Runs from a (noexcept) Ticket destructor: building the error
  // result must not throw out. Waiters map a nullptr result to an
  // explicit "abandoned — retry" response.
  ResultPtr result;
  try {
    auto error = std::make_shared<sim::RunResult>();
    error->status =
        Status(StatusCode::kExecutionError,
               "in-flight build abandoned by its leader (key " + key +
                   ") — retry");
    result = std::move(error);
  } catch (...) {
    result = nullptr;
  }
  promise->set_value(std::move(result));
}

void HotTier::insert_locked(const std::string& key, ResultPtr result) {
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[key] = lru_.begin();
  ++insertions_;
  while (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

HotTier::ResultPtr HotTier::peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it != index_.end() ? it->second->result : nullptr;
}

std::size_t HotTier::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t HotTier::coalesced() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coalesced_;
}

std::size_t HotTier::leads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leads_;
}

std::size_t HotTier::insertions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return insertions_;
}

std::size_t HotTier::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t HotTier::abandoned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return abandoned_;
}

std::size_t HotTier::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace wi::serve

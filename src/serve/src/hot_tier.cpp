#include "wi/serve/hot_tier.hpp"

#include <utility>

namespace wi::serve {

HotTier::HotTier(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

HotTier::Ticket HotTier::acquire(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // LRU bump: splice the entry to the front (iterators stay valid).
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    Ticket ticket;
    ticket.tier = Tier::kHot;
    ticket.cached = it->second->result;
    return ticket;
  }
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    ++coalesced_;
    Ticket ticket;
    ticket.tier = Tier::kInflight;
    ticket.future = it->second.future;
    return ticket;
  }
  ++leads_;
  Flight flight;
  flight.promise = std::make_shared<std::promise<ResultPtr>>();
  flight.future = flight.promise->get_future().share();
  inflight_.emplace(key, std::move(flight));
  Ticket ticket;
  ticket.tier = Tier::kLead;
  return ticket;
}

void HotTier::fulfill(const std::string& key, ResultPtr result) {
  std::shared_ptr<std::promise<ResultPtr>> promise;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      promise = std::move(it->second.promise);
      inflight_.erase(it);
    }
    if (result != nullptr && result->ok()) {
      insert_locked(key, result);
    }
  }
  // Resolve outside the lock: waiters wake straight into a free mutex.
  if (promise != nullptr) promise->set_value(std::move(result));
}

void HotTier::insert_locked(const std::string& key, ResultPtr result) {
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[key] = lru_.begin();
  ++insertions_;
  while (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

HotTier::ResultPtr HotTier::peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it != index_.end() ? it->second->result : nullptr;
}

std::size_t HotTier::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t HotTier::coalesced() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coalesced_;
}

std::size_t HotTier::leads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leads_;
}

std::size_t HotTier::insertions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return insertions_;
}

std::size_t HotTier::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t HotTier::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace wi::serve

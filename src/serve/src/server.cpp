#include "wi/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <future>
#include <iostream>
#include <string_view>
#include <utility>

#include "wi/serve/job_queue.hpp"
#include "wi/sim/campaign.hpp"
#include "wi/sim/registry.hpp"

namespace wi::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

// Same FNV-1a64/hex scheme as result_content_key; campaign keys get a
// distinct prefix so they can never collide with scenario keys in the
// shared hot tier namespace.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t hash = 0xcbf29ce484222325ULL) {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

[[nodiscard]] std::string campaign_content_key(
    const sim::CampaignSpec& spec, const std::string& version) {
  std::uint64_t hash = fnv1a64(sim::campaign_to_string(spec));
  hash = fnv1a64("\x1f", hash);
  hash = fnv1a64(version, hash);
  std::string key = "campaign-";
  for (int i = 15; i >= 0; --i) {
    key += "0123456789abcdef"[(hash >> (4 * i)) & 0xF];
  }
  return key;
}

}  // namespace

struct Server::JobOutcome {
  HotTier::ResultPtr result;
  std::string tier;  ///< "cold" | "run"
  double queue_us = 0.0;
  double run_us = 0.0;
};

struct Server::Job {
  enum class Kind { kScenario, kCampaign };
  Kind kind = Kind::kScenario;
  std::string key;
  sim::ScenarioSpec spec;  ///< scenario jobs (seed already applied)
  std::uint64_t seed = 0;
  std::optional<sim::CampaignSpec> campaign;
  Clock::time_point enqueued;
  /// Absolute expiry (receipt + deadline_ms); meaningful iff
  /// has_deadline. A job popped past it is answered kDeadlineExceeded
  /// without running.
  Clock::time_point deadline;
  bool has_deadline = false;
  std::shared_ptr<std::promise<JobOutcome>> outcome;

  [[nodiscard]] std::string display_name() const {
    return kind == Kind::kScenario ? spec.name
                                   : campaign->display_name();
  }
};

struct Server::QueueHolder {
  explicit QueueHolder(FairJobQueue<Job>::Options options)
      : queue(options) {}
  FairJobQueue<Job> queue;
};

struct Server::Connection {
  Socket socket;
  std::uint64_t client_id = 0;  ///< connection serial, for log lines
  std::uint64_t fair_key = 0;   ///< peer address, for queue admission
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      engine_([&] {
        sim::EngineOptions engine_options;
        engine_options.threads = options_.campaign_threads;
        // The worker pool is the outer parallelism; a cache miss inside
        // run() must not spawn a nested curve-build pool per worker.
        engine_options.serial_phy_builds = true;
        return engine_options;
      }()),
      hot_tier_(HotTier::Options{options_.hot_capacity == 0
                                     ? std::size_t{1}
                                     : options_.hot_capacity}) {
  if (options_.store_dir) {
    sim::ResultStoreOptions store_options;
    store_options.directory = *options_.store_dir;
    store_options.version = options_.version;
    store_ = std::make_unique<sim::ResultStore>(store_options);
  }
  worker_count_ = options_.workers != 0
                      ? options_.workers
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
  FairJobQueue<Job>::Options queue_options;
  queue_options.capacity =
      options_.queue_capacity == 0 ? 1 : options_.queue_capacity;
  queue_options.per_client_quota =
      options_.per_client_quota != 0
          ? options_.per_client_quota
          : std::max<std::size_t>(1, queue_options.capacity / 4);
  queue_options.shed_watermark = options_.shed_watermark;
  queue_ = std::make_unique<QueueHolder>(queue_options);
  if (options_.chaos.enabled()) {
    injector_ = std::make_unique<FaultInjector>(options_.chaos);
  }
}

Server::~Server() { stop(); }

Status Server::start() {
  if (Status valid = options_.chaos.validate(); !valid.is_ok()) {
    return valid;
  }
  if (started_.exchange(true)) {
    return Status(StatusCode::kExecutionError, "server already started");
  }
  std::uint16_t port = options_.port;
  if (Status status = tcp_listen(options_.host, port, listener_);
      !status.is_ok()) {
    return status;
  }
  port_ = port;
  workers_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back(&Server::worker_loop, this);
  }
  accept_thread_ = std::thread(&Server::accept_loop, this);
  if (options_.verbose) {
    std::cerr << "[wi_serve] listening on " << options_.host << ":"
              << port_ << " (" << worker_count_ << " workers, queue "
              << queue_->queue.options().capacity << ", quota "
              << queue_->queue.options().per_client_quota << ", hot "
              << hot_tier_.options().capacity << ", store "
              << (store_ ? store_->options().directory.string() : "off")
              << ")\n";
  }
  return Status::ok();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  lifecycle_cv_.wait(lock, [&] { return shutdown_signaled_; });
}

void Server::stop() {
  if (!started_.load()) return;
  if (stopped_.exchange(true)) return;
  drain();
  signal_shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock every connection reader, then join.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      connection->socket.shutdown_both();
    }
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  listener_.close();
  if (options_.verbose) std::cerr << "[wi_serve] stopped\n";
}

void Server::drain() {
  bool expected = false;
  if (draining_.compare_exchange_strong(expected, true)) {
    if (options_.verbose) {
      std::cerr << "[wi_serve] draining (" << queue_->queue.size()
                << " queued jobs)\n";
    }
    // Unblock accept(2) so no new connections arrive, stop admission,
    // and let the workers finish everything that was accepted.
    listener_.shutdown_both();
    queue_->queue.close();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    {
      std::lock_guard<std::mutex> lock(lifecycle_mutex_);
      drain_complete_ = true;
    }
    lifecycle_cv_.notify_all();
  } else {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    lifecycle_cv_.wait(lock, [&] { return drain_complete_; });
  }
}

void Server::signal_shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    shutdown_signaled_ = true;
  }
  lifecycle_cv_.notify_all();
}

void Server::begin_shutdown() {
  if (!started_.load()) return;
  drain();
  signal_shutdown();
}

void Server::accept_loop() {
  for (;;) {
    sockaddr_in address{};
    socklen_t length = sizeof(address);
    const int fd =
        ::accept(listener_.fd(),
                 reinterpret_cast<sockaddr*>(&address), &length);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed / shut down: server is going away
    }
    if (draining_.load()) {
      ::close(fd);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    connection->socket = Socket(fd);
    connection->client_id = next_client_id_.fetch_add(1);
    // Fair admission is keyed by peer address, not connection serial:
    // a client that opens a connection per request (as Client/call_once
    // does) keeps one lane and cannot evade its quota by reconnecting.
    connection->fair_key =
        (static_cast<std::uint64_t>(address.sin_family) << 32) |
        static_cast<std::uint64_t>(ntohl(address.sin_addr.s_addr));
    Connection& ref = *connection;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    ref.thread =
        std::thread(&Server::connection_loop, this, std::ref(ref));
    reap_finished_connections();
  }
}

void Server::reap_finished_connections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void Server::connection_loop(Connection& connection) {
  LineReader reader(connection.socket, options_.max_frame_bytes);
  std::string line;
  for (;;) {
    const LineReader::ReadResult read = reader.read_line(line);
    if (read == LineReader::ReadResult::kEof ||
        read == LineReader::ReadResult::kError ||
        read == LineReader::ReadResult::kTimeout) {
      // kTimeout cannot happen (the server never arms SO_RCVTIMEO) but
      // if it ever did, dropping the connection beats parsing a stale
      // frame.
      break;
    }
    const auto t0 = Clock::now();
    metrics_.count(Counter::kRequests);
    Response response;
    bool shutdown_handled = false;
    if (read == LineReader::ReadResult::kOversized) {
      metrics_.count(Counter::kOversizedFrames);
      response.status = Status(
          StatusCode::kParseError,
          "frame exceeds the " +
              std::to_string(options_.max_frame_bytes) +
              "-byte limit and was discarded");
    } else {
      try {
        const Request request = request_from_line(line);
        response = handle_request(request, connection.fair_key);
        shutdown_handled =
            request.type == RequestType::kShutdown && response.ok();
      } catch (const StatusError& error) {
        metrics_.count(Counter::kParseErrors);
        response.status = error.status();
      } catch (const std::exception& error) {
        // A handler exception must never unwind a connection thread
        // (std::terminate); answer it like any other failed request.
        response.status =
            Status(StatusCode::kExecutionError, error.what());
      }
    }
    if (response.result.has_value()) {
      metrics_.count(Counter::kRowsStreamed,
                     response.result->table.rows());
    }
    if (options_.verbose) {
      std::cerr << "[wi_serve] client " << connection.client_id
                << " id=" << (response.id.empty() ? "-" : response.id)
                << " type=" << request_type_name(response.type)
                << " status=" << status_code_name(response.status.code())
                << " tier=" << (response.tier.empty() ? "-" : response.tier)
                << " queue_us=" << response.queue_us
                << " run_us=" << response.run_us
                << " total_us=" << us_since(t0) << "\n";
    }
    // Chaos hooks on the response path. Shutdown responses are exempt:
    // dropping one would strand wait() and hang the daemon — the very
    // failure mode the chaos gate exists to rule out.
    if (injector_ != nullptr && !shutdown_handled) {
      if (injector_->conn_drop()) {
        metrics_.count(Counter::kInjectedFaults);
        metrics_.count(Counter::kDroppedConnections);
        if (options_.verbose) {
          std::cerr << "[wi_serve] chaos: dropping client "
                    << connection.client_id << " before its response\n";
        }
        break;  // client sees EOF and classifies/retries
      }
      if (injector_->conn_stall()) {
        metrics_.count(Counter::kInjectedFaults);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                injector_->delay_ms()));
      }
    }
    if (!write_all(connection.socket, response_to_line(response) + "\n")
             .is_ok()) {
      break;
    }
    // The shutdown response is on the wire; only now may wait()
    // return and stop() tear connections down.
    if (shutdown_handled) signal_shutdown();
  }
  // Reap peers that finished before us, so a daemon that serves a
  // burst and then sits idle does not retain every past Connection
  // until the next accept. Our own entry (done is still false here) is
  // reaped by a later connection, the accept loop, or stop().
  reap_finished_connections();
  connection.done.store(true);
}

Response Server::handle_request(const Request& request,
                                std::uint64_t client_key) {
  switch (request.type) {
    case RequestType::kRunScenario:
      return run_scenario(request, client_key);
    case RequestType::kRunCampaign:
      return run_campaign(request, client_key);
    case RequestType::kStats: {
      metrics_.count(Counter::kStats);
      Response response;
      response.id = request.id;
      response.type = request.type;
      sim::RunResult stats;
      stats.scenario = "server_stats";
      stats.table = stats_table();
      response.result = std::move(stats);
      return response;
    }
    case RequestType::kHealth: {
      metrics_.count(Counter::kHealth);
      Response response;
      response.id = request.id;
      response.type = request.type;
      if (draining_.load()) {
        response.status = Status(StatusCode::kOk, "draining");
      }
      return response;
    }
    case RequestType::kShutdown: {
      metrics_.count(Counter::kShutdown);
      drain();
      Response response;
      response.id = request.id;
      response.type = request.type;
      response.status = Status(StatusCode::kOk, "drained");
      return response;
    }
  }
  Response response;
  response.id = request.id;
  response.status =
      Status(StatusCode::kParseError, "unknown request type");
  return response;
}

Response Server::run_scenario(const Request& request,
                              std::uint64_t client_key) {
  metrics_.count(Counter::kRunScenario);
  Response response;
  response.id = request.id;
  response.type = request.type;
  if (draining_.load()) {
    metrics_.count(Counter::kBackpressure);
    response.status = Status(StatusCode::kUnavailable,
                             "server is draining for shutdown — retry "
                             "against a live instance");
    return response;
  }
  sim::ScenarioSpec spec;
  try {
    spec = request.spec.has_value()
               ? *request.spec
               : sim::ScenarioRegistry::paper().get(request.scenario);
  } catch (const StatusError& error) {
    response.status = error.status();
    return response;
  }
  if (Status valid = spec.validate(); !valid.is_ok()) {
    response.status = valid;
    return response;
  }
  if (request.seed != 0) spec = sim::scenario_for_seed(spec, request.seed);
  const std::string key =
      sim::result_content_key(spec, options_.version, request.seed);
  Job job;
  job.kind = Job::Kind::kScenario;
  job.key = key;
  job.spec = std::move(spec);
  job.seed = request.seed;
  apply_deadline(job, request);
  return execute_keyed(key, client_key, std::move(job),
                       std::move(response));
}

Response Server::run_campaign(const Request& request,
                              std::uint64_t client_key) {
  metrics_.count(Counter::kRunCampaign);
  Response response;
  response.id = request.id;
  response.type = request.type;
  if (draining_.load()) {
    metrics_.count(Counter::kBackpressure);
    response.status = Status(StatusCode::kUnavailable,
                             "server is draining for shutdown — retry "
                             "against a live instance");
    return response;
  }
  sim::CampaignSpec campaign;
  if (request.campaign.has_value()) {
    campaign = *request.campaign;
  } else {
    try {
      campaign.scenario =
          sim::ScenarioRegistry::paper().get(request.scenario);
    } catch (const StatusError& error) {
      response.status = error.status();
      return response;
    }
    campaign.seeds = request.seeds;
    campaign.base_seed = request.base_seed;
  }
  if (Status valid = campaign.validate(); !valid.is_ok()) {
    response.status = valid;
    return response;
  }
  const std::string key =
      campaign_content_key(campaign, options_.version);
  Job job;
  job.kind = Job::Kind::kCampaign;
  job.key = key;
  job.campaign = std::move(campaign);
  apply_deadline(job, request);
  return execute_keyed(key, client_key, std::move(job),
                       std::move(response));
}

void Server::apply_deadline(Job& job, const Request& request) {
  if (request.deadline_ms <= 0.0) return;
  job.has_deadline = true;
  job.deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             request.deadline_ms));
}

Response Server::execute_keyed(const std::string& key,
                               std::uint64_t client_key, Job job,
                               Response response) {
  const auto t0 = Clock::now();
  HotTier::Ticket ticket = hot_tier_.acquire(key);
  if (ticket.tier == HotTier::Tier::kHot) {
    metrics_.count(Counter::kHotHits);
    response.tier = "hot";
    response.status = ticket.cached->status;
    response.result = *ticket.cached;
    metrics_.observe_request(0.0, 0.0, us_since(t0), false);
    return response;
  }
  if (ticket.tier == HotTier::Tier::kInflight) {
    const HotTier::ResultPtr result = ticket.future.get();
    const double wait_us = us_since(t0);
    response.tier = "inflight";
    response.queue_us = wait_us;
    if (result == nullptr ||
        result->status.code() == StatusCode::kUnavailable) {
      // The leader could not enqueue: its rejection propagates to
      // every coalesced waiter as the same explicit backpressure.
      metrics_.count(Counter::kBackpressure);
      response.status =
          result != nullptr
              ? result->status
              : Status(StatusCode::kUnavailable,
                       "in-flight request was abandoned — retry");
      return response;
    }
    metrics_.count(Counter::kInflightJoins);
    response.status = result->status;
    response.result = *result;
    metrics_.observe_request(wait_us, 0.0, us_since(t0), false);
    return response;
  }
  // Leadership: this request must enqueue the job (or tell everyone
  // why it could not).
  const std::string scenario_name = job.kind == Job::Kind::kScenario
                                        ? job.spec.name
                                        : job.campaign->display_name();
  job.enqueued = Clock::now();
  auto promise = std::make_shared<std::promise<JobOutcome>>();
  std::future<JobOutcome> outcome_future = promise->get_future();
  job.outcome = promise;
  const PushOutcome admitted =
      queue_->queue.try_push(client_key, std::move(job));
  if (!push_accepted(admitted)) {
    auto rejected = std::make_shared<sim::RunResult>();
    rejected->scenario = scenario_name;
    std::string reason;
    switch (admitted) {
      case PushOutcome::kClosed:
        reason =
            "server is draining for shutdown — retry against a live "
            "instance";
        break;
      case PushOutcome::kShed:
        metrics_.count(Counter::kLoadShed);
        response.retry_after_ms = options_.shed_retry_after_ms;
        reason = "server is shedding load (queue depth at the " +
                 std::to_string(
                     queue_->queue.options().shed_watermark) +
                 "-job watermark) — retry after " +
                 std::to_string(options_.shed_retry_after_ms) + " ms";
        break;
      case PushOutcome::kOverQuota:
        reason = "client is at its per-client quota (" +
                 std::to_string(
                     queue_->queue.options().per_client_quota) +
                 " queued jobs) — wait for queued work to finish";
        break;
      case PushOutcome::kFull:
      default:
        reason = "job queue is full (capacity " +
                 std::to_string(queue_->queue.options().capacity) +
                 ") — back off and retry";
        break;
    }
    rejected->status = Status(StatusCode::kUnavailable, reason);
    metrics_.count(Counter::kBackpressure);
    response.status = rejected->status;
    // Release any waiter that coalesced onto this key while we tried.
    hot_tier_.fulfill(key, std::move(rejected));
    return response;
  }
  JobOutcome outcome = outcome_future.get();
  response.tier = outcome.tier;
  response.queue_us = outcome.queue_us;
  response.run_us = outcome.run_us;
  response.status = outcome.result->status;
  // An expired job never ran: the answer is the status alone, with no
  // result payload to mistake for workload output.
  if (outcome.tier != "expired") {
    response.result = *outcome.result;
  }
  metrics_.observe_request(outcome.queue_us, outcome.run_us,
                           us_since(t0), outcome.tier == "run");
  return response;
}

void Server::worker_loop() {
  while (std::optional<Job> job = queue_->queue.pop()) {
    JobOutcome outcome;
    outcome.queue_us = us_since(job->enqueued);
    auto result = std::make_shared<sim::RunResult>();
    // Deadline gate: a job whose deadline passed while it queued is
    // answered without running — the client asked for "by then or not
    // at all", and skipping the run is what keeps an overloaded queue
    // from doing work nobody is waiting for. HotTier never caches
    // failed results, so the expired answer cannot poison the key.
    if (job->has_deadline && Clock::now() >= job->deadline) {
      result->scenario = job->display_name();
      result->status = Status(
          StatusCode::kDeadlineExceeded,
          "deadline expired after " +
              std::to_string(outcome.queue_us / 1000.0) +
              " ms in queue — job not run; retry with a larger "
              "deadline");
      metrics_.count(Counter::kDeadlineExpired);
      outcome.tier = "expired";
      hot_tier_.fulfill(job->key, result);
      outcome.result = std::move(result);
      job->outcome->set_value(std::move(outcome));
      continue;
    }
    if (job->kind == Job::Kind::kScenario) {
      std::optional<sim::RunResult> cached;
      if (store_ != nullptr) {
        if (injector_ != nullptr && injector_->store_delay()) {
          metrics_.count(Counter::kInjectedFaults);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  injector_->delay_ms()));
        }
        if (injector_ != nullptr && injector_->store_fail()) {
          // Injected transient I/O failure: the load degrades to a
          // miss, exactly like the real errno paths in ResultStore.
          metrics_.count(Counter::kInjectedFaults);
          std::cerr << "[wi_serve] chaos: injected store load failure "
                       "for "
                    << job->key << "\n";
        } else {
          try {
            cached = store_->load(job->spec, job->seed);
          } catch (const std::exception& error) {
            // A failing cold tier degrades to a miss; the run below
            // recomputes.
            std::cerr << "[wi_serve] store load failed for " << job->key
                      << ": " << error.what() << "\n";
          }
          if (cached.has_value() && injector_ != nullptr &&
              injector_->store_corrupt()) {
            // Injected corruption: discard the loaded entry, as the
            // store's own checksum path does for real bit rot.
            metrics_.count(Counter::kInjectedFaults);
            std::cerr << "[wi_serve] chaos: injected corrupt store "
                         "entry for "
                      << job->key << "\n";
            cached.reset();
          }
        }
      }
      if (cached.has_value()) {
        *result = std::move(*cached);
        outcome.tier = "cold";
        metrics_.count(Counter::kColdHits);
      } else {
        const auto r0 = Clock::now();
        try {
          *result = engine_.run(job->spec);
        } catch (const StatusError& error) {
          result->scenario = job->spec.name;
          result->status = error.status();
        } catch (const std::exception& error) {
          result->scenario = job->spec.name;
          result->status =
              Status(StatusCode::kExecutionError, error.what());
        }
        outcome.run_us = us_since(r0);
        outcome.tier = "run";
        metrics_.count(Counter::kEngineRuns);
        if (!result->ok()) metrics_.count(Counter::kFailedRuns);
        if (store_ != nullptr) {
          if (injector_ != nullptr && injector_->store_fail()) {
            // Injected write failure: drop the save, serve the result
            // unpersisted — the same degradation as a real ENOSPC.
            metrics_.count(Counter::kInjectedFaults);
            std::cerr << "[wi_serve] chaos: injected store save "
                         "failure for "
                      << job->key << "\n";
          } else {
            // ResultStore::save throws on write/rename failure (full
            // or read-only store directory). Uncaught it would
            // std::terminate the daemon from this worker thread and
            // strand every coalesced waiter; the computed result is
            // still good, so log and serve it unpersisted.
            try {
              store_->save(job->spec, *result, job->seed);
            } catch (const StatusError& error) {
              std::cerr << "[wi_serve] store save failed for "
                        << job->key << ": "
                        << error.status().to_string() << "\n";
            } catch (const std::exception& error) {
              std::cerr << "[wi_serve] store save failed for "
                        << job->key << ": " << error.what() << "\n";
            }
          }
        }
      }
    } else {
      const auto r0 = Clock::now();
      try {
        const sim::Campaign campaign(*job->campaign);
        sim::CampaignResult campaign_result = campaign.run(
            engine_, store_.get(), options_.campaign_threads);
        result->scenario = campaign_result.campaign;
        result->status = campaign_result.status;
        result->table = std::move(campaign_result.aggregate);
        result->notes = std::move(campaign_result.notes);
        result->notes.push_back(
            "campaign: " + std::to_string(campaign_result.seeds) +
            " seeds, base_seed=" +
            std::to_string(campaign_result.base_seed));
      } catch (const StatusError& error) {
        result->scenario = job->campaign->display_name();
        result->status = error.status();
      } catch (const std::exception& error) {
        result->scenario = job->campaign->display_name();
        result->status =
            Status(StatusCode::kExecutionError, error.what());
      }
      outcome.run_us = us_since(r0);
      outcome.tier = "run";
      metrics_.count(Counter::kEngineRuns);
      if (!result->ok()) metrics_.count(Counter::kFailedRuns);
    }
    hot_tier_.fulfill(job->key, result);
    outcome.result = std::move(result);
    job->outcome->set_value(std::move(outcome));
  }
}

Table Server::stats_table() {
  MetricsGauges gauges;
  gauges.queue_depth = queue_->queue.size();
  gauges.queue_peak = queue_->queue.peak_depth();
  gauges.hot_size = hot_tier_.size();
  gauges.hot_capacity = hot_tier_.options().capacity;
  gauges.hot_evictions = hot_tier_.evictions();
  gauges.workers = worker_count_;
  if (store_ != nullptr) {
    const sim::ResultStoreStats stats = store_->stats();
    gauges.store_hits = stats.hits;
    gauges.store_misses = stats.misses;
    gauges.store_inserts = stats.inserts;
    gauges.store_corrupt = stats.corrupt_entries;
    gauges.store_orphans_removed = stats.orphans_removed;
    gauges.store_orphans_skipped = stats.orphans_skipped;
    gauges.store_transient_failures = stats.transient_write_failures;
    gauges.has_store = true;
  }
  return metrics_to_table(metrics_.snapshot(), gauges);
}

}  // namespace wi::serve

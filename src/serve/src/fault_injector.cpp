#include "wi/serve/fault_injector.hpp"

#include <string>

namespace wi::serve {

namespace {

[[nodiscard]] Status check_rate(double rate, const char* name) {
  if (!(rate >= 0.0) || rate > 1.0) {
    return Status(StatusCode::kInvalidSpec,
                  std::string("fault injector ") + name +
                      " must be in [0, 1], got " + std::to_string(rate));
  }
  return Status::ok();
}

}  // namespace

Status FaultInjectorOptions::validate() const {
  if (Status s = check_rate(store_fail_rate, "store_fail_rate");
      !s.is_ok()) {
    return s;
  }
  if (Status s = check_rate(store_delay_rate, "store_delay_rate");
      !s.is_ok()) {
    return s;
  }
  if (Status s = check_rate(store_corrupt_rate, "store_corrupt_rate");
      !s.is_ok()) {
    return s;
  }
  if (Status s = check_rate(conn_drop_rate, "conn_drop_rate");
      !s.is_ok()) {
    return s;
  }
  if (Status s = check_rate(conn_stall_rate, "conn_stall_rate");
      !s.is_ok()) {
    return s;
  }
  if (!(delay_ms >= 0.0)) {
    return Status(StatusCode::kInvalidSpec,
                  "fault injector delay_ms must be >= 0, got " +
                      std::to_string(delay_ms));
  }
  return Status::ok();
}

FaultInjector::FaultInjector(FaultInjectorOptions options)
    : options_(options) {}

bool FaultInjector::fire(fault::Stream stream, double rate,
                         std::atomic<std::uint64_t>& counter) {
  // fetch_add gives every event a unique, dense index on its stream;
  // the verdict depends only on (seed, stream, index), never on which
  // thread asked or when. Zero-rate hooks still consume an index so the
  // streams stay aligned across runs that only differ in one rate.
  const std::uint64_t index =
      counter.fetch_add(1, std::memory_order_relaxed);
  if (rate <= 0.0) return false;
  const bool fired =
      fault::decide(options_.seed, stream, index, rate);
  if (fired) activations_.fetch_add(1, std::memory_order_relaxed);
  return fired;
}

bool FaultInjector::store_fail() {
  return fire(fault::Stream::kStoreFail, options_.store_fail_rate,
              store_fail_events_);
}

bool FaultInjector::store_delay() {
  return fire(fault::Stream::kStoreDelay, options_.store_delay_rate,
              store_delay_events_);
}

bool FaultInjector::store_corrupt() {
  return fire(fault::Stream::kStoreCorrupt, options_.store_corrupt_rate,
              store_corrupt_events_);
}

bool FaultInjector::conn_drop() {
  return fire(fault::Stream::kConnDrop, options_.conn_drop_rate,
              conn_drop_events_);
}

bool FaultInjector::conn_stall() {
  return fire(fault::Stream::kConnStall, options_.conn_stall_rate,
              conn_stall_events_);
}

}  // namespace wi::serve

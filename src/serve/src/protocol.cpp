#include "wi/serve/protocol.hpp"

#include <cmath>

#include "wi/sim/result_store.hpp"
#include "wi/sim/scenario_json.hpp"

namespace wi::serve {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw StatusError(Status(StatusCode::kParseError, message));
}

[[nodiscard]] std::uint64_t as_uint(const Json& json,
                                    const std::string& key) {
  const double value = json.as_number();
  if (value < 0 || std::floor(value) != value || value > (1ull << 53)) {
    fail("'" + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

const char* request_type_name(RequestType type) {
  switch (type) {
    case RequestType::kRunScenario: return "run_scenario";
    case RequestType::kRunCampaign: return "run_campaign";
    case RequestType::kStats: return "stats";
    case RequestType::kHealth: return "health";
    case RequestType::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::optional<RequestType> request_type_from_name(std::string_view name) {
  for (const RequestType type :
       {RequestType::kRunScenario, RequestType::kRunCampaign,
        RequestType::kStats, RequestType::kHealth,
        RequestType::kShutdown}) {
    if (name == request_type_name(type)) return type;
  }
  return std::nullopt;
}

Json request_to_json(const Request& request) {
  Json json = Json::object();
  json.set("type", Json(request_type_name(request.type)));
  if (!request.id.empty()) json.set("id", Json(request.id));
  if (!request.scenario.empty()) {
    json.set("scenario", Json(request.scenario));
  }
  if (request.spec.has_value()) {
    json.set("spec", sim::scenario_to_json(*request.spec));
  }
  if (request.campaign.has_value()) {
    json.set("campaign", sim::campaign_to_json(*request.campaign));
  }
  if (request.type == RequestType::kRunScenario && request.seed != 0) {
    json.set("seed", Json(static_cast<double>(request.seed)));
  }
  if (request.type == RequestType::kRunCampaign &&
      !request.scenario.empty()) {
    json.set("seeds", Json(static_cast<double>(request.seeds)));
    json.set("base_seed", Json(static_cast<double>(request.base_seed)));
  }
  if (request.deadline_ms > 0.0) {
    json.set("deadline_ms", Json(request.deadline_ms));
  }
  return json;
}

Request request_from_json(const Json& json) {
  if (!json.is_object()) fail("request must be a JSON object");
  Request request;
  bool saw_type = false;
  for (const auto& [key, value] : json.as_object()) {
    if (key == "type") {
      const auto type = request_type_from_name(value.as_string());
      if (!type.has_value()) {
        fail("unknown request type '" + value.as_string() + "'");
      }
      request.type = *type;
      saw_type = true;
    } else if (key == "id") {
      request.id = value.as_string();
    } else if (key == "scenario") {
      request.scenario = value.as_string();
    } else if (key == "spec") {
      request.spec = sim::scenario_from_json(value);
    } else if (key == "campaign") {
      request.campaign = sim::campaign_from_json(value);
    } else if (key == "seed") {
      request.seed = as_uint(value, key);
    } else if (key == "seeds") {
      request.seeds = static_cast<std::size_t>(as_uint(value, key));
    } else if (key == "base_seed") {
      request.base_seed = as_uint(value, key);
    } else if (key == "deadline_ms") {
      request.deadline_ms = value.as_number();
      if (!(request.deadline_ms >= 0.0)) {
        fail("'deadline_ms' must be >= 0");
      }
    } else {
      fail("unknown request key '" + key + "'");
    }
  }
  if (!saw_type) fail("request has no 'type'");

  // Shape checks: the payload must match the type, and the by-name /
  // inline forms are mutually exclusive.
  const bool is_run_scenario = request.type == RequestType::kRunScenario;
  const bool is_run_campaign = request.type == RequestType::kRunCampaign;
  if (request.spec.has_value() && !is_run_scenario) {
    fail("'spec' is only valid on run_scenario requests");
  }
  if (request.campaign.has_value() && !is_run_campaign) {
    fail("'campaign' is only valid on run_campaign requests");
  }
  if (!request.scenario.empty() && !is_run_scenario && !is_run_campaign) {
    fail("'scenario' is only valid on run requests");
  }
  if (json.find("seed") != nullptr && !is_run_scenario) {
    fail("'seed' is only valid on run_scenario requests");
  }
  if (json.find("deadline_ms") != nullptr && !is_run_scenario &&
      !is_run_campaign) {
    fail("'deadline_ms' is only valid on run requests");
  }
  if ((json.find("seeds") != nullptr ||
       json.find("base_seed") != nullptr) &&
      !is_run_campaign) {
    fail("'seeds'/'base_seed' are only valid on run_campaign requests");
  }
  if (is_run_scenario) {
    if (request.scenario.empty() == !request.spec.has_value()) {
      fail("run_scenario needs exactly one of 'scenario' or 'spec'");
    }
  }
  if (is_run_campaign) {
    if (request.scenario.empty() == !request.campaign.has_value()) {
      fail("run_campaign needs exactly one of 'scenario' or 'campaign'");
    }
    if (request.campaign.has_value() &&
        (json.find("seeds") != nullptr ||
         json.find("base_seed") != nullptr)) {
      fail("'seeds'/'base_seed' conflict with an inline 'campaign' "
           "(set them there)");
    }
    if (request.seeds == 0) fail("'seeds' must be >= 1");
  }
  return request;
}

Json response_to_json(const Response& response) {
  Json json = Json::object();
  if (!response.id.empty()) json.set("id", Json(response.id));
  json.set("type", Json(request_type_name(response.type)));
  Json status = Json::object();
  status.set("code", Json(status_code_name(response.status.code())));
  status.set("message", Json(response.status.message()));
  json.set("status", std::move(status));
  if (!response.tier.empty()) json.set("tier", Json(response.tier));
  if (response.queue_us != 0.0) {
    json.set("queue_us", Json(response.queue_us));
  }
  if (response.run_us != 0.0) json.set("run_us", Json(response.run_us));
  if (response.retry_after_ms != 0.0) {
    json.set("retry_after_ms", Json(response.retry_after_ms));
  }
  if (response.result.has_value()) {
    json.set("result", sim::run_result_to_json(*response.result));
  }
  return json;
}

Response response_from_json(const Json& json) {
  if (!json.is_object()) fail("response must be a JSON object");
  Response response;
  bool saw_status = false;
  for (const auto& [key, value] : json.as_object()) {
    if (key == "id") {
      response.id = value.as_string();
    } else if (key == "type") {
      const auto type = request_type_from_name(value.as_string());
      if (!type.has_value()) {
        fail("unknown response type '" + value.as_string() + "'");
      }
      response.type = *type;
    } else if (key == "status") {
      const auto code =
          status_code_from_name(value.at("code").as_string());
      if (!code.has_value()) {
        fail("unknown status code '" + value.at("code").as_string() +
             "'");
      }
      response.status = Status(*code, value.at("message").as_string());
      saw_status = true;
    } else if (key == "tier") {
      response.tier = value.as_string();
    } else if (key == "queue_us") {
      response.queue_us = value.as_number();
    } else if (key == "run_us") {
      response.run_us = value.as_number();
    } else if (key == "retry_after_ms") {
      response.retry_after_ms = value.as_number();
    } else if (key == "result") {
      response.result = sim::run_result_from_json(value);
    } else {
      fail("unknown response key '" + key + "'");
    }
  }
  if (!saw_status) fail("response has no 'status'");
  return response;
}

std::string request_to_line(const Request& request) {
  return request_to_json(request).dump();
}

std::string response_to_line(const Response& response) {
  return response_to_json(response).dump();
}

Request request_from_line(const std::string& line) {
  return request_from_json(Json::parse(line));
}

Response response_from_line(const std::string& line) {
  return response_from_json(Json::parse(line));
}

}  // namespace wi::serve

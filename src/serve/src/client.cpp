#include "wi/serve/client.hpp"

#include <utility>

namespace wi::serve {

Status Client::connect(const std::string& host, std::uint16_t port) {
  Socket socket;
  if (Status status = tcp_connect(host, port, socket);
      !status.is_ok()) {
    return status;
  }
  socket_ = std::move(socket);
  // Responses can be large (result tables); no frame bound on the
  // client side beyond sanity.
  reader_ = std::make_unique<LineReader>(socket_, 64u << 20);
  return Status::ok();
}

Response Client::call(const Request& request) {
  return call_raw(request_to_line(request));
}

Response Client::call_raw(const std::string& line) {
  if (Status status = send_raw(line); !status.is_ok()) {
    throw StatusError(status);
  }
  return receive();
}

Status Client::send_raw(const std::string& line) {
  if (!socket_.valid()) {
    return Status(StatusCode::kUnavailable, "client is not connected");
  }
  return write_all(socket_, line + "\n");
}

Response Client::receive() {
  if (!socket_.valid() || reader_ == nullptr) {
    throw StatusError(
        Status(StatusCode::kUnavailable, "client is not connected"));
  }
  std::string line;
  switch (reader_->read_line(line)) {
    case LineReader::ReadResult::kLine:
      return response_from_line(line);
    case LineReader::ReadResult::kEof:
      throw StatusError(Status(StatusCode::kUnavailable,
                               "server closed the connection"));
    case LineReader::ReadResult::kOversized:
      throw StatusError(Status(StatusCode::kParseError,
                               "response frame exceeds the client "
                               "frame bound"));
    case LineReader::ReadResult::kError:
      break;
  }
  throw StatusError(Status(StatusCode::kUnavailable,
                           "connection failed while reading the "
                           "response"));
}

void Client::close() {
  reader_.reset();
  socket_.close();
}

Response call_once(const std::string& host, std::uint16_t port,
                   const Request& request) {
  Client client;
  if (Status status = client.connect(host, port); !status.is_ok()) {
    throw StatusError(status);
  }
  Response response = client.call(request);
  client.close();
  return response;
}

}  // namespace wi::serve

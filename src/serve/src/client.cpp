#include "wi/serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "wi/common/fault.hpp"

namespace wi::serve {

Status Client::connect(const std::string& host, std::uint16_t port) {
  Socket socket;
  if (Status status = tcp_connect(host, port, socket);
      !status.is_ok()) {
    return status;
  }
  socket_ = std::move(socket);
  // Responses can be large (result tables); no frame bound on the
  // client side beyond sanity.
  reader_ = std::make_unique<LineReader>(socket_, 64u << 20);
  return Status::ok();
}

Status Client::set_timeout(double timeout_ms) {
  return set_receive_timeout(socket_, timeout_ms);
}

Response Client::call(const Request& request) {
  return call_raw(request_to_line(request));
}

Response Client::call_raw(const std::string& line) {
  if (Status status = send_raw(line); !status.is_ok()) {
    throw StatusError(status);
  }
  return receive();
}

Status Client::send_raw(const std::string& line) {
  if (!socket_.valid()) {
    return Status(StatusCode::kUnavailable, "client is not connected");
  }
  return write_all(socket_, line + "\n");
}

Response Client::receive() {
  if (!socket_.valid() || reader_ == nullptr) {
    throw StatusError(
        Status(StatusCode::kUnavailable, "client is not connected"));
  }
  std::string line;
  switch (reader_->read_line(line)) {
    case LineReader::ReadResult::kLine:
      return response_from_line(line);
    case LineReader::ReadResult::kEof:
      throw StatusError(Status(StatusCode::kUnavailable,
                               "server closed the connection"));
    case LineReader::ReadResult::kOversized:
      throw StatusError(Status(StatusCode::kParseError,
                               "response frame exceeds the client "
                               "frame bound"));
    case LineReader::ReadResult::kTimeout:
      throw StatusError(Status(StatusCode::kDeadlineExceeded,
                               "timed out waiting for the response — "
                               "reconnect before retrying"));
    case LineReader::ReadResult::kError:
      break;
  }
  throw StatusError(Status(StatusCode::kUnavailable,
                           "connection failed while reading the "
                           "response"));
}

void Client::close() {
  reader_.reset();
  socket_.close();
}

Response call_once(const std::string& host, std::uint16_t port,
                   const Request& request) {
  Client client;
  if (Status status = client.connect(host, port); !status.is_ok()) {
    throw StatusError(status);
  }
  Response response = client.call(request);
  client.close();
  return response;
}

Response call_with_retry(const std::string& host, std::uint16_t port,
                         const Request& request,
                         const RetryOptions& options,
                         RetryStats* stats) {
  const std::size_t max_attempts =
      options.max_attempts == 0 ? 1 : options.max_attempts;
  // Decorrelate jitter across requests without losing replayability:
  // the stream seed folds in the request id.
  const std::uint64_t jitter_seed =
      options.seed ^
      fault::splitmix64(std::hash<std::string>{}(request.id));
  double backoff_ms = options.initial_backoff_ms;
  for (std::size_t attempt = 0;; ++attempt) {
    if (stats != nullptr) stats->attempts = attempt + 1;
    double hint_ms = 0.0;
    try {
      Client client;
      if (Status status = client.connect(host, port);
          !status.is_ok()) {
        throw StatusError(status);
      }
      if (options.timeout_ms > 0.0) {
        if (Status status = client.set_timeout(options.timeout_ms);
            !status.is_ok()) {
          throw StatusError(status);
        }
      }
      Response response = client.call(request);
      client.close();
      if (response.status.code() != StatusCode::kUnavailable ||
          attempt + 1 >= max_attempts) {
        return response;
      }
      hint_ms = response.retry_after_ms;
    } catch (const StatusError& error) {
      // Thrown kDeadlineExceeded is OUR receive timeout (retryable on
      // a fresh connection); a server-enforced deadline arrives as a
      // parsed response above and is terminal.
      const StatusCode code = error.status().code();
      const bool retryable = code == StatusCode::kUnavailable ||
                             code == StatusCode::kDeadlineExceeded;
      if (!retryable || attempt + 1 >= max_attempts) throw;
    }
    const double jitter =
        0.5 + fault::unit_interval(fault::derive(
                  jitter_seed, fault::Stream::kRetryJitter, attempt));
    const double wait_ms = std::max(backoff_ms, hint_ms) * jitter;
    if (wait_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait_ms));
    }
    if (stats != nullptr) stats->backoff_ms_total += wait_ms;
    backoff_ms = std::min(backoff_ms * options.backoff_multiplier,
                          options.max_backoff_ms);
  }
}

}  // namespace wi::serve

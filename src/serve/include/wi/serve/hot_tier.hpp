#pragma once
/// \file hot_tier.hpp
/// \brief In-memory LRU result cache with single-flight build
///        coalescing — the tier in front of the on-disk ResultStore.
///
/// Keyed by the same content key as the store (result_content_key), so
/// the tiers agree about request identity. Two jobs in one class:
///
///  * LRU of completed results: a repeat spec is served from memory
///    without touching disk (the store stays the cold tier + the
///    durable one).
///  * Single-flight: concurrent requests for the same key coalesce
///    onto ONE computation — the first caller leads, everyone else
///    blocks on a shared future, mirroring PhyCurveCache's build-once
///    idiom. This is what makes "M clients, same spec, exactly one
///    SimEngine run" a guarantee rather than a race.
///
/// Failed results are delivered to waiters but never cached, matching
/// the ResultStore policy (failures re-run next time).

#include <cstddef>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "wi/sim/engine.hpp"

namespace wi::serve {

/// Thread-safe LRU + single-flight cache of scenario results.
class HotTier {
 public:
  using ResultPtr = std::shared_ptr<const sim::RunResult>;

  /// How acquire() resolved a key.
  enum class Tier {
    kHot,       ///< completed result was in the LRU
    kInflight,  ///< someone is computing it right now — wait on future
    kLead,      ///< this caller must compute and fulfill (or abandon)
  };

  /// Move-only: a kLead ticket carries an RAII abandonment guard — if
  /// the leader unwinds (or simply drops the ticket) without calling
  /// fulfill(), the destructor resolves the flight with an error
  /// result, so coalesced waiters never hang and the key is released
  /// for the next leader. After fulfill() the guard is a no-op (it
  /// only fires while its own flight is still registered).
  struct Ticket {
    Ticket() = default;
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket();

    Tier tier = Tier::kLead;
    ResultPtr cached;                       ///< set for kHot
    std::shared_future<ResultPtr> future;   ///< set for kInflight

   private:
    friend class HotTier;
    HotTier* owner_ = nullptr;  ///< armed for kLead tickets
    std::string key_;
    std::shared_ptr<std::promise<ResultPtr>> flight_;
  };

  struct Options {
    std::size_t capacity = 256;  ///< completed entries kept (>= 1)
  };

  HotTier() : HotTier(Options{}) {}
  explicit HotTier(Options options);

  /// Resolve a key: hot hit, join of an in-flight build, or leadership
  /// of a new build. A kLead caller MUST later call fulfill() exactly
  /// once for the key — that is what releases the joined waiters.
  [[nodiscard]] Ticket acquire(const std::string& key);

  /// Complete a build: deliver `result` to every waiter, and insert it
  /// into the LRU when it is a success. Also the backpressure path: a
  /// leader whose enqueue was rejected fulfills with the kUnavailable
  /// result so waiters get the same explicit answer.
  void fulfill(const std::string& key, ResultPtr result);

  /// Peek without side effects (no LRU bump, no flight join); nullptr
  /// on miss. For tests and introspection.
  [[nodiscard]] ResultPtr peek(const std::string& key) const;

  /// Counters: hits = LRU hits, coalesced = joins of an in-flight
  /// build, leads = acquire() calls that took leadership.
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t coalesced() const;
  [[nodiscard]] std::size_t leads() const;
  [[nodiscard]] std::size_t insertions() const;
  [[nodiscard]] std::size_t evictions() const;
  /// Lead tickets destroyed without fulfill() (guard firings).
  [[nodiscard]] std::size_t abandoned() const;
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    ResultPtr result;
  };
  using LruList = std::list<Entry>;

  void insert_locked(const std::string& key, ResultPtr result);

  /// Ticket-destructor path: resolve the flight with an error result
  /// iff `flight` is still the registered build for `key` (a fulfilled
  /// or superseded flight is left alone).
  void abandon(const std::string& key,
               const std::shared_ptr<std::promise<ResultPtr>>& flight);

  Options options_;
  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  struct Flight {
    std::shared_ptr<std::promise<ResultPtr>> promise;
    /// get_future() is one-shot, so the shared future is created once
    /// at leadership time and handed to every joiner.
    std::shared_future<ResultPtr> future;
  };
  std::unordered_map<std::string, Flight> inflight_;
  std::size_t hits_ = 0;
  std::size_t coalesced_ = 0;
  std::size_t leads_ = 0;
  std::size_t insertions_ = 0;
  std::size_t evictions_ = 0;
  std::size_t abandoned_ = 0;
};

}  // namespace wi::serve

#pragma once
/// \file metrics.hpp
/// \brief Aggregate server observability: counters, latency stats and
///        the diffable metrics table.
///
/// Recording is sharded: threads hash onto one of a fixed set of
/// shards, each with its own mutex, so worker and connection threads
/// never serialize on one metrics lock. snapshot() folds the shards
/// with RunningStats::merge (Chan's parallel update) and
/// Histogram::merge — the same distributed-aggregation primitives the
/// ROADMAP's campaign sharding needs — so no individual sample is ever
/// stored. Percentiles come from a fixed log10-microsecond histogram
/// (1 us .. 10 s, 20 bins/decade): ~12% worst-case bucket error, zero
/// allocation per request.
///
/// The export format is a wi::Table ("metric", "value") — the same
/// machinery the golden results use, so server metrics are printable,
/// CSV-serializable and testable with the existing table tools.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "wi/common/stats.hpp"
#include "wi/common/table.hpp"

namespace wi::serve {

/// Counter slots (one atomic per shard each).
enum class Counter {
  kRequests,            ///< every parsed frame
  kRunScenario,         ///< run_scenario requests
  kRunCampaign,         ///< run_campaign requests
  kStats,               ///< stats requests
  kHealth,              ///< health requests
  kShutdown,            ///< shutdown requests
  kHotHits,             ///< served from the in-memory LRU
  kInflightJoins,       ///< coalesced onto an in-flight run
  kColdHits,            ///< served from the on-disk store
  kEngineRuns,          ///< actual SimEngine executions
  kFailedRuns,          ///< runs whose result status was not ok
  kBackpressure,        ///< queue-full rejections (kUnavailable)
  kParseErrors,         ///< malformed frames (bad JSON / bad shape)
  kOversizedFrames,     ///< frames over the max-frame bound
  kRowsStreamed,        ///< result table rows sent to clients
  kLoadShed,            ///< overload-watermark rejections (retry-after)
  kDeadlineExpired,     ///< jobs answered kDeadlineExceeded unrun
  kInjectedFaults,      ///< FaultInjector activations (chaos mode)
  kDroppedConnections,  ///< connections dropped by the FaultInjector
  kCount,               ///< sentinel
};

[[nodiscard]] const char* counter_name(Counter counter);

/// One merged view of everything recorded so far.
struct MetricsSnapshot {
  std::uint64_t counters[static_cast<std::size_t>(Counter::kCount)] = {};
  RunningStats queue_wait_us;  ///< admission-to-worker wait (run paths)
  RunningStats run_us;         ///< engine execution time (engine runs)
  RunningStats total_us;       ///< request receipt to response write
  Histogram latency;           ///< total_us on the log10 grid

  MetricsSnapshot();

  [[nodiscard]] std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  /// Latency percentile in microseconds (from the log10 histogram).
  [[nodiscard]] double latency_percentile_us(double q) const;
};

/// Thread-safe sharded recorder.
class ServerMetrics {
 public:
  ServerMetrics();
  ~ServerMetrics();  // out of line: ShardBlock is incomplete here
  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  void count(Counter counter, std::uint64_t n = 1);

  /// Record one completed run-type request.
  void observe_request(double queue_us, double run_us, double total_us,
                       bool engine_ran);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The latency histogram grid shared by server and loadgen:
  /// log10(max(us, 1)) over [0, 7), 20 bins per decade.
  [[nodiscard]] static Histogram make_latency_histogram();
  static void add_latency(Histogram& histogram, double us);
  [[nodiscard]] static double latency_quantile_us(
      const Histogram& histogram, double q);

 private:
  struct Shard;
  static constexpr std::size_t kShards = 8;

  [[nodiscard]] Shard& local_shard();

  // Defined in metrics.cpp so the header stays light.
  struct ShardBlock;
  std::unique_ptr<ShardBlock> shards_;
};

/// Render a snapshot plus live gauges as the canonical metrics table.
/// Every rate/percentile row is derived here, in one place, so the
/// stats request, the shutdown dump and the tests agree cell-for-cell.
struct MetricsGauges {
  std::size_t queue_depth = 0;
  std::size_t queue_peak = 0;
  std::size_t hot_size = 0;
  std::size_t hot_capacity = 0;
  std::size_t hot_evictions = 0;
  std::size_t workers = 0;
  std::size_t store_hits = 0;
  std::size_t store_misses = 0;
  std::size_t store_inserts = 0;
  std::size_t store_corrupt = 0;
  std::size_t store_orphans_removed = 0;
  std::size_t store_orphans_skipped = 0;
  std::size_t store_transient_failures = 0;
  bool has_store = false;
};

[[nodiscard]] Table metrics_to_table(const MetricsSnapshot& snapshot,
                                     const MetricsGauges& gauges);

/// Value of a ("metric","value") table row by metric name; throws
/// StatusError(kNotFound) when absent. Shared by wi_loadgen's gate
/// checks and the tests.
[[nodiscard]] double metrics_table_value(const Table& table,
                                         const std::string& metric);

}  // namespace wi::serve

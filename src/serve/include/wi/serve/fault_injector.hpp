#pragma once
/// \file fault_injector.hpp
/// \brief Deterministic chaos hooks for the wi_serve request path.
///
/// The injector is the service-side twin of the NoC fault schedule:
/// every decision comes from the same SplitMix64 derivation chain
/// (wi/common/fault.hpp), keyed by (seed, stream, event index), so a
/// chaos run is replayable — same seed, same rates, same sequence of
/// store failures / delays / corruptions and connection drops /
/// stalls, regardless of thread interleaving *per stream*. Each stream
/// keeps its own atomic event counter: the i-th store write of a run
/// always gets verdict derive(seed, kStoreFail, i), whichever worker
/// performs it.
///
/// All rates default to zero and the server skips every hook when
/// enabled() is false, so the production path pays one branch on a
/// null pointer and nothing else. The hooks model the faults the
/// resilience machinery must absorb:
///
///  * store_fail    — ResultStore I/O raises a transient error
///                    (load degrades to a miss, save is dropped)
///  * store_delay   — store I/O stalls for delay_ms
///  * store_corrupt — a loaded entry is treated as corrupt (re-run)
///  * conn_drop     — the connection dies before the response frame
///  * conn_stall    — the response frame is delayed by delay_ms
///
/// wi_loadgen --chaos drives these to prove that every client request
/// still resolves terminally (result, explicit error, or transport
/// error the client retries) — no hangs, no silent losses.

#include <atomic>
#include <cstdint>

#include "wi/common/fault.hpp"
#include "wi/common/status.hpp"

namespace wi::serve {

struct FaultInjectorOptions {
  double store_fail_rate = 0.0;     ///< P(transient store I/O failure)
  double store_delay_rate = 0.0;    ///< P(store I/O stalls delay_ms)
  double store_corrupt_rate = 0.0;  ///< P(loaded entry reads corrupt)
  double conn_drop_rate = 0.0;      ///< P(connection dropped pre-write)
  double conn_stall_rate = 0.0;     ///< P(response delayed delay_ms)
  double delay_ms = 5.0;            ///< stall duration for the delays
  std::uint64_t seed = 1;           ///< derivation root

  /// Any rate strictly positive? False = every hook is a no-op.
  [[nodiscard]] bool enabled() const {
    return store_fail_rate > 0.0 || store_delay_rate > 0.0 ||
           store_corrupt_rate > 0.0 || conn_drop_rate > 0.0 ||
           conn_stall_rate > 0.0;
  }

  /// Rates in [0,1], delay_ms >= 0.
  [[nodiscard]] Status validate() const;
};

/// Thread-safe deterministic fault source. One instance per server;
/// hooks are called from worker and connection threads concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options);

  [[nodiscard]] bool enabled() const { return options_.enabled(); }
  [[nodiscard]] const FaultInjectorOptions& options() const {
    return options_;
  }

  /// Each hook consumes one event on its stream and reports whether
  /// the fault fires. Calling a hook with a zero rate still advances
  /// the stream, keeping event indices aligned across runs that only
  /// differ in one rate.
  [[nodiscard]] bool store_fail();
  [[nodiscard]] bool store_delay();
  [[nodiscard]] bool store_corrupt();
  [[nodiscard]] bool conn_drop();
  [[nodiscard]] bool conn_stall();

  [[nodiscard]] double delay_ms() const { return options_.delay_ms; }

  /// Total hooks that fired (all streams).
  [[nodiscard]] std::uint64_t activations() const {
    return activations_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] bool fire(fault::Stream stream, double rate,
                          std::atomic<std::uint64_t>& counter);

  FaultInjectorOptions options_;
  std::atomic<std::uint64_t> store_fail_events_{0};
  std::atomic<std::uint64_t> store_delay_events_{0};
  std::atomic<std::uint64_t> store_corrupt_events_{0};
  std::atomic<std::uint64_t> conn_drop_events_{0};
  std::atomic<std::uint64_t> conn_stall_events_{0};
  std::atomic<std::uint64_t> activations_{0};
};

}  // namespace wi::serve

#pragma once
/// \file net.hpp
/// \brief Minimal POSIX TCP plumbing + newline framing for wi_serve.
///
/// The wire protocol is newline-delimited JSON (one request or
/// response per line), so the only framing state a connection needs is
/// a byte buffer scanned for '\n'. LineReader enforces the max-frame
/// bound *while reading*: an oversized line is consumed and discarded
/// up to its newline, reported as kOversized, and the connection stays
/// usable — a client bug must not wedge the server.

#include <cstddef>
#include <cstdint>
#include <string>

#include "wi/common/status.hpp"

namespace wi::serve {

/// Default max frame: 4 MiB of JSON per line (inline campaign specs
/// are a few KiB; anything near this bound is hostile or corrupt).
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// RAII file-descriptor wrapper (close on destruction, move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] int release();

  /// shutdown(2) both directions — unblocks a thread parked in read().
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
};

/// Listen on host:port (port 0 = ephemeral). On success returns a
/// listening socket and writes the actually bound port to `port`.
[[nodiscard]] Status tcp_listen(const std::string& host,
                                std::uint16_t& port, Socket& out,
                                int backlog = 64);

/// Blocking connect to host:port.
[[nodiscard]] Status tcp_connect(const std::string& host,
                                 std::uint16_t port, Socket& out);

/// Write the whole buffer (retrying short writes); kUnavailable when
/// the peer went away.
[[nodiscard]] Status write_all(const Socket& socket,
                               const std::string& data);

/// Bound every blocking read on the socket to `timeout_ms`
/// (SO_RCVTIMEO); 0 restores "block forever". A read that times out
/// surfaces as LineReader::ReadResult::kTimeout — how a client
/// enforces its request deadline against a stalled server.
[[nodiscard]] Status set_receive_timeout(const Socket& socket,
                                         double timeout_ms);

/// Buffered line reader over one socket.
class LineReader {
 public:
  enum class ReadResult {
    kLine,       ///< `line` holds one complete frame (no newline)
    kEof,        ///< clean end of stream
    kOversized,  ///< frame exceeded max_bytes; it was discarded and the
                 ///< stream is positioned after its newline
    kTimeout,    ///< receive timeout expired (set_receive_timeout);
                 ///< buffered partial data is kept — retryable
    kError,      ///< read(2) failed / stream died mid-frame
  };

  explicit LineReader(const Socket& socket,
                      std::size_t max_bytes = kDefaultMaxFrameBytes)
      : socket_(socket), max_bytes_(max_bytes) {}

  [[nodiscard]] ReadResult read_line(std::string& line);

 private:
  const Socket& socket_;
  std::size_t max_bytes_;
  std::string buffer_;
};

}  // namespace wi::serve

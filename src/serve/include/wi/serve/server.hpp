#pragma once
/// \file server.hpp
/// \brief The wi_serve daemon core: accept loop, connection handling,
///        worker pool and the tiered result cache, as a library class
///        so tests can run a real server on an ephemeral port
///        in-process.
///
/// Request path of a run_scenario frame:
///
///   connection thread: parse -> validate -> content key
///     -> HotTier::acquire
///          hot       -> respond from memory (no queueing, no disk)
///          inflight  -> wait on the single-flight future
///          lead      -> FairJobQueue::try_push
///                         full -> kUnavailable backpressure response
///                                 (and the joined waiters get it too)
///                         ok   -> wait for the worker's outcome
///   worker thread: ResultStore::load (cold tier)
///          hit  -> tier "cold"
///          miss -> SimEngine::run -> ResultStore::save -> tier "run"
///        -> HotTier::fulfill (inserts + releases waiters)
///
/// The accept loop never executes simulations and never blocks on the
/// queue; admission decisions happen in per-connection threads and are
/// always answered (accept, result, or explicit backpressure).
/// Shutdown (request or stop()) drains: admission closes, accepted
/// jobs finish, workers join, then the shutdown response is written.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "wi/serve/fault_injector.hpp"
#include "wi/serve/hot_tier.hpp"
#include "wi/serve/metrics.hpp"
#include "wi/serve/net.hpp"
#include "wi/serve/protocol.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/result_store.hpp"

namespace wi::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// Simulation worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Bounded admission queue shared by all clients.
  std::size_t queue_capacity = 256;
  /// Per-client admission quota; 0 = capacity / 4 (min 1).
  std::size_t per_client_quota = 0;
  /// Completed results kept in the in-memory hot tier.
  std::size_t hot_capacity = 256;
  /// Cold tier: on-disk content-keyed ResultStore. nullopt = memory
  /// tiers only (results are not persisted).
  std::optional<std::filesystem::path> store_dir;
  /// Code-version component of every content key (wire git-describe
  /// through, as wi_run does).
  std::string version = "unversioned";
  /// Nested engine threads of one run_campaign job (its seed replicas
  /// parallelize internally; keep small, the worker pool is the outer
  /// parallelism).
  std::size_t campaign_threads = 2;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Load-shedding watermark: queue depth at or above which new run
  /// requests are rejected with kUnavailable + a retry_after_ms hint,
  /// before the queue wedges at capacity. 0 = disabled.
  std::size_t shed_watermark = 0;
  /// The retry_after_ms hint attached to shed rejections.
  double shed_retry_after_ms = 50.0;
  /// Chaos mode: deterministic fault injection on the store and
  /// connection paths. All-zero rates (the default) = no injector.
  FaultInjectorOptions chaos;
  /// Log one line per connection/shutdown event to stderr.
  bool verbose = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the accept loop + worker pool.
  [[nodiscard]] Status start();

  /// Port actually bound (after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Block until a shutdown request arrived and the queue drained (or
  /// stop() was called from another thread).
  void wait();

  /// Graceful external stop: drain accepted work, then tear down
  /// connections and join every thread. Idempotent.
  void stop();

  /// Signal-safe-adjacent shutdown entry: close admission, drain
  /// accepted work and release wait(). For the daemon's SIGTERM /
  /// SIGINT watcher thread (NOT the handler itself — call from a
  /// normal thread). Idempotent; does not join connection threads,
  /// the caller follows up with stop().
  void begin_shutdown();

  /// True once draining began (no new work is admitted).
  [[nodiscard]] bool draining() const { return draining_.load(); }

  /// The canonical metrics table (same one the stats request returns).
  [[nodiscard]] Table stats_table();

  [[nodiscard]] ServerMetrics& metrics() { return metrics_; }
  [[nodiscard]] HotTier& hot_tier() { return hot_tier_; }
  [[nodiscard]] sim::SimEngine& engine() { return engine_; }
  [[nodiscard]] sim::ResultStore* store() { return store_.get(); }
  /// Non-null iff chaos rates were configured.
  [[nodiscard]] FaultInjector* injector() { return injector_.get(); }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  struct Job;
  struct JobOutcome;
  struct Connection;

  void accept_loop();
  void worker_loop();
  void connection_loop(Connection& connection);
  // client_key is the connection's fair-admission identity (peer
  // address, not connection serial — see accept_loop).
  [[nodiscard]] Response handle_request(const Request& request,
                                        std::uint64_t client_key);
  [[nodiscard]] Response run_scenario(const Request& request,
                                      std::uint64_t client_key);
  [[nodiscard]] Response run_campaign(const Request& request,
                                      std::uint64_t client_key);
  [[nodiscard]] Response execute_keyed(
      const std::string& key, std::uint64_t client_key, Job job,
      Response response);
  /// Stamp the job's absolute expiry from request.deadline_ms (if set).
  static void apply_deadline(Job& job, const Request& request);

  /// Close admission, drain the queue, join workers. Safe from any
  /// thread (including a connection thread handling shutdown);
  /// idempotent — later callers wait for the first drain to finish.
  void drain();
  /// Release wait(). Called after the shutdown response has been
  /// written (so stop() cannot cut the response off) or by stop().
  void signal_shutdown();
  void reap_finished_connections();

  ServerOptions options_;
  sim::SimEngine engine_;
  std::unique_ptr<sim::ResultStore> store_;
  HotTier hot_tier_;
  ServerMetrics metrics_;
  std::unique_ptr<FaultInjector> injector_;

  // Defined in server.cpp (holds the queue of move-only jobs).
  struct QueueHolder;
  std::unique_ptr<QueueHolder> queue_;

  Socket listener_;
  std::uint16_t port_ = 0;
  std::size_t worker_count_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::atomic<std::uint64_t> next_client_id_{1};

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::mutex lifecycle_mutex_;
  std::condition_variable lifecycle_cv_;
  bool drain_complete_ = false;      ///< under lifecycle_mutex_
  bool shutdown_signaled_ = false;   ///< under lifecycle_mutex_
};

}  // namespace wi::serve

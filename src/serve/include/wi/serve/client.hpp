#pragma once
/// \file client.hpp
/// \brief Blocking line client of the wi_serve protocol — the shared
///        transport of wi_loadgen and the end-to-end tests.
///
/// One Client is one TCP connection: call() writes a request frame and
/// blocks for its response (the server answers in request order per
/// connection). send_raw() exists so tests and the load generator can
/// inject deliberately malformed frames and watch the server survive.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "wi/serve/net.hpp"
#include "wi/serve/protocol.hpp"

namespace wi::serve {

class Client {
 public:
  Client() = default;

  /// Connect to a wi_serve instance.
  [[nodiscard]] Status connect(const std::string& host,
                               std::uint16_t port);

  [[nodiscard]] bool connected() const { return socket_.valid(); }

  /// Bound every receive() to `timeout_ms` (0 = block forever). Call
  /// after connect(). A timed-out receive throws
  /// StatusError(kDeadlineExceeded) — the client-side deadline — and
  /// the connection should be considered poisoned (a late response may
  /// still arrive and desynchronize the stream), so close and
  /// reconnect before retrying.
  [[nodiscard]] Status set_timeout(double timeout_ms);

  /// Round trip: write one request frame, block for one response.
  /// Throws StatusError on transport failure (connection gone) or an
  /// unparseable response; protocol-level failures come back as the
  /// response's own status.
  [[nodiscard]] Response call(const Request& request);

  /// Write one raw line (no validation; a newline is appended) and
  /// block for one response frame — the malformed-input path.
  [[nodiscard]] Response call_raw(const std::string& line);

  /// Fire-and-forget raw write (for tests that slam the connection
  /// shut mid-protocol).
  [[nodiscard]] Status send_raw(const std::string& line);

  /// Read one response frame (pairs with send_raw).
  [[nodiscard]] Response receive();

  void close();

 private:
  Socket socket_;
  std::unique_ptr<LineReader> reader_;
};

/// Convenience: connect, run one request, close. Throws StatusError on
/// connect/transport failure.
[[nodiscard]] Response call_once(const std::string& host,
                                 std::uint16_t port,
                                 const Request& request);

/// Retry policy of call_with_retry. Backoff is exponential with
/// deterministic jitter: attempt i waits
/// max(backoff_i, server retry_after_ms hint) * U[0.5, 1.5), where the
/// jitter comes from fault::derive(seed ^ hash(request.id),
/// kRetryJitter, i) — replayable, and decorrelated across requests so
/// a burst of rejected clients does not retry in lockstep.
struct RetryOptions {
  std::size_t max_attempts = 4;      ///< total tries (>= 1)
  double initial_backoff_ms = 10.0;  ///< first retry wait
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Per-attempt receive timeout (0 = none). A timed-out attempt
  /// reconnects and retries like a transport failure.
  double timeout_ms = 0.0;
  std::uint64_t seed = 1;  ///< jitter derivation seed
};

/// Observability of one call_with_retry invocation.
struct RetryStats {
  std::size_t attempts = 0;      ///< tries actually made
  double backoff_ms_total = 0.0; ///< time slept between tries
};

/// Connect + call with retries. Retries on transport failures
/// (kUnavailable thrown), client-side receive timeouts
/// (kDeadlineExceeded thrown), and kUnavailable *responses* —
/// backpressure, load shedding, draining — honoring the response's
/// retry_after_ms hint as a backoff floor. A kUnavailable response on
/// the last attempt is returned (the caller sees the server's own
/// words); a thrown error on the last attempt propagates. A
/// kDeadlineExceeded *response* is terminal — the server enforced the
/// request's deadline, and retrying with the same deadline would just
/// burn queue slots.
[[nodiscard]] Response call_with_retry(const std::string& host,
                                       std::uint16_t port,
                                       const Request& request,
                                       const RetryOptions& options = {},
                                       RetryStats* stats = nullptr);

}  // namespace wi::serve

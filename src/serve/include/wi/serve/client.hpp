#pragma once
/// \file client.hpp
/// \brief Blocking line client of the wi_serve protocol — the shared
///        transport of wi_loadgen and the end-to-end tests.
///
/// One Client is one TCP connection: call() writes a request frame and
/// blocks for its response (the server answers in request order per
/// connection). send_raw() exists so tests and the load generator can
/// inject deliberately malformed frames and watch the server survive.

#include <cstdint>
#include <memory>
#include <string>

#include "wi/serve/net.hpp"
#include "wi/serve/protocol.hpp"

namespace wi::serve {

class Client {
 public:
  Client() = default;

  /// Connect to a wi_serve instance.
  [[nodiscard]] Status connect(const std::string& host,
                               std::uint16_t port);

  [[nodiscard]] bool connected() const { return socket_.valid(); }

  /// Round trip: write one request frame, block for one response.
  /// Throws StatusError on transport failure (connection gone) or an
  /// unparseable response; protocol-level failures come back as the
  /// response's own status.
  [[nodiscard]] Response call(const Request& request);

  /// Write one raw line (no validation; a newline is appended) and
  /// block for one response frame — the malformed-input path.
  [[nodiscard]] Response call_raw(const std::string& line);

  /// Fire-and-forget raw write (for tests that slam the connection
  /// shut mid-protocol).
  [[nodiscard]] Status send_raw(const std::string& line);

  /// Read one response frame (pairs with send_raw).
  [[nodiscard]] Response receive();

  void close();

 private:
  Socket socket_;
  std::unique_ptr<LineReader> reader_;
};

/// Convenience: connect, run one request, close. Throws StatusError on
/// connect/transport failure.
[[nodiscard]] Response call_once(const std::string& host,
                                 std::uint16_t port,
                                 const Request& request);

}  // namespace wi::serve

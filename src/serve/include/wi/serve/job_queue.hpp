#pragma once
/// \file job_queue.hpp
/// \brief Bounded MPMC job queue with per-client fair admission and
///        round-robin dispatch.
///
/// Admission control for the wi_serve daemon: try_push never blocks —
/// a full queue (or an over-quota client) is an immediate rejection the
/// connection layer turns into an explicit backpressure response, so
/// the accept loop can never wedge behind a slow simulation. Fairness
/// is two-sided: a per-client quota stops one client from *filling*
/// the queue, and pop() round-robins across clients so a burst from
/// one client cannot monopolize the worker pool even within quota.
/// An optional overload watermark sheds new work (with a typed kShed
/// verdict the server turns into a retry-after hint) before the queue
/// wedges at capacity, keeping tail latency bounded under overload.
/// close() stops admission but lets consumers drain what was accepted
/// — the graceful-shutdown half of the contract: accepted work always
/// completes, rejected work was always told so.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace wi::serve {

/// Why an admission attempt did (not) succeed. Everything except
/// kAccepted is an immediate, explicit rejection the connection layer
/// answers with backpressure; kShed additionally means "the queue is
/// still legally below capacity but past the overload watermark" — the
/// load-shedding signal that should carry a retry-after hint.
enum class PushOutcome {
  kAccepted,
  kClosed,     ///< admission closed (draining for shutdown)
  kFull,       ///< queue at capacity
  kOverQuota,  ///< this client is at its per-client quota
  kShed,       ///< over the overload watermark: shed to protect latency
};

[[nodiscard]] constexpr bool push_accepted(PushOutcome outcome) {
  return outcome == PushOutcome::kAccepted;
}

template <typename T>
class FairJobQueue {
 public:
  struct Options {
    std::size_t capacity = 256;
    /// Max queued jobs per client; 0 = no per-client cap (capacity).
    std::size_t per_client_quota = 0;
    /// Overload watermark: depth at or above which new work is shed
    /// (kShed) even though capacity remains. 0 = disabled. Clamped to
    /// capacity.
    std::size_t shed_watermark = 0;
  };

  explicit FairJobQueue(Options options = {}) : options_(options) {
    if (options_.capacity == 0) options_.capacity = 1;
    if (options_.per_client_quota == 0 ||
        options_.per_client_quota > options_.capacity) {
      options_.per_client_quota = options_.capacity;
    }
    if (options_.shed_watermark > options_.capacity) {
      options_.shed_watermark = options_.capacity;
    }
  }

  /// Non-blocking admission with a typed verdict; anything but
  /// kAccepted left the queue untouched.
  [[nodiscard]] PushOutcome try_push(std::uint64_t client, T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushOutcome::kClosed;
      if (size_ >= options_.capacity) return PushOutcome::kFull;
      if (options_.shed_watermark != 0 &&
          size_ >= options_.shed_watermark) {
        ++shed_count_;
        return PushOutcome::kShed;
      }
      Lane& lane = lane_for(client);
      if (lane.jobs.size() >= options_.per_client_quota) {
        return PushOutcome::kOverQuota;
      }
      lane.jobs.push_back(std::move(item));
      ++size_;
      if (size_ > peak_depth_) peak_depth_ = size_;
    }
    cv_.notify_one();
    return PushOutcome::kAccepted;
  }

  /// Blocking round-robin pop; nullopt once closed *and* drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    // Rotate over client lanes starting after the last-served one.
    // Lanes only exist while they hold jobs, so the first probe hits.
    for (std::size_t step = 0; step < lanes_.size(); ++step) {
      const std::size_t index = (cursor_ + 1 + step) % lanes_.size();
      Lane& lane = lanes_[index];
      if (lane.jobs.empty()) continue;
      T item = std::move(lane.jobs.front());
      lane.jobs.pop_front();
      --size_;
      if (lane.jobs.empty()) {
        // Reclaim the drained lane so lanes_ stays bounded by the
        // queue depth, never by the number of clients ever seen; keep
        // the cursor pointing just before the next lane in rotation
        // order.
        lanes_.erase(lanes_.begin() +
                     static_cast<std::ptrdiff_t>(index));
        cursor_ = lanes_.empty()  ? 0
                  : index == 0    ? lanes_.size() - 1
                                  : index - 1;
      } else {
        cursor_ = index;
      }
      return item;
    }
    return std::nullopt;  // unreachable: size_ > 0 implies a lane
  }

  /// Stop admission (try_push fails from now on) and wake every
  /// consumer; pending jobs remain poppable until drained.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Current depth across all clients.
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  /// High-water mark of size().
  [[nodiscard]] std::size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_depth_;
  }

  /// Pushes rejected by the overload watermark so far.
  [[nodiscard]] std::size_t shed_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return shed_count_;
  }

  /// Live lane count: clients with at least one queued job. Drained
  /// lanes are reclaimed, so this is bounded by size().
  [[nodiscard]] std::size_t lane_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_.size();
  }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Lane {
    std::uint64_t client = 0;
    std::deque<T> jobs;
  };

  /// Lane of a client id (created on first use, reclaimed by pop()
  /// when drained). Linear scan: the lane count is the number of
  /// clients with work *currently queued*, bounded by capacity.
  [[nodiscard]] Lane& lane_for(std::uint64_t client) {
    for (Lane& lane : lanes_) {
      if (lane.client == client) return lane;
    }
    lanes_.push_back(Lane{client, {}});
    return lanes_.back();
  }

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Lane> lanes_;
  std::size_t cursor_ = 0;  ///< last-served lane index
  std::size_t size_ = 0;
  std::size_t peak_depth_ = 0;
  std::size_t shed_count_ = 0;
  bool closed_ = false;
};

}  // namespace wi::serve

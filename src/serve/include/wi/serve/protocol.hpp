#pragma once
/// \file protocol.hpp
/// \brief Request/response codec of the wi_serve wire protocol.
///
/// One frame = one JSON object on one line (see net.hpp for framing).
/// Five request types: run_scenario, run_campaign, stats, health,
/// shutdown. Scenario/campaign payloads ride on the *existing* spec
/// codecs (scenario_from_json / campaign_from_json), so a spec file
/// that wi_run accepts is exactly what a client sends inline — and the
/// same strictness applies: unknown keys are a parse error, never a
/// silently defaulted run. Every response echoes the request id and
/// carries a wi::Status; run responses add the cache tier that served
/// them ("hot" | "inflight" | "cold" | "run") plus queue/run timings,
/// so clients see per-request traces without a side channel.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wi/common/json.hpp"
#include "wi/sim/campaign.hpp"
#include "wi/sim/engine.hpp"
#include "wi/sim/scenario.hpp"
#include "wi/sim/status.hpp"

namespace wi::serve {

enum class RequestType {
  kRunScenario,
  kRunCampaign,
  kStats,
  kHealth,
  kShutdown,
};

/// Wire name of a request type ("run_scenario", ...).
[[nodiscard]] const char* request_type_name(RequestType type);

/// Inverse of request_type_name; nullopt for unknown names.
[[nodiscard]] std::optional<RequestType> request_type_from_name(
    std::string_view name);

/// One client request.
struct Request {
  RequestType type = RequestType::kHealth;
  std::string id;  ///< client correlation id, echoed verbatim

  /// Registry scenario name — the by-name form of run_scenario /
  /// run_campaign. Mutually exclusive with the inline payloads below.
  std::string scenario;
  /// Inline ScenarioSpec (run_scenario).
  std::optional<sim::ScenarioSpec> spec;
  /// Inline CampaignSpec (run_campaign).
  std::optional<sim::CampaignSpec> campaign;

  /// run_scenario: store-key seed salt (0 = the deterministic run).
  std::uint64_t seed = 0;
  /// run_campaign by name: replica count / seed-derivation root.
  std::size_t seeds = 8;
  std::uint64_t base_seed = 1;

  /// Per-request deadline in milliseconds from server receipt; 0 =
  /// none. A job still queued when its deadline passes is answered
  /// kDeadlineExceeded instead of running (run requests only).
  double deadline_ms = 0.0;
};

/// One server response. `result` is present on successful run_scenario
/// / run_campaign (the result table) and stats (the metrics table).
struct Response {
  std::string id;
  RequestType type = RequestType::kHealth;
  Status status;
  std::string tier;  ///< "hot"|"inflight"|"cold"|"run" for run responses
  double queue_us = 0.0;  ///< admission-to-worker wait of this request
  double run_us = 0.0;    ///< engine execution time (0 on cache hits)
  /// Load-shedding hint: on kUnavailable rejections, how long the
  /// client should back off before retrying (0 = no hint).
  double retry_after_ms = 0.0;
  std::optional<sim::RunResult> result;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// Request <-> JSON. Decoding throws StatusError(kParseError) on
/// malformed frames: unknown type/keys, payload-type mismatches, or a
/// by-name AND inline payload in the same request.
[[nodiscard]] Json request_to_json(const Request& request);
[[nodiscard]] Request request_from_json(const Json& json);

/// Response <-> JSON; same strictness.
[[nodiscard]] Json response_to_json(const Response& response);
[[nodiscard]] Response response_from_json(const Json& json);

/// Compact one-line frames (no trailing newline — the framing layer
/// appends it).
[[nodiscard]] std::string request_to_line(const Request& request);
[[nodiscard]] std::string response_to_line(const Response& response);

/// Parse one frame; throws StatusError(kParseError).
[[nodiscard]] Request request_from_line(const std::string& line);
[[nodiscard]] Response response_from_line(const std::string& line);

}  // namespace wi::serve

#pragma once
/// \file routing.hpp
/// \brief Routing functions: dimension-order (XYZ) for regular meshes
///        and BFS shortest-path for irregular topologies (partial
///        vertical connectivity, hybrid wireless express links).

#include <cstddef>
#include <vector>

#include "wi/noc/topology.hpp"

namespace wi::noc {

/// A route is the ordered list of link indices from source router to
/// destination router (empty when src == dst).
using Route = std::vector<std::size_t>;

/// Routing strategy interface.
class Routing {
 public:
  virtual ~Routing() = default;
  /// Route between two routers. Throws wi::StatusError with
  /// StatusCode::kUnreachableRoute when no route exists (the scenario
  /// engine surfaces this per result row instead of aborting a sweep).
  [[nodiscard]] virtual Route route(const Topology& topology,
                                    std::size_t src_router,
                                    std::size_t dst_router) const = 0;

  /// First link of route(topology, src, dst) without materialising the
  /// whole path. The default delegates to route(); implementations with
  /// O(1) first-step knowledge (dimension order) override it so the
  /// simulator's O(routers^2) next-hop table build stays cheap on large
  /// meshes. Must return exactly route(...).front() whenever route()
  /// succeeds; an override may succeed on a topology where the full
  /// walk would fail further downstream (the simulator then surfaces
  /// the failure at the router where the walk actually dies).
  [[nodiscard]] virtual std::size_t first_hop(const Topology& topology,
                                              std::size_t src_router,
                                              std::size_t dst_router) const;
};

/// Deterministic dimension-order routing (X, then Y, then Z). Requires
/// the full mesh links to exist.
class DimensionOrderRouting final : public Routing {
 public:
  [[nodiscard]] Route route(const Topology& topology, std::size_t src_router,
                            std::size_t dst_router) const override;
  /// O(1): one coordinate compare picks the dimension-order step.
  [[nodiscard]] std::size_t first_hop(const Topology& topology,
                                      std::size_t src_router,
                                      std::size_t dst_router) const override;
};

/// Breadth-first shortest path; ties broken by link index order. Handles
/// arbitrary (connected) topologies, preferring high-bandwidth links on
/// equal hop count.
class ShortestPathRouting final : public Routing {
 public:
  [[nodiscard]] Route route(const Topology& topology, std::size_t src_router,
                            std::size_t dst_router) const override;
};

/// Average router-to-router hop count over all module pairs.
[[nodiscard]] double average_hop_count(const Topology& topology,
                                       const Routing& routing);

/// Network diameter in router hops over module-attached routers.
[[nodiscard]] std::size_t diameter(const Topology& topology,
                                   const Routing& routing);

}  // namespace wi::noc

#pragma once
/// \file topology.hpp
/// \brief NoC topologies of Fig. 7: 2D mesh, star-mesh (concentrated
///        mesh), 3D mesh and ciliated 3D mesh, plus irregular variants
///        with heterogeneous vertical links (the paper's TSV remark).
///
/// A topology is a directed graph of routers plus a module-to-router
/// attachment map (concentration factor >= 1). Links carry a bandwidth
/// (flits/cycle; vertical inter-chip links may be faster than in-plane
/// wires) and a physical length used by the wire-length metric.

#include <cstddef>
#include <string>
#include <vector>

namespace wi::noc {

/// Integer router coordinate in the (up to) three mesh dimensions.
struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;
  [[nodiscard]] bool operator==(const Coord&) const = default;
};

/// One directed router-to-router channel.
struct Link {
  std::size_t src = 0;          ///< source router
  std::size_t dst = 0;          ///< destination router
  double bandwidth = 1.0;       ///< flits per cycle
  double length_mm = 1.0;       ///< physical wire length
  bool vertical = false;        ///< inter-layer (TSV/inductive) link
};

/// Router network + module attachment.
class Topology {
 public:
  /// kx x ky 2D mesh, one module per router.
  [[nodiscard]] static Topology mesh_2d(std::size_t kx, std::size_t ky);

  /// Star-mesh / concentrated mesh: kx x ky router mesh with
  /// `concentration` modules per router (Fig. 7 top right).
  [[nodiscard]] static Topology star_mesh(std::size_t kx, std::size_t ky,
                                          std::size_t concentration);

  /// Star-mesh with `irl` parallel inter-router links per mesh channel
  /// (the paper's remedy for the star-mesh's low bisection bandwidth;
  /// modelled as channel bandwidth = irl, at the cost of irl ports per
  /// channel on every router).
  [[nodiscard]] static Topology star_mesh_irl(std::size_t kx, std::size_t ky,
                                              std::size_t concentration,
                                              std::size_t irl);

  /// kx x ky x kz 3D mesh, one module per router.
  [[nodiscard]] static Topology mesh_3d(std::size_t kx, std::size_t ky,
                                        std::size_t kz);

  /// Ciliated 3D mesh: a 3D router mesh where each router carries
  /// `concentration` modules (star-mesh generalised to 3D, Fig. 7).
  [[nodiscard]] static Topology ciliated_mesh_3d(std::size_t kx,
                                                 std::size_t ky,
                                                 std::size_t kz,
                                                 std::size_t concentration);

  /// 3D mesh where only every `tsv_period`-th router column carries
  /// vertical links (TSV area constraint); vertical links get
  /// `vertical_bandwidth` flits/cycle.
  [[nodiscard]] static Topology partial_vertical_mesh_3d(
      std::size_t kx, std::size_t ky, std::size_t kz, std::size_t tsv_period,
      double vertical_bandwidth = 1.0);

  [[nodiscard]] std::size_t router_count() const { return coords_.size(); }
  [[nodiscard]] std::size_t module_count() const { return module_router_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const Link& link(std::size_t i) const { return links_[i]; }
  [[nodiscard]] const Coord& coord(std::size_t router) const {
    return coords_[router];
  }
  [[nodiscard]] std::size_t module_router(std::size_t module) const {
    return module_router_[module];
  }
  /// Outgoing link indices of a router.
  [[nodiscard]] const std::vector<std::size_t>& out_links(
      std::size_t router) const {
    return out_links_[router];
  }
  /// Link index from src to dst, or npos when absent.
  [[nodiscard]] std::size_t find_link(std::size_t src, std::size_t dst) const;

  /// Mesh extents (1 for unused dimensions).
  [[nodiscard]] std::size_t kx() const { return kx_; }
  [[nodiscard]] std::size_t ky() const { return ky_; }
  [[nodiscard]] std::size_t kz() const { return kz_; }

  /// Router index from a coordinate.
  [[nodiscard]] std::size_t router_at(int x, int y, int z) const;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Total wire length [mm] (sum over directed links / 2 would count
  /// bidirectional pairs once; we keep directed sum for symmetry).
  [[nodiscard]] double total_wire_length_mm() const;

  /// Bisection bandwidth [flits/cycle] across the widest dimension cut.
  [[nodiscard]] double bisection_bandwidth() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Manual construction for custom/irregular topologies.
  Topology(std::string name, std::size_t kx, std::size_t ky, std::size_t kz);
  /// Adds a router at a coordinate, returns its index.
  std::size_t add_router(Coord coord);
  /// Adds a directed link.
  void add_link(Link link);
  /// Attaches a module to a router, returns the module index.
  std::size_t attach_module(std::size_t router);

 private:
  static Topology build_mesh(std::string name, std::size_t kx, std::size_t ky,
                             std::size_t kz, std::size_t concentration,
                             double xy_pitch_mm, double z_pitch_mm);

  std::string name_;
  std::size_t kx_ = 1;
  std::size_t ky_ = 1;
  std::size_t kz_ = 1;
  std::vector<Coord> coords_;
  std::vector<Link> links_;
  std::vector<std::vector<std::size_t>> out_links_;
  std::vector<std::size_t> module_router_;
};

}  // namespace wi::noc

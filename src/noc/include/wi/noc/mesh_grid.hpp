#pragma once
/// \file mesh_grid.hpp
/// \brief Computed dimension-ordered next-hop for regular meshes.
///
/// The flit simulators' hot loop asks one question per flit per hop:
/// "which output port moves this flit toward its destination router?".
/// The dense answer is a (router x router) port table — O(routers²)
/// bytes, which is what capped mesh scale before implicit patterns
/// (32x32x32 routers would need a 1 GiB table). For a *regular* mesh
/// the answer is computable: compare coordinates in X-then-Y-then-Z
/// order (exactly `DimensionOrderRouting`'s step order) and emit the
/// port of the one link that advances the first mismatched dimension.
///
/// `analyze()` proves a topology is such a mesh in O(routers + links):
/// extents multiply out, coordinates match the canonical
/// (z*ky + y)*kx + x indexing, and every axis-neighbour pair is joined
/// by exactly one link (and nothing else). Anything irregular — partial
/// vertical meshes, custom graphs, fault-rebuilt tables — returns
/// nullopt and the caller keeps its dense table. The port returned is
/// the link's position in `out_links(router)`, i.e. bit-identical to
/// what the dense table built from `DimensionOrderRouting::first_hop`
/// holds, so switching representations cannot change a simulation.
///
/// Memory: 6 bytes (port bytes) + 4 bytes (packed coordinate) per
/// router — O(routers).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "wi/noc/topology.hpp"

namespace wi::noc {

/// O(routers)-memory computed next-hop for a regular mesh topology.
class MeshGrid {
 public:
  /// Proves `topology` is a regular full mesh and builds the computed
  /// next-hop state; nullopt when the topology is irregular (then use
  /// a dense table). Requires every extent < 1024 (coordinates are
  /// packed 10 bits per dimension).
  [[nodiscard]] static std::optional<MeshGrid> analyze(
      const Topology& topology);

  /// Output-port index (position in `out_links(at)`) of the
  /// dimension-ordered next hop from router `at` toward router `dst`.
  /// Precondition: at != dst, both valid router indices.
  [[nodiscard]] std::uint8_t next_port(std::size_t at,
                                       std::size_t dst) const {
    const std::uint32_t a = packed_[at];
    const std::uint32_t b = packed_[dst];
    const std::uint32_t ax = a & 0x3FF, bx = b & 0x3FF;
    if (ax != bx) return dir_port_[at * 6 + (bx > ax ? kPlusX : kMinusX)];
    const std::uint32_t ay = (a >> 10) & 0x3FF, by = (b >> 10) & 0x3FF;
    if (ay != by) return dir_port_[at * 6 + (by > ay ? kPlusY : kMinusY)];
    return dir_port_[at * 6 + (((b >> 20) > (a >> 20)) ? kPlusZ : kMinusZ)];
  }

  [[nodiscard]] std::size_t router_count() const { return packed_.size(); }

 private:
  enum Dir : std::size_t {
    kMinusX = 0,
    kPlusX = 1,
    kMinusY = 2,
    kPlusY = 3,
    kMinusZ = 4,
    kPlusZ = 5,
  };

  MeshGrid() = default;

  std::vector<std::uint32_t> packed_;   ///< x | y<<10 | z<<20 per router
  std::vector<std::uint8_t> dir_port_;  ///< 6 port bytes per router
};

}  // namespace wi::noc

#pragma once
/// \file queueing_model.hpp
/// \brief Analytic NoC latency model based on queueing theory —
///        reimplementation of the flexible design-space-exploration
///        model of ref. [14] that produced Fig. 8.
///
/// Every router output channel is modelled as an M/M/1 queue: uniform
/// Poisson injection at rate lambda [flits/cycle/module] generates a
/// per-channel flit arrival rate lambda_l (computed exactly from the
/// routing function and the traffic pattern), and the channel serves
/// with rate mu_l = efficiency * bandwidth. The mean packet latency is
/// the traffic-weighted sum of per-hop delays
///   t_hop = router_delay + link_delay + W_l,  W_l = rho/(mu (1 - rho)),
/// plus the router traversal at the destination. When any channel
/// reaches rho >= 1 the network is saturated and the latency diverges —
/// the "network saturation point" the paper reads off the curves.
///
/// Defaults are calibrated once, globally (not per topology): a 2-cycle
/// router pipeline and 82% channel efficiency put the Fig. 8(a) anchors
/// at 13/7/10 cycles low-load latency and 0.41/0.19/0.75-ish saturation.

#include <cstddef>
#include <vector>

#include "wi/noc/routing.hpp"
#include "wi/noc/topology.hpp"
#include "wi/noc/traffic.hpp"

namespace wi::noc {

/// Model parameters (global; see file comment for calibration).
struct QueueingModelParams {
  double router_delay_cycles = 2.0;   ///< per traversed router
  double link_delay_cycles = 0.0;     ///< wire delay per hop
  double local_delay_cycles = 0.0;    ///< module<->router access
  double channel_efficiency = 0.82;   ///< arbitration/flow-control derate
  double packet_length_flits = 1.0;   ///< serialisation length
};

/// Evaluation output for one injection rate.
struct NetworkPerformance {
  double mean_latency_cycles = 0.0;  ///< traffic-weighted mean
  double max_channel_load = 0.0;     ///< max rho over channels
  bool saturated = false;            ///< some rho >= 1
};

/// Analytic latency/throughput model.
class QueueingModel {
 public:
  /// Precomputes per-channel load coefficients (and, for dense traffic
  /// patterns, all module-pair routes); evaluate() is then
  /// O(channels + pairs). Implicit patterns never materialise the
  /// module-pair matrix or the path list: channel loads are aggregated
  /// directly — in closed form for uniform/hotspot traffic on a regular
  /// mesh under dimension-order routing (O(modules + channels) setup),
  /// via O(modules) permutation walks for transpose/bit-complement/
  /// tornado, and via an aggregate-only pairwise walk otherwise — and
  /// evaluate() folds the same per-path sum through the aggregated
  /// coefficients (mathematically identical to the dense walk; only
  /// float summation order differs).
  QueueingModel(const Topology& topology, const Routing& routing,
                const TrafficPattern& traffic,
                QueueingModelParams params = {});

  /// Performance at an injection rate [flits/cycle/module].
  [[nodiscard]] NetworkPerformance evaluate(double injection_rate) const;

  /// Mean latency in the zero-load limit.
  [[nodiscard]] double zero_load_latency_cycles() const;

  /// Injection rate where the first channel saturates (capacity).
  [[nodiscard]] double saturation_rate() const;

  /// Latency-vs-injection sweep; saturated points report latency = inf.
  struct SweepPoint {
    double injection_rate = 0.0;
    double latency_cycles = 0.0;
    bool saturated = false;
  };
  [[nodiscard]] std::vector<SweepPoint> sweep(
      const std::vector<double>& injection_rates) const;

  [[nodiscard]] const QueueingModelParams& params() const { return params_; }

 private:
  void build_dense(const Topology& topology, const Routing& routing,
                   const TrafficPattern& traffic);
  void build_implicit(const Topology& topology, const Routing& routing,
                      const TrafficPattern& traffic);

  QueueingModelParams params_;
  std::size_t channel_count_ = 0;
  std::size_t modules_ = 0;
  double average_hops_ = 0.0;  ///< traffic-weighted router-to-router hops
  /// Per-channel flit arrival coefficient per unit injection rate.
  std::vector<double> channel_load_coeff_;
  /// Per-channel service rate (efficiency * bandwidth).
  std::vector<double> channel_service_;
  /// Per path: probability weight and the channel list.
  struct PathEntry {
    double weight = 0.0;
    std::vector<std::size_t> channels;
  };
  std::vector<PathEntry> paths_;
  /// Implicit-pattern mode: paths_ is empty and evaluate() folds the
  /// per-path sum through the aggregated coefficients instead.
  bool aggregate_ = false;
  double total_weight_ = 0.0;  ///< sum of path weights (1 by row norm)
};

}  // namespace wi::noc

#pragma once
/// \file metrics.hpp
/// \brief Static topology metrics backing the Sec. IV claims (low
///        latency, high bisection bandwidth, short wires).

#include "wi/noc/routing.hpp"
#include "wi/noc/topology.hpp"

namespace wi::noc {

/// Bundle of comparative topology metrics.
struct TopologyMetrics {
  double average_hops = 0.0;        ///< uniform-traffic mean router hops
  std::size_t diameter_hops = 0;    ///< worst-case hops
  double bisection_bandwidth = 0.0; ///< flits/cycle across the mid cut
  double total_wire_mm = 0.0;       ///< summed link length
  std::size_t router_count = 0;
  std::size_t link_count = 0;
};

/// Compute all metrics with the given routing function.
[[nodiscard]] TopologyMetrics compute_metrics(const Topology& topology,
                                              const Routing& routing);

/// Crossbar-area proxy: sum over routers of (port count)^2, where the
/// port count is the attached modules plus one port per unit of link
/// bandwidth in each direction (parallel inter-router links need
/// parallel ports — the area drawback the paper attributes to the
/// star-mesh IRL remedy).
[[nodiscard]] double total_router_crossbar_area(const Topology& topology);

}  // namespace wi::noc
